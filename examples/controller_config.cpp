// controller_config -- driving the controller entirely from a configuration
// file, like the paper's deployment ("the concrete scheduler implementation
// can be defined in the controller's configuration and will be dynamically
// loaded").
//
// Pass a config file path, or run without arguments to use the built-in
// sample below.
//
//   $ ./controller_config [edge.conf]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/testbed.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

namespace {

constexpr const char* kSampleConfig = R"(# transparent-edge controller configuration
scheduler = latency-first          # Global Scheduler (fig. 6)
instance_policy = client-hash      # Local Scheduler at request time
switch_idle_timeout_ms = 5000      # short switch flows (§V)
memory_idle_timeout_ms = 60000     # longer controller memory
scale_down_idle = true
remove_idle_after_ms = 300000      # Remove phase after 5 min idle (fig. 4)
delete_images_on_remove = false
port_poll_interval_ms = 50         # readiness polling (§VI)
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kSampleConfig;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const auto parsed = Config::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 parsed.error().toString().c_str());
    return 1;
  }
  const Config& config = parsed.value();
  std::printf("loaded configuration:\n");
  for (const auto& [key, value] : config.entries()) {
    std::printf("  %-28s = %s\n", key.c_str(), value.c_str());
  }

  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller = ControllerOptions::fromConfig(config);
  Testbed bed(options);
  std::printf("controller scheduler: %s\n",
              bed.controller().scheduler().name());

  const Endpoint address(Ipv4(203, 0, 113, 50), 80);
  if (!bed.registerCatalogService("nginx", address).ok()) return 1;
  bed.warmImageCache("nginx");

  // Exercise the configured behaviour: a far instance runs, so the
  // latency-first scheduler answers from it and deploys near in parallel.
  const ServiceModel* model = bed.controller().serviceAt(address);
  bed.controller().dispatcher().ensureReady(*model, *bed.farEdgeAdapter(),
                                            [](Result<Endpoint>) {});
  bed.sim().runUntil(5_s);

  bed.requestCatalog(0, "nginx", address, "first",
                     [](Result<HttpExchange> r) {
                       if (r.ok()) {
                         std::printf("first request: %.4f s\n",
                                     r.value().timings.timeTotal().toSeconds());
                       }
                     });
  bed.sim().runUntil(20_s);
  std::printf("background deployments: %llu, scale-downs so far: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().dispatcher().backgroundDeployments()),
              static_cast<unsigned long long>(bed.controller().scaleDowns()));
  return 0;
}
