// multi_container_app -- deploying a two-container service (Table I's
// Nginx+Py) and demonstrating the combined Docker-then-Kubernetes strategy
// from the paper's discussion (§VII): answer the first request quickly from
// a Docker-started instance, and deploy the same definition to Kubernetes
// for managed, auto-scaled future capacity.
//
//   $ ./multi_container_app
#include <cstdio>

#include "core/testbed.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

int main() {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kBoth;  // Docker AND K8s on the EGS
  Testbed bed(options);

  const Endpoint serviceAddress(Ipv4(203, 0, 113, 30), 80);
  const auto registered =
      bed.registerCatalogService("nginx-py", serviceAddress);
  if (!registered.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 registered.error().toString().c_str());
    return 1;
  }
  const ServiceModel& model = *registered.value();
  std::printf("service %s: %zu containers (%s + %s)\n",
              model.uniqueName.c_str(), model.containers.size(),
              model.containers[0].image.toString().c_str(),
              model.containers[1].image.toString().c_str());
  bed.warmImageCache("nginx-py");

  // First request: the proximity scheduler picks the nearest cluster; with
  // both adapters at the same rank the Docker cluster is listed first, so
  // the fast path answers from Docker (<1 s even with two containers).
  bed.requestCatalog(0, "nginx-py", serviceAddress, "first",
                     [](Result<HttpExchange> result) {
                       if (result.ok()) {
                         std::printf("first request (Docker path): %.3f s\n",
                                     result.value().timings.timeTotal().toSeconds());
                       }
                     });
  bed.sim().runUntil(20_s);

  // §VII "best of both worlds": deploy the same definition to Kubernetes in
  // the background for future requests.
  std::printf("deploying the same definition to Kubernetes...\n");
  bool k8sReady = false;
  bed.controller().dispatcher().ensureReady(
      model, *bed.k8sAdapter(), [&](Result<Endpoint> result) {
        if (result.ok()) {
          k8sReady = true;
          std::printf("Kubernetes replica ready at %s\n",
                      result.value().toString().c_str());
        } else {
          std::fprintf(stderr, "K8s deployment failed: %s\n",
                       result.error().toString().c_str());
        }
      });
  bed.sim().runUntil(60_s);

  if (k8sReady) {
    // Both clusters now expose ready instances of the same service.
    const auto dockerInstances = bed.dockerAdapter()->readyInstances(model);
    const auto k8sInstances = bed.k8sAdapter()->readyInstances(model);
    std::printf("ready instances: %zu on Docker, %zu on Kubernetes\n",
                dockerInstances.size(), k8sInstances.size());

    // The K8s Deployment object exists with managed replicas; scaling out
    // for a flash crowd is one API call away.
    bed.k8sCluster()->scaleDeployment(model.uniqueName, 3);
    bed.sim().runUntil(120_s);
    std::printf("after scale-out: %zu Kubernetes instances\n",
                bed.k8sAdapter()->readyInstances(model).size());
  }

  // A few more client requests, load-balanced by memorized flows.
  for (std::size_t client = 0; client < 6; ++client) {
    bed.requestCatalog(client, "nginx-py", serviceAddress, "steady");
  }
  bed.sim().runUntil(150_s);
  if (const auto* steady = bed.recorder().series("steady")) {
    std::printf("steady-state requests: median %.4f s over %zu requests\n",
                steady->median(), steady->count());
  }
  return 0;
}
