// scheduler_plugin -- writing and loading a custom Global Scheduler.
//
// The paper's controller loads its scheduler class dynamically from the
// configuration.  The C++ counterpart: register a factory under a name,
// then name it in the controller options/config.  This example implements a
// "sticky-capacity" scheduler that refuses to deploy on edges with little
// free capacity and demonstrates the fig. 3 "without waiting" behaviour
// against the built-in latency-first scheduler.
//
//   $ ./scheduler_plugin
#include <cstdio>

#include "core/testbed.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

namespace {

/// A custom Global Scheduler: behaves like latency-first, but only deploys
/// to clusters with at least `minFreeCapacity` free slots (imagine keeping
/// headroom for higher-priority tenants).
class StickyCapacityScheduler final : public GlobalScheduler {
 public:
  explicit StickyCapacityScheduler(int minFreeCapacity)
      : minFree_(minFreeCapacity) {}

  const char* name() const override { return "sticky-capacity"; }

  GlobalDecision decide(const ScheduleRequest& request) override {
    GlobalDecision decision;
    const ClusterView* bestRunning = nullptr;
    const ClusterView* bestDeployable = nullptr;
    for (const auto& cluster : request.clusters) {
      if (!cluster.readyInstances.empty()) {
        if (bestRunning == nullptr ||
            cluster.distanceRank < bestRunning->distanceRank) {
          bestRunning = &cluster;
        }
      }
      if (!cluster.isCloud && cluster.freeCapacity >= minFree_) {
        if (bestDeployable == nullptr ||
            cluster.distanceRank < bestDeployable->distanceRank) {
          bestDeployable = &cluster;
        }
      }
    }
    if (bestRunning != nullptr) {
      decision.fast = bestRunning->name;
      if (bestDeployable != nullptr &&
          bestDeployable->distanceRank < bestRunning->distanceRank) {
        decision.best = bestDeployable->name;  // deploy without waiting
      }
    } else if (bestDeployable != nullptr) {
      decision.fast = bestDeployable->name;  // deploy with waiting
    }
    return decision;
  }

 private:
  int minFree_;
};

}  // namespace

int main() {
  // Register the plugin; a real deployment would do this from a loaded
  // module, the controller config then selects it by name.
  SchedulerRegistry::instance().registerScheduler(
      "sticky-capacity", [](const Config& config) {
        const int minFree =
            static_cast<int>(config.getIntOr("min_free_capacity", 4));
        return std::make_unique<StickyCapacityScheduler>(minFree);
      });
  std::printf("registered schedulers:");
  for (const auto& name : SchedulerRegistry::instance().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;  // two edges: near EGS + far Docker edge
  options.controller.scheduler = "sticky-capacity";
  Testbed bed(options);

  const Endpoint serviceAddress(Ipv4(203, 0, 113, 40), 80);
  if (!bed.registerCatalogService("nginx", serviceAddress).ok()) return 1;
  bed.warmImageCache("nginx");

  // Pre-run an instance at the FAR edge only.
  const ServiceModel* model = bed.controller().serviceAt(serviceAddress);
  bed.controller().dispatcher().ensureReady(*model, *bed.farEdgeAdapter(),
                                            [](Result<Endpoint>) {});
  bed.sim().runUntil(5_s);

  // First request: the custom scheduler sends it to the far running
  // instance immediately AND deploys on the near edge in the background.
  bed.requestCatalog(0, "nginx", serviceAddress, "first",
                     [](Result<HttpExchange> result) {
                       if (result.ok()) {
                         std::printf(
                             "first request: %.4f s (served by the far edge "
                             "instance, no deployment wait)\n",
                             result.value().timings.timeTotal().toSeconds());
                       }
                     });
  bed.sim().runUntil(15_s);

  std::printf("background deployments triggered: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().dispatcher().backgroundDeployments()));
  std::printf("near-edge instances now ready: %zu\n",
              bed.dockerAdapter()->readyInstances(*model).size());
  return 0;
}
