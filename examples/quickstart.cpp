// quickstart -- the smallest end-to-end use of the edgesim public API.
//
// Builds the paper's testbed (fig. 8), registers an nginx edge service by
// its YAML definition, and issues one client request to the *cloud*
// address.  The SDN controller intercepts the first packet, deploys the
// container on demand on the edge (Docker, image cached), keeps the request
// waiting, and redirects it transparently -- the client never learns that
// an edge instance answered.
//
//   $ ./quickstart [trace.json]
//
// With an argument, the run's per-request trace is written as Chrome
// trace_event JSON (load it in chrome://tracing or https://ui.perfetto.dev)
// and the per-request phase breakdown is printed: uplink / resolve /
// downlink partition timecurl's time_total exactly, with the deployment
// phases (schedule, pull, create, scale-up, wait) nested inside resolve.
#include <cmath>
#include <cstdio>

#include "core/testbed.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

int main(int argc, char** argv) {
  const char* tracePath = argc > 1 ? argv[1] : nullptr;
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);

  // Register the service: one YAML file, image name is the only mandatory
  // field; the controller annotates everything else (§V).
  const Endpoint serviceAddress(Ipv4(203, 0, 113, 10), 80);
  const auto registered = bed.registerCatalogService("nginx", serviceAddress);
  if (!registered.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 registered.error().toString().c_str());
    return 1;
  }
  std::printf("registered %s at %s\n",
              registered.value()->uniqueName.c_str(),
              serviceAddress.toString().c_str());

  // The nginx image is already cached on the edge (the common case the
  // paper's headline number assumes).
  bed.warmImageCache("nginx");

  // One client request to the CLOUD address -- transparently redirected.
  bed.requestCatalog(0, "nginx", serviceAddress, "quickstart",
                     [&](Result<HttpExchange> result) {
                       if (!result.ok()) {
                         std::fprintf(stderr, "request failed: %s\n",
                                      result.error().toString().c_str());
                         return;
                       }
                       const auto& timings = result.value().timings;
                       std::printf(
                           "first request answered in %.3f s "
                           "(connect %.3f s, %d SYN retransmits)\n",
                           timings.timeTotal().toSeconds(),
                           timings.timeConnect().toSeconds(),
                           timings.synRetransmits);
                     });

  bed.sim().runUntil(30_s);

  std::printf("controller: %llu packet-ins, %llu resolved\n",
              static_cast<unsigned long long>(bed.controller().packetInCount()),
              static_cast<unsigned long long>(
                  bed.controller().requestsResolved()));
  std::printf("edge runtime started %llu container(s)\n",
              static_cast<unsigned long long>(
                  bed.dockerEngine().runtime().startedCount()));

  // Per-request phase breakdown from the trace: the three segments
  // partition time_total (all stamps come from the one sim clock).
  const auto breakdowns = bed.trace().breakdowns();
  std::printf("\n%s\n", bed.trace().breakdownTable().render().c_str());
  for (const auto& breakdown : breakdowns) {
    const double drift =
        std::fabs(breakdown.segmentSum() - breakdown.totalSeconds);
    std::printf("request %llu: segments sum to %.6f s vs time_total %.6f s "
                "(drift %.9f s)\n",
                static_cast<unsigned long long>(breakdown.request),
                breakdown.segmentSum(), breakdown.totalSeconds, drift);
  }

  if (tracePath != nullptr) {
    std::FILE* out = std::fopen(tracePath, "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", tracePath);
      return 1;
    }
    const std::string json = bed.trace().chromeTraceJson(/*indent=*/1);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote Chrome trace (%zu events) to %s\n",
                bed.trace().chromeTrace().find("traceEvents")->size(),
                tracePath);
  }
  return 0;
}
