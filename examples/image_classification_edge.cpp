// image_classification_edge -- the paper's motivating IoT scenario.
//
// A bandwidth-hungry workload (83 KiB cat pictures POSTed to a ResNet50
// TensorFlow-Serving instance) is served at the edge instead of the cloud.
// The example contrasts three situations for the same client code:
//
//   1. cold edge, on-demand deployment WITH waiting (first request pays the
//      model-load time once),
//   2. warm edge (every following request: low latency, local bandwidth),
//   3. the counterfactual cloud path (what the clients would suffer
//      without a transparent edge).
//
//   $ ./image_classification_edge
#include <cstdio>
#include <vector>

#include "core/testbed.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

namespace {

void printStats(const char* label, const Samples& samples) {
  std::printf("%-34s n=%3zu  median=%8.4f s  p95=%8.4f s\n", label,
              samples.count(), samples.median(), samples.p95());
}

}  // namespace

int main() {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);

  const Endpoint edgeService(Ipv4(203, 0, 113, 20), 80);
  if (!bed.registerCatalogService("resnet", edgeService).ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }
  bed.warmImageCache("resnet");

  // -- 1. first request: on-demand deployment with waiting ------------------
  bed.requestCatalog(0, "resnet", edgeService, "first",
                     [](Result<HttpExchange> result) {
                       if (result.ok()) {
                         std::printf(
                             "cold edge, first classification: %.3f s "
                             "(model load dominates)\n",
                             result.value().timings.timeTotal().toSeconds());
                       }
                     });
  bed.sim().runUntil(30_s);

  // -- 2. warm edge: every client classifies a stream of pictures -----------
  for (std::size_t client = 0; client < bed.clientCount(); ++client) {
    for (int i = 0; i < 5; ++i) {
      bed.sim().schedule(SimTime::millis(400 * i + 20 * (long)client), [&bed, client, edgeService] {
        bed.requestCatalog(client, "resnet", edgeService, "warm-edge");
      });
    }
  }
  bed.sim().runUntil(90_s);

  // -- 3. counterfactual: the same requests served by the cloud -------------
  // (direct request to the always-on cloud instance; the controller routes
  // unregistered addresses over the WAN uplink).
  const ServiceModel* model = bed.controller().serviceAt(edgeService);
  const auto cloudInstance = bed.cloudAdapter()->readyInstances(*model);
  if (!cloudInstance.empty()) {
    for (std::size_t client = 0; client < bed.clientCount(); ++client) {
      for (int i = 0; i < 5; ++i) {
        bed.sim().schedule(SimTime::millis(400 * i + 20 * (long)client),
                           [&bed, client, &cloudInstance] {
                             bed.request(client, cloudInstance.front(),
                                         "cloud", HttpMethod::kPost,
                                         Bytes{83 * 1024});
                           });
      }
    }
  }
  bed.sim().runUntil(180_s);

  std::printf("\n");
  if (const auto* warm = bed.recorder().series("warm-edge")) {
    printStats("warm edge classification", *warm);
  }
  if (const auto* cloud = bed.recorder().series("cloud")) {
    printStats("cloud classification (no edge)", *cloud);
  }
  if (const auto* warm = bed.recorder().series("warm-edge")) {
    if (const auto* cloud = bed.recorder().series("cloud")) {
      std::printf("\nedge saves %.1f ms median per picture (%.0f%% of the "
                  "cloud time is WAN)\n",
                  (cloud->median() - warm->median()) * 1e3,
                  100.0 * (cloud->median() - warm->median()) / cloud->median());
    }
  }
  return 0;
}
