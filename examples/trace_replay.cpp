// trace_replay -- replaying the bigFlows-derived workload (figs. 9/10)
// against the full testbed: 42 registered edge services, 1708 requests over
// five minutes from 20 clients, every service deployed on demand at its
// first request.
//
//   $ ./trace_replay
#include <cstdio>

#include "core/testbed.hpp"
#include "workload/bigflows.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

int main() {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);

  // One nginx-shaped edge service per trace destination.
  const auto services =
      workload::generateFilteredServices(workload::BigFlowsParams{});
  std::printf("trace: %zu services, %zu requests over 5 minutes\n",
              services.size(), [&] {
                std::size_t total = 0;
                for (const auto& s : services) total += s.requestCount();
                return total;
              }());

  for (const auto& service : services) {
    if (!bed.registerCatalogService("nginx", service.address).ok()) {
      std::fprintf(stderr, "registration failed for %s\n",
                   service.address.toString().c_str());
      return 1;
    }
  }
  bed.warmImageCache("nginx");

  // Schedule every request at its trace time from its trace client.
  for (const auto& service : services) {
    for (const auto& [time, clientIp] : service.requests) {
      const std::size_t clientIndex = (clientIp.value & 0xff) - 1;
      bed.sim().scheduleAt(time, [&bed, clientIndex, address = service.address] {
        bed.requestCatalog(clientIndex % bed.clientCount(), "nginx", address,
                           "replay");
      });
    }
  }

  bed.sim().runUntil(400_s);  // 5-minute trace + drain

  const auto* replay = bed.recorder().series("replay");
  if (replay == nullptr) {
    std::fprintf(stderr, "no requests recorded\n");
    return 1;
  }
  std::printf("completed %zu/%d requests (%zu failed)\n", replay->count(),
              1708, bed.recorder().failureCount());
  std::printf("response time: median %.4f s, p95 %.4f s, max %.4f s\n",
              replay->median(), replay->p95(), replay->max());
  std::printf("deployments triggered on demand: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().dispatcher().deploymentsTriggered()));
  std::printf("packet-ins handled by the controller: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().packetInCount()));
  return 0;
}
