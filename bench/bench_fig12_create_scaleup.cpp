// Figure 12: median total time to CREATE + SCALE UP the four services on
// both cluster types (images cached).
//
// Paper shape: creating the containers adds ~100 ms to the first response
// compared to fig. 11 -- except ResNet, whose create cost hides under the
// model-load time.
#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

int main() {
  struct Row {
    double docker = 0;
    double k8s = 0;
    double dockerScaleOnly = 0;  // fig. 11 counterpart for the delta column
  };
  std::map<std::string, Row> rows;

  struct Job {
    std::string key;
    ClusterMode mode;
    bool preCreate;
  };
  std::vector<Job> jobs;
  for (const auto& key : tableOneKeys()) {
    jobs.push_back({key, ClusterMode::kDockerOnly, false});
    jobs.push_back({key, ClusterMode::kK8sOnly, false});
    jobs.push_back({key, ClusterMode::kDockerOnly, true});  // delta baseline
  }
  std::vector<DeploymentExperimentResult> results(jobs.size());
  ThreadPool::parallelFor(jobs.size(), 0, [&](std::size_t i) {
    DeploymentExperimentConfig config;
    config.catalogKey = jobs[i].key;
    config.mode = jobs[i].mode;
    config.preCreate = jobs[i].preCreate;
    results[i] = runDeploymentExperiment(config);
  });

  metrics::BenchReport report("fig12_create_scaleup");
  report.setMeta("seed", "1");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ES_ASSERT(results[i].failures == 0);
    const double median = results[i].totals.median();
    Row& row = rows[jobs[i].key];
    std::string prefix = jobs[i].key + "/";
    if (jobs[i].preCreate) {
      row.dockerScaleOnly = median;
      prefix += "docker-egs-scale-only";
    } else if (jobs[i].mode == ClusterMode::kDockerOnly) {
      row.docker = median;
      prefix += "docker-egs";
    } else {
      row.k8s = median;
      prefix += "k8s-egs";
    }
    addDeploymentSeries(report, prefix, results[i]);
  }

  std::printf("Figure 12: total time (median) to create + scale up 42 "
              "instances (images cached)\n\n");
  Table table({"Service", "Docker [s]", "K8s [s]", "Docker delta vs fig11 [ms]"});
  for (const auto& key : tableOneKeys()) {
    const Row& row = rows.at(key);
    table.addRow({key, strprintf("%.3f", row.docker),
                  strprintf("%.3f", row.k8s),
                  strprintf("%+.0f", (row.docker - row.dockerScaleOnly) * 1e3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
