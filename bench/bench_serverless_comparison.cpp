// §VIII future-work evaluation: containers vs a Wasm-style serverless
// runtime under transparent access -- first-request latency for every
// artifact-cache state, per supported Table I service.
//
// Expected shape (Gackstatter et al. [7]): serverless cold starts are
// one to two orders of magnitude below container starts, while the fully
// cold path (artifact download) narrows the gap (modules are small);
// heavyweight services (ResNet) and multi-container apps don't fit a
// function at all -- the flexibility trade-off the paper notes.
#include <cstdio>

#include "experiment_common.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

enum class CacheState { kCold, kArtifactCached, kInstanceScaledToZero };

const char* cacheLabel(CacheState state) {
  switch (state) {
    case CacheState::kCold: return "cold (nothing cached)";
    case CacheState::kArtifactCached: return "artifact cached";
    case CacheState::kInstanceScaledToZero: return "created, scaled to zero";
  }
  return "?";
}

double containerFirstRequest(const std::string& key, CacheState state) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService(key, address).ok());
  if (state != CacheState::kCold) bed.warmImageCache(key);
  if (state == CacheState::kInstanceScaledToZero) {
    const auto* model = bed.controller().serviceAt(address);
    bool done = false;
    bed.dockerAdapter()->createService(*model, [&done](Status s) {
      ES_ASSERT(s.ok());
      done = true;
    });
    bed.sim().runUntil(5_s);
    ES_ASSERT(done);
  }
  double total = -1;
  bed.requestCatalog(0, key, address, "t", [&total](Result<HttpExchange> r) {
    ES_ASSERT(r.ok());
    total = r.value().timings.timeTotal().toSeconds();
  });
  bed.sim().runUntil(120_s);
  return total;
}

double serverlessFirstRequest(const std::string& key, CacheState state) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kServerlessOnly;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService(key, address).ok());
  const auto* model = bed.controller().serviceAt(address);
  if (!core::ServerlessAdapter::supportsService(*model)) return -1;
  const auto spec = core::ServerlessAdapter::toFunctionSpec(*model);
  if (state != CacheState::kCold) {
    bed.faasRuntime()->fetchModule(spec, [](Status) {});
    bed.sim().runUntil(1_s);
  }
  if (state == CacheState::kInstanceScaledToZero) {
    bed.faasRuntime()->deployFunction(spec, [](Status) {});
    bed.sim().runUntil(2_s);
  }
  double total = -1;
  bed.requestCatalog(0, key, address, "t", [&total](Result<HttpExchange> r) {
    ES_ASSERT(r.ok());
    total = r.value().timings.timeTotal().toSeconds();
  });
  bed.sim().runUntil(60_s);
  return total;
}

}  // namespace

int main() {
  std::printf("Containers vs serverless (Wasm) under transparent access: "
              "first-request time [s]\n\n");
  Table table({"Service", "cache state", "container (Docker) [s]",
               "serverless (Wasm) [s]", "speedup"});
  metrics::BenchReport report("serverless_comparison");
  const auto stateKey = [](CacheState state) {
    switch (state) {
      case CacheState::kCold: return "cold";
      case CacheState::kArtifactCached: return "cached";
      case CacheState::kInstanceScaledToZero: return "scaled-to-zero";
    }
    return "?";
  };
  for (const auto& key : tableOneKeys()) {
    for (const CacheState state :
         {CacheState::kCold, CacheState::kArtifactCached,
          CacheState::kInstanceScaledToZero}) {
      const double container = containerFirstRequest(key, state);
      const double faas = serverlessFirstRequest(key, state);
      report.addScalar(key + "/" + stateKey(state) + "/container", container);
      if (faas >= 0) {
        report.addScalar(key + "/" + stateKey(state) + "/serverless", faas);
      }
      table.addRow({key, cacheLabel(state), strprintf("%.3f", container),
                    faas < 0 ? "(does not fit a function)"
                             : strprintf("%.3f", faas),
                    faas < 0 ? "-" : strprintf("%.0fx", container / faas)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
