// §VII "best of both worlds": launch the first instance via Docker for a
// fast first response, then deploy the same definition to Kubernetes for
// managed future capacity -- compared against Docker-only and K8s-only.
#include <cstdio>
#include <optional>

#include "experiment_common.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

struct StrategyResult {
  double firstRequest = -1;
  double k8sManagedAt = -1;  // when a K8s replica became ready (-1: never)
};

StrategyResult runStrategy(ClusterMode mode, bool alsoDeployK8s) {
  TestbedOptions options;
  options.clusterMode = mode;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");

  StrategyResult result;
  bed.requestCatalog(0, "nginx", address, "first",
                     [&result](Result<HttpExchange> r) {
                       if (r.ok()) {
                         result.firstRequest =
                             r.value().timings.timeTotal().toSeconds();
                       }
                     });

  if (alsoDeployK8s) {
    // Fire the K8s deployment the moment the controller sees the request
    // (here: right away), like the combined strategy suggests.
    const ServiceModel* model = bed.controller().serviceAt(address);
    bed.controller().dispatcher().ensureReady(
        *model, *bed.k8sAdapter(), [&result, &bed](Result<Endpoint> r) {
          if (r.ok()) result.k8sManagedAt = bed.sim().now().toSeconds();
        });
  }
  bed.sim().runUntil(60_s);
  return result;
}

}  // namespace

int main() {
  std::printf("Combined Docker+Kubernetes strategy (§VII), nginx, cached\n\n");

  const auto dockerOnly = runStrategy(ClusterMode::kDockerOnly, false);
  const auto k8sOnly = runStrategy(ClusterMode::kK8sOnly, false);
  const auto combined = runStrategy(ClusterMode::kBoth, true);

  Table table({"Strategy", "first response [s]", "K8s-managed replica [s]"});
  table.addRow({"Docker only", strprintf("%.3f", dockerOnly.firstRequest),
                "never"});
  table.addRow({"Kubernetes only", strprintf("%.3f", k8sOnly.firstRequest),
                strprintf("%.3f", k8sOnly.firstRequest)});
  table.addRow({"combined (Docker first, K8s follows)",
                strprintf("%.3f", combined.firstRequest),
                combined.k8sManagedAt < 0
                    ? "never"
                    : strprintf("%.3f", combined.k8sManagedAt)});
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  std::printf("\nshape: the combined strategy answers the first request as "
              "fast as Docker-only while a Kubernetes-managed replica is "
              "ready a few seconds later -- both benefits at once.\n");

  metrics::BenchReport report("combined_strategy");
  report.addScalar("docker-only/first-response", dockerOnly.firstRequest);
  report.addScalar("k8s-only/first-response", k8sOnly.firstRequest);
  report.addScalar("combined/first-response", combined.firstRequest);
  if (combined.k8sManagedAt >= 0) {
    report.addScalar("combined/k8s-managed-at", combined.k8sManagedAt);
  }
  writeBenchReport(report);
  return 0;
}
