// Figure 15: median wait time until the services are ready after being
// CREATED + scaled up (included in fig. 12's totals).
#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

int main() {
  struct Row {
    double docker = 0;
    double k8s = 0;
  };
  std::map<std::string, Row> rows;

  struct Job {
    std::string key;
    ClusterMode mode;
  };
  std::vector<Job> jobs;
  for (const auto& key : tableOneKeys()) {
    jobs.push_back({key, ClusterMode::kDockerOnly});
    jobs.push_back({key, ClusterMode::kK8sOnly});
  }
  std::vector<DeploymentExperimentResult> results(jobs.size());
  ThreadPool::parallelFor(jobs.size(), 0, [&](std::size_t i) {
    DeploymentExperimentConfig config;
    config.catalogKey = jobs[i].key;
    config.mode = jobs[i].mode;
    config.preCreate = false;  // create + scale up
    results[i] = runDeploymentExperiment(config);
  });

  metrics::BenchReport report("fig15_wait_create_scaleup");
  report.setMeta("seed", "1");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double wait =
        results[i].waits.empty() ? 0.0 : results[i].waits.median();
    const bool docker = jobs[i].mode == ClusterMode::kDockerOnly;
    if (docker) {
      rows[jobs[i].key].docker = wait;
    } else {
      rows[jobs[i].key].k8s = wait;
    }
    addDeploymentSeries(
        report, jobs[i].key + "/" + (docker ? "docker-egs" : "k8s-egs"),
        results[i]);
  }

  std::printf("Figure 15: wait time (median) until ready after create + "
              "scale-up\n\n");
  Table table({"Service", "Docker wait [s]", "K8s wait [s]"});
  for (const auto& key : tableOneKeys()) {
    table.addRow({key, strprintf("%.3f", rows.at(key).docker),
                  strprintf("%.3f", rows.at(key).k8s)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
