// Mobility handover baseline: the transparent-handover cost in sim time.
//
// A commute wave moves 20 clients from the EGS cell to the far-edge cell
// while they hold memorized flows.  The attachment scan detects each move
// and the controller re-steers the flow: with the target pre-deployed the
// switchover is a warm re-steer, and the continuity gap (re-steer commit ->
// stats-confirmed settle) is exactly one OpenFlow rule-install round trip.
// Without pre-deployment the first handovers deploy at the target before
// committing, so the *latency* grows by the deployment while the gap stays
// bounded -- the old instance keeps serving until the switch is re-steered.
//
// Gated scalars (bench_diff, +-10%): warm/cold continuity-gap and latency
// medians, plus the gap:RTT ratio the acceptance criterion pins to <= 1.
#include <cstdio>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "mobility/attachment.hpp"
#include "mobility/handover.hpp"
#include "mobility/mobility_model.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/mobility_paths.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

namespace {

constexpr std::size_t kClients = 20;
const Endpoint kAddr{Ipv4(203, 0, 113, 10), 80};

struct WaveResult {
  Samples warmGaps;     // seconds, reason == "warm"
  Samples warmLatency;  // seconds
  Samples coldGaps;     // seconds, reason == "deployed"
  Samples coldLatency;  // seconds
  Samples postMove;     // client-observed request total after the move
  std::size_t completed = 0;
  std::size_t aborted = 0;
  double ruleInstallRtt = 0.0;
};

WaveResult runWave(bool predeployTarget) {
  TestbedOptions options;
  options.seed = 23;
  options.clientCount = kClients;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  // Clients hold their flow across the whole wave (the default 60 s idle
  // timeout would expire the earliest flows mid-commute).
  options.controller.memoryIdleTimeout = 180_s;
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ES_ASSERT(bed.registerCatalogService("nginx", kAddr).ok());

  WaveResult result;
  result.ruleInstallRtt = (bed.ovs().options().channelLatency +
                           bed.ovs().options().channelLatency)
                              .toSeconds();

  if (predeployTarget) {
    ES_ASSERT(bed.controller().predeploy(kAddr, "docker-far").ok());
    bed.sim().runUntil(30_s);
  }

  mobility::MobilityModel model({{"bs-egs", {0.0, 0.0}, "docker-egs"},
                                 {"bs-far", {1000.0, 0.0}, "docker-far"}});
  workload::CommuteWaveParams wave;
  wave.seed = 23;
  wave.clients = kClients;
  wave.origin = {0.0, 0.0};
  wave.destination = {1000.0, 0.0};
  wave.firstDeparture = 40_s;
  wave.departureWindow = 20_s;
  wave.travelTime = 10_s;
  const auto paths = workload::commuteWavePaths(wave);
  for (std::size_t i = 0; i < kClients; ++i) {
    model.setPath(Ipv4(10, 0, 2, static_cast<std::uint8_t>(i + 1)), paths[i]);
  }

  mobility::AttachmentManager attachments(bed.sim(), model,
                                          {.scanPeriod = 500_ms});
  mobility::HandoverManager handovers(bed.controller(), attachments);
  handovers.setResultListener([&result](Ipv4, const HandoverResult& r) {
    if (r.completed) {
      ++result.completed;
      const bool warm = std::string(r.reason) == "warm";
      (warm ? result.warmGaps : result.coldGaps)
          .add(r.continuityGap.toSeconds());
      (warm ? result.warmLatency : result.coldLatency)
          .add(r.latency.toSeconds());
    } else if (r.abortedToCloud) {
      ++result.aborted;
    }
  });
  handovers.start();

  // Establish one memorized flow per client before anyone moves.
  const SimTime base = bed.sim().now();
  for (std::size_t i = 0; i < kClients; ++i) {
    bed.sim().scheduleAt(base + SimTime::seconds(1.0 + 0.2 * double(i)),
                         [&bed, i] { bed.requestCatalog(i, "nginx", kAddr,
                                                        "pre-move"); });
  }
  // And one request per client right after its arrival: served warm from
  // the far edge through the unchanged service address.
  for (std::size_t i = 0; i < kClients; ++i) {
    const SimTime arrival = paths[i].waypoints.back().at + 2_s;
    bed.sim().scheduleAt(arrival, [&bed, i] {
      bed.requestCatalog(i, "nginx", kAddr, "post-move");
    });
  }
  bed.sim().runUntil(150_s);

  if (const auto* series = bed.recorder().series("post-move")) {
    for (double v : series->values()) result.postMove.add(v);
  }
  return result;
}

}  // namespace

int main() {
  const WaveResult warm = runWave(/*predeployTarget=*/true);
  const WaveResult cold = runWave(/*predeployTarget=*/false);

  std::printf("Mobility handover: %zu-client commute wave, EGS cell -> "
              "far-edge cell, flows re-steered in place\n\n",
              kClients);
  Table table({"scenario", "handovers", "gap median [us]", "gap p95 [us]",
               "latency median [ms]", "post-move req median [ms]"});
  const auto us = [](double s) { return strprintf("%.1f", s * 1e6); };
  const auto ms = [](double s) { return strprintf("%.3f", s * 1e3); };
  table.addRow({"pre-deployed (warm re-steer)",
                strprintf("%zu", warm.completed), us(warm.warmGaps.median()),
                us(warm.warmGaps.p95()), ms(warm.warmLatency.median()),
                ms(warm.postMove.median())});
  table.addRow({"on-demand (deploy at target)",
                strprintf("%zu", cold.completed), us(cold.coldGaps.median()),
                us(cold.coldGaps.p95()), ms(cold.coldLatency.median()),
                ms(cold.postMove.median())});
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());

  const double rtt = warm.ruleInstallRtt;
  const double gapRatio = warm.warmGaps.median() / rtt;
  std::printf("\nrule-install RTT: %.1f us; warm continuity gap = %.2f x RTT "
              "(acceptance: <= 1)\n",
              rtt * 1e6, gapRatio);
  ES_ASSERT(warm.warmGaps.median() <= rtt);
  ES_ASSERT(warm.completed == kClients);
  ES_ASSERT(warm.aborted == 0);

  metrics::BenchReport report("mobility_handover");
  report.setMeta("seed", "23");
  report.setMeta("clients", strprintf("%zu", kClients));
  report.addScalar("warm/handovers", double(warm.completed));
  report.addScalar("warm/gap-median-us", warm.warmGaps.median() * 1e6);
  report.addScalar("warm/gap-p95-us", warm.warmGaps.p95() * 1e6);
  report.addScalar("warm/gap-to-rtt-ratio", gapRatio);
  report.addScalar("warm/latency-median-ms", warm.warmLatency.median() * 1e3);
  report.addScalar("warm/post-move-median-ms", warm.postMove.median() * 1e3);
  report.addScalar("cold/handovers", double(cold.completed));
  report.addScalar("cold/gap-median-us", cold.coldGaps.median() * 1e6);
  report.addScalar("cold/latency-median-ms", cold.coldLatency.median() * 1e3);
  report.addScalar("cold/post-move-median-ms", cold.postMove.median() * 1e3);
  edgesim::bench::writeBenchReport(report);

  std::printf("\nshape: the warm continuity gap is one rule-install RTT -- "
              "the flow keeps flowing on the old instance until the switch "
              "confirms the re-steered rules; deploying on demand stretches "
              "the handover latency, not the gap.\n");
  return 0;
}
