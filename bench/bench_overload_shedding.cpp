// Overload governor under a 10x flash crowd: bounded tail latency via
// admission control.
//
// Three legs, all on the same warm-path topology (2 lane workers, flows
// pre-memorized, ~1ms of modeled downstream work per admitted request):
//
//   1x  governed    offered load at ~50% of warm-path capacity
//   10x governed    10x the offered rate; bounded lane queues shed the
//                   overflow with immediate degraded cloud redirects
//   10x ungoverned  the same flash crowd with unbounded queues -- the
//                   backlog grows without bound and so does the tail
//
// Latency is submit -> callback entry (queue + dispatch) over ALL answers,
// shed ones included: "time until the client holds a usable redirect" is
// exactly the quantity the governor claims to bound.  The binary enforces
// the ISSUE acceptance gates itself (nonzero shed at 10x, exact shed
// accounting, p99(10x governed) <= 2x p99(1x), ungoverned tail >= 2x
// worse); wall-clock noise on those is absorbed by generous margins.
//
// Output: BENCH_overload_shedding.json.  The committed baseline keeps only
// the run-to-run-stable lower-is-better scalars -- governed10x/shed_fraction
// (admitted throughput is pinned to worker capacity, so the shed share of a
// fixed offered load barely moves) and governed10x/sec_per_kreq_completed
// (inverse admitted throughput).  Raw p99s and the latency series ride
// along for humans but stay out of the baseline: they quantize to the
// modeled service time and jitter with host scheduling.
//
// The 10x governed leg also drops one telemetry snapshot (writeNow) into
// $EDGESIM_TELEMETRY_OUT so CI can lint it and render the shed/breaker
// tables with `telemetry_top --once`.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "util/stats.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::bench;
using namespace edgesim::timeliterals;

namespace {

constexpr int kDrivers = 8;
constexpr int kClientsPerDriver = 4;
constexpr auto kServiceTime = std::chrono::milliseconds(1);
// 1x: ~1500 req/s aggregate against a 2-worker / 1ms capacity of ~2000/s.
constexpr auto kBaseInterval = std::chrono::microseconds(5333);
constexpr std::size_t kWorkers = 2;
constexpr std::size_t kLaneQueueCapacity = 3;
const Endpoint kServiceAddr(Ipv4(203, 0, 113, 10), 80);

Ipv4 clientIp(int i) {
  return Ipv4(10, 0, static_cast<std::uint8_t>(2 + i / 200),
              static_cast<std::uint8_t>(1 + i % 200));
}

struct LoadResult {
  Samples latency;  // submit -> callback entry, ALL answers (shed included)
  std::uint64_t submitted = 0;
  std::uint64_t resolved = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  double wallSeconds = 0.0;  // first submit -> pool drained
};

LoadResult runLoad(int multiplier, bool governed, int requestsPerDriver,
                   bool writeSnapshot) {
  TestbedOptions options;
  options.seed = 1;
  options.clientCount = 4;  // testbed hosts are not used by submitRequest
  options.clusterMode = ClusterMode::kDockerOnly;
  options.tracing = false;  // measure the hot path, not the tracer
  options.controller.flowShards = 16;
  options.controller.workers = kWorkers;
  options.controller.memoryIdleTimeout = SimTime::seconds(600.0);
  if (governed) {
    options.controller.overload.enabled = true;
    options.controller.overload.laneQueueCapacity = kLaneQueueCapacity;
    options.controller.overload.shedPolicy = "reject-newest";
    // Admission control only: budgets need a moving sim clock and brownout
    // would just convert sheds into a different flavour of cloud redirect.
    options.controller.overload.requestBudget = SimTime::zero();
    options.controller.overload.brownoutShedThreshold = 0;
  }
  if (writeSnapshot) {
    const char* envDir = std::getenv("EDGESIM_TELEMETRY_OUT");
    options.snapshotDir = envDir != nullptr ? envDir : "overload-telemetry-out";
    options.snapshotPeriod = SimTime::seconds(3600.0);  // writeNow() only
  }
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ES_ASSERT(bed.registerCatalogService("nginx", kServiceAddr).ok());
  EdgeController& controller = bed.controller();
  Simulation& sim = bed.sim();

  // Prime one client at a time so bounded lanes can never shed a cold
  // request; after this every measured request is a warm FlowMemory hit.
  constexpr int kClients = kDrivers * kClientsPerDriver;
  for (int c = 0; c < kClients; ++c) {
    std::atomic<bool> done{false};
    controller.submitRequest(clientIp(c), kServiceAddr,
                             [&done](Result<Redirect> result) {
                               ES_ASSERT(result.ok());
                               done.store(true, std::memory_order_release);
                             });
    int guard = 0;
    while (!done.load(std::memory_order_acquire)) {
      sim.waitForExternal(std::chrono::microseconds(200));
      sim.pump(10_ms);
      ES_ASSERT(++guard < 100000);
    }
  }
  controller.workerPool()->drain();
  const std::uint64_t primedSubmitted = controller.requestsSubmitted();
  ES_ASSERT(primedSubmitted == static_cast<std::uint64_t>(kClients));
  ES_ASSERT(controller.requestsShed() == 0);

  // Open-loop drivers paced by absolute deadlines: the offered rate stays
  // 10x capacity even while answers stall, which is the whole point of a
  // flash crowd.  Each request owns one slot, so callbacks (shed ones run
  // on the driver thread, admitted ones on a lane worker) never race.
  const int total = kDrivers * requestsPerDriver;
  std::vector<double> latency(static_cast<std::size_t>(total), 0.0);
  std::vector<std::uint8_t> wasShed(static_cast<std::size_t>(total), 0);
  const auto interval = kBaseInterval / multiplier;
  std::vector<std::thread> drivers;
  const auto wallStart = std::chrono::steady_clock::now();
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&controller, &latency, &wasShed, interval,
                          requestsPerDriver, d] {
      // Phase-stagger the drivers: without this every driver fires on the
      // same tick and the "1x" leg is really a periodic 8-burst that
      // overflows the bounded queues despite the sub-capacity mean rate.
      auto next = std::chrono::steady_clock::now() + (interval * d) / kDrivers;
      for (int i = 0; i < requestsPerDriver; ++i) {
        std::this_thread::sleep_until(next);
        next += interval;
        const int slot = d * requestsPerDriver + i;
        const Ipv4 client =
            clientIp(d * kClientsPerDriver + i % kClientsPerDriver);
        const auto start = std::chrono::steady_clock::now();
        controller.submitRequest(
            client, kServiceAddr,
            [&latency, &wasShed, slot, start](Result<Redirect> result) {
              ES_ASSERT(result.ok());
              latency[static_cast<std::size_t>(slot)] =
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
              if (result.value().shed) {
                wasShed[static_cast<std::size_t>(slot)] = 1;
                return;  // shed answers must not occupy anything
              }
              // Modeled downstream work (proxying the response) occupies
              // the LANE WORKER; admitted throughput == worker capacity.
              std::this_thread::sleep_for(kServiceTime);
            });
      }
    });
  }
  for (auto& thread : drivers) thread.join();
  controller.workerPool()->drain();
  const double wallSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - wallStart)
                                 .count();

  if (writeSnapshot) {
    ES_ASSERT(bed.snapshotWriter() != nullptr);
    ES_ASSERT(bed.snapshotWriter()->writeNow().ok());
  }

  LoadResult result;
  for (const double v : latency) result.latency.add(v);
  result.submitted = controller.requestsSubmitted() - primedSubmitted;
  result.resolved = controller.requestsResolved() - primedSubmitted;
  result.shed = controller.requestsShed();
  result.failed = controller.requestsFailed();
  result.wallSeconds = wallSeconds;

  // Exact shed accounting, every leg: nothing lost, nothing double-counted.
  ES_ASSERT(result.submitted == static_cast<std::uint64_t>(total));
  ES_ASSERT(result.failed == 0);
  ES_ASSERT(result.submitted == result.resolved + result.shed);
  ES_ASSERT(controller.workerPool()->tasksExecuted() +
                controller.workerPool()->tasksShed() ==
            primedSubmitted + static_cast<std::uint64_t>(total));
  std::uint64_t shedSlots = 0;
  for (const std::uint8_t s : wasShed) shedSlots += s;
  ES_ASSERT(shedSlots == result.shed);
  if (overload::OverloadGovernor* gov = bed.governor(); gov != nullptr) {
    ES_ASSERT(gov->shedCount() == result.shed);
  } else {
    ES_ASSERT(result.shed == 0);
  }
  return result;
}

void printLeg(const char* name, const LoadResult& run) {
  std::printf("%-14s | %6llu | %6llu | %5.1f%% | %9.2f ms | %9.2f ms\n", name,
              static_cast<unsigned long long>(run.submitted),
              static_cast<unsigned long long>(run.shed),
              100.0 * static_cast<double>(run.shed) /
                  static_cast<double>(run.submitted),
              run.latency.median() * 1e3, run.latency.p99() * 1e3);
}

}  // namespace

int main() {
  metrics::BenchReport report("overload_shedding");
  report.setMeta("drivers", std::to_string(kDrivers));
  report.setMeta("workers", std::to_string(kWorkers));
  report.setMeta("lane_queue_capacity", std::to_string(kLaneQueueCapacity));
  report.setMeta("service_time_ms", "1");
  report.setMeta("base_interval_us", "5333");

  std::printf("leg            | submit |   shed |  shed%% |   p50       |   p99\n");
  std::printf("---------------+--------+--------+--------+-------------+-----------\n");
  const LoadResult g1 = runLoad(1, /*governed=*/true, /*requestsPerDriver=*/300,
                                /*writeSnapshot=*/false);
  printLeg("1x governed", g1);
  const LoadResult g10 = runLoad(10, /*governed=*/true,
                                 /*requestsPerDriver=*/3000,
                                 /*writeSnapshot=*/true);
  printLeg("10x governed", g10);
  const LoadResult u10 = runLoad(10, /*governed=*/false,
                                 /*requestsPerDriver=*/600,
                                 /*writeSnapshot=*/false);
  printLeg("10x ungoverned", u10);

  const double shedFraction = static_cast<double>(g10.shed) /
                              static_cast<double>(g10.submitted);
  const double completed = static_cast<double>(g10.submitted - g10.shed);
  const double secPerKreqCompleted = g10.wallSeconds / (completed / 1000.0);
  const double p99Ratio = g10.latency.p99() / g1.latency.p99();

  // Stable, lower-is-better: what the committed baseline gates in CI.
  report.addScalar("governed10x/shed_fraction", shedFraction);
  report.addScalar("governed10x/sec_per_kreq_completed", secPerKreqCompleted);
  // Context for humans (noisy; kept out of the baseline).
  report.addScalar("load1x/p99_seconds", g1.latency.p99());
  report.addScalar("governed10x/p99_seconds", g10.latency.p99());
  report.addScalar("governed10x/p99_ratio_vs_1x", p99Ratio);
  report.addScalar("governed10x/shed", static_cast<double>(g10.shed));
  report.addScalar("ungoverned10x/p99_seconds", u10.latency.p99());
  report.addSeries("load1x/latency", g1.latency, /*includeSamples=*/false);
  report.addSeries("governed10x/latency", g10.latency,
                   /*includeSamples=*/false);
  report.addSeries("ungoverned10x/latency", u10.latency,
                   /*includeSamples=*/false);
  writeBenchReport(report);

  // The ISSUE acceptance gates, enforced by the binary itself.
  int failures = 0;
  if (g10.shed == 0) {
    std::fprintf(stderr, "FAIL: 10x governed leg shed nothing\n");
    ++failures;
  }
  if (p99Ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: governed p99 at 10x is %.2fx the 1x p99 "
                 "(%.2f ms vs %.2f ms; bound 2.0x)\n",
                 p99Ratio, g10.latency.p99() * 1e3, g1.latency.p99() * 1e3);
    ++failures;
  }
  if (u10.latency.p99() < 2.0 * g10.latency.p99()) {
    std::fprintf(stderr,
                 "FAIL: ungoverned p99 %.2f ms is not >= 2x governed "
                 "%.2f ms at 10x load\n",
                 u10.latency.p99() * 1e3, g10.latency.p99() * 1e3);
    ++failures;
  }
  if (failures == 0) {
    std::printf(
        "overload check: shed %.1f%% at 10x, governed p99 %.2f ms "
        "(%.2fx of 1x, bound 2x), ungoverned p99 %.0f ms\n",
        100.0 * shedFraction, g10.latency.p99() * 1e3, p99Ratio,
        u10.latency.p99() * 1e3);
  }
  return failures == 0 ? 0 : 1;
}
