// §IV-A: on-demand deployment WITH waiting vs WITHOUT waiting (fig. 3) vs
// plain cloud forwarding -- first-request latency and where later requests
// land, on a two-tier edge (near EGS + farther edge cluster).
#include <cstdio>
#include <optional>

#include "experiment_common.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

struct ModeResult {
  double firstRequest = -1;
  double steadyState = -1;
  std::uint64_t backgroundDeployments = 0;
};

ModeResult runMode(const std::string& scheduler, bool farInstanceRunning) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;
  options.controller.scheduler = scheduler;
  options.controller.memoryIdleTimeout = 2_s;
  options.controller.switchIdleTimeout = 1_s;
  // This experiment compares first-request handling; keep instances up so
  // the steady-state row reflects warm-path latency, not scale-down churn
  // (the FlowMemory ablation bench covers that dimension).
  options.controller.scaleDownIdleServices = false;
  Testbed bed(options);

  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");

  const ServiceModel* model = bed.controller().serviceAt(address);
  if (farInstanceRunning) {
    bool ready = false;
    bed.controller().dispatcher().ensureReady(
        *model, *bed.farEdgeAdapter(),
        [&ready](Result<Endpoint> r) { ready = r.ok(); });
    bed.sim().runUntil(5_s);
    ES_ASSERT(ready);
  } else {
    bed.sim().runUntil(5_s);
  }

  ModeResult result;
  bed.requestCatalog(0, "nginx", address, "first",
                     [&result](Result<HttpExchange> r) {
                       if (r.ok()) {
                         result.firstRequest =
                             r.value().timings.timeTotal().toSeconds();
                       }
                     });
  bed.sim().runUntil(30_s);

  // Steady state: after flows/memory expired and any background deployment
  // finished, the same client asks again.
  bed.requestCatalog(0, "nginx", address, "steady",
                     [&result](Result<HttpExchange> r) {
                       if (r.ok()) {
                         result.steadyState =
                             r.value().timings.timeTotal().toSeconds();
                       }
                     });
  bed.sim().runUntil(60_s);
  result.backgroundDeployments =
      bed.controller().dispatcher().backgroundDeployments();
  return result;
}

}  // namespace

int main() {
  std::printf("On-demand deployment modes (nginx, image cached, two-tier "
              "edge: near EGS ~1 ms RTT, far edge ~10 ms RTT)\n\n");

  Table table({"Mode", "first request [s]", "steady state [s]",
               "background deployments"});
  metrics::BenchReport report("ondemand_modes");
  const auto addMode = [&report](const std::string& prefix,
                                 const ModeResult& r) {
    report.addScalar(prefix + "/first-request", r.firstRequest);
    report.addScalar(prefix + "/steady-state", r.steadyState);
    report.addScalar(prefix + "/background-deployments",
                     static_cast<double>(r.backgroundDeployments));
  };

  // WITH waiting: proximity scheduler, nothing running anywhere.
  const auto waiting = runMode("proximity", /*farInstanceRunning=*/false);
  addMode("with-waiting", waiting);
  table.addRow({"with waiting (cold everywhere)",
                strprintf("%.3f", waiting.firstRequest),
                strprintf("%.4f", waiting.steadyState),
                strprintf("%llu", (unsigned long long)waiting.backgroundDeployments)});

  // WITHOUT waiting (fig. 3): latency-first, far instance already runs.
  const auto without = runMode("latency-first", /*farInstanceRunning=*/true);
  addMode("without-waiting", without);
  table.addRow({"without waiting (far instance running)",
                strprintf("%.3f", without.firstRequest),
                strprintf("%.4f", without.steadyState),
                strprintf("%llu", (unsigned long long)without.backgroundDeployments)});

  // Cloud fallback: never waits; first request crosses the WAN.
  const auto cloud = runMode("cloud-fallback", /*farInstanceRunning=*/false);
  addMode("cloud-fallback", cloud);
  table.addRow({"cloud fallback (forward to cloud)",
                strprintf("%.3f", cloud.firstRequest),
                strprintf("%.4f", cloud.steadyState),
                strprintf("%llu", (unsigned long long)cloud.backgroundDeployments)});

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  std::printf(
      "\nshape: waiting pays the deployment once (~0.5 s); without-waiting "
      "answers in ~10 ms via the far edge while the near edge deploys in "
      "the background; cloud fallback answers in ~0.1 s over the WAN; all "
      "modes converge to ~ms steady state on the near edge.\n");
  writeBenchReport(report);
  return 0;
}
