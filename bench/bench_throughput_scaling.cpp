// Warm-path throughput scaling of the concurrent controller front-end.
//
// 16 closed-loop driver threads hammer EdgeController::submitRequest with
// requests whose flows are already memorized, while the resolve callback
// models ~250us of downstream per-request work (the proxied exchange with
// the instance) ON the lane worker.  Because that work is a wait, not CPU,
// requests on different lanes overlap: aggregate requests/sec scales with
// the worker-pool size even on a single-core host, which is exactly the
// property the sharded FlowMemory + LaneExecutor design buys.
//
// Output: BENCH_throughput_scaling.json.  The committed baseline keeps
// only the warm/sec_per_kreq/* series (wall seconds per 1000 requests --
// inverse throughput, lower-is-better, run-to-run stable within a few
// percent), which is what tools/bench_diff gates in CI.  Queue-latency
// distributions and rps / speedup scalars ride along for humans but stay
// out of the baseline: the latency medians quantize to multiples of the
// service time (noisy across runs), and higher-is-better metrics must not
// pass through a lower-is-better gate.
// The binary itself enforces the scaling floor: >= 2x rps at 4 workers
// vs 1 (the design target is >= 2.5x; the extra slack absorbs CI-host
// scheduling noise on the wall-clock measurement).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::bench;
using namespace edgesim::timeliterals;

namespace {

constexpr int kDrivers = 16;
constexpr int kClientsPerDriver = 4;
constexpr int kWarmupPerDriver = 25;   // unrecorded scheduler settling
constexpr int kRequestsPerDriver = 300;
constexpr auto kServiceTime = std::chrono::microseconds(250);
const Endpoint kServiceAddr(Ipv4(203, 0, 113, 10), 80);

Ipv4 clientIp(int i) {
  return Ipv4(10, 0, static_cast<std::uint8_t>(2 + i / 200),
              static_cast<std::uint8_t>(1 + i % 200));
}

struct RunResult {
  Samples latency;  // submit -> callback entry (queue + dispatch), seconds
  double rps = 0.0;
  std::uint64_t warmHits = 0;
};

RunResult runConfig(std::size_t workers) {
  TestbedOptions options;
  options.seed = 1;
  options.clientCount = 4;  // testbed hosts are not used by submitRequest
  options.clusterMode = ClusterMode::kDockerOnly;
  options.tracing = false;  // measure the hot path, not the tracer
  options.controller.flowShards = 16;
  options.controller.workers = workers;
  options.controller.memoryIdleTimeout = SimTime::seconds(600.0);
  Testbed bed(options);
  bed.warmImageCache("nginx");
  ES_ASSERT(bed.registerCatalogService("nginx", kServiceAddr).ok());
  EdgeController& controller = bed.controller();
  Simulation& sim = bed.sim();

  // Prime: one cold request per client; the dispatcher coalesces them all
  // onto a single deployment while the main thread pumps the sim clock.
  constexpr int kClients = kDrivers * kClientsPerDriver;
  std::atomic<int> primed{0};
  for (int c = 0; c < kClients; ++c) {
    controller.submitRequest(clientIp(c), kServiceAddr,
                             [&primed](Result<Redirect> result) {
                               ES_ASSERT(result.ok());
                               primed.fetch_add(1, std::memory_order_release);
                             });
  }
  int guard = 0;
  while (primed.load(std::memory_order_acquire) < kClients) {
    sim.waitForExternal(std::chrono::microseconds(200));
    sim.pump(10_ms);
    ES_ASSERT(++guard < 100000);
  }
  controller.workerPool()->drain();

  // Measure: every request is a warm hit served end-to-end on a worker.
  std::vector<std::vector<double>> perDriver(kDrivers);
  std::vector<std::thread> drivers;
  const auto wallStart = std::chrono::steady_clock::now();
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&controller, &perDriver, d] {
      auto& latencies = perDriver[d];
      latencies.reserve(kRequestsPerDriver);
      std::atomic<bool> done{false};
      for (int i = 0; i < kWarmupPerDriver + kRequestsPerDriver; ++i) {
        const bool record = i >= kWarmupPerDriver;
        const Ipv4 client = clientIp(d * kClientsPerDriver + i % kClientsPerDriver);
        done.store(false, std::memory_order_relaxed);
        const auto start = std::chrono::steady_clock::now();
        controller.submitRequest(
            client, kServiceAddr,
            [&latencies, &done, start, record](Result<Redirect> result) {
              ES_ASSERT(result.ok());
              if (record) {
                latencies.push_back(
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count());
              }
              // Modeled downstream work (proxying the response): occupies
              // the LANE WORKER, not the CPU -- this is what headroom the
              // pool turns into throughput.
              std::this_thread::sleep_for(kServiceTime);
              done.store(true, std::memory_order_release);
            });
        // Closed loop: next request only after this one fully completes.
        while (!done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : drivers) thread.join();
  const double wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();
  controller.workerPool()->drain();

  RunResult result;
  for (const auto& latencies : perDriver) {
    for (const double v : latencies) result.latency.add(v);
  }
  result.rps = static_cast<double>(kDrivers *
                                   (kWarmupPerDriver + kRequestsPerDriver)) /
               wallSeconds;
  result.warmHits = controller.warmHits();
  return result;
}

}  // namespace

int main() {
  metrics::BenchReport report("throughput_scaling");
  report.setMeta("drivers", std::to_string(kDrivers));
  report.setMeta("requests_per_driver", std::to_string(kRequestsPerDriver));
  report.setMeta("service_time_us", "250");

  const std::size_t workerCounts[] = {1, 2, 4, 8};
  double rpsByWorkers[9] = {};
  std::printf("workers |       rps | speedup | p50 latency | p95 latency\n");
  std::printf("--------+-----------+---------+-------------+------------\n");
  for (const std::size_t workers : workerCounts) {
    const RunResult run = runConfig(workers);
    ES_ASSERT(run.latency.count() ==
              static_cast<std::size_t>(kDrivers * kRequestsPerDriver));
    ES_ASSERT(run.warmHits >=
              static_cast<std::uint64_t>(kDrivers * kRequestsPerDriver));
    rpsByWorkers[workers] = run.rps;
    const double speedup = run.rps / rpsByWorkers[1];
    std::printf("%7zu | %9.0f | %6.2fx | %8.1f us | %7.1f us\n", workers,
                run.rps, speedup, run.latency.median() * 1e6,
                run.latency.p95() * 1e6);
    const std::string tag = strprintf("w%zu", workers);
    report.addScalar("warm/sec_per_kreq/" + tag, 1000.0 / run.rps);
    report.addSeries("warm/latency/" + tag, run.latency,
                     /*includeSamples=*/false);
    report.addScalar("warm/rps/" + tag, run.rps);
    report.addScalar("warm/speedup/" + tag, speedup);
  }

  const double speedup4 = rpsByWorkers[4] / rpsByWorkers[1];
  writeBenchReport(report);
  if (speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm-path rps speedup at 4 workers is %.2fx "
                 "(floor 2.0x, design target 2.5x)\n",
                 speedup4);
    return 1;
  }
  std::printf("scaling check: %.2fx rps at 4 workers vs 1 (>= 2.5x target)\n",
              speedup4);
  return 0;
}
