// Shared harness for the paper's deployment-time experiments.
//
// Figures 11/12/14/15 all follow the same protocol: 42 edge services of one
// Table I type are deployed on demand on one cluster type, driven by the
// first requests of the bigFlows-derived trace; the figures report the
// median total client time (figs. 11/12) and the controller's wait-until-
// ready time (figs. 14/15), with the Create phase included or not.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/bigflows.hpp"

namespace edgesim::bench {

using namespace edgesim::core;
using namespace edgesim::timeliterals;

struct DeploymentExperimentResult {
  Samples totals;   // per-service first-request total (timecurl time_total)
  Samples waits;    // controller port-poll wait after scale-up
  Samples creates;  // create-phase durations (when the phase ran)
  Samples pulls;    // pull-phase durations (when the phase ran)
  std::size_t failures = 0;
  /// Trace-derived per-request splits ("trace/uplink", "trace/resolve",
  /// "trace/pull", ... -- see trace::TraceRecorder::phaseSamples).
  std::map<std::string, Samples> traceSplits;
};

struct DeploymentExperimentConfig {
  std::string catalogKey = "nginx";
  ClusterMode mode = ClusterMode::kDockerOnly;
  /// Pre-create the service (containers / Deployment+Service objects) so
  /// only the Scale-Up phase runs (fig. 11); false => Create + Scale-Up
  /// (fig. 12).
  bool preCreate = true;
  /// Seed the edge image cache (both figures assume cached images).
  bool warmCache = true;
  std::uint64_t seed = 1;
  std::size_t services = 42;  // fig. 10: 42 deployments
};

inline DeploymentExperimentResult runDeploymentExperiment(
    const DeploymentExperimentConfig& config) {
  DeploymentExperimentResult result;

  TestbedOptions options;
  options.seed = config.seed;
  options.clusterMode = config.mode;
  Testbed bed(options);

  if (config.warmCache) bed.warmImageCache(config.catalogKey);

  // Service first-request times from the bigFlows-like trace (fig. 10).
  workload::BigFlowsParams traceParams;
  traceParams.seed = config.seed;
  traceParams.targetServices = config.services;
  traceParams.targetRequests =
      std::max<std::size_t>(config.services * 20, 1708);
  const auto loads = workload::generateFilteredServices(traceParams);

  std::vector<const ServiceModel*> models;
  for (std::size_t i = 0; i < config.services; ++i) {
    const Endpoint address(
        Ipv4(203, 0, 113, static_cast<std::uint8_t>(i + 1)), 80);
    const auto registered =
        bed.registerCatalogService(config.catalogKey, address);
    ES_ASSERT(registered.ok());
    models.push_back(registered.value());
  }

  ClusterAdapter* adapter = config.mode == ClusterMode::kDockerOnly
                                ? static_cast<ClusterAdapter*>(bed.dockerAdapter())
                                : static_cast<ClusterAdapter*>(bed.k8sAdapter());
  ES_ASSERT(adapter != nullptr);

  if (config.preCreate) {
    // Create phase executed ahead of time: the measured requests only pay
    // Scale-Up (fig. 11's protocol).
    std::size_t created = 0;
    for (const auto* model : models) {
      adapter->createService(*model, [&created](Status status) {
        ES_ASSERT(status.ok());
        ++created;
      });
    }
    while (created < models.size() && bed.sim().pendingEvents() > 0) {
      bed.sim().step();
    }
    ES_ASSERT(created == models.size());
  }

  // First request per service at its trace time.
  for (std::size_t i = 0; i < config.services; ++i) {
    const auto& load = loads[i % loads.size()];
    const std::size_t clientIndex =
        (load.requests.front().second.value & 0xff) % bed.clientCount();
    // The pre-create step advanced the clock; don't schedule into the past.
    const SimTime at = std::max(load.firstRequestAt(), bed.sim().now());
    bed.sim().scheduleAt(at, [&bed, &config, i, clientIndex,
                              address = models[i]->address] {
      bed.requestCatalog(clientIndex, config.catalogKey, address, "total");
    });
  }

  bed.sim().runUntil(traceParams.duration + 120_s);

  if (const auto* totals = bed.recorder().series("total")) {
    for (const double v : totals->values()) result.totals.add(v);
  }
  result.failures = bed.recorder().failureCount();

  const std::string clusterName =
      config.mode == ClusterMode::kDockerOnly ? "docker-egs" : "k8s-egs";
  if (const auto* waits =
          bed.recorder().series(config.catalogKey + "/" + clusterName + "/wait")) {
    for (const double v : waits->values()) result.waits.add(v);
  }
  if (const auto* creates = bed.recorder().series(config.catalogKey + "/" +
                                                  clusterName + "/create")) {
    for (const double v : creates->values()) result.creates.add(v);
  }
  if (const auto* pulls = bed.recorder().series(config.catalogKey + "/" +
                                                clusterName + "/pull")) {
    for (const double v : pulls->values()) result.pulls.add(v);
  }
  return result;
}

inline const char* clusterLabel(ClusterMode mode) {
  return mode == ClusterMode::kDockerOnly ? "Docker" : "K8s";
}

/// The four Table I services in paper order.
inline const std::vector<std::string>& tableOneKeys() {
  static const std::vector<std::string> keys{"asm", "nginx", "resnet",
                                             "nginx-py"};
  return keys;
}

// ---- machine-readable bench output (BENCH_<name>.json) ---------------------

/// All the measured series of one deployment experiment under `prefix`
/// (totals, phase samples from the Recorder, trace-derived splits and the
/// failure count).
inline void addDeploymentSeries(metrics::BenchReport& report,
                                const std::string& prefix,
                                const DeploymentExperimentResult& result) {
  report.addSeries(prefix + "/total", result.totals);
  if (!result.waits.empty()) report.addSeries(prefix + "/wait", result.waits);
  if (!result.creates.empty()) {
    report.addSeries(prefix + "/create", result.creates);
  }
  if (!result.pulls.empty()) report.addSeries(prefix + "/pull", result.pulls);
  report.addSeriesMap(result.traceSplits, prefix);
  report.addScalar(prefix + "/failures",
                   static_cast<double>(result.failures));
}

}  // namespace edgesim::bench
