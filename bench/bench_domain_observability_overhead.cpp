// Cost of observing the parallel core: the acceptance gate for the
// DomainProbe design is < 3% wall-clock overhead on a parallel run.
//
// Protocol: the same 16-cluster trace runs at 8 domains twice per rep --
// once bare (null DomainObserver: the zero-instrumentation fast path) and
// once with a full telemetry::DomainProbe attached (MetricsRegistry AND
// TraceRecorder, i.e. counters + histograms + gaugeFns + track spans +
// flow stamps -- the most expensive configuration).  Arms interleave
// within a rep so frequency drift hits both equally; the best (min) rep
// per arm cancels scheduler noise, and the whole measurement retries a
// few times before declaring failure, because a 3% gate on wall time is
// inherently jitter-prone on shared CI hosts.
//
// Output: BENCH_domain_observability_overhead.json -- the committed
// baseline keeps run/sec_per_kevent/{observed,bare} (lower-is-better;
// gated loosely, the binary itself enforces the ratio).
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "bench_output.hpp"
#include "sim/domain_scheduler.hpp"
#include "telemetry/domain_probe.hpp"
#include "trace/trace_recorder.hpp"
#include "util/lane_executor.hpp"
#include "workload/cluster_trace.hpp"

using namespace edgesim;
using namespace edgesim::bench;
using namespace edgesim::workload;

namespace {

constexpr std::uint32_t kClusters = 16;
constexpr std::uint32_t kRequestsPerCluster = 200;
constexpr std::uint32_t kDomains = 8;
constexpr std::size_t kWorkers = 8;
constexpr auto kEventWork = std::chrono::microseconds(20);
constexpr int kReps = 3;
constexpr int kAttempts = 5;
constexpr double kMaxOverhead = 1.03;

struct RunStats {
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
};

RunStats runOnce(bool observed) {
  Simulation sim(/*seed=*/1);
  ClusterTraceParams params;
  params.clusters = kClusters;
  params.requestsPerCluster = kRequestsPerCluster;
  ClusterTraceRunner trace(sim, params, kDomains,
                           [] { std::this_thread::sleep_for(kEventWork); });
  // The probe lives outside the timed region; only the per-event observer
  // callbacks land inside it.
  telemetry::MetricsRegistry registry;
  trace::TraceRecorder recorder;
  std::optional<telemetry::DomainProbe> probe;
  if (observed) probe.emplace(sim, &registry, &recorder);
  trace.arm();

  LaneExecutor pool(kWorkers);
  DomainScheduler scheduler(sim);
  const auto wallStart = std::chrono::steady_clock::now();
  scheduler.runParallel(pool, trace.horizon());
  RunStats stats;
  stats.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
  stats.events = sim.processedEvents();
  ES_ASSERT(trace.outcomes().size() ==
            static_cast<std::size_t>(kClusters) * kRequestsPerCluster);
  return stats;
}

struct Measurement {
  double observedSeconds = 0.0;  // best rep, probe attached
  double bareSeconds = 0.0;      // best rep, no observer
  std::uint64_t events = 0;
  double ratio() const { return observedSeconds / bareSeconds; }
};

Measurement measure() {
  // One warmup pair primes the thread pool and the page cache.
  runOnce(false);
  runOnce(true);
  Measurement m;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunStats bare = runOnce(false);
    const RunStats observed = runOnce(true);
    m.events = bare.events;
    if (rep == 0 || bare.wallSeconds < m.bareSeconds) {
      m.bareSeconds = bare.wallSeconds;
    }
    if (rep == 0 || observed.wallSeconds < m.observedSeconds) {
      m.observedSeconds = observed.wallSeconds;
    }
  }
  return m;
}

}  // namespace

int main() {
  Measurement best;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const Measurement m = measure();
    std::printf("attempt %d: %u-domain run %.3f s observed, %.3f s bare "
                "(ratio %.4f)\n",
                attempt, kDomains, m.observedSeconds, m.bareSeconds,
                m.ratio());
    if (attempt == 1 || m.ratio() < best.ratio()) best = m;
    if (best.ratio() <= kMaxOverhead) break;
  }

  metrics::BenchReport report("domain_observability_overhead");
  report.setMeta("clusters", std::to_string(kClusters));
  report.setMeta("requests_per_cluster", std::to_string(kRequestsPerCluster));
  report.setMeta("domains", std::to_string(kDomains));
  report.setMeta("event_work_us", "20");
  report.setMeta("reps", std::to_string(kReps));
  const double kEvents = static_cast<double>(best.events) / 1000.0;
  report.addScalar("run/sec_per_kevent/observed",
                   best.observedSeconds / kEvents);
  report.addScalar("run/sec_per_kevent/bare", best.bareSeconds / kEvents);
  report.addScalar("run/overhead_ratio", best.ratio());
  writeBenchReport(report);

  if (best.ratio() > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: domain observability overhead is %.2f%% "
                 "(gate: %.0f%%)\n",
                 (best.ratio() - 1.0) * 100.0, (kMaxOverhead - 1.0) * 100.0);
    return 1;
  }
  std::printf("overhead check: %.2f%% <= %.0f%% gate\n",
              (best.ratio() - 1.0) * 100.0, (kMaxOverhead - 1.0) * 100.0);
  return 0;
}
