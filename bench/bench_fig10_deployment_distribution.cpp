// Figure 10: distribution of the 42 on-demand deployments over the five
// minutes of the trace -- each service is deployed at its first request,
// "with up to eight deployments per second in the beginning".
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_output.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "workload/bigflows.hpp"

using namespace edgesim;
using namespace edgesim::workload;

int main() {
  const BigFlowsParams params;
  const auto services = generateFilteredServices(params);

  Histogram deployments(0.0, params.duration.toSeconds(), 60);  // 5 s bins
  std::map<long, int> perSecond;
  Samples deployTimes;
  for (const auto& service : services) {
    const double t = service.firstRequestAt().toSeconds();
    deployments.add(t);
    deployTimes.add(t);
    ++perSecond[static_cast<long>(t)];
  }
  int peakPerSecond = 0;
  for (const auto& [second, count] : perSecond) {
    peakPerSecond = std::max(peakPerSecond, count);
  }

  std::printf("Figure 10: %zu on-demand deployments over %.0f s\n\n",
              services.size(), params.duration.toSeconds());
  std::printf("Deployments over time (5 s bins):\n%s\n",
              deployments.render(60).c_str());
  std::printf("peak deployments in one second: %d (paper: up to 8/s early)\n",
              peakPerSecond);

  int firstMinute = 0;
  for (const auto& service : services) {
    if (service.firstRequestAt().toSeconds() < 60.0) ++firstMinute;
  }
  std::printf("deployments in the first minute: %d of %zu\n", firstMinute,
              services.size());

  metrics::BenchReport report("fig10_deployment_distribution");
  report.setMeta("seed", strprintf("%llu", (unsigned long long)params.seed));
  report.addSeries("deployment-times", deployTimes);
  report.addScalar("peak-per-second", peakPerSecond);
  report.addScalar("first-minute-deployments", firstMinute);
  edgesim::bench::writeBenchReport(report);
  return 0;
}
