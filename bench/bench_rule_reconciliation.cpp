// Rule-reconciliation recovery bench: how fast the anti-entropy sweeper
// restores warm-path steering after a mid-run switch restart.
//
// Protocol: fig. 16's warm workload (nginx, cached image, instance already
// running) at a steady 20 req/s from rotating clients, with the reconciler
// sweeping every second.  At t=15.05s the switch restarts, silently wiping
// every flow entry.  Each request window measures the warm-hit rate -- the
// fraction of requests forwarded by an installed flow entry rather than
// punted to the controller (1 - packet-ins / requests).
//
// Gates (the binary exits nonzero if violated):
//   * the warm-hit rate two reconcile periods after the restart has
//     recovered to >= 95% of the pre-fault rate;
//   * zero permanently blackholed requests: every issued request is
//     answered ok, and the install books balance exactly
//     (sent == acked + timed_out, nothing pending).
#include <cstdio>
#include <vector>

#include "bench_output.hpp"
#include "core/rule_reconciler.hpp"
#include "core/testbed.hpp"
#include "fault/fault_plan.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace edgesim;
using namespace edgesim::bench;
using namespace edgesim::core;
using namespace edgesim::timeliterals;

int main() {
  constexpr double kPeriodSeconds = 1.0;   // reconcile sweep period
  constexpr double kRestartAt = 15.05;     // mid-window, off sweep ticks
  constexpr double kLoadStart = 1.0;
  constexpr double kLoadEnd = 26.0;
  constexpr std::int64_t kSpacingMs = 50;  // 20 req/s

  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.reconcilePeriod = SimTime::seconds(kPeriodSeconds);
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");

  fault::FaultPlan plan(1);
  fault::FaultSpec restart;
  restart.site = fault::FaultSite::kSwitchRestart;
  restart.target = "ovs";
  restart.at = SimTime::seconds(kRestartAt);
  plan.add(restart);
  bed.injectFaults(plan);

  // Bring the instance up, then drive the steady warm load.
  bool ready = false;
  bed.requestCatalog(0, "nginx", address, "warmup",
                     [&ready](Result<HttpExchange> r) { ready = r.ok(); });

  int issued = 0;
  int answered = 0;
  int failed = 0;
  std::vector<int> issuedInWindow;   // [window] = requests issued
  const auto windowOf = [&](double at) {
    return static_cast<std::size_t>(at);  // 1 s windows
  };
  for (double at = kLoadStart; at < kLoadEnd;
       at += static_cast<double>(kSpacingMs) / 1e3) {
    const std::size_t client = static_cast<std::size_t>(issued) %
                               bed.clientCount();
    const std::size_t window = windowOf(at);
    if (issuedInWindow.size() <= window) issuedInWindow.resize(window + 1, 0);
    ++issuedInWindow[window];
    ++issued;
    bed.sim().scheduleAt(SimTime::seconds(at), [&, client] {
      bed.requestCatalog(client, "nginx", address, "warm",
                         [&](Result<HttpExchange> r) {
                           if (r.ok()) {
                             ++answered;
                           } else {
                             ++failed;
                           }
                         });
    });
  }

  // Sample the controller's packet-in counter at every window boundary.
  const std::size_t windows = issuedInWindow.size() + 1;
  std::vector<std::uint64_t> packetIns(windows + 1, 0);
  for (std::size_t w = 0; w <= windows; ++w) {
    bed.sim().scheduleAt(SimTime::seconds(static_cast<double>(w)), [&, w] {
      packetIns[w] = bed.controller().packetInCount();
    });
  }

  bed.sim().runUntil(90_s);
  ES_ASSERT(ready);

  std::vector<double> warmRate(issuedInWindow.size(), 0.0);
  for (std::size_t w = 0; w < issuedInWindow.size(); ++w) {
    if (issuedInWindow[w] == 0) continue;
    const double punted =
        static_cast<double>(packetIns[w + 1] - packetIns[w]);
    warmRate[w] = 1.0 - punted / static_cast<double>(issuedInWindow[w]);
  }

  // Pre-fault rate: the five full windows before the restart.
  double preRate = 0.0;
  const std::size_t restartWindow = windowOf(kRestartAt);
  for (std::size_t w = restartWindow - 5; w < restartWindow; ++w) {
    preRate += warmRate[w];
  }
  preRate /= 5.0;
  // Recovery window: the first full window beyond restart + 2 periods.
  const std::size_t recoveryWindow =
      static_cast<std::size_t>(kRestartAt + 2.0 * kPeriodSeconds) + 1;
  const double recoveredRate = warmRate[recoveryWindow];

  const auto& ctrl = bed.controller();
  const auto* reconciler = bed.controller().reconciler();
  ES_ASSERT(reconciler != nullptr);

  Table table({"window [s]", "requests", "warm-hit rate"});
  for (std::size_t w = restartWindow - 3;
       w < std::min(issuedInWindow.size(), recoveryWindow + 3); ++w) {
    table.addRow({strprintf("%zu-%zu", w, w + 1),
                  strprintf("%d", issuedInWindow[w]),
                  strprintf("%.3f", warmRate[w])});
  }
  std::printf("Rule reconciliation: warm-hit recovery after a switch "
              "restart at t=%.2fs (sweep period %.0fs)\n\n",
              kRestartAt, kPeriodSeconds);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "pre-fault warm rate %.3f  recovery-window rate %.3f  "
      "restarts %llu  sweeps %llu  reinstalled %llu  resynthesized %llu\n"
      "requests issued %d answered %d failed %d  flowmods sent %llu "
      "acked %llu timed out %llu\n",
      preRate, recoveredRate,
      static_cast<unsigned long long>(bed.ovs().restartCount()),
      static_cast<unsigned long long>(reconciler->stats().sweeps),
      static_cast<unsigned long long>(reconciler->stats().flowsReinstalled),
      static_cast<unsigned long long>(
          reconciler->stats().flowRemovedResynthesized),
      issued, answered, failed,
      static_cast<unsigned long long>(ctrl.flowModsSent()),
      static_cast<unsigned long long>(ctrl.flowModsAcked()),
      static_cast<unsigned long long>(ctrl.flowModsTimedOut()));

  metrics::BenchReport report("rule_reconciliation");
  report.setMeta("restart_at_s", strprintf("%.2f", kRestartAt));
  report.setMeta("reconcile_period_s", strprintf("%.0f", kPeriodSeconds));
  Samples rates;
  for (std::size_t w = 1; w < warmRate.size(); ++w) {
    rates.add(warmRate[w]);
  }
  report.addSeries("warm_hit_rate/windows", rates);
  report.addScalar("warm_hit_rate/pre_fault", preRate);
  report.addScalar("warm_hit_rate/recovered", recoveredRate);
  report.addScalar("requests/issued", issued);
  report.addScalar("requests/answered", answered);
  report.addScalar("reconcile/sweeps",
                   static_cast<double>(reconciler->stats().sweeps));
  report.addScalar("reconcile/reinstalled",
                   static_cast<double>(reconciler->stats().flowsReinstalled));
  report.addScalar("flowmods/sent", static_cast<double>(ctrl.flowModsSent()));
  report.addScalar("flowmods/acked",
                   static_cast<double>(ctrl.flowModsAcked()));
  writeBenchReport(report);

  // ---- gates ----
  int rc = 0;
  if (bed.ovs().restartCount() != 1) {
    std::fprintf(stderr, "GATE: restart did not fire\n");
    rc = 1;
  }
  if (recoveredRate < 0.95 * preRate) {
    std::fprintf(stderr,
                 "GATE: warm-hit rate %.3f in the recovery window did not "
                 "reach 95%% of the pre-fault rate %.3f\n",
                 recoveredRate, preRate);
    rc = 1;
  }
  if (answered != issued || failed != 0) {
    std::fprintf(stderr,
                 "GATE: blackholed requests (issued %d answered %d "
                 "failed %d)\n",
                 issued, answered, failed);
    rc = 1;
  }
  if (ctrl.flowModsSent() != ctrl.flowModsAcked() + ctrl.flowModsTimedOut() ||
      ctrl.pendingInstallCount() != 0) {
    std::fprintf(stderr, "GATE: install accounting out of balance\n");
    rc = 1;
  }
  return rc;
}
