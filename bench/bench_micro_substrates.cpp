// Micro-benchmarks (google-benchmark) for the hot substrate paths: event
// queue scheduling, OpenFlow table lookup at various sizes, yamlite
// parsing, RNG draws, and FlowMemory operations.
#include <benchmark/benchmark.h>

#include "bench_output.hpp"
#include "core/flow_memory.hpp"
#include "openflow/flow_table.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "yamlite/parse.hpp"

namespace {

using namespace edgesim;
using namespace edgesim::timeliterals;

void BM_EventScheduleDispatch(benchmark::State& state) {
  Simulation sim;
  std::int64_t counter = 0;
  for (auto _ : state) {
    sim.schedule(1_us, [&counter] { ++counter; });
    sim.step();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventScheduleDispatch);

void BM_EventQueueBurst(benchmark::State& state) {
  const auto burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    std::int64_t counter = 0;
    for (int i = 0; i < burst; ++i) {
      sim.schedule(SimTime::micros(i % 97), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_EventQueueBurst)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FlowTableLookup(benchmark::State& state) {
  const auto entries = static_cast<int>(state.range(0));
  openflow::FlowTable table;
  for (int i = 0; i < entries; ++i) {
    openflow::FlowEntry entry;
    entry.priority = static_cast<std::uint16_t>(i % 100);
    entry.match.ipDst = Ipv4(203, 0, 113, static_cast<std::uint8_t>(i % 250 + 1));
    entry.match.tcpDst = 80;
    table.upsert(entry, SimTime::zero());
  }
  const Packet packet = makeSyn(Mac(1), Endpoint(Ipv4(10, 0, 0, 1), 40000),
                                Endpoint(Ipv4(203, 0, 113, 99), 80));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(packet, 0, SimTime::zero()));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(128)->Arg(1024);

void BM_YamlParseDeployment(benchmark::State& state) {
  const std::string yaml = R"(apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 1
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
)";
  for (auto _ : state) {
    auto result = yamlite::parse(yaml);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(yaml.size()));
}
BENCHMARK(BM_YamlParseDeployment);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform01());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(1000, 1.1));
  }
}
BENCHMARK(BM_RngZipf);

void BM_FlowMemoryLookup(benchmark::State& state) {
  core::FlowMemory memory(60_s);
  for (int i = 0; i < 1000; ++i) {
    memory.upsert(Ipv4(10, 0, static_cast<std::uint8_t>(i / 250),
                       static_cast<std::uint8_t>(i % 250 + 1)),
                  Endpoint(Ipv4(203, 0, 113, 10), 80),
                  Endpoint(Ipv4(10, 0, 1, 1), static_cast<std::uint16_t>(30000 + i)),
                  "docker-egs", SimTime::zero());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memory.lookup(Ipv4(10, 0, 2, 17), Endpoint(Ipv4(203, 0, 113, 10), 80)));
  }
}
BENCHMARK(BM_FlowMemoryLookup);

/// Console output as usual, plus one BENCH_micro_substrates.json series per
/// benchmark (adjusted real time, in seconds).
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Default time unit is nanoseconds; none of the benches override it.
      report_.addScalar(run.benchmark_name(),
                        run.GetAdjustedRealTime() * 1e-9);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const edgesim::metrics::BenchReport& report() const { return report_; }

 private:
  edgesim::metrics::BenchReport report_{"micro_substrates"};
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  edgesim::bench::writeBenchReport(reporter.report());
  return 0;
}
