// Figure 9: distribution of 1708 requests to 42 different edge services
// over five minutes, from the (synthetic) bigFlows-derived trace after the
// paper's selection rule (port 80, >= 20 requests per destination).
#include <cstdio>

#include "bench_output.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/bigflows.hpp"

using namespace edgesim;
using namespace edgesim::workload;

int main() {
  const BigFlowsParams params;
  const auto services = generateFilteredServices(params);

  std::size_t total = 0;
  Histogram perSecond(0.0, params.duration.toSeconds(), 30);  // 10 s bins
  Samples perService;
  for (const auto& service : services) {
    total += service.requestCount();
    perService.add(static_cast<double>(service.requestCount()));
    for (const auto& [time, client] : service.requests) {
      perSecond.add(time.toSeconds());
    }
  }

  std::printf("Figure 9: %zu requests to %zu edge services over %.0f s\n\n",
              total, services.size(), params.duration.toSeconds());
  std::printf("Requests over time (10 s bins):\n%s\n",
              perSecond.render(60).c_str());

  std::printf("Requests per service: min %.0f, median %.0f, max %.0f\n\n",
              perService.min(), perService.median(), perService.max());

  Table table({"service", "address", "requests", "first request [s]"});
  for (std::size_t i = 0; i < services.size(); ++i) {
    table.addRow({strprintf("%zu", i + 1),
                  services[i].address.toString(),
                  strprintf("%zu", services[i].requestCount()),
                  strprintf("%.1f", services[i].firstRequestAt().toSeconds())});
  }
  std::printf("%s", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());

  metrics::BenchReport report("fig09_request_distribution");
  report.setMeta("seed", strprintf("%llu", (unsigned long long)params.seed));
  report.addSeries("requests-per-service", perService);
  report.addScalar("total-requests", static_cast<double>(total));
  report.addScalar("services", static_cast<double>(services.size()));
  edgesim::bench::writeBenchReport(report);
  return 0;
}
