// Flash-crowd scenario: the §VII combined-strategy payoff in action.
//
// A service is running with one replica when a flash crowd arrives
// (request rate jumps 10x for two minutes).  With the HPA managing the
// Kubernetes Deployment, replicas scale out and the latency tail recovers;
// without it, the single instance's queue grows.  This is the "automated
// management and scaling" benefit that justifies deploying to Kubernetes
// for future requests even though its initial scale-up is slower.
#include <cstdio>

#include "experiment_common.hpp"
#include "k8s/autoscaler.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

struct PhaseStats {
  double median = 0;
  double p95 = 0;
  std::size_t count = 0;
};

struct CrowdResult {
  PhaseStats calm;
  PhaseStats crowd;
  PhaseStats late;  // last minute of the crowd (after scaling reacted)
  int maxReplicas = 1;
};

CrowdResult runCrowd(bool withAutoscaler) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kK8sOnly;
  options.seed = 11;
  // A flash crowd is new users: give the testbed enough distinct clients
  // that crowd requests arrive from fresh IPs (no memorized flows), so the
  // Local Scheduler can spread them over newly scaled replicas.
  options.clientCount = 60;
  options.controller.instancePolicy = "instance-round-robin";
  // Make the single instance saturable: 40 ms per request means one
  // replica sustains ~25 req/s.
  Testbed bed(options);
  auto& profiles = const_cast<core::AppProfileRegistry&>(
      bed.catalog().profiles());
  container::AppProfile heavy;
  heavy.startupDelay = SimTime::millis(60);
  heavy.requestCompute = SimTime::millis(40);
  heavy.responseBytes = Bytes{2048};
  profiles.add("nginx:1.23.2", heavy);

  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");
  // Keep instances up for the whole run.
  // (memory timeout default 60 s > any idle gap here)

  // Bring the K8s instance up.
  bool up = false;
  bed.requestCatalog(0, "nginx", address, "warmup",
                     [&up](Result<HttpExchange> r) { up = r.ok(); });
  bed.sim().runUntil(20_s);
  ES_ASSERT(up);

  const ServiceModel* model = bed.controller().serviceAt(address);
  std::unique_ptr<k8s::HorizontalAutoscaler> hpa;
  if (withAutoscaler) {
    k8s::AutoscalerParams params;
    params.deployment = model->uniqueName;
    params.minReplicas = 1;
    params.maxReplicas = 8;
    params.targetRequestsPerReplica = 12.0;
    params.syncPeriod = 5_s;
    auto counter = [&bed, model]() -> std::uint64_t {
      std::uint64_t total = 0;
      for (const auto* info :
           bed.dockerEngine().runtime().list({{"app", model->uniqueName}})) {
        total += info->requestsServed;
      }
      return total;
    };
    hpa = std::make_unique<k8s::HorizontalAutoscaler>(
        bed.sim(), *bed.k8sCluster(), params, counter);
  }

  // Load: 5 req/s calm (t=20..80), 50 req/s crowd (t=80..200), requests
  // spread over the clients; each goes through the transparent path (the
  // controller's memory/flows route per client, so new clients pick up
  // newly scaled replicas via the local scheduler).
  auto scheduleLoad = [&bed, address](SimTime from, SimTime to, double rps,
                                      std::size_t clientBase,
                                      std::size_t clientSpan,
                                      const std::string& series) {
    const double period = 1.0 / rps;
    std::size_t k = 0;
    for (double t = from.toSeconds(); t < to.toSeconds(); t += period, ++k) {
      const std::size_t client = clientBase + (k % clientSpan);
      bed.sim().scheduleAt(SimTime::seconds(t), [&bed, address, series, client] {
        bed.requestCatalog(client, "nginx", address, series);
      });
    }
  };
  scheduleLoad(20_s, 80_s, 5.0, 0, 10, "calm");
  scheduleLoad(80_s, 140_s, 30.0, 10, 25, "crowd-early");
  scheduleLoad(140_s, 200_s, 30.0, 35, 25, "crowd-late");

  // Track the replica high-water mark while the run progresses.
  int maxReplicas = 1;
  PeriodicTimer replicaWatch;
  replicaWatch.start(bed.sim(), 1_s, [&]() -> bool {
    maxReplicas = std::max(
        maxReplicas,
        static_cast<int>(bed.k8sAdapter()->readyInstances(*model).size()));
    return bed.sim().now() < SimTime::seconds(259.0);
  });
  bed.sim().runUntil(SimTime::seconds(260.0));

  CrowdResult result;
  auto fill = [&bed](const char* series, PhaseStats& stats) {
    if (const auto* s = bed.recorder().series(series)) {
      stats.median = s->median();
      stats.p95 = s->p95();
      stats.count = s->count();
    }
  };
  fill("calm", result.calm);
  fill("crowd-early", result.crowd);
  fill("crowd-late", result.late);
  result.maxReplicas = maxReplicas;
  return result;
}

}  // namespace

int main() {
  CrowdResult with{};
  CrowdResult without{};
  ThreadPool pool(2);
  pool.submit([&with] { with = runCrowd(true); });
  pool.submit([&without] { without = runCrowd(false); });
  pool.wait();

  std::printf("Flash crowd: 5 -> 30 req/s for two minutes, one K8s replica "
              "initially, 40 ms/request service\n\n");
  Table table({"configuration", "calm p95 [s]", "crowd p95 (1st min) [s]",
               "crowd p95 (2nd min) [s]", "max replicas"});
  table.addRow({"HPA enabled", strprintf("%.3f", with.calm.p95),
                strprintf("%.3f", with.crowd.p95),
                strprintf("%.3f", with.late.p95),
                strprintf("%d", with.maxReplicas)});
  table.addRow({"no autoscaler", strprintf("%.3f", without.calm.p95),
                strprintf("%.3f", without.crowd.p95),
                strprintf("%.3f", without.late.p95),
                strprintf("%d", without.maxReplicas)});
  metrics::BenchReport report("flash_crowd");
  report.setMeta("seed", "11");
  const auto addCrowd = [&report](const std::string& prefix,
                                  const CrowdResult& r) {
    report.addScalar(prefix + "/calm-p95", r.calm.p95);
    report.addScalar(prefix + "/crowd-early-p95", r.crowd.p95);
    report.addScalar(prefix + "/crowd-late-p95", r.late.p95);
    report.addScalar(prefix + "/max-replicas", r.maxReplicas);
  };
  addCrowd("hpa", with);
  addCrowd("no-autoscaler", without);
  writeBenchReport(report);

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  std::printf("\nshape: both configurations suffer when the crowd hits; "
              "with the HPA the second minute recovers as replicas come "
              "up, without it the tail stays high -- the \"automated "
              "management and scaling\" the paper trades K8s's slower "
              "scale-up for (§VII).\n");
  return 0;
}
