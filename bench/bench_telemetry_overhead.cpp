// Warm-path cost of the telemetry registry: the acceptance gate for the
// striped-counter design is < 3% overhead on the controller's warm resolve.
//
// Protocol: workers = 0 keeps submitRequest inline on the calling thread,
// so the measurement is pure hot-path work -- FlowMemory shared-lock
// lookup + CAS touch + (with telemetry) two striped counter bumps and one
// histogram observe.  Requests alternate between telemetry-enabled and
// telemetry-disabled testbeds in interleaved repetitions; the best (min)
// rep per arm cancels scheduler noise, and the whole measurement retries a
// few times before declaring failure, because a 3% gate on wall time is
// inherently jitter-prone on shared CI hosts.
//
// Output: BENCH_telemetry_overhead.json -- the committed baseline keeps
// warm/sec_per_kreq/{telemetry_on,telemetry_off} (lower-is-better; gated
// loosely, the binary itself enforces the ratio).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "util/strings.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::bench;
using namespace edgesim::timeliterals;

namespace {

constexpr std::size_t kWarmupRequests = 20000;
constexpr std::size_t kMeasuredRequests = 200000;
constexpr int kReps = 5;
constexpr int kAttempts = 5;
constexpr double kMaxOverhead = 1.03;
const Endpoint kServiceAddr(Ipv4(203, 0, 113, 10), 80);
const Ipv4 kClient(10, 0, 2, 1);

std::unique_ptr<Testbed> makeBed(bool telemetry) {
  TestbedOptions options;
  options.clientCount = 1;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.tracing = false;     // isolate the registry cost
  options.telemetry = telemetry;
  options.controller.workers = 0;  // inline warm path, no pool hand-off
  options.controller.memoryIdleTimeout = SimTime::seconds(3600.0);
  auto bed = std::make_unique<Testbed>(options);
  bed->warmImageCache("nginx");
  ES_ASSERT(bed->registerCatalogService("nginx", kServiceAddr).ok());

  // Prime one cold request so every measured submitRequest is a warm hit.
  std::atomic<bool> primed{false};
  bed->controller().submitRequest(kClient, kServiceAddr,
                                  [&primed](Result<Redirect> result) {
                                    ES_ASSERT(result.ok());
                                    primed.store(true,
                                                 std::memory_order_release);
                                  });
  int guard = 0;
  while (!primed.load(std::memory_order_acquire)) {
    bed->sim().waitForExternal(std::chrono::microseconds(200));
    bed->sim().pump(10_ms);
    ES_ASSERT(++guard < 100000);
  }
  return bed;
}

/// Wall seconds for `count` inline warm submitRequest calls.
double timeWarmLoop(Testbed& bed, std::size_t count) {
  EdgeController& controller = bed.controller();
  std::size_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    controller.submitRequest(kClient, kServiceAddr,
                             [&done](Result<Redirect> result) {
                               ES_ASSERT(result.ok());
                               ++done;
                             });
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ES_ASSERT(done == count);
  return seconds;
}

struct Measurement {
  double onSeconds = 0.0;   // best rep, telemetry enabled
  double offSeconds = 0.0;  // best rep, telemetry disabled
  double ratio() const { return onSeconds / offSeconds; }
};

Measurement measure() {
  auto bedOn = makeBed(/*telemetry=*/true);
  auto bedOff = makeBed(/*telemetry=*/false);
  timeWarmLoop(*bedOn, kWarmupRequests);
  timeWarmLoop(*bedOff, kWarmupRequests);

  Measurement m;
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave the arms so frequency drift hits both equally.
    const double off = timeWarmLoop(*bedOff, kMeasuredRequests);
    const double on = timeWarmLoop(*bedOn, kMeasuredRequests);
    if (rep == 0 || on < m.onSeconds) m.onSeconds = on;
    if (rep == 0 || off < m.offSeconds) m.offSeconds = off;
  }
  return m;
}

}  // namespace

int main() {
  Measurement best;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const Measurement m = measure();
    std::printf("attempt %d: warm path %.1f ns/req with telemetry, "
                "%.1f ns/req without (ratio %.4f)\n",
                attempt, m.onSeconds / kMeasuredRequests * 1e9,
                m.offSeconds / kMeasuredRequests * 1e9, m.ratio());
    if (attempt == 1 || m.ratio() < best.ratio()) best = m;
    if (best.ratio() <= kMaxOverhead) break;
  }

  metrics::BenchReport report("telemetry_overhead");
  report.setMeta("requests", std::to_string(kMeasuredRequests));
  report.setMeta("reps", std::to_string(kReps));
  report.addScalar("warm/sec_per_kreq/telemetry_on",
                   best.onSeconds / kMeasuredRequests * 1e3);
  report.addScalar("warm/sec_per_kreq/telemetry_off",
                   best.offSeconds / kMeasuredRequests * 1e3);
  report.addScalar("warm/overhead_ratio", best.ratio());
  writeBenchReport(report);

  if (best.ratio() > kMaxOverhead) {
    std::fprintf(stderr,
                 "FAIL: telemetry warm-path overhead is %.2f%% (gate: %.0f%%)\n",
                 (best.ratio() - 1.0) * 100.0, (kMaxOverhead - 1.0) * 100.0);
    return 1;
  }
  std::printf("overhead check: %.2f%% <= %.0f%% gate\n",
              (best.ratio() - 1.0) * 100.0, (kMaxOverhead - 1.0) * 100.0);
  return 0;
}
