// Fault-resilience acceptance bench: 100% pull failure on the near edge
// cluster, yet every client request still completes.
//
// One persistent kClusterRpc fault makes every image pull on "docker-egs"
// fail.  The dispatcher retries (capped exponential backoff), exhausts the
// retry budget, degrades the first resolves to the cloud instance, and
// quarantines the failing cluster; once quarantined, the scheduler deploys
// on the healthy far-edge cluster instead.  The healthy run is printed next
// to the faulty one so the cost of degradation (cloud RTT on the early
// requests) is visible.
#include <cstdio>
#include <optional>

#include "experiment_common.hpp"
#include "fault/fault_plan.hpp"

namespace {

using namespace edgesim;
using namespace edgesim::bench;

struct RunResult {
  int issued = 0;
  int completed = 0;
  int failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t quarantines = 0;
  double median = 0.0;
  double p95 = 0.0;
};

RunResult runScenario(bool faulty) {
  TestbedOptions options;
  options.seed = 7;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.farEdge = true;  // healthy sibling the quarantine can route to
  options.controller.deployRetries = 2;
  options.controller.retryBackoff = 100_ms;
  options.controller.quarantineCooldown = 120_s;
  Testbed bed(options);

  // Persistent 100% pull failure on the near edge cluster.  The plan must
  // outlive the simulation run, hence it lives in this frame.
  fault::FaultPlan plan(1234);
  if (faulty) {
    fault::FaultSpec spec;
    spec.site = fault::FaultSite::kClusterRpc;
    spec.target = "docker-egs/pull";
    spec.message = "registry unreachable from docker-egs";
    plan.add(spec);
    bed.injectFaults(plan);
  }

  const Endpoint addr{Ipv4(203, 0, 113, 10), 80};
  if (!bed.registerCatalogService("nginx", addr).ok()) return {};

  RunResult result;
  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    const std::size_t client = static_cast<std::size_t>(i) % bed.clientCount();
    bed.sim().scheduleAt(SimTime::seconds(1.5 * i), [&, client] {
      ++result.issued;
      bed.requestCatalog(client, "nginx", addr, "lat",
                         [&result](Result<HttpExchange> r) {
                           if (r.ok()) {
                             ++result.completed;
                           } else {
                             ++result.failed;
                           }
                         });
    });
  }
  bed.sim().runUntil(SimTime::seconds(240.0));

  result.degraded = bed.controller().requestsDegraded();
  result.retries = bed.controller().dispatcher().retries();
  result.fallbacks = bed.controller().dispatcher().fallbacks();
  result.quarantines = bed.controller().dispatcher().quarantines();
  if (const auto* s = bed.recorder().series("lat")) {
    result.median = s->median();
    result.p95 = s->p95();
  }
  return result;
}

}  // namespace

int main() {
  const RunResult faulty = runScenario(true);
  const RunResult healthy = runScenario(false);

  std::printf("Fault resilience: persistent 100%% pull failure on the near "
              "edge cluster (docker-egs),\n40 client requests over 60 s, "
              "retry budget 2, far edge + cloud available\n\n");
  Table table({"configuration", "issued", "completed", "failed", "degraded",
               "retries", "fallbacks", "quarantines", "median [s]",
               "p95 [s]"});
  const auto row = [&table](const char* name, const RunResult& r) {
    table.addRow({name, strprintf("%d", r.issued), strprintf("%d", r.completed),
                  strprintf("%d", r.failed),
                  strprintf("%llu", static_cast<unsigned long long>(r.degraded)),
                  strprintf("%llu", static_cast<unsigned long long>(r.retries)),
                  strprintf("%llu",
                            static_cast<unsigned long long>(r.fallbacks)),
                  strprintf("%llu",
                            static_cast<unsigned long long>(r.quarantines)),
                  strprintf("%.3f", r.median), strprintf("%.3f", r.p95)});
  };
  row("pull fault on docker-egs", faulty);
  row("healthy", healthy);
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());

  metrics::BenchReport report("fault_resilience");
  report.setMeta("seed", "7");
  const auto addRun = [&report](const std::string& prefix,
                                const RunResult& r) {
    report.addScalar(prefix + "/median", r.median);
    report.addScalar(prefix + "/p95", r.p95);
    report.addScalar(prefix + "/completed", r.completed);
    report.addScalar(prefix + "/failed", r.failed);
    report.addScalar(prefix + "/retries", static_cast<double>(r.retries));
    report.addScalar(prefix + "/fallbacks",
                     static_cast<double>(r.fallbacks));
    report.addScalar(prefix + "/quarantines",
                     static_cast<double>(r.quarantines));
  };
  addRun("pull-fault", faulty);
  addRun("healthy", healthy);
  writeBenchReport(report);

  const bool pass = faulty.issued > 0 && faulty.completed == faulty.issued &&
                    faulty.failed == 0 && faulty.retries > 0 &&
                    faulty.fallbacks > 0 && faulty.quarantines > 0;
  std::printf("\nshape: early requests pay retries plus the cloud fallback "
              "RTT; after the quarantine kicks in the scheduler deploys on "
              "the far edge and the tail settles near the healthy run.\n");
  std::printf("%s: every request completed under a total pull outage "
              "(%d/%d, %llu retries, %llu cloud fallbacks, %llu "
              "quarantines)\n",
              pass ? "PASS" : "FAIL", faulty.completed, faulty.issued,
              static_cast<unsigned long long>(faulty.retries),
              static_cast<unsigned long long>(faulty.fallbacks),
              static_cast<unsigned long long>(faulty.quarantines));
  return pass ? 0 : 1;
}
