// Figure 16: total time (median) for client requests once the instance is
// already running on the cluster.
//
// Paper shape: no notable difference between Docker and Kubernetes; the
// text services answer in about a millisecond; the ResNet classification
// takes significantly longer (inference dominates).
#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

Samples warmSamples(const std::string& key, ClusterMode mode,
                    std::size_t requests) {
  TestbedOptions options;
  options.clusterMode = mode;
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService(key, address).ok());
  bed.warmImageCache(key);

  // Bring the instance up via one throwaway request, then measure.
  bool ready = false;
  bed.requestCatalog(0, key, address, "warmup",
                     [&ready](Result<HttpExchange> r) { ready = r.ok(); });
  bed.sim().runUntil(60_s);
  ES_ASSERT(ready);

  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t client = i % bed.clientCount();
    bed.sim().schedule(SimTime::millis(static_cast<std::int64_t>(400 * i)),
                       [&bed, key, address, client] {
                         bed.requestCatalog(client, key, address, "warm");
                       });
  }
  bed.sim().runUntil(SimTime::seconds(60.0 + 0.4 * static_cast<double>(requests) + 60.0));
  const auto* warm = bed.recorder().series("warm");
  ES_ASSERT(warm != nullptr && warm->count() == requests);
  return *warm;
}

}  // namespace

int main() {
  struct Row {
    double docker = 0;
    double k8s = 0;
  };
  std::map<std::string, Row> rows;

  struct Job {
    std::string key;
    ClusterMode mode;
  };
  std::vector<Job> jobs;
  for (const auto& key : tableOneKeys()) {
    jobs.push_back({key, ClusterMode::kDockerOnly});
    jobs.push_back({key, ClusterMode::kK8sOnly});
  }
  std::vector<Samples> samples(jobs.size());
  ThreadPool::parallelFor(jobs.size(), 0, [&](std::size_t i) {
    samples[i] = warmSamples(jobs[i].key, jobs[i].mode, 100);
  });
  metrics::BenchReport report("fig16_warm_requests");
  report.setMeta("requests", "100");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bool docker = jobs[i].mode == ClusterMode::kDockerOnly;
    if (docker) {
      rows[jobs[i].key].docker = samples[i].median();
    } else {
      rows[jobs[i].key].k8s = samples[i].median();
    }
    report.addSeries(
        jobs[i].key + "/" + (docker ? "docker-egs" : "k8s-egs") + "/warm",
        samples[i]);
  }

  std::printf("Figure 16: total time (median) for requests to already-"
              "running instances (100 requests each)\n\n");
  Table table({"Service", "Docker [ms]", "K8s [ms]"});
  for (const auto& key : tableOneKeys()) {
    table.addRow({key, strprintf("%.2f", rows.at(key).docker * 1e3),
                  strprintf("%.2f", rows.at(key).k8s * 1e3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
