// Figure 13: total time to pull the service container images onto the EGS
// from the public registries (Docker Hub / Google Container Registry)
// versus a private registry on the same network.
//
// Paper shape: the tiny Asm image "shines" (sub-second), pull time grows
// with size AND layer count, and the private registry saves ~1.5-2 s.
// A second table shows the §IV-C layer-sharing effect: re-pulling Nginx+Py
// when nginx is already cached only fetches the Python layer.
#include <cstdio>

#include "bench_output.hpp"
#include "core/service_catalog.hpp"
#include "container/puller.hpp"
#include "sim/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::container;

namespace {

/// Wall-clock (simulated) time to pull all of a catalogue entry's images
/// into a fresh store from `registry`.
double coldPullSeconds(const ServiceCatalog& catalog, const std::string& key,
                       Registry& registry) {
  Simulation sim(7);
  LayerStore store;
  ImagePuller puller(sim, store);
  std::size_t remaining = catalog.entry(key).images.size();
  double done = -1;
  for (const auto& image : catalog.entry(key).images) {
    puller.pull(registry, image.ref, [&](Status status) {
      ES_ASSERT(status.ok());
      if (--remaining == 0) done = sim.now().toSeconds();
    });
  }
  sim.run();
  ES_ASSERT(done >= 0);
  return done;
}

}  // namespace

int main() {
  ServiceCatalog catalog;
  Registry publicReg("docker-hub/gcr", publicRegistryProfile());
  Registry privateReg("private", privateRegistryProfile());
  catalog.publishImages(publicReg);
  catalog.publishImages(privateReg);

  std::printf("Figure 13: total time to pull the service images onto the "
              "EGS\n\n");
  edgesim::metrics::BenchReport report("fig13_pull");
  Table table({"Service", "Size / Layers", "Public registry [s]",
               "Private registry [s]", "Saving [s]"});
  for (const auto& entry : catalog.entries()) {
    const double pub = coldPullSeconds(catalog, entry.key, publicReg);
    const double priv = coldPullSeconds(catalog, entry.key, privateReg);
    report.addScalar(entry.key + "/public", pub);
    report.addScalar(entry.key + "/private", priv);
    table.addRow({entry.displayName,
                  formatBytes(catalog.totalImageSize(entry.key)) + " / " +
                      strprintf("%zu", catalog.totalLayerCount(entry.key)),
                  strprintf("%.3f", pub), strprintf("%.3f", priv),
                  strprintf("%.2f", pub - priv)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s\n", table.csv().c_str());

  // Layer sharing (§IV-C): nginx already cached, pull nginx-py.
  {
    Simulation sim(8);
    LayerStore store;
    ImagePuller puller(sim, store);
    catalog.seedImages("nginx", store);
    double done = -1;
    std::size_t remaining = catalog.entry("nginx-py").images.size();
    for (const auto& image : catalog.entry("nginx-py").images) {
      puller.pull(publicReg, image.ref, [&](Status status) {
        ES_ASSERT(status.ok());
        if (--remaining == 0) done = sim.now().toSeconds();
      });
    }
    sim.run();
    const double cold = coldPullSeconds(catalog, "nginx-py", publicReg);
    std::printf("Layer sharing: Nginx+Py pull with nginx cached: %.3f s "
                "(vs %.3f s cold) -- only the Python layer is fetched\n",
                done, cold);
    report.addScalar("nginx-py/shared-layers", done);
  }
  edgesim::bench::writeBenchReport(report);
  return 0;
}
