// FlowMemory ablation (§V design choice): sweep the controller-side idle
// timeout and measure its effects on a steady trickle of repeat clients --
// packet-ins (controller load), redeployments (scale-down churn), and the
// per-request latency tail.
//
// The paper's design keeps SWITCH timeouts short (cheap tables) and relies
// on the controller's memory for fast re-redirects; this sweep shows why:
// a too-short memory timeout turns idle gaps into scale-downs and fresh
// deployment waits, a long one keeps instances warm.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

struct AblationResult {
  double medianLatency = 0;
  double p95Latency = 0;
  std::uint64_t packetIns = 0;
  std::uint64_t deployments = 0;
  std::uint64_t scaleDowns = 0;
};

AblationResult runWithTimeout(SimTime memoryTimeout) {
  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.controller.memoryIdleTimeout = memoryTimeout;
  options.controller.switchIdleTimeout =
      std::min(memoryTimeout, SimTime::seconds(5.0));
  Testbed bed(options);
  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");

  // One client returns every 20 s for 10 minutes: idle gaps longer than
  // short memory timeouts, shorter than long ones.
  for (int i = 0; i < 30; ++i) {
    bed.sim().scheduleAt(SimTime::seconds(1.0 + 20.0 * i), [&bed, address] {
      bed.requestCatalog(0, "nginx", address, "trickle");
    });
  }
  bed.sim().runUntil(SimTime::seconds(660.0));

  AblationResult result;
  const auto* trickle = bed.recorder().series("trickle");
  ES_ASSERT(trickle != nullptr);
  result.medianLatency = trickle->median();
  result.p95Latency = trickle->p95();
  result.packetIns = bed.controller().packetInCount();
  result.deployments = bed.controller().dispatcher().deploymentsTriggered();
  result.scaleDowns = bed.controller().scaleDowns();
  return result;
}

}  // namespace

int main() {
  const std::vector<double> timeoutsSeconds{1, 5, 15, 60, 300};
  std::vector<AblationResult> results(timeoutsSeconds.size());
  ThreadPool::parallelFor(timeoutsSeconds.size(), 0, [&](std::size_t i) {
    results[i] = runWithTimeout(SimTime::seconds(timeoutsSeconds[i]));
  });

  std::printf("FlowMemory idle-timeout ablation: 30 requests, one every "
              "20 s, nginx on Docker (cached)\n\n");
  Table table({"memory timeout [s]", "median [s]", "p95 [s]", "packet-ins",
               "deployments", "scale-downs"});
  for (std::size_t i = 0; i < timeoutsSeconds.size(); ++i) {
    const auto& r = results[i];
    table.addRow({strprintf("%.0f", timeoutsSeconds[i]),
                  strprintf("%.4f", r.medianLatency),
                  strprintf("%.4f", r.p95Latency),
                  strprintf("%llu", (unsigned long long)r.packetIns),
                  strprintf("%llu", (unsigned long long)r.deployments),
                  strprintf("%llu", (unsigned long long)r.scaleDowns)});
  }
  metrics::BenchReport report("flowmemory_ablation");
  for (std::size_t i = 0; i < timeoutsSeconds.size(); ++i) {
    const std::string prefix =
        strprintf("timeout-%.0fs", timeoutsSeconds[i]);
    report.addScalar(prefix + "/median", results[i].medianLatency);
    report.addScalar(prefix + "/p95", results[i].p95Latency);
    report.addScalar(prefix + "/packet-ins",
                     static_cast<double>(results[i].packetIns));
    report.addScalar(prefix + "/deployments",
                     static_cast<double>(results[i].deployments));
    report.addScalar(prefix + "/scale-downs",
                     static_cast<double>(results[i].scaleDowns));
  }
  writeBenchReport(report);

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  std::printf("\nshape: timeouts shorter than the 20 s idle gap scale the "
              "instance down between visits (every request pays a fresh "
              "scale-up -> high p95); timeouts above the gap keep it warm "
              "(~ms requests, one deployment total).\n");
  return 0;
}
