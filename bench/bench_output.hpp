// Helpers for the machine-readable bench output (BENCH_<name>.json).
//
// Every bench binary writes one schema-versioned metrics::BenchReport next
// to where it runs (or into $EDGESIM_BENCH_OUT); CI uploads the files as
// artifacts and gates them against results/baselines/ with tools/bench_diff.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/bench_report.hpp"

namespace edgesim::bench {

/// BENCH_<name>.json in the current directory, or in $EDGESIM_BENCH_OUT.
inline std::string benchOutputPath(const std::string& benchName) {
  const char* dir = std::getenv("EDGESIM_BENCH_OUT");
  std::string path = dir != nullptr ? std::string(dir) + "/" : std::string();
  return path + "BENCH_" + benchName + ".json";
}

/// Serialize `report`; prints the output path (or the error).
inline void writeBenchReport(const metrics::BenchReport& report) {
  const std::string path = benchOutputPath(report.name());
  const auto status = report.writeFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED to write bench report: %s\n",
                 status.error().toString().c_str());
    return;
  }
  std::printf("bench report: %s\n", path.c_str());
}

}  // namespace edgesim::bench
