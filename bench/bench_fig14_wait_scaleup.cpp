// Figure 14: median wait time until the services are READY after being
// scaled up -- the controller's port-polling span (§VI), included in
// fig. 11's totals.
//
// Paper shape: tiny for Asm/Nginx; for ResNet the wait alone accounts for
// more than a fourth of the total time.
#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

int main() {
  struct Row {
    double dockerWait = 0;
    double k8sWait = 0;
    double dockerTotal = 0;
  };
  std::map<std::string, Row> rows;

  struct Job {
    std::string key;
    ClusterMode mode;
  };
  std::vector<Job> jobs;
  for (const auto& key : tableOneKeys()) {
    jobs.push_back({key, ClusterMode::kDockerOnly});
    jobs.push_back({key, ClusterMode::kK8sOnly});
  }
  std::vector<DeploymentExperimentResult> results(jobs.size());
  ThreadPool::parallelFor(jobs.size(), 0, [&](std::size_t i) {
    DeploymentExperimentConfig config;
    config.catalogKey = jobs[i].key;
    config.mode = jobs[i].mode;
    config.preCreate = true;
    results[i] = runDeploymentExperiment(config);
  });

  metrics::BenchReport report("fig14_wait_scaleup");
  report.setMeta("seed", "1");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Row& row = rows[jobs[i].key];
    const double wait =
        results[i].waits.empty() ? 0.0 : results[i].waits.median();
    const bool docker = jobs[i].mode == ClusterMode::kDockerOnly;
    if (docker) {
      row.dockerWait = wait;
      row.dockerTotal = results[i].totals.median();
    } else {
      row.k8sWait = wait;
    }
    addDeploymentSeries(
        report, jobs[i].key + "/" + (docker ? "docker-egs" : "k8s-egs"),
        results[i]);
  }

  std::printf("Figure 14: wait time (median) until ready after scale-up\n");
  std::printf("(controller port polling; included in fig. 11 totals)\n\n");
  Table table({"Service", "Docker wait [s]", "K8s wait [s]",
               "wait share of Docker total"});
  for (const auto& key : tableOneKeys()) {
    const Row& row = rows.at(key);
    table.addRow({key, strprintf("%.3f", row.dockerWait),
                  strprintf("%.3f", row.k8sWait),
                  strprintf("%.0f%%", 100.0 * row.dockerWait / row.dockerTotal)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
