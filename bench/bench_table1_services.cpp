// Table I: the edge services used in this work -- image sizes, layer
// counts, container counts and HTTP request shapes, regenerated from the
// ServiceCatalog (the modelled counterparts of the paper's images).
#include <cstdio>

#include "bench_output.hpp"
#include "core/service_catalog.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"

using namespace edgesim;
using namespace edgesim::core;

int main() {
  ServiceCatalog catalog;
  std::printf("Table I: edge services used in this work\n\n");
  Table table({"", "Service", "Image(s)", "Size / Layers", "Containers",
               "HTTP"});
  for (const auto& entry : catalog.entries()) {
    std::vector<std::string> refs;
    for (const auto& image : entry.images) refs.push_back(image.ref.toString());
    std::string http = entry.requestMethod == HttpMethod::kPost ? "POST" : "GET";
    if (entry.requestPayload.value > 0) {
      http += " (" + formatBytes(entry.requestPayload) + " payload)";
    }
    table.addRow({entry.displayName, entry.key, join(refs, " + "),
                  formatBytes(catalog.totalImageSize(entry.key)) + " / " +
                      strprintf("%zu", catalog.totalLayerCount(entry.key)),
                  strprintf("%d", entry.containerCount), http});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());

  std::printf("\nApp behaviour profiles (simulation stand-ins for the real "
              "binaries):\n\n");
  Table profiles({"Image", "startup delay", "per-request compute",
                  "response size"});
  for (const auto& entry : catalog.entries()) {
    for (const auto& image : entry.images) {
      const auto app = catalog.profiles().lookup(image.ref.toString());
      profiles.addRow({image.ref.toString(), app.startupDelay.toString(),
                       app.exposesPort ? app.requestCompute.toString()
                                       : std::string("(helper, no port)"),
                       formatBytes(app.responseBytes)});
    }
  }
  std::printf("%s", profiles.render().c_str());

  // Catalogue shape as scalars: a drifting image model shows up as a
  // "regression" in bench_diff, which is exactly the alert we want.
  metrics::BenchReport report("table1_services");
  for (const auto& entry : catalog.entries()) {
    report.addScalar(entry.key + "/image-bytes",
                     static_cast<double>(
                         catalog.totalImageSize(entry.key).value));
    report.addScalar(entry.key + "/layers",
                     static_cast<double>(catalog.totalLayerCount(entry.key)));
    report.addScalar(entry.key + "/containers", entry.containerCount);
  }
  bench::writeBenchReport(report);
  return 0;
}
