// §VII discussion: "on-demand deployment, in combination with transparent
// access ... more so when combined with good prediction for proactive
// deployment."  This bench quantifies that: a predictor with hit rate p
// pre-deploys a service shortly before its first request; the rest fall
// back to on-demand deployment with waiting.  Sweep p and report the
// first-request latency distribution over the 42-service trace.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

namespace {

struct SweepResult {
  double median = 0;
  double p95 = 0;
  double max = 0;
  std::uint64_t deployments = 0;
};

SweepResult runWithHitRate(double hitRate, std::uint64_t seed) {
  TestbedOptions options;
  options.seed = seed;
  options.clusterMode = ClusterMode::kDockerOnly;
  Testbed bed(options);
  bed.warmImageCache("nginx");

  workload::BigFlowsParams traceParams;
  traceParams.seed = seed;
  const auto loads = workload::generateFilteredServices(traceParams);

  Rng predictorRng(seed * 77 + 1);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const Endpoint address(
        Ipv4(203, 0, 113, static_cast<std::uint8_t>(i + 1)), 80);
    ES_ASSERT(bed.registerCatalogService("nginx", address).ok());

    // The predictor fires 2 s before the real first request ("just in
    // time"), when it predicts at all.
    if (predictorRng.chance(hitRate)) {
      const SimTime lead = SimTime::seconds(2.0);
      const SimTime at = loads[i].firstRequestAt() > lead
                             ? loads[i].firstRequestAt() - lead
                             : SimTime::zero();
      bed.sim().scheduleAt(at, [&bed, address] {
        (void)bed.controller().predeploy(address, "docker-egs");
      });
    }
    const std::size_t clientIndex =
        (loads[i].requests.front().second.value & 0xff) % bed.clientCount();
    bed.sim().scheduleAt(loads[i].firstRequestAt(),
                         [&bed, clientIndex, address] {
                           bed.requestCatalog(clientIndex, "nginx", address,
                                              "first");
                         });
  }
  bed.sim().runUntil(traceParams.duration + 60_s);

  SweepResult result;
  const auto* first = bed.recorder().series("first");
  ES_ASSERT(first != nullptr && first->count() == loads.size());
  result.median = first->median();
  result.p95 = first->p95();
  result.max = first->max();
  result.deployments = bed.controller().dispatcher().deploymentsTriggered();
  return result;
}

}  // namespace

int main() {
  const std::vector<double> hitRates{0.0, 0.5, 0.8, 0.95, 1.0};
  std::vector<SweepResult> results(hitRates.size());
  ThreadPool::parallelFor(hitRates.size(), 0, [&](std::size_t i) {
    results[i] = runWithHitRate(hitRates[i], /*seed=*/5);
  });

  std::printf("Proactive deployment sweep: predictor pre-deploys 2 s early "
              "with hit rate p; misses pay on-demand with waiting\n");
  std::printf("(42 nginx services, cached images, Docker edge)\n\n");
  Table table({"hit rate", "median first req [s]", "p95 [s]", "max [s]",
               "deployments"});
  for (std::size_t i = 0; i < hitRates.size(); ++i) {
    table.addRow({strprintf("%.0f%%", hitRates[i] * 100),
                  strprintf("%.4f", results[i].median),
                  strprintf("%.4f", results[i].p95),
                  strprintf("%.4f", results[i].max),
                  strprintf("%llu", (unsigned long long)results[i].deployments)});
  }
  metrics::BenchReport report("proactive_prediction");
  report.setMeta("seed", "5");
  for (std::size_t i = 0; i < hitRates.size(); ++i) {
    const std::string prefix = strprintf("p%02.0f", hitRates[i] * 100);
    report.addScalar(prefix + "/median", results[i].median);
    report.addScalar(prefix + "/p95", results[i].p95);
    report.addScalar(prefix + "/max", results[i].max);
    report.addScalar(prefix + "/deployments",
                     static_cast<double>(results[i].deployments));
  }
  writeBenchReport(report);

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  std::printf("\nshape: even an imperfect predictor moves the median first "
              "request from ~0.4-0.5 s to ~ms; the tail (p95/max) tracks "
              "the miss rate -- \"a hundred percent correct prediction rate "
              "is impossible\", which is why on-demand deployment matters.\n");
  return 0;
}
