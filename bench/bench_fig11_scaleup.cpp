// Figure 11: median total time to SCALE UP the four Table I services on the
// two cluster types (images cached, services already created).
//
// Paper shape: Docker < 1 s for the small services, Kubernetes ~3 s ("the
// numbers highlight the overhead of an orchestrator like Kubernetes");
// Asm ~= Nginx (start cost is namespace-dominated); ResNet slowest.
#include <cstdio>
#include <map>

#include "experiment_common.hpp"
#include "util/thread_pool.hpp"

using namespace edgesim;
using namespace edgesim::bench;

int main() {
  struct Row {
    std::string key;
    double docker = 0;
    double k8s = 0;
  };
  std::map<std::string, Row> rows;
  for (const auto& key : tableOneKeys()) rows[key].key = key;

  // 8 independent simulations (4 services x 2 clusters), run in parallel.
  struct Job {
    std::string key;
    ClusterMode mode;
  };
  std::vector<Job> jobs;
  for (const auto& key : tableOneKeys()) {
    jobs.push_back({key, ClusterMode::kDockerOnly});
    jobs.push_back({key, ClusterMode::kK8sOnly});
  }
  std::vector<DeploymentExperimentResult> results(jobs.size());
  ThreadPool::parallelFor(jobs.size(), 0, [&](std::size_t i) {
    DeploymentExperimentConfig config;
    config.catalogKey = jobs[i].key;
    config.mode = jobs[i].mode;
    config.preCreate = true;
    config.warmCache = true;
    results[i] = runDeploymentExperiment(config);
  });

  metrics::BenchReport report("fig11_scaleup");
  report.setMeta("seed", "1");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ES_ASSERT(results[i].failures == 0);
    ES_ASSERT(results[i].totals.count() == 42);
    const double median = results[i].totals.median();
    const bool docker = jobs[i].mode == ClusterMode::kDockerOnly;
    if (docker) {
      rows[jobs[i].key].docker = median;
    } else {
      rows[jobs[i].key].k8s = median;
    }
    addDeploymentSeries(
        report, jobs[i].key + "/" + (docker ? "docker-egs" : "k8s-egs"),
        results[i]);
  }

  std::printf("Figure 11: total time (median) to scale up 42 instances\n");
  std::printf("(images cached; create phase executed beforehand)\n\n");
  Table table({"Service", "Docker [s]", "K8s [s]", "K8s/Docker"});
  for (const auto& key : tableOneKeys()) {
    const Row& row = rows[key];
    table.addRow({key, strprintf("%.3f", row.docker),
                  strprintf("%.3f", row.k8s),
                  strprintf("%.1fx", row.k8s / row.docker)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV:\n%s", table.csv().c_str());
  writeBenchReport(report);
  return 0;
}
