// Fig. 16-style warm-traffic run with live telemetry enabled end to end.
//
// Protocol: one cold request deploys nginx on the Docker EGS cluster, then
// 100 requests arrive 1.2 s apart.  The switch idle timeout is shortened
// to 200 ms so EVERY request packet-ins again, while FlowMemory (60 s idle)
// stays warm -- each of the 100 requests is a controller-side warm resolve.
// Periodic JSON + Prometheus snapshots are written every 5 s of sim time,
// an SLO watchdog runs with a generous budget (a healthy warm run must not
// breach), and at the end the final snapshot must reconcile EXACTLY with
// the Recorder / controller end-of-run numbers:
//   * warm/cold resolve histogram counts == recorder series counts,
//   * request-outcome counters == controller accessors,
//   * per-phase deploy histogram counts == recorder phase sample counts,
//   * the on-disk JSON snapshot round-trips, and the .prom file lints.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_output.hpp"
#include "core/testbed.hpp"
#include "telemetry/snapshot.hpp"
#include "util/strings.hpp"

using namespace edgesim;
using namespace edgesim::core;
using namespace edgesim::bench;
using namespace edgesim::timeliterals;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "RECONCILE FAIL: %s\n", what.c_str());
}

void checkEq(std::uint64_t got, std::uint64_t want, const std::string& what) {
  check(got == want,
        strprintf("%s: got %llu, want %llu", what.c_str(),
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want)));
}

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main() {
  const char* envDir = std::getenv("EDGESIM_TELEMETRY_OUT");
  const std::string dir = envDir != nullptr ? envDir : "telemetry-out";

  TestbedOptions options;
  options.clusterMode = ClusterMode::kDockerOnly;
  options.snapshotPeriod = 5_s;
  options.snapshotDir = dir;
  // Every request packet-ins (switch flows idle out between arrivals) but
  // resolves warm from FlowMemory (60 s idle, kept fresh by the
  // flow-removed touch and the periodic stats sync).
  options.controller.switchIdleTimeout = SimTime::millis(200);
  Testbed bed(options);

  const Endpoint address(Ipv4(203, 0, 113, 10), 80);
  ES_ASSERT(bed.registerCatalogService("nginx", address).ok());
  bed.warmImageCache("nginx");

  telemetry::SloBudget budget;
  budget.name = "warm-resolve-p95";
  budget.service = "nginx";
  budget.histogram = "edgesim_resolve_seconds";
  budget.labels = {{"path", "warm"}};
  budget.quantile = 0.95;
  budget.latencyBudgetSeconds = 0.5;  // warm resolves are ~instant
  bed.watchdog().addBudget(budget);
  bed.watchdog().start(5_s);

  bool ready = false;
  bed.requestCatalog(0, "nginx", address, "warmup",
                     [&ready](Result<HttpExchange> r) { ready = r.ok(); });
  bed.sim().runUntil(60_s);
  ES_ASSERT(ready);

  // One client throughout: FlowMemory keys on (client, service), so a
  // single client keeps every post-warmup resolve on the warm path.  The
  // 1.2 s spacing clears the 200 ms switch idle timeout even at the
  // switch's 500 ms expiry-scan granularity, so every request packet-ins.
  constexpr std::size_t kRequests = 100;
  for (std::size_t i = 0; i < kRequests; ++i) {
    bed.sim().schedule(SimTime::millis(static_cast<std::int64_t>(1200 * i)),
                       [&bed, address] {
                         bed.requestCatalog(0, "nginx", address, "warm");
                       });
  }
  bed.sim().runUntil(60_s + SimTime::seconds(1.2 * kRequests) + 60_s);

  const auto* warm = bed.recorder().series("warm");
  ES_ASSERT(warm != nullptr && warm->count() == kRequests);

  // ---- on-demand final snapshot + reconciliation ---------------------------
  auto finalSnapshot = bed.snapshotWriter()->writeNow();
  ES_ASSERT(finalSnapshot.ok());
  const telemetry::TelemetrySnapshot& snap = finalSnapshot.value();
  EdgeController& controller = bed.controller();

  const auto* warmHist =
      snap.findHistogram("edgesim_resolve_seconds", {{"path", "warm"}});
  const auto* coldHist = snap.findHistogram(
      "edgesim_resolve_seconds", {{"path", "cold"}, {"service", "nginx"}});
  check(warmHist != nullptr, "warm resolve histogram present");
  check(coldHist != nullptr, "cold resolve histogram present");
  if (warmHist != nullptr) {
    checkEq(warmHist->count, kRequests, "warm resolve count == warm requests");
  }
  if (coldHist != nullptr) {
    checkEq(coldHist->count, 1, "cold resolve count == 1 (the warmup)");
  }

  checkEq(snap.counterValue("edgesim_requests_total",
                            {{"outcome", "resolved"}}),
          controller.requestsResolved(),
          "requests_total{resolved} == controller.requestsResolved");
  checkEq(controller.requestsResolved(), kRequests + 1,
          "controller resolved == 101");
  checkEq(snap.counterValue("edgesim_requests_total", {{"outcome", "failed"}}),
          controller.requestsFailed(),
          "requests_total{failed} == controller.requestsFailed");
  checkEq(snap.counterValue("edgesim_scale_downs_total"),
          controller.scaleDowns(),
          "scale_downs_total == controller.scaleDowns");

  // Client-side series vs. the Recorder.
  checkEq(snap.counterValue("edgesim_client_requests_total",
                            {{"outcome", "ok"}}),
          bed.recorder().totalRecords() - bed.recorder().failureCount(),
          "client ok counter == recorder successful records");
  const auto* clientHist =
      snap.findHistogram("edgesim_client_request_seconds");
  check(clientHist != nullptr, "client request histogram present");
  if (clientHist != nullptr) {
    checkEq(clientHist->count, kRequests + 1,
            "client histogram count == all measured requests");
  }

  // FlowMemory: one miss (warmup), one hit per warm packet-in.
  checkEq(snap.counterValue("edgesim_flow_memory_lookups_total",
                            {{"shard", "0"}, {"result", "hit"}}),
          kRequests, "flow memory hits == warm requests");
  checkEq(snap.counterValue("edgesim_flow_memory_lookups_total",
                            {{"shard", "0"}, {"result", "miss"}}),
          1, "flow memory misses == 1");

  // Deployment phase histograms vs. the Recorder's per-phase samples.
  for (const char* phase : {"pull", "create", "scaleup-cmd", "wait"}) {
    const auto* hist = snap.findHistogram(
        "edgesim_deploy_phase_seconds",
        {{"cluster", "docker-egs"}, {"phase", phase}});
    const auto* series =
        bed.recorder().series(std::string("nginx/docker-egs/") + phase);
    const std::uint64_t histCount = hist != nullptr ? hist->count : 0;
    const std::uint64_t seriesCount = series != nullptr ? series->count() : 0;
    checkEq(histCount, seriesCount,
            strprintf("phase histogram count (%s) == recorder series", phase));
  }
  check(snap.counterTotal("edgesim_scheduler_decisions_total") >= 1,
        "scheduler made at least one decision");

  // A healthy warm run must not breach the generous budget.
  checkEq(bed.watchdog().breaches().size(), 0, "no SLO breaches");

  // ---- on-disk formats ------------------------------------------------------
  const std::size_t written = bed.snapshotWriter()->written();
  check(written >= 20, strprintf("periodic snapshots written (%zu >= 20)",
                                 written));
  const std::filesystem::path lastJson =
      std::filesystem::path(dir) /
      strprintf("snapshot_%06llu.json",
                static_cast<unsigned long long>(snap.sequence));
  const std::filesystem::path lastProm =
      std::filesystem::path(dir) /
      strprintf("snapshot_%06llu.prom",
                static_cast<unsigned long long>(snap.sequence));
  check(std::filesystem::exists(lastJson), "final JSON snapshot on disk");
  check(std::filesystem::exists(lastProm), "final .prom snapshot on disk");
  if (std::filesystem::exists(lastJson)) {
    const auto doc = JsonValue::parse(readFile(lastJson));
    check(doc.ok(), "final JSON snapshot parses");
    if (doc.ok()) {
      const auto reread = telemetry::TelemetrySnapshot::fromJson(doc.value());
      check(reread.ok(), "final JSON snapshot round-trips via fromJson");
      if (reread.ok()) {
        checkEq(reread.value().counterValue("edgesim_requests_total",
                                            {{"outcome", "resolved"}}),
                controller.requestsResolved(),
                "re-read snapshot resolved counter");
        checkEq(reread.value().histogramCountTotal("edgesim_resolve_seconds"),
                kRequests + 1, "re-read snapshot resolve observations");
      }
    }
  }
  if (std::filesystem::exists(lastProm)) {
    const Status lint = telemetry::lintPrometheus(readFile(lastProm));
    check(lint.ok(), "final .prom snapshot lints" +
                         (lint.ok() ? std::string()
                                    : ": " + lint.error().toString()));
  }

  // ---- report ---------------------------------------------------------------
  metrics::BenchReport report("telemetry_fig16");
  report.setMeta("requests", std::to_string(kRequests));
  report.addSeries("warm", *warm);
  report.addScalar("warm/count", static_cast<double>(warm->count()));
  report.addScalar("cold/count", 1.0);
  report.addScalar("snapshots", static_cast<double>(written));
  report.addScalar("reconcile_failures", static_cast<double>(failures));
  writeBenchReport(report);

  std::printf("telemetry fig16: %zu warm + 1 cold requests, %zu snapshots "
              "in %s, %d reconciliation failures\n",
              kRequests, written, dir.c_str(), failures);
  return failures == 0 ? 0 : 1;
}
