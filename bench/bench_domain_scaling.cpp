// Wall-clock scaling of the conservative time-domain scheduler.
//
// One 16-cluster ClusterTrace (~38k events, each carrying ~50us of
// modeled per-event work) runs at 1, 2, 4 and 8 time domains.  Domains
// advance on DomainScheduler::runParallel over an 8-worker LaneExecutor;
// the modeled work is a sleep, not CPU spin, so domains overlap on the
// pool regardless of host core count -- what the bench measures is the
// scheduler's ability to keep domains advancing independently under the
// conservative lookahead bound, not raw parallel FLOPs.
//
// Every configuration must reproduce the exact per-request outcomes of
// the single-domain run (the trace is infinite-server and pre-drawn, so
// any divergence is an engine bug), and the binary enforces the scaling
// floor from the design target: >= 3x wall-clock speedup at 8 domains
// vs 1 on the 16-cluster trace.
//
// Every run carries a metrics-only telemetry::DomainProbe (the observer
// overhead gate lives in bench_domain_observability_overhead), which
// yields the per-domain STALL FRACTION -- wall seconds spent blocked on an
// inbound channel's lookahead bound, over the run's makespan.  With
// $EDGESIM_DOMAIN_OBS_OUT set, an extra instrumented 8-domain run exports
// a domain trace (domain_trace.json) plus a telemetry snapshot pair for
// tools/critical_path, domain_top and telemetry_top --lint (nightly CI).
//
// Output: BENCH_domain_scaling.json.  The committed baseline keeps the
// domains/sec_per_kevent/* scalars (wall seconds per 1000 dispatched
// events -- inverse throughput, lower-is-better) and the per-domain
// domains/stall_fraction/* series (lower-is-better; median gated);
// speedup ratios and domains/parallel_efficiency/* ride along for humans
// but stay out of the lower-is-better gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_output.hpp"
#include "sim/domain_scheduler.hpp"
#include "telemetry/domain_probe.hpp"
#include "trace/trace_recorder.hpp"
#include "util/lane_executor.hpp"
#include "util/strings.hpp"
#include "workload/cluster_trace.hpp"

using namespace edgesim;
using namespace edgesim::bench;
using namespace edgesim::workload;

namespace {

constexpr std::uint32_t kClusters = 16;
constexpr std::uint32_t kRequestsPerCluster = 800;
constexpr std::size_t kWorkers = 8;
constexpr auto kEventWork = std::chrono::microseconds(50);

struct RunResult {
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
  std::vector<RequestOutcome> outcomes;
  /// Per-domain stalled-wall / makespan, from the probe's stall histograms.
  std::vector<double> stallFractions;
};

RunResult runConfig(std::uint32_t domains) {
  Simulation sim(/*seed=*/1);
  ClusterTraceParams params;
  params.clusters = kClusters;
  params.requestsPerCluster = kRequestsPerCluster;
  ClusterTraceRunner trace(sim, params, domains,
                           [] { std::this_thread::sleep_for(kEventWork); });
  telemetry::MetricsRegistry registry;
  telemetry::DomainProbe probe(sim, &registry, /*recorder=*/nullptr);
  trace.arm();

  LaneExecutor pool(kWorkers);
  DomainScheduler scheduler(sim);
  const auto wallStart = std::chrono::steady_clock::now();
  scheduler.runParallel(pool, trace.horizon());
  RunResult result;
  result.wallSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wallStart)
                           .count();
  result.events = sim.processedEvents();
  result.outcomes = trace.outcomes();
  ES_ASSERT(result.outcomes.size() ==
            static_cast<std::size_t>(kClusters) * kRequestsPerCluster);
  const telemetry::TelemetrySnapshot snap = registry.snapshot(0.0);
  for (const auto& hist : snap.histograms) {
    if (hist.name != "edgesim_domain_stall_wall_seconds") continue;
    result.stallFractions.push_back(hist.sum / result.wallSeconds);
  }
  return result;
}

/// Instrumented 8-domain run (metrics + trace recorder) exported into
/// `dir` for the nightly observability smoke: domain_trace.json for
/// critical_path, snapshot_000001.{json,prom} for domain_top / lint.
int exportObservabilityRun(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  Simulation sim(/*seed=*/1);
  ClusterTraceParams params;
  params.clusters = kClusters;
  params.requestsPerCluster = kRequestsPerCluster;
  ClusterTraceRunner trace(sim, params, /*domains=*/8,
                           [] { std::this_thread::sleep_for(kEventWork); });
  telemetry::MetricsRegistry registry;
  trace::TraceRecorder recorder;
  telemetry::DomainProbe probe(sim, &registry, &recorder);
  trace.arm();
  LaneExecutor pool(kWorkers);
  DomainScheduler scheduler(sim);
  scheduler.runParallel(pool, trace.horizon());

  const std::string tracePath = dir + "/domain_trace.json";
  {
    std::ofstream out(tracePath);
    out << recorder.chromeTraceJson(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "FAILED to write %s\n", tracePath.c_str());
      return 1;
    }
  }
  const telemetry::TelemetrySnapshot snap =
      registry.snapshot(trace.horizon().toSeconds());
  {
    std::ofstream out(dir + "/snapshot_000001.json");
    out << snap.toJson().dump(2) << "\n";
  }
  {
    std::ofstream out(dir + "/snapshot_000001.prom");
    out << snap.toPrometheus();
  }
  std::printf("observability export: %s\n", dir.c_str());
  return 0;
}

}  // namespace

int main() {
  metrics::BenchReport report("domain_scaling");
  report.setMeta("clusters", std::to_string(kClusters));
  report.setMeta("requests_per_cluster", std::to_string(kRequestsPerCluster));
  report.setMeta("event_work_us", "50");
  report.setMeta("workers", std::to_string(kWorkers));

  const std::uint32_t domainCounts[] = {1, 2, 4, 8};
  double wallByDomains[9] = {};
  std::vector<RequestOutcome> reference;
  std::printf("domains | wall [s] | speedup | effic | events/s\n");
  std::printf("--------+----------+---------+-------+---------\n");
  for (const std::uint32_t domains : domainCounts) {
    const RunResult run = runConfig(domains);
    if (domains == 1) {
      reference = run.outcomes;
    } else if (run.outcomes != reference) {
      std::fprintf(stderr,
                   "FAIL: %u-domain run diverged from the single-domain "
                   "outcomes\n",
                   domains);
      return 1;
    }
    wallByDomains[domains] = run.wallSeconds;
    const double speedup = wallByDomains[1] / run.wallSeconds;
    const double efficiency = speedup / static_cast<double>(domains);
    std::printf("%7u | %8.3f | %6.2fx | %5.2f | %8.0f\n", domains,
                run.wallSeconds, speedup, efficiency,
                static_cast<double>(run.events) / run.wallSeconds);
    const std::string tag = strprintf("d%u", domains);
    report.addScalar("domains/sec_per_kevent/" + tag,
                     1000.0 * run.wallSeconds /
                         static_cast<double>(run.events));
    report.addScalar("domains/speedup/" + tag, speedup);
    report.addScalar("domains/parallel_efficiency/" + tag, efficiency);
    if (domains > 1 && !run.stallFractions.empty()) {
      Samples fractions;
      for (const double fraction : run.stallFractions) {
        fractions.add(fraction);
      }
      report.addSeries("domains/stall_fraction/" + tag, fractions);
    }
  }

  const double speedup8 = wallByDomains[1] / wallByDomains[8];
  writeBenchReport(report);
  if (speedup8 < 3.0) {
    std::fprintf(stderr,
                 "FAIL: wall-clock speedup at 8 domains is %.2fx "
                 "(floor 3.0x)\n",
                 speedup8);
    return 1;
  }
  std::printf("scaling check: %.2fx wall-clock at 8 domains vs 1 (>= 3x)\n",
              speedup8);

  if (const char* obsDir = std::getenv("EDGESIM_DOMAIN_OBS_OUT")) {
    return exportObservabilityRun(obsDir);
  }
  return 0;
}
