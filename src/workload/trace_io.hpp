// Trace serialisation: a simple CSV interchange format so real traces
// (e.g. conversations extracted from a pcap with external tooling) can be
// fed to the simulator, and generated traces can be exported for plotting.
//
// Format (one row per request, header required):
//   src_ip,dst_ip,dst_port,time_seconds
//   10.0.2.1,198.18.1.1,80,0.482
// Rows belonging to the same (src, dst) pair form one conversation.
#pragma once

#include <string>

#include "util/result.hpp"
#include "workload/trace.hpp"

namespace edgesim::workload {

/// Serialise a trace to CSV text.
std::string traceToCsv(const Trace& trace);

/// Parse CSV text into a trace; `duration` is inferred as the latest
/// request time rounded up to the next second unless a larger value is
/// given.  Returns a descriptive error on malformed rows.
Result<Trace> traceFromCsv(const std::string& csv,
                           SimTime minimumDuration = SimTime::zero());

}  // namespace edgesim::workload
