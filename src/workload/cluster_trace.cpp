#include "workload/cluster_trace.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace edgesim::workload {

namespace {

// Per-cluster stream seed: mixes the trace seed with the cluster index
// through the splitmix64 finalizer.  Depends on (seed, cluster) only --
// NOT on the domain count -- so re-partitioning clusters over domains
// cannot change a single draw.
std::uint64_t clusterSeed(std::uint64_t seed, std::uint32_t cluster) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (cluster + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ClusterTraceRunner::ClusterTraceRunner(Simulation& sim,
                                       ClusterTraceParams params,
                                       std::uint32_t domainCount,
                                       EventWork work)
    : sim_(sim), params_(params), work_(std::move(work)) {
  ES_ASSERT(params_.clusters > 0);
  ES_ASSERT(domainCount > 0);
  ES_ASSERT(params_.interClusterLatency > SimTime::zero());
  ES_ASSERT(params_.crossClusterProbability >= 0.0 &&
            params_.crossClusterProbability <= 1.0);
  // Cap domains at clusters: an empty domain would only add idle channels.
  domainCount = std::min(domainCount, params_.clusters);

  domainIds_.push_back(kControlDomain);
  for (std::uint32_t d = 1; d < domainCount; ++d) {
    domainIds_.push_back(sim_.addDomain(strprintf("trace-%u", d)));
  }
  for (std::size_t a = 0; a < domainIds_.size(); ++a) {
    for (std::size_t b = a + 1; b < domainIds_.size(); ++b) {
      sim_.connectDomains(domainIds_[a], domainIds_[b],
                          params_.interClusterLatency);
    }
  }

  // Draw the whole trace now, one independent stream per cluster.
  plan_.resize(params_.clusters);
  recorded_.resize(params_.clusters);
  const double meanNanos =
      static_cast<double>(params_.meanInterarrival.toNanos());
  for (std::uint32_t c = 0; c < params_.clusters; ++c) {
    Rng rng(clusterSeed(params_.seed, c));
    auto& requests = plan_[c];
    requests.reserve(params_.requestsPerCluster);
    SimTime at = SimTime::zero();
    for (std::uint32_t i = 0; i < params_.requestsPerCluster; ++i) {
      at += SimTime::nanos(
          1 + static_cast<std::int64_t>(rng.exponential(meanNanos)));
      std::uint32_t target = c;
      if (params_.clusters > 1 && rng.chance(params_.crossClusterProbability)) {
        // Uniform over the OTHER clusters.
        target = static_cast<std::uint32_t>(
            rng.uniformInt(0, params_.clusters - 2));
        if (target >= c) ++target;
      }
      const PlannedRequest request{
          static_cast<std::uint64_t>(c) * params_.requestsPerCluster + i, c,
          target, at};
      requests.push_back(request);

      const bool remote = target != c;
      const SimTime done = at +
                           (remote ? params_.interClusterLatency
                                   : SimTime::zero()) +
                           params_.serviceTime;
      horizon_ = std::max(horizon_, done);
      expectedEvents_ += 3;  // arrival + service start + completion
    }
    recorded_[c].reserve(params_.requestsPerCluster);
  }
  horizon_ += SimTime::millis(1);
}

void ClusterTraceRunner::arm() {
  ES_ASSERT_MSG(!armed_, "ClusterTraceRunner::arm called twice");
  armed_ = true;
  for (std::uint32_t c = 0; c < params_.clusters; ++c) {
    const DomainId origin = domainOf(c);
    for (const PlannedRequest& request : plan_[c]) {
      // Arrival runs in the origin cluster's domain.
      sim_.scheduleOnAt(origin, request.arrival, [this, request] {
        if (work_) work_();
        auto serve = [this, request] {
          // Service start in the SERVING cluster's domain; completion
          // records there too, so all outcome writes stay domain-local.
          if (work_) work_();
          sim_.schedule(params_.serviceTime, [this, request] {
            if (work_) work_();
            const std::uint32_t hops = request.target != request.origin ? 1 : 0;
            recorded_[request.target].push_back(
                RequestOutcome{request.id, request.origin, request.target,
                               sim_.now().toNanos(), hops});
          });
        };
        if (request.target == request.origin) {
          // Local service: a zero-delay event keeps the per-request event
          // count uniform (arrival + service start + completion).
          sim_.schedule(SimTime::zero(), std::move(serve));
        } else {
          // Remote hop: one inter-cluster link traversal.  The delay
          // equals the channels' lookahead, so the conservative bound
          // always admits it.
          sim_.scheduleOn(domainOf(request.target), params_.interClusterLatency,
                          std::move(serve));
        }
      });
    }
  }
}

std::vector<RequestOutcome> ClusterTraceRunner::outcomes() const {
  std::vector<RequestOutcome> merged;
  merged.reserve(static_cast<std::size_t>(params_.clusters) *
                 params_.requestsPerCluster);
  for (const auto& perCluster : recorded_) {
    merged.insert(merged.end(), perCluster.begin(), perCluster.end());
  }
  ES_ASSERT_MSG(merged.size() == static_cast<std::size_t>(params_.clusters) *
                                     params_.requestsPerCluster,
                "cluster trace finished with unserved requests");
  std::sort(merged.begin(), merged.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  return merged;
}

}  // namespace edgesim::workload
