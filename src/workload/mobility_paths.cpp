#include "workload/mobility_paths.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace edgesim::workload {

Position MobilityPath::positionAt(SimTime t) const {
  ES_ASSERT(!waypoints.empty());
  if (t <= waypoints.front().at) return waypoints.front().pos;
  if (t >= waypoints.back().at) return waypoints.back().pos;
  // First waypoint strictly after t; its predecessor exists by the clamps.
  const auto after = std::upper_bound(
      waypoints.begin(), waypoints.end(), t,
      [](SimTime value, const Waypoint& wp) { return value < wp.at; });
  const Waypoint& b = *after;
  const Waypoint& a = *(after - 1);
  const double span = (b.at - a.at).toSeconds();
  if (span <= 0.0) return a.pos;
  const double f = (t - a.at).toSeconds() / span;
  return Position{a.pos.x + (b.pos.x - a.pos.x) * f,
                  a.pos.y + (b.pos.y - a.pos.y) * f};
}

namespace {

/// Uniform point within `radius` of `center` (rejection-free: sqrt radius).
Position scatter(Rng& rng, Position center, double radius) {
  const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double r = radius * std::sqrt(rng.uniform01());
  return Position{center.x + r * std::cos(angle),
                  center.y + r * std::sin(angle)};
}

}  // namespace

std::vector<MobilityPath> commuteWavePaths(const CommuteWaveParams& params) {
  Rng rng(params.seed);
  std::vector<MobilityPath> paths;
  paths.reserve(params.clients);
  for (std::size_t i = 0; i < params.clients; ++i) {
    Rng client = rng.fork(i + 1);
    const Position home = scatter(client, params.origin, params.scatterRadius);
    const Position work =
        scatter(client, params.destination, params.scatterRadius);
    const SimTime departure =
        params.firstDeparture +
        SimTime::seconds(client.uniform01() *
                         params.departureWindow.toSeconds());
    const SimTime travel = SimTime::seconds(
        params.travelTime.toSeconds() * client.uniform(0.8, 1.2));
    MobilityPath path;
    path.waypoints.push_back({SimTime::zero(), home});
    path.waypoints.push_back({departure, home});
    path.waypoints.push_back({departure + travel, work});
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<MobilityPath> stadiumEgressPaths(
    const StadiumEgressParams& params) {
  Rng rng(params.seed);
  std::vector<MobilityPath> paths;
  paths.reserve(params.clients);
  for (std::size_t i = 0; i < params.clients; ++i) {
    Rng client = rng.fork(i + 1);
    const double angle = client.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double distance =
        client.uniform(params.minHomeDistance, params.maxHomeDistance);
    const Position home{params.stadium.x + distance * std::cos(angle),
                        params.stadium.y + distance * std::sin(angle)};
    const SimTime leave =
        params.eventEnd +
        SimTime::seconds(client.uniform01() * params.egressWindow.toSeconds());
    const double speed = params.speed * client.uniform(0.7, 1.3);
    const SimTime travel = SimTime::seconds(distance / speed);
    MobilityPath path;
    path.waypoints.push_back({SimTime::zero(), params.stadium});
    path.waypoints.push_back({leave, params.stadium});
    path.waypoints.push_back({leave + travel, home});
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<MobilityPath> randomWaypointPaths(
    const RandomWaypointParams& params) {
  ES_ASSERT(params.minSpeed > 0.0 && params.maxSpeed >= params.minSpeed);
  Rng rng(params.seed);
  std::vector<MobilityPath> paths;
  paths.reserve(params.clients);
  for (std::size_t i = 0; i < params.clients; ++i) {
    Rng client = rng.fork(i + 1);
    MobilityPath path;
    Position pos{client.uniform(0.0, params.width),
                 client.uniform(0.0, params.height)};
    SimTime now = SimTime::zero();
    path.waypoints.push_back({now, pos});
    while (now < params.duration) {
      const Position next{client.uniform(0.0, params.width),
                          client.uniform(0.0, params.height)};
      const double speed = client.uniform(params.minSpeed, params.maxSpeed);
      const double distance = std::hypot(next.x - pos.x, next.y - pos.y);
      now = now + SimTime::seconds(distance / speed);
      path.waypoints.push_back({now, next});
      pos = next;
      const SimTime pause =
          SimTime::seconds(client.uniform01() * params.maxPause.toSeconds());
      if (pause > SimTime::zero()) {
        now = now + pause;
        path.waypoints.push_back({now, pos});
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace edgesim::workload
