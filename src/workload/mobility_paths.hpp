// Deterministic, seed-driven client movement paths for mobility scenarios.
//
// A path is a sorted list of sim-time waypoints in a flat 2-D service area;
// position between waypoints is linearly interpolated and clamped at both
// ends.  Three generators cover the scenario shapes the mobility suite
// needs:
//
//   * commuteWavePaths: clients clustered around an origin cell leave in a
//     staggered wave, travel to a destination cell, and dwell there -- the
//     morning-commute shape that drains one base station into another.
//   * stadiumEgressPaths: everyone starts packed at one point (the stadium)
//     and disperses radially to scattered home points after the event ends
//     -- the moving-flash-crowd shape.
//   * randomWaypointPaths: the classic random-waypoint model (pick a point,
//     travel at a drawn speed, pause, repeat).
//
// All generators draw exclusively from a caller-forked Rng, so paths are a
// pure function of (seed, params): the same inputs always produce the same
// movement, which the determinism golden pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace edgesim::workload {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

struct Waypoint {
  SimTime at;
  Position pos;
};

/// One client's movement: waypoints sorted by time, linearly interpolated.
struct MobilityPath {
  std::vector<Waypoint> waypoints;

  /// Position at `t`: clamped to the first/last waypoint outside the path's
  /// time range, linear interpolation between neighbours inside it.
  Position positionAt(SimTime t) const;
};

struct CommuteWaveParams {
  std::uint64_t seed = 1;
  std::size_t clients = 20;
  Position origin;
  Position destination{1000.0, 0.0};
  /// Clients start scattered uniformly within this radius of origin /
  /// destination.
  double scatterRadius = 50.0;
  /// First departure; subsequent departures are staggered uniformly over
  /// `departureWindow`.
  SimTime firstDeparture = SimTime::seconds(5.0);
  SimTime departureWindow = SimTime::seconds(10.0);
  /// Travel time origin -> destination, jittered per client by +-20%.
  SimTime travelTime = SimTime::seconds(10.0);
};

struct StadiumEgressParams {
  std::uint64_t seed = 1;
  std::size_t clients = 20;
  Position stadium;
  /// Home points are drawn uniformly in an annulus [minHomeDistance,
  /// maxHomeDistance] around the stadium.
  double minHomeDistance = 300.0;
  double maxHomeDistance = 1500.0;
  /// The event ends here; clients leave staggered over `egressWindow`.
  SimTime eventEnd = SimTime::seconds(5.0);
  SimTime egressWindow = SimTime::seconds(20.0);
  /// Walking speed in distance units per second, jittered per client.
  double speed = 50.0;
};

struct RandomWaypointParams {
  std::uint64_t seed = 1;
  std::size_t clients = 20;
  /// Service area [0, width] x [0, height].
  double width = 2000.0;
  double height = 2000.0;
  SimTime duration = SimTime::seconds(60.0);
  double minSpeed = 20.0;
  double maxSpeed = 100.0;
  SimTime maxPause = SimTime::seconds(5.0);
};

std::vector<MobilityPath> commuteWavePaths(const CommuteWaveParams& params);
std::vector<MobilityPath> stadiumEgressPaths(const StadiumEgressParams& params);
std::vector<MobilityPath> randomWaypointPaths(const RandomWaypointParams& params);

}  // namespace edgesim::workload
