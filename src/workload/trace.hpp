// Network-trace model: TCP conversations extracted from a capture.
//
// The paper drives its evaluation with the five-minute `bigFlows.pcap`
// capture: "We extracted all TCP conversations to public IP addresses and
// filtered for requests to port 80.  As edge service addresses, we selected
// all destination addresses receiving a minimum of 20 requests -- leading
// us to 42 services receiving 1708 requests."  This module models exactly
// that pipeline: a trace of conversations, the port/min-requests filter,
// and the derived per-service request schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"

namespace edgesim::workload {

/// One TCP conversation: a client talking to a destination address,
/// issuing one or more requests at given times.
struct TcpConversation {
  Ipv4 srcIp;
  Endpoint dst;
  std::vector<SimTime> requestTimes;  // sorted, relative to trace start
};

struct Trace {
  SimTime duration;
  std::vector<TcpConversation> conversations;

  std::size_t totalRequests() const;
};

/// A service address selected by the filter, with its request schedule.
struct ServiceLoad {
  Endpoint address;
  /// (time, clientIp) pairs, sorted by time.
  std::vector<std::pair<SimTime, Ipv4>> requests;

  SimTime firstRequestAt() const { return requests.front().first; }
  std::size_t requestCount() const { return requests.size(); }
};

/// Apply the paper's selection rule: keep conversations to `port` whose
/// destination address receives at least `minRequests` requests in total.
/// Returns one ServiceLoad per surviving destination, ordered by first
/// request time.
std::vector<ServiceLoad> extractServices(const Trace& trace,
                                         std::uint16_t port = 80,
                                         std::size_t minRequests = 20);

}  // namespace edgesim::workload
