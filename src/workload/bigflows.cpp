#include "workload/bigflows.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace edgesim::workload {

namespace {

/// Split `total` requests across `n` services with a Zipf-like share while
/// respecting a per-service minimum.  Deterministic.
std::vector<std::size_t> zipfCounts(std::size_t total, std::size_t n,
                                    std::size_t minimum, double exponent) {
  ES_ASSERT(total >= n * minimum);
  std::vector<double> weights(n);
  double weightSum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    weightSum += weights[i];
  }
  const std::size_t spare = total - n * minimum;
  std::vector<std::size_t> counts(n, minimum);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto extra = static_cast<std::size_t>(
        std::floor(static_cast<double>(spare) * weights[i] / weightSum));
    counts[i] += extra;
    assigned += extra;
  }
  // Distribute the rounding remainder to the hottest services.
  std::size_t remainder = spare - assigned;
  for (std::size_t i = 0; remainder > 0; i = (i + 1) % n, --remainder) {
    ++counts[i];
  }
  return counts;
}

}  // namespace

Trace generateBigFlows(const BigFlowsParams& params) {
  ES_ASSERT(params.targetServices >= 1);
  ES_ASSERT(params.targetRequests >=
            params.targetServices * params.minRequestsPerService);
  Rng rng(params.seed);
  Trace trace;
  trace.duration = params.duration;

  const auto counts =
      zipfCounts(params.targetRequests, params.targetServices,
                 params.minRequestsPerService, params.zipfExponent);

  const double horizon = params.duration.toSeconds();

  // --- the 42 "real" edge services --------------------------------------
  for (std::size_t s = 0; s < params.targetServices; ++s) {
    // Public destination addresses: 198.18.x.y (benchmark address space).
    const Endpoint dst(
        Ipv4(198, 18, static_cast<std::uint8_t>(s / 250 + 1),
             static_cast<std::uint8_t>(s % 250 + 1)),
        80);

    // First request: a mixture -- the capture starts mid-activity, so a
    // burst of services appears within the first seconds (fig. 10 shows up
    // to eight deployments per second early), the rest arrive with an
    // exponential tail.
    double first;
    if (rng.chance(0.35)) {
      first = rng.uniform(0.0, 2.0);
    } else {
      first = rng.exponential(params.firstRequestMean.toSeconds());
      while (first >= horizon * 0.9) {
        first = rng.exponential(params.firstRequestMean.toSeconds());
      }
    }

    // Remaining requests: uniform over (first, horizon).
    std::vector<double> times;
    times.push_back(first);
    for (std::size_t r = 1; r < counts[s]; ++r) {
      times.push_back(rng.uniform(first, horizon));
    }
    std::sort(times.begin(), times.end());

    // Conversations: group requests by client (the paper's clients are 20
    // Raspberry Pis; each request is attributed to one of them).
    std::vector<TcpConversation> perClient(params.clientCount);
    for (std::size_t c = 0; c < params.clientCount; ++c) {
      perClient[c].srcIp = Ipv4(10, 0, 2, static_cast<std::uint8_t>(c + 1));
      perClient[c].dst = dst;
    }
    for (const double t : times) {
      const auto c = static_cast<std::size_t>(
          rng.uniformInt(0, params.clientCount - 1));
      perClient[c].requestTimes.push_back(SimTime::seconds(t));
    }
    for (auto& conversation : perClient) {
      if (!conversation.requestTimes.empty()) {
        trace.conversations.push_back(std::move(conversation));
      }
    }
  }

  // --- noise discarded by the filter -------------------------------------
  // Conversations on other ports (e.g. 443) -- any volume, filtered out.
  for (std::size_t i = 0; i < params.noiseConversationsOtherPorts; ++i) {
    TcpConversation conversation;
    conversation.srcIp =
        Ipv4(10, 0, 2, static_cast<std::uint8_t>(
                           rng.uniformInt(1, params.clientCount)));
    conversation.dst = Endpoint(
        Ipv4(198, 19, 1, static_cast<std::uint8_t>(i % 250 + 1)),
        rng.chance(0.7) ? 443 : static_cast<std::uint16_t>(
                                    rng.uniformInt(1024, 65535)));
    const auto requestCount = rng.uniformInt(1, 50);
    for (std::uint64_t r = 0; r < requestCount; ++r) {
      conversation.requestTimes.push_back(
          SimTime::seconds(rng.uniform(0.0, horizon)));
    }
    std::sort(conversation.requestTimes.begin(),
              conversation.requestTimes.end());
    trace.conversations.push_back(std::move(conversation));
  }
  // Port-80 destinations below the minimum request threshold.
  for (std::size_t i = 0; i < params.noiseDestinationsBelowMinimum; ++i) {
    TcpConversation conversation;
    conversation.srcIp =
        Ipv4(10, 0, 2, static_cast<std::uint8_t>(
                           rng.uniformInt(1, params.clientCount)));
    conversation.dst =
        Endpoint(Ipv4(198, 20, 1, static_cast<std::uint8_t>(i % 250 + 1)), 80);
    const auto requestCount =
        rng.uniformInt(1, params.minRequestsPerService - 1);
    for (std::uint64_t r = 0; r < requestCount; ++r) {
      conversation.requestTimes.push_back(
          SimTime::seconds(rng.uniform(0.0, horizon)));
    }
    std::sort(conversation.requestTimes.begin(),
              conversation.requestTimes.end());
    trace.conversations.push_back(std::move(conversation));
  }

  return trace;
}

std::vector<ServiceLoad> generateFilteredServices(
    const BigFlowsParams& params) {
  const Trace trace = generateBigFlows(params);
  auto services = extractServices(trace, 80, params.minRequestsPerService);
  ES_ASSERT_MSG(services.size() == params.targetServices,
                "bigflows generator: filter did not yield the target count");
  std::size_t total = 0;
  for (const auto& service : services) total += service.requestCount();
  ES_ASSERT_MSG(total == params.targetRequests,
                "bigflows generator: request total mismatch");
  return services;
}

}  // namespace edgesim::workload
