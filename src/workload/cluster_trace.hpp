// Synthetic multi-cluster request trace for the time-domain scheduler.
//
// Models a fleet of edge clusters (default 16), each receiving its own
// Poisson request stream.  Most requests are served locally; a fraction
// hops to a uniformly-chosen remote cluster over an inter-cluster link
// whose latency doubles as the conservative lookahead between the
// clusters' time domains.  Service is infinite-server (no shared queueing
// state), so every request's outcome is a pure function of the trace
// parameters: outcomes are identical no matter how clusters are packed
// into domains or whether the run is sequential or parallel.  That makes
// the trace both the scaling benchmark workload (bench_domain_scaling)
// and the cross-domain determinism oracle (DomainDeterminism tests).
//
// All randomness is drawn UP FRONT from one Rng stream per cluster
// (seeded from params.seed and the cluster index only), never at event
// time -- domain count and event interleaving cannot perturb the trace.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.hpp"

namespace edgesim::workload {

struct ClusterTraceParams {
  std::uint64_t seed = 1;
  std::uint32_t clusters = 16;
  std::uint32_t requestsPerCluster = 1000;
  /// Mean of the per-cluster exponential interarrival distribution.
  SimTime meanInterarrival = SimTime::millis(5);
  /// Probability a request is served by a remote cluster.
  double crossClusterProbability = 0.15;
  /// Latency of every inter-cluster link; also the lookahead declared on
  /// every cross-domain channel, so remote hops always clear the
  /// conservative bound.
  SimTime interClusterLatency = SimTime::millis(5);
  /// Fixed per-request service time (infinite-server: requests never
  /// contend, keeping outcomes order-independent).
  SimTime serviceTime = SimTime::millis(2);
};

/// What happened to one request; fully determined by the parameters.
struct RequestOutcome {
  std::uint64_t id = 0;        // origin * requestsPerCluster + index
  std::uint32_t origin = 0;    // cluster the request arrived at
  std::uint32_t served = 0;    // cluster that ran the service
  std::int64_t completedNanos = 0;  // sim time the service finished
  std::uint32_t hops = 0;      // 0 = local, 1 = remote

  friend bool operator==(const RequestOutcome&,
                         const RequestOutcome&) = default;
};

/// Builds the trace over `domainCount` time domains and runs it through
/// the simulation's event engine.
///
///   Simulation sim(seed);
///   ClusterTraceRunner trace(sim, params, /*domainCount=*/8);
///   trace.arm();
///   sim.runUntil(trace.horizon());          // or DomainScheduler::runParallel
///   auto outcomes = trace.outcomes();       // sorted by id, same for any
///                                           // domainCount / driver
///
/// The constructor adds `domainCount - 1` domains to `sim` (cluster c
/// lives on domain c % domainCount; domain 0 is the existing control
/// domain) and connects every domain pair with interClusterLatency
/// lookahead.  `work`, when set, runs once inside every trace event --
/// benches pass a short sleep to model per-event computation that the
/// parallel driver can overlap.
class ClusterTraceRunner {
 public:
  using EventWork = std::function<void()>;

  ClusterTraceRunner(Simulation& sim, ClusterTraceParams params,
                     std::uint32_t domainCount, EventWork work = nullptr);

  /// Schedules every arrival into its cluster's domain.  Call once,
  /// before running (and before DomainScheduler::runParallel).
  void arm();

  /// A time by which every request has completed.
  SimTime horizon() const { return horizon_; }

  /// Number of events arm() commits the engine to dispatch
  /// (arrival + optional remote hop + completion per request).
  std::uint64_t expectedEvents() const { return expectedEvents_; }

  /// Merged outcomes, sorted by id.  Call after the run; asserts every
  /// request completed.
  std::vector<RequestOutcome> outcomes() const;

  DomainId domainOf(std::uint32_t cluster) const {
    return static_cast<DomainId>(domainIds_[cluster % domainIds_.size()]);
  }

 private:
  struct PlannedRequest {
    std::uint64_t id;
    std::uint32_t origin;
    std::uint32_t target;
    SimTime arrival;
  };

  Simulation& sim_;
  ClusterTraceParams params_;
  EventWork work_;
  std::vector<DomainId> domainIds_;  // one per domain slot used
  std::vector<std::vector<PlannedRequest>> plan_;      // per origin cluster
  std::vector<std::vector<RequestOutcome>> recorded_;  // per SERVING cluster
  SimTime horizon_ = SimTime::zero();
  std::uint64_t expectedEvents_ = 0;
  bool armed_ = false;
};

}  // namespace edgesim::workload
