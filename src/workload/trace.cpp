#include "workload/trace.hpp"

#include <algorithm>
#include <map>

namespace edgesim::workload {

std::size_t Trace::totalRequests() const {
  std::size_t total = 0;
  for (const auto& conversation : conversations) {
    total += conversation.requestTimes.size();
  }
  return total;
}

std::vector<ServiceLoad> extractServices(const Trace& trace,
                                         std::uint16_t port,
                                         std::size_t minRequests) {
  std::map<Endpoint, ServiceLoad> byDst;
  for (const auto& conversation : trace.conversations) {
    if (conversation.dst.port != port) continue;
    auto& load = byDst[conversation.dst];
    load.address = conversation.dst;
    for (const SimTime t : conversation.requestTimes) {
      load.requests.emplace_back(t, conversation.srcIp);
    }
  }

  std::vector<ServiceLoad> services;
  for (auto& [dst, load] : byDst) {
    if (load.requests.size() < minRequests) continue;
    std::sort(load.requests.begin(), load.requests.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    services.push_back(std::move(load));
  }
  std::sort(services.begin(), services.end(),
            [](const ServiceLoad& a, const ServiceLoad& b) {
              return a.firstRequestAt() < b.firstRequestAt();
            });
  return services;
}

}  // namespace edgesim::workload
