// Synthetic stand-in for the bigFlows.pcap capture.
//
// We do not ship the real capture; instead we generate a trace whose
// *filtered aggregates match the paper's published numbers*: after the
// port-80 / >=20-requests filter, exactly `targetServices` (42) services
// receive exactly `targetRequests` (1708) requests within `duration`
// (5 minutes), with a bursty start (fig. 10 shows up to 8 service
// first-requests per second early in the trace).  The unfiltered trace
// additionally contains noise the filter must discard: conversations to
// other ports and destinations with fewer than 20 requests.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace edgesim::workload {

struct BigFlowsParams {
  std::uint64_t seed = 1;
  SimTime duration = SimTime::seconds(300.0);
  std::size_t targetServices = 42;
  std::size_t targetRequests = 1708;
  std::size_t minRequestsPerService = 20;
  /// Zipf exponent for the per-service request share (heavy tail: a few
  /// hot services, many near the minimum -- visible in fig. 9).
  double zipfExponent = 1.0;
  /// Mean of the exponential distribution of service first-request times;
  /// a small value front-loads deployments like fig. 10.
  SimTime firstRequestMean = SimTime::seconds(35.0);
  std::size_t clientCount = 20;  // the paper's 20 Raspberry Pi clients
  /// Noise that the filter must discard.
  std::size_t noiseConversationsOtherPorts = 60;
  std::size_t noiseDestinationsBelowMinimum = 25;
};

/// Generate the synthetic trace (deterministic per seed).
Trace generateBigFlows(const BigFlowsParams& params);

/// Convenience: generate + filter in one step; the result is guaranteed to
/// have exactly params.targetServices services and params.targetRequests
/// requests in total.
std::vector<ServiceLoad> generateFilteredServices(const BigFlowsParams& params);

}  // namespace edgesim::workload
