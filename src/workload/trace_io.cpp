#include "workload/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <charconv>
#include <map>

#include "util/strings.hpp"

namespace edgesim::workload {

std::string traceToCsv(const Trace& trace) {
  std::string out = "src_ip,dst_ip,dst_port,time_seconds\n";
  for (const auto& conversation : trace.conversations) {
    for (const SimTime t : conversation.requestTimes) {
      // Nanosecond precision: SimTime round-trips exactly.
      out += strprintf("%s,%s,%u,%.9f\n",
                       conversation.srcIp.toString().c_str(),
                       conversation.dst.ip.toString().c_str(),
                       conversation.dst.port, t.toSeconds());
    }
  }
  return out;
}

Result<Trace> traceFromCsv(const std::string& csv, SimTime minimumDuration) {
  const auto lines = split(csv, '\n');
  if (lines.empty()) {
    return makeError(Errc::kInvalidArgument, "empty trace file");
  }

  // Group rows by (src, dst); preserve first-appearance order.
  std::map<std::pair<Ipv4, Endpoint>, std::size_t> index;
  Trace trace;
  SimTime latest;

  bool headerSeen = false;
  int lineNo = 0;
  for (const auto& raw : lines) {
    ++lineNo;
    const auto line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!headerSeen) {
      headerSeen = true;
      if (line.find("src_ip") != std::string_view::npos) continue;
      return makeError(Errc::kInvalidArgument,
                       "missing header row (src_ip,dst_ip,dst_port,time_seconds)");
    }
    const auto fields = split(line, ',');
    if (fields.size() != 4) {
      return makeError(Errc::kInvalidArgument,
                       strprintf("line %d: expected 4 fields", lineNo));
    }
    const auto src = Ipv4::parse(trim(fields[0]));
    const auto dstIp = Ipv4::parse(trim(fields[1]));
    if (!src || !dstIp) {
      return makeError(Errc::kInvalidArgument,
                       strprintf("line %d: bad IP address", lineNo));
    }
    unsigned port = 0;
    {
      const auto text = trim(fields[2]);
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), port);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          port > 65535) {
        return makeError(Errc::kInvalidArgument,
                         strprintf("line %d: bad port", lineNo));
      }
    }
    double seconds = 0;
    {
      const auto text = trim(fields[3]);
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), seconds);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          seconds < 0) {
        return makeError(Errc::kInvalidArgument,
                         strprintf("line %d: bad time", lineNo));
      }
    }

    const Endpoint dst(*dstIp, static_cast<std::uint16_t>(port));
    const auto key = std::make_pair(*src, dst);
    auto it = index.find(key);
    if (it == index.end()) {
      TcpConversation conversation;
      conversation.srcIp = *src;
      conversation.dst = dst;
      trace.conversations.push_back(std::move(conversation));
      it = index.emplace(key, trace.conversations.size() - 1).first;
    }
    const SimTime at = SimTime::seconds(seconds);
    trace.conversations[it->second].requestTimes.push_back(at);
    latest = std::max(latest, at);
  }

  if (!headerSeen) {
    return makeError(Errc::kInvalidArgument, "empty trace file");
  }
  for (auto& conversation : trace.conversations) {
    std::sort(conversation.requestTimes.begin(),
              conversation.requestTimes.end());
  }
  // Round the inferred duration up to a whole second.
  const auto ceilSeconds =
      SimTime::seconds(std::ceil(latest.toSeconds() + 1e-9));
  trace.duration = std::max(minimumDuration, ceilSeconds);
  return trace;
}

}  // namespace edgesim::workload
