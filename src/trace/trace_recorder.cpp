#include "trace/trace_recorder.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/strings.hpp"

namespace edgesim::trace {

namespace {

// SpanId layout: high bits select the per-thread buffer, low 40 bits hold
// the 1-based local index.  Buffer 0 therefore produces the dense 1-based
// IDs of the pre-threading recorder.
constexpr std::uint64_t kLocalBits = 40;
constexpr std::uint64_t kLocalMask = (std::uint64_t{1} << kLocalBits) - 1;

constexpr SpanId encodeSpanId(std::size_t buffer, std::size_t localIndex) {
  return (static_cast<SpanId>(buffer) << kLocalBits) |
         (static_cast<SpanId>(localIndex) + 1);
}

/// Each thread remembers which buffer it owns in each live recorder:
/// (buffer index, buffer pointer).  Keyed by a globally unique recorder ID
/// (never reused), so a recorder dying and another being allocated at the
/// same address cannot alias.  The pointer is type-erased because Buffer
/// is a private nested type.
thread_local std::unordered_map<std::uint64_t, std::pair<std::size_t, void*>>
    tlsBuffers;

std::uint64_t nextRecorderId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double RequestBreakdown::segmentSum() const {
  double sum = 0.0;
  for (const auto& [name, seconds] : segments) sum += seconds;
  return sum;
}

TraceRecorder::TraceRecorder() : id_(nextRecorderId()) {
  // The constructing thread (the simulation thread in every testbed) owns
  // buffer 0: its spans keep the seed's dense IDs and recording order.
  buffers_.push_back(std::make_unique<Buffer>());
  tlsBuffers[id_] = {0, buffers_.back().get()};
}

std::pair<std::size_t, TraceRecorder::Buffer*> TraceRecorder::myBuffer() {
  auto it = tlsBuffers.find(id_);
  if (it == tlsBuffers.end()) {
    std::lock_guard lock(buffersMutex_);
    const std::size_t index = buffers_.size();
    buffers_.push_back(std::make_unique<Buffer>());
    it = tlsBuffers
             .emplace(id_, std::make_pair(
                               index, static_cast<void*>(buffers_.back().get())))
             .first;
  }
  return {it->second.first, static_cast<Buffer*>(it->second.second)};
}

std::vector<TraceRecorder::Buffer*> TraceRecorder::bufferList() const {
  std::lock_guard lock(buffersMutex_);
  std::vector<Buffer*> list;
  list.reserve(buffers_.size());
  for (const auto& buffer : buffers_) list.push_back(buffer.get());
  return list;
}

RequestId TraceRecorder::newRequest() {
  if (!enabled()) return 0;
  return nextRequest_.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool TraceRecorder::admitEvent() {
  const std::size_t cap = maxEvents_.load(std::memory_order_relaxed);
  if (cap != 0 && eventCount_.load(std::memory_order_relaxed) >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  eventCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SpanId TraceRecorder::beginSpan(RequestId request, const std::string& name,
                                const std::string& category, SimTime now,
                                TraceArgs args, SpanId parent) {
  if (!enabled()) return 0;
  if (!admitEvent()) return 0;
  const auto [bufferIndex, bufferPtr] = myBuffer();
  Buffer& buffer = *bufferPtr;
  std::lock_guard lock(buffer.mutex);
  TraceSpan span;
  span.id = encodeSpanId(bufferIndex, buffer.spans.size());
  span.parent = parent;
  span.request = request;
  span.name = name;
  span.category = category;
  span.start = now;
  span.end = now;
  span.args = std::move(args);
  buffer.spans.push_back(std::move(span));
  spanCount_.fetch_add(1, std::memory_order_relaxed);
  return buffer.spans.back().id;
}

void TraceRecorder::endSpan(SpanId span, SimTime now, TraceArgs extraArgs) {
  if (!enabled() || span == 0) return;
  const std::size_t bufferIndex = span >> kLocalBits;
  const std::uint64_t local = span & kLocalMask;
  if (local == 0) return;
  Buffer* buffer = nullptr;
  {
    std::lock_guard lock(buffersMutex_);
    if (bufferIndex >= buffers_.size()) return;
    buffer = buffers_[bufferIndex].get();
  }
  std::lock_guard lock(buffer->mutex);
  if (local > buffer->spans.size()) return;
  TraceSpan& s = buffer->spans[local - 1];
  s.end = now;
  s.open = false;
  for (auto& arg : extraArgs) s.args.push_back(std::move(arg));
}

SpanId TraceRecorder::completeSpan(RequestId request, const std::string& name,
                                   const std::string& category, SimTime start,
                                   SimTime end, TraceArgs args, SpanId parent) {
  if (!enabled()) return 0;
  const SpanId id = beginSpan(request, name, category, start, std::move(args),
                              parent);
  endSpan(id, end);
  return id;
}

void TraceRecorder::instant(RequestId request, const std::string& name,
                            const std::string& category, SimTime at,
                            TraceArgs args) {
  if (!enabled()) return;
  if (!admitEvent()) return;
  Buffer& buffer = *myBuffer().second;
  std::lock_guard lock(buffer.mutex);
  buffer.instants.push_back({request, -1, name, category, at, std::move(args)});
}

SpanId TraceRecorder::completeTrackSpan(std::int64_t track,
                                        const std::string& name,
                                        const std::string& category,
                                        SimTime start, SimTime end,
                                        TraceArgs args) {
  if (!enabled()) return 0;
  if (!admitEvent()) return 0;
  const auto [bufferIndex, bufferPtr] = myBuffer();
  Buffer& buffer = *bufferPtr;
  std::lock_guard lock(buffer.mutex);
  TraceSpan span;
  span.id = encodeSpanId(bufferIndex, buffer.spans.size());
  span.track = track;
  span.name = name;
  span.category = category;
  span.start = start;
  span.end = end;
  span.open = false;
  span.args = std::move(args);
  buffer.spans.push_back(std::move(span));
  spanCount_.fetch_add(1, std::memory_order_relaxed);
  return buffer.spans.back().id;
}

void TraceRecorder::flowBegin(std::uint64_t flow, std::int64_t track,
                              const std::string& name,
                              const std::string& category, SimTime at) {
  if (!enabled()) return;
  if (!admitEvent()) return;
  Buffer& buffer = *myBuffer().second;
  std::lock_guard lock(buffer.mutex);
  buffer.flows.push_back({flow, track, name, category, at, true});
}

void TraceRecorder::flowEnd(std::uint64_t flow, std::int64_t track,
                            const std::string& name,
                            const std::string& category, SimTime at) {
  if (!enabled()) return;
  if (!admitEvent()) return;
  Buffer& buffer = *myBuffer().second;
  std::lock_guard lock(buffer.mutex);
  buffer.flows.push_back({flow, track, name, category, at, false});
}

void TraceRecorder::nameTrack(std::int64_t track, const std::string& name) {
  if (!enabled()) return;
  std::lock_guard lock(trackNamesMutex_);
  trackNames_[track] = name;
}

void TraceRecorder::bindFlow(Ipv4 client, Endpoint service, RequestId request) {
  if (!enabled()) return;
  std::lock_guard lock(bindingsMutex_);
  flowBindings_[{client, service}] = request;
}

RequestId TraceRecorder::clientRequestDone(Ipv4 client, Endpoint service,
                                           SimTime start, SimTime end,
                                           bool success,
                                           const std::string& series) {
  if (!enabled()) return 0;
  RequestId request = 0;
  bool bound = false;
  {
    std::lock_guard lock(bindingsMutex_);
    const auto it = flowBindings_.find({client, service});
    if (it != flowBindings_.end()) {
      request = it->second;
      bound = true;
      flowBindings_.erase(it);  // one client exchange per packet-in binding
    }
  }
  if (!bound) {
    // No controller interaction: the request rode already-installed switch
    // flows (warm path) -- it still gets its own timeline row.
    request = newRequest();
    instant(request, "warm-path", "client", start,
            {{"client", client.toString()}, {"service", service.toString()}});
  }
  completeSpan(request, "request", "client", start, end,
               {{"series", series},
                {"client", client.toString()},
                {"service", service.toString()},
                {"success", success ? "true" : "false"}});
  return request;
}

const TraceSpan* TraceRecorder::spanById(SpanId id) const {
  if (id == 0) return nullptr;
  const std::size_t bufferIndex = id >> kLocalBits;
  const std::uint64_t local = id & kLocalMask;
  if (local == 0) return nullptr;
  Buffer* buffer = nullptr;
  {
    std::lock_guard lock(buffersMutex_);
    if (bufferIndex >= buffers_.size()) return nullptr;
    buffer = buffers_[bufferIndex].get();
  }
  std::lock_guard lock(buffer->mutex);
  if (local > buffer->spans.size()) return nullptr;
  return &buffer->spans[local - 1];  // deque storage: pointer stays valid
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> merged;
  std::size_t populated = 0;
  for (Buffer* buffer : bufferList()) {
    std::lock_guard lock(buffer->mutex);
    if (!buffer->spans.empty()) ++populated;
    merged.insert(merged.end(), buffer->spans.begin(), buffer->spans.end());
  }
  if (populated <= 1) return merged;  // recording order == seed order
  // Multi-threaded recording: canonical content sort so the export does
  // not depend on thread interleaving.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start != b.start) return a.start < b.start;
                     if (a.request != b.request) return a.request < b.request;
                     if (a.track != b.track) return a.track < b.track;
                     if (a.category != b.category) return a.category < b.category;
                     if (a.name != b.name) return a.name < b.name;
                     return a.id < b.id;
                   });
  return merged;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  std::vector<TraceInstant> merged;
  std::size_t populated = 0;
  for (Buffer* buffer : bufferList()) {
    std::lock_guard lock(buffer->mutex);
    if (!buffer->instants.empty()) ++populated;
    merged.insert(merged.end(), buffer->instants.begin(),
                  buffer->instants.end());
  }
  if (populated <= 1) return merged;
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceInstant& a, const TraceInstant& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.request != b.request) return a.request < b.request;
                     if (a.category != b.category) return a.category < b.category;
                     return a.name < b.name;
                   });
  return merged;
}

std::vector<TraceFlow> TraceRecorder::flows() const {
  std::vector<TraceFlow> merged;
  std::size_t populated = 0;
  for (Buffer* buffer : bufferList()) {
    std::lock_guard lock(buffer->mutex);
    if (!buffer->flows.empty()) ++populated;
    merged.insert(merged.end(), buffer->flows.begin(), buffer->flows.end());
  }
  if (populated <= 1) return merged;
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceFlow& a, const TraceFlow& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.flow != b.flow) return a.flow < b.flow;
                     return a.begin && !b.begin;  // send before receive
                   });
  return merged;
}

// ---- export -----------------------------------------------------------------

namespace {

JsonValue argsObject(const TraceArgs& args) {
  JsonValue obj = JsonValue::object();
  for (const auto& [key, value] : args) obj.set(key, value);
  return obj;
}

}  // namespace

JsonValue TraceRecorder::chromeTrace() const {
  const std::vector<TraceSpan> allSpans = spans();
  const std::vector<TraceInstant> allInstants = instants();
  const std::vector<TraceFlow> allFlows = flows();

  // Close still-open spans at the maximum observed timestamp so the file
  // stays loadable even for aborted runs.
  SimTime maxTime = SimTime::zero();
  for (const auto& span : allSpans) {
    maxTime = std::max(maxTime, std::max(span.start, span.end));
  }
  for (const auto& i : allInstants) maxTime = std::max(maxTime, i.at);
  for (const auto& f : allFlows) maxTime = std::max(maxTime, f.at);

  // Track-addressed events live in their own process row block (pid 2);
  // traces without them (every request-path-only export, including the
  // determinism goldens) emit no pid-2 metadata and stay bytewise identical
  // to the historical layout.
  bool anyTrack = !allFlows.empty();
  for (const auto& span : allSpans) anyTrack = anyTrack || span.track >= 0;
  for (const auto& i : allInstants) anyTrack = anyTrack || i.track >= 0;

  JsonValue events = JsonValue::array();

  JsonValue processName = JsonValue::object();
  processName.set("ph", "M");
  processName.set("pid", 1);
  processName.set("name", "process_name");
  JsonValue processArgs = JsonValue::object();
  processArgs.set("name", "edgesim");
  processName.set("args", std::move(processArgs));
  events.push(std::move(processName));

  std::vector<RequestId> requests;
  for (const auto& span : allSpans) {
    if (span.track < 0) requests.push_back(span.request);
  }
  for (const auto& i : allInstants) {
    if (i.track < 0) requests.push_back(i.request);
  }
  std::sort(requests.begin(), requests.end());
  requests.erase(std::unique(requests.begin(), requests.end()),
                 requests.end());
  for (const RequestId request : requests) {
    JsonValue threadName = JsonValue::object();
    threadName.set("ph", "M");
    threadName.set("pid", 1);
    threadName.set("tid", request);
    threadName.set("name", "thread_name");
    JsonValue nameArgs = JsonValue::object();
    nameArgs.set("name", request == 0 ? std::string("unattributed")
                                      : strprintf("request %llu",
                                                  static_cast<unsigned long long>(
                                                      request)));
    threadName.set("args", std::move(nameArgs));
    events.push(std::move(threadName));
  }

  if (anyTrack) {
    JsonValue domainProcess = JsonValue::object();
    domainProcess.set("ph", "M");
    domainProcess.set("pid", 2);
    domainProcess.set("name", "process_name");
    JsonValue domainArgs = JsonValue::object();
    domainArgs.set("name", "edgesim-domains");
    domainProcess.set("args", std::move(domainArgs));
    events.push(std::move(domainProcess));

    std::map<std::int64_t, std::string> names;
    {
      std::lock_guard lock(trackNamesMutex_);
      names = trackNames_;
    }
    for (const auto& [track, name] : names) {
      JsonValue trackName = JsonValue::object();
      trackName.set("ph", "M");
      trackName.set("pid", 2);
      trackName.set("tid", track);
      trackName.set("name", "thread_name");
      JsonValue nameArgs = JsonValue::object();
      nameArgs.set("name", name);
      trackName.set("args", std::move(nameArgs));
      events.push(std::move(trackName));
    }
  }

  for (const auto& span : allSpans) {
    const SimTime end = span.open ? maxTime : span.end;
    JsonValue event = JsonValue::object();
    event.set("name", span.name);
    event.set("cat", span.category);
    event.set("ph", "X");
    event.set("ts", span.start.toMicros());
    event.set("dur", (end - span.start).toMicros());
    if (span.track >= 0) {
      event.set("pid", 2);
      event.set("tid", span.track);
    } else {
      event.set("pid", 1);
      event.set("tid", span.request);
    }
    TraceArgs args = span.args;
    args.emplace_back("span_id", strprintf("%llu", static_cast<unsigned long long>(
                                                       span.id)));
    if (span.parent != 0) {
      args.emplace_back("parent_span",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(span.parent)));
    }
    event.set("args", argsObject(args));
    events.push(std::move(event));
  }

  for (const auto& i : allInstants) {
    JsonValue event = JsonValue::object();
    event.set("name", i.name);
    event.set("cat", i.category);
    event.set("ph", "i");
    event.set("s", "t");  // thread-scoped instant
    event.set("ts", i.at.toMicros());
    if (i.track >= 0) {
      event.set("pid", 2);
      event.set("tid", i.track);
    } else {
      event.set("pid", 1);
      event.set("tid", i.request);
    }
    event.set("args", argsObject(i.args));
    events.push(std::move(event));
  }

  for (const auto& f : allFlows) {
    JsonValue event = JsonValue::object();
    event.set("name", f.name);
    event.set("cat", f.category);
    event.set("ph", f.begin ? "s" : "f");
    if (!f.begin) event.set("bp", "e");  // bind the arrow to the enclosing slice
    event.set("id", f.flow);
    event.set("ts", f.at.toMicros());
    event.set("pid", 2);
    event.set("tid", f.track);
    events.push(std::move(event));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

std::string TraceRecorder::chromeTraceJson(int indent) const {
  return chromeTrace().dump(indent);
}

std::vector<RequestBreakdown> TraceRecorder::breakdowns() const {
  const std::vector<TraceSpan> allSpans = spans();

  // Leaf spans (no children) are the phases; container spans ("deploy")
  // would double-count their nested Pull/Create/Scale-Up children.
  // Span IDs are sparse (buffer-encoded), so track parents in a set.
  std::vector<SpanId> parents;
  for (const auto& span : allSpans) {
    if (span.parent != 0) parents.push_back(span.parent);
  }
  std::sort(parents.begin(), parents.end());
  const auto hasChild = [&parents](SpanId id) {
    return std::binary_search(parents.begin(), parents.end(), id);
  };

  std::vector<RequestBreakdown> result;
  for (const auto& root : allSpans) {
    if (root.name != "request" || root.category != "client" || root.open) {
      continue;
    }
    RequestBreakdown breakdown;
    breakdown.request = root.request;
    breakdown.totalSeconds = root.duration().toSeconds();

    const TraceSpan* resolve = nullptr;
    for (const auto& span : allSpans) {
      if (span.request == root.request && span.name == "resolve" &&
          !span.open) {
        resolve = &span;
        break;
      }
    }
    if (resolve != nullptr) {
      // The three segments partition time_total exactly: all stamps come
      // from the one deterministic sim clock.
      breakdown.segments.emplace_back(
          "uplink", (resolve->start - root.start).toSeconds());
      breakdown.segments.emplace_back("resolve",
                                      resolve->duration().toSeconds());
      breakdown.segments.emplace_back("downlink",
                                      (root.end - resolve->end).toSeconds());
    } else {
      breakdown.segments.emplace_back("warm", breakdown.totalSeconds);
    }

    for (const auto& span : allSpans) {
      if (span.request != root.request || span.id == root.id || span.open) {
        continue;
      }
      if (resolve != nullptr && span.id == resolve->id) continue;
      if (hasChild(span.id)) continue;
      breakdown.phases.emplace_back(span.name, span.duration().toSeconds());
    }
    result.push_back(std::move(breakdown));
  }
  return result;
}

Table TraceRecorder::breakdownTable() const {
  Table table({"request", "total [s]", "uplink", "resolve", "downlink",
               "phases (name=seconds)"});
  for (const auto& breakdown : breakdowns()) {
    double uplink = 0.0, resolve = 0.0, downlink = 0.0;
    for (const auto& [name, seconds] : breakdown.segments) {
      if (name == "uplink") uplink = seconds;
      else if (name == "resolve") resolve = seconds;
      else if (name == "downlink" || name == "warm") downlink = seconds;
    }
    std::vector<std::string> phases;
    for (const auto& [name, seconds] : breakdown.phases) {
      phases.push_back(strprintf("%s=%.6f", name.c_str(), seconds));
    }
    table.addRow({strprintf("%llu",
                            static_cast<unsigned long long>(breakdown.request)),
                  strprintf("%.6f", breakdown.totalSeconds),
                  strprintf("%.6f", uplink), strprintf("%.6f", resolve),
                  strprintf("%.6f", downlink), join(phases, " ")});
  }
  return table;
}

std::map<std::string, Samples> TraceRecorder::phaseSamples() const {
  std::map<std::string, Samples> samples;
  for (const auto& breakdown : breakdowns()) {
    samples["trace/total"].add(breakdown.totalSeconds);
    for (const auto& [name, seconds] : breakdown.segments) {
      samples["trace/" + name].add(seconds);
    }
    for (const auto& [name, seconds] : breakdown.phases) {
      samples["trace/" + name].add(seconds);
    }
  }
  return samples;
}

}  // namespace edgesim::trace
