#include "trace/trace_recorder.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace edgesim::trace {

double RequestBreakdown::segmentSum() const {
  double sum = 0.0;
  for (const auto& [name, seconds] : segments) sum += seconds;
  return sum;
}

RequestId TraceRecorder::newRequest() {
  if (!enabled_) return 0;
  return ++nextRequest_;
}

SpanId TraceRecorder::beginSpan(RequestId request, const std::string& name,
                                const std::string& category, SimTime now,
                                TraceArgs args, SpanId parent) {
  if (!enabled_) return 0;
  TraceSpan span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.request = request;
  span.name = name;
  span.category = category;
  span.start = now;
  span.end = now;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::endSpan(SpanId span, SimTime now, TraceArgs extraArgs) {
  if (!enabled_ || span == 0 || span > spans_.size()) return;
  TraceSpan& s = spans_[span - 1];
  s.end = now;
  s.open = false;
  for (auto& arg : extraArgs) s.args.push_back(std::move(arg));
}

SpanId TraceRecorder::completeSpan(RequestId request, const std::string& name,
                                   const std::string& category, SimTime start,
                                   SimTime end, TraceArgs args, SpanId parent) {
  if (!enabled_) return 0;
  const SpanId id = beginSpan(request, name, category, start, std::move(args),
                              parent);
  endSpan(id, end);
  return id;
}

void TraceRecorder::instant(RequestId request, const std::string& name,
                            const std::string& category, SimTime at,
                            TraceArgs args) {
  if (!enabled_) return;
  instants_.push_back({request, name, category, at, std::move(args)});
}

void TraceRecorder::bindFlow(Ipv4 client, Endpoint service, RequestId request) {
  if (!enabled_) return;
  flowBindings_[{client, service}] = request;
}

RequestId TraceRecorder::clientRequestDone(Ipv4 client, Endpoint service,
                                           SimTime start, SimTime end,
                                           bool success,
                                           const std::string& series) {
  if (!enabled_) return 0;
  RequestId request = 0;
  const auto it = flowBindings_.find({client, service});
  if (it != flowBindings_.end()) {
    request = it->second;
    flowBindings_.erase(it);  // one client exchange per packet-in binding
  } else {
    // No controller interaction: the request rode already-installed switch
    // flows (warm path) -- it still gets its own timeline row.
    request = newRequest();
    instant(request, "warm-path", "client", start,
            {{"client", client.toString()}, {"service", service.toString()}});
  }
  completeSpan(request, "request", "client", start, end,
               {{"series", series},
                {"client", client.toString()},
                {"service", service.toString()},
                {"success", success ? "true" : "false"}});
  return request;
}

const TraceSpan* TraceRecorder::spanById(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

// ---- export -----------------------------------------------------------------

namespace {

JsonValue argsObject(const TraceArgs& args) {
  JsonValue obj = JsonValue::object();
  for (const auto& [key, value] : args) obj.set(key, value);
  return obj;
}

}  // namespace

JsonValue TraceRecorder::chromeTrace() const {
  // Close still-open spans at the maximum observed timestamp so the file
  // stays loadable even for aborted runs.
  SimTime maxTime = SimTime::zero();
  for (const auto& span : spans_) {
    maxTime = std::max(maxTime, std::max(span.start, span.end));
  }
  for (const auto& i : instants_) maxTime = std::max(maxTime, i.at);

  JsonValue events = JsonValue::array();

  JsonValue processName = JsonValue::object();
  processName.set("ph", "M");
  processName.set("pid", 1);
  processName.set("name", "process_name");
  JsonValue processArgs = JsonValue::object();
  processArgs.set("name", "edgesim");
  processName.set("args", std::move(processArgs));
  events.push(std::move(processName));

  std::vector<RequestId> requests;
  for (const auto& span : spans_) requests.push_back(span.request);
  for (const auto& i : instants_) requests.push_back(i.request);
  std::sort(requests.begin(), requests.end());
  requests.erase(std::unique(requests.begin(), requests.end()),
                 requests.end());
  for (const RequestId request : requests) {
    JsonValue threadName = JsonValue::object();
    threadName.set("ph", "M");
    threadName.set("pid", 1);
    threadName.set("tid", request);
    threadName.set("name", "thread_name");
    JsonValue nameArgs = JsonValue::object();
    nameArgs.set("name", request == 0 ? std::string("unattributed")
                                      : strprintf("request %llu",
                                                  static_cast<unsigned long long>(
                                                      request)));
    threadName.set("args", std::move(nameArgs));
    events.push(std::move(threadName));
  }

  for (const auto& span : spans_) {
    const SimTime end = span.open ? maxTime : span.end;
    JsonValue event = JsonValue::object();
    event.set("name", span.name);
    event.set("cat", span.category);
    event.set("ph", "X");
    event.set("ts", span.start.toMicros());
    event.set("dur", (end - span.start).toMicros());
    event.set("pid", 1);
    event.set("tid", span.request);
    TraceArgs args = span.args;
    args.emplace_back("span_id", strprintf("%llu", static_cast<unsigned long long>(
                                                       span.id)));
    if (span.parent != 0) {
      args.emplace_back("parent_span",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(span.parent)));
    }
    event.set("args", argsObject(args));
    events.push(std::move(event));
  }

  for (const auto& i : instants_) {
    JsonValue event = JsonValue::object();
    event.set("name", i.name);
    event.set("cat", i.category);
    event.set("ph", "i");
    event.set("s", "t");  // thread-scoped instant
    event.set("ts", i.at.toMicros());
    event.set("pid", 1);
    event.set("tid", i.request);
    event.set("args", argsObject(i.args));
    events.push(std::move(event));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

std::string TraceRecorder::chromeTraceJson(int indent) const {
  return chromeTrace().dump(indent);
}

std::vector<RequestBreakdown> TraceRecorder::breakdowns() const {
  // Leaf spans (no children) are the phases; container spans ("deploy")
  // would double-count their nested Pull/Create/Scale-Up children.
  std::vector<bool> hasChild(spans_.size() + 1, false);
  for (const auto& span : spans_) {
    if (span.parent != 0 && span.parent <= spans_.size()) {
      hasChild[span.parent] = true;
    }
  }

  std::vector<RequestBreakdown> result;
  for (const auto& root : spans_) {
    if (root.name != "request" || root.category != "client" || root.open) {
      continue;
    }
    RequestBreakdown breakdown;
    breakdown.request = root.request;
    breakdown.totalSeconds = root.duration().toSeconds();

    const TraceSpan* resolve = nullptr;
    for (const auto& span : spans_) {
      if (span.request == root.request && span.name == "resolve" &&
          !span.open) {
        resolve = &span;
        break;
      }
    }
    if (resolve != nullptr) {
      // The three segments partition time_total exactly: all stamps come
      // from the one deterministic sim clock.
      breakdown.segments.emplace_back(
          "uplink", (resolve->start - root.start).toSeconds());
      breakdown.segments.emplace_back("resolve",
                                      resolve->duration().toSeconds());
      breakdown.segments.emplace_back("downlink",
                                      (root.end - resolve->end).toSeconds());
    } else {
      breakdown.segments.emplace_back("warm", breakdown.totalSeconds);
    }

    for (const auto& span : spans_) {
      if (span.request != root.request || span.id == root.id || span.open) {
        continue;
      }
      if (resolve != nullptr && span.id == resolve->id) continue;
      if (hasChild[span.id]) continue;
      breakdown.phases.emplace_back(span.name, span.duration().toSeconds());
    }
    result.push_back(std::move(breakdown));
  }
  return result;
}

Table TraceRecorder::breakdownTable() const {
  Table table({"request", "total [s]", "uplink", "resolve", "downlink",
               "phases (name=seconds)"});
  for (const auto& breakdown : breakdowns()) {
    double uplink = 0.0, resolve = 0.0, downlink = 0.0;
    for (const auto& [name, seconds] : breakdown.segments) {
      if (name == "uplink") uplink = seconds;
      else if (name == "resolve") resolve = seconds;
      else if (name == "downlink" || name == "warm") downlink = seconds;
    }
    std::vector<std::string> phases;
    for (const auto& [name, seconds] : breakdown.phases) {
      phases.push_back(strprintf("%s=%.6f", name.c_str(), seconds));
    }
    table.addRow({strprintf("%llu",
                            static_cast<unsigned long long>(breakdown.request)),
                  strprintf("%.6f", breakdown.totalSeconds),
                  strprintf("%.6f", uplink), strprintf("%.6f", resolve),
                  strprintf("%.6f", downlink), join(phases, " ")});
  }
  return table;
}

std::map<std::string, Samples> TraceRecorder::phaseSamples() const {
  std::map<std::string, Samples> samples;
  for (const auto& breakdown : breakdowns()) {
    samples["trace/total"].add(breakdown.totalSeconds);
    for (const auto& [name, seconds] : breakdown.segments) {
      samples["trace/" + name].add(seconds);
    }
    for (const auto& [name, seconds] : breakdown.phases) {
      samples["trace/" + name].add(seconds);
    }
  }
  return samples;
}

}  // namespace edgesim::trace
