#include "trace/critical_path.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "util/strings.hpp"

namespace edgesim::trace {

namespace {

std::int64_t tidOf(const JsonValue& event) {
  const JsonValue* tid = event.find("tid");
  return (tid != nullptr && tid->isNumber())
             ? static_cast<std::int64_t>(tid->asNumber())
             : -1;
}

std::uint64_t parseCount(const JsonValue* args, const std::string& key) {
  if (args == nullptr) return 0;
  const JsonValue* value = args->find(key);
  if (value == nullptr) return 0;
  if (value->isNumber()) return static_cast<std::uint64_t>(value->asNumber());
  if (value->isString()) {
    return std::strtoull(value->asString().c_str(), nullptr, 10);
  }
  return 0;
}

}  // namespace

const DomainBreakdown* CriticalPathReport::domainByTrack(
    std::int64_t track) const {
  for (const auto& domain : domains) {
    if (domain.track == track) return &domain;
  }
  return nullptr;
}

std::string CriticalPathReport::domainName(std::int64_t track) const {
  const DomainBreakdown* domain = domainByTrack(track);
  if (domain != nullptr && !domain->name.empty()) return domain->name;
  return strprintf("domain %lld", static_cast<long long>(track));
}

Result<CriticalPathReport> analyzeDomainTrace(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->isArray()) {
    return makeError(Errc::kInvalidArgument,
                     "not a Chrome trace document (no traceEvents array)");
  }

  struct Accum {
    std::string name;
    double busy = 0.0;
    double stall = 0.0;
    std::uint64_t events = 0;
    std::uint64_t sends = 0;
    std::uint64_t stalls = 0;
  };
  std::map<std::int64_t, Accum> byTrack;
  // (boundBy, stalledDomain) -> (seconds, count)
  std::map<std::pair<std::int64_t, std::int64_t>, std::pair<double, std::uint64_t>>
      byChannel;
  double minTs = 0.0, maxTs = 0.0;
  bool sawSpan = false;

  for (const JsonValue& event : events->items()) {
    if (!event.isObject()) continue;
    const JsonValue* pid = event.find("pid");
    if (pid == nullptr || !pid->isNumber() || pid->asNumber() != 2.0) continue;
    const std::string ph = event.stringOr("ph", "");
    const std::int64_t track = tidOf(event);
    if (ph == "M") {
      if (event.stringOr("name", "") == "thread_name") {
        const JsonValue* args = event.find("args");
        if (args != nullptr) byTrack[track].name = args->stringOr("name", "");
      }
      continue;
    }
    if (ph != "X") continue;
    const double ts = event.numberOr("ts", 0.0);        // microseconds
    const double dur = event.numberOr("dur", 0.0);
    const double seconds = dur / 1e6;
    if (!sawSpan) {
      minTs = ts;
      maxTs = ts + dur;
      sawSpan = true;
    } else {
      minTs = std::min(minTs, ts);
      maxTs = std::max(maxTs, ts + dur);
    }
    Accum& accum = byTrack[track];
    const std::string name = event.stringOr("name", "");
    const JsonValue* args = event.find("args");
    if (name == "advance") {
      accum.busy += seconds;
      accum.events += parseCount(args, "dispatched");
    } else if (name == "stall") {
      accum.stall += seconds;
      accum.stalls += 1;
      std::int64_t boundBy = -1;
      if (args != nullptr) {
        boundBy = static_cast<std::int64_t>(
            std::strtoll(args->stringOr("bound_by", "-1").c_str(), nullptr,
                         10));
      }
      auto& channel = byChannel[{boundBy, track}];
      channel.first += seconds;
      channel.second += 1;
    } else if (name == "xdom-send") {
      accum.sends += 1;
    }
  }

  if (!sawSpan) {
    return makeError(Errc::kNotFound,
                     "no domain spans in trace (pid 2) -- was domain tracing "
                     "enabled when the trace was exported?");
  }

  CriticalPathReport report;
  report.makespanSeconds = std::max((maxTs - minTs) / 1e6, 0.0);
  for (const auto& [track, accum] : byTrack) {
    DomainBreakdown domain;
    domain.track = track;
    domain.name = accum.name;
    domain.busySeconds = accum.busy;
    domain.stallSeconds = accum.stall;
    domain.idleSeconds =
        std::max(report.makespanSeconds - accum.busy - accum.stall, 0.0);
    domain.events = accum.events;
    domain.sends = accum.sends;
    domain.stalls = accum.stalls;
    report.totalBusySeconds += accum.busy;
    report.domains.push_back(std::move(domain));
  }
  std::stable_sort(report.domains.begin(), report.domains.end(),
                   [](const DomainBreakdown& a, const DomainBreakdown& b) {
                     return a.busySeconds > b.busySeconds;
                   });
  if (!report.domains.empty() && report.makespanSeconds > 0.0) {
    report.straggler = report.domains.front().track;
    report.effectiveParallelism =
        report.totalBusySeconds / report.makespanSeconds;
    report.parallelEfficiency =
        report.effectiveParallelism /
        static_cast<double>(report.domains.size());
  }

  for (const auto& [key, value] : byChannel) {
    ChannelStall channel;
    channel.boundBy = key.first;
    channel.domain = key.second;
    channel.stallSeconds = value.first;
    channel.count = value.second;
    report.channels.push_back(channel);
  }
  std::stable_sort(report.channels.begin(), report.channels.end(),
                   [](const ChannelStall& a, const ChannelStall& b) {
                     return a.stallSeconds > b.stallSeconds;
                   });

  // Stall chain: start at the most-stalled domain, hop along each domain's
  // dominant bound_by link.  Cycles terminate at the first repeat.
  const DomainBreakdown* start = nullptr;
  for (const auto& domain : report.domains) {
    if (start == nullptr || domain.stallSeconds > start->stallSeconds) {
      start = &domain;
    }
  }
  if (start != nullptr && start->stallSeconds > 0.0) {
    std::int64_t current = start->track;
    while (true) {
      if (std::find(report.stallChain.begin(), report.stallChain.end(),
                    current) != report.stallChain.end()) {
        break;
      }
      report.stallChain.push_back(current);
      const ChannelStall* dominant = nullptr;
      for (const auto& channel : report.channels) {
        if (channel.domain != current) continue;
        if (dominant == nullptr ||
            channel.stallSeconds > dominant->stallSeconds) {
          dominant = &channel;
        }
      }
      if (dominant == nullptr || dominant->boundBy < 0) break;
      current = dominant->boundBy;
    }
  }

  return report;
}

Table CriticalPathReport::domainTable() const {
  Table table({"domain", "busy [s]", "busy%", "stall [s]", "stall%", "idle%",
               "events", "sends", "stalls"});
  const double makespan = makespanSeconds > 0.0 ? makespanSeconds : 1.0;
  for (const auto& domain : domains) {
    table.addRow({domainName(domain.track),
                  strprintf("%.4f", domain.busySeconds),
                  strprintf("%.1f", 100.0 * domain.busySeconds / makespan),
                  strprintf("%.4f", domain.stallSeconds),
                  strprintf("%.1f", 100.0 * domain.stallSeconds / makespan),
                  strprintf("%.1f", 100.0 * domain.idleSeconds / makespan),
                  strprintf("%llu", static_cast<unsigned long long>(
                                        domain.events)),
                  strprintf("%llu", static_cast<unsigned long long>(
                                        domain.sends)),
                  strprintf("%llu", static_cast<unsigned long long>(
                                        domain.stalls))});
  }
  return table;
}

std::string CriticalPathReport::render() const {
  std::string out;
  out += strprintf(
      "critical path report -- %zu domains, makespan %.4f s\n"
      "parallel efficiency %.3f (effective parallelism %.2f of %zu)\n\n",
      domains.size(), makespanSeconds, parallelEfficiency,
      effectiveParallelism, domains.size());
  out += domainTable().render();
  if (!channels.empty()) {
    out += "\ntop stall-causing channels (bound_by -> stalled domain):\n";
    const std::size_t limit = std::min<std::size_t>(channels.size(), 8);
    for (std::size_t i = 0; i < limit; ++i) {
      const ChannelStall& channel = channels[i];
      out += strprintf("  %s -> %s  %.4f s over %llu stalls\n",
                       domainName(channel.boundBy).c_str(),
                       domainName(channel.domain).c_str(),
                       channel.stallSeconds,
                       static_cast<unsigned long long>(channel.count));
    }
  }
  if (straggler >= 0) {
    const DomainBreakdown* domain = domainByTrack(straggler);
    const double busyShare =
        (domain != nullptr && makespanSeconds > 0.0)
            ? 100.0 * domain->busySeconds / makespanSeconds
            : 0.0;
    out += strprintf("\nstraggler: %s (busy %.1f%% of makespan)\n",
                     domainName(straggler).c_str(), busyShare);
  }
  if (!stallChain.empty()) {
    out += "stall chain (most stalled -> root cause): ";
    for (std::size_t i = 0; i < stallChain.size(); ++i) {
      if (i > 0) out += " -> ";
      out += domainName(stallChain[i]);
    }
    out += "\n";
  }
  return out;
}

JsonValue CriticalPathReport::toJson() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "edgesim-critical-path");
  doc.set("schema_version", 1);
  doc.set("makespan_seconds", makespanSeconds);
  doc.set("total_busy_seconds", totalBusySeconds);
  doc.set("parallel_efficiency", parallelEfficiency);
  doc.set("effective_parallelism", effectiveParallelism);
  doc.set("straggler", straggler);
  JsonValue chain = JsonValue::array();
  for (const std::int64_t track : stallChain) chain.push(track);
  doc.set("stall_chain", std::move(chain));
  JsonValue domainArray = JsonValue::array();
  for (const auto& domain : domains) {
    JsonValue entry = JsonValue::object();
    entry.set("track", domain.track);
    entry.set("name", domain.name);
    entry.set("busy_seconds", domain.busySeconds);
    entry.set("stall_seconds", domain.stallSeconds);
    entry.set("idle_seconds", domain.idleSeconds);
    entry.set("events", domain.events);
    entry.set("sends", domain.sends);
    entry.set("stalls", domain.stalls);
    domainArray.push(std::move(entry));
  }
  doc.set("domains", std::move(domainArray));
  JsonValue channelArray = JsonValue::array();
  for (const auto& channel : channels) {
    JsonValue entry = JsonValue::object();
    entry.set("bound_by", channel.boundBy);
    entry.set("domain", channel.domain);
    entry.set("stall_seconds", channel.stallSeconds);
    entry.set("count", channel.count);
    channelArray.push(std::move(entry));
  }
  doc.set("channels", std::move(channelArray));
  return doc;
}

}  // namespace edgesim::trace
