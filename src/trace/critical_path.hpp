// Straggler analysis over an exported parallel-core domain trace.
//
// analyzeDomainTrace() consumes the Chrome trace_event document a
// telemetry::DomainProbe records (pid 2, one track per EventDomain,
// wall-clock "advance"/"stall"/"xdom-*" spans) and answers the question the
// raw timeline makes you squint for: WHERE does the gap between measured
// speedup and ideal N x go?
//
//   * per-domain busy / stalled / idle breakdown of the run's makespan
//     (busy = sum of "advance" slices that dispatched events, stalled =
//     closed "stall" spans, idle = the remainder);
//   * the top stall-causing channels, aggregated from each stall span's
//     `bound_by` attribution;
//   * the straggler (busiest domain) and the stall CHAIN: starting from the
//     most-stalled domain, follow each domain's dominant bound_by link
//     until it terminates -- the tail of the chain is the root cause;
//   * parallel efficiency = sum(busy) / (domains x makespan), the same
//     figure bench_domain_scaling emits, and effective parallelism =
//     sum(busy) / makespan.
//
// tools/critical_path is the CLI wrapper; the domain-observability test
// feeds a deliberately skewed run through this analyzer and asserts the
// slowed domain is named the straggler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"
#include "util/table.hpp"

namespace edgesim::trace {

struct DomainBreakdown {
  std::int64_t track = 0;     // domain id
  std::string name;           // "3:trace-2" from track metadata
  double busySeconds = 0.0;
  double stallSeconds = 0.0;
  double idleSeconds = 0.0;   // makespan - busy - stall, floored at 0
  std::uint64_t events = 0;   // sum of "advance" dispatched counts
  std::uint64_t sends = 0;    // xdom-send spans originating here
  std::uint64_t stalls = 0;   // closed stall spans
};

struct ChannelStall {
  std::int64_t boundBy = 0;   // source domain whose bound gated `domain`
  std::int64_t domain = 0;    // the stalled domain
  double stallSeconds = 0.0;
  std::uint64_t count = 0;
};

struct CriticalPathReport {
  double makespanSeconds = 0.0;
  double totalBusySeconds = 0.0;
  double parallelEfficiency = 0.0;   // totalBusy / (domains x makespan)
  double effectiveParallelism = 0.0; // totalBusy / makespan
  std::int64_t straggler = -1;       // busiest domain's track
  /// Most-stalled domain first, then each hop's dominant bound_by source;
  /// the last entry is the chain's root cause.  Empty when nothing stalled.
  std::vector<std::int64_t> stallChain;
  std::vector<DomainBreakdown> domains;   // sorted busiest first
  std::vector<ChannelStall> channels;     // sorted most stall seconds first

  const DomainBreakdown* domainByTrack(std::int64_t track) const;
  std::string domainName(std::int64_t track) const;

  Table domainTable() const;
  /// Full human-readable report (tables + straggler/chain/efficiency).
  std::string render() const;
  JsonValue toJson() const;
};

/// Analyze a Chrome trace document (the parsed {"traceEvents": [...]}
/// object).  Errors when the document is malformed or contains no pid-2
/// domain spans (domain tracing was off).
Result<CriticalPathReport> analyzeDomainTrace(const JsonValue& doc);

}  // namespace edgesim::trace
