// Per-request tracing for the deployment pipeline (observability layer).
//
// The paper's evaluation decomposes `time_total` into deployment phases
// (Pull -> Create -> Scale-Up, figs. 11-16); `metrics::Recorder` aggregates
// those into per-series medians but cannot say where ONE request spent its
// time.  TraceRecorder fills that gap: typed span/instant events carry a
// request ID that is allocated at `packet_in`, threaded through the
// FlowMemory lookup, the Global/Local Scheduler decision, every deployment
// phase (including retry/fallback/quarantine transitions) and the final
// flow installation, and joined with the client-side timecurl measurement
// when the response lands.
//
// Thread model: recording goes to PER-THREAD buffers.  The first thread to
// record (the recorder's creator, i.e. the simulation thread) owns buffer
// 0; controller workers lazily acquire their own buffer on first use.
// Request IDs come from one atomic counter, so IDs allocated on the warm
// path (worker threads) never collide with cold-path IDs.  Buffers are
// merged only at export:
//   * one populated buffer (every single-threaded run) -> events export in
//     recording order with the same span IDs as the pre-threading layout,
//     so deterministic runs stay BIT-IDENTICAL to the seed;
//   * several populated buffers -> a canonical content sort (start time,
//     request, category, name, id) makes the export independent of thread
//     interleaving, though not of the run's thread/buffer assignment.
// Span IDs encode (buffer, local index) so endSpan() finds its span without
// any global table; buffer 0 reproduces the seed's 1-based dense IDs.
//
// Exports:
//   * Chrome trace_event JSON ("X"/"i"/"M" events, chrome://tracing and
//     Perfetto loadable; one timeline row per request ID);
//   * a per-request phase-breakdown table whose segments partition
//     `time_total` exactly (uplink / resolve / downlink around the
//     controller-side spans);
//   * per-phase Samples maps feeding the BENCH_<name>.json reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace edgesim::trace {

/// Monotonic per-recorder request identifier; 0 = unattributed.
using RequestId = std::uint64_t;
/// Span identifier; 0 = none.  Encodes (buffer << 40) | (local index + 1);
/// buffer 0 (single-threaded recording) yields dense 1-based IDs.
using SpanId = std::uint64_t;

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceSpan {
  SpanId id = 0;
  SpanId parent = 0;        // enclosing span, 0 = top level
  RequestId request = 0;
  /// Timeline row OUTSIDE the per-request process: >= 0 routes the span to
  /// pid 2 ("edgesim-domains") with tid = track (one row per EventDomain in
  /// the parallel-core trace); -1 (the default, and the only value the
  /// request path ever produces) keeps the historical pid 1 / tid = request
  /// layout, so exports without track events stay bytewise identical.
  std::int64_t track = -1;
  std::string name;         // "request", "resolve", "pull", "scaleup", ...
  std::string category;     // "client", "controller", "scheduler", "deploy"
  SimTime start;
  SimTime end;
  bool open = true;         // endSpan not yet seen
  TraceArgs args;

  SimTime duration() const { return end - start; }
};

struct TraceInstant {
  RequestId request = 0;
  std::int64_t track = -1;  // see TraceSpan::track
  std::string name;         // "packet-in", "flow-memory-hit", "retry", ...
  std::string category;
  SimTime at;
  TraceArgs args;
};

/// One endpoint of a Chrome flow event ("s" begin / "f" end): the arrow
/// linking a cross-domain send span to its matching receive.  `flow` is the
/// causality stamp shared by both endpoints.
struct TraceFlow {
  std::uint64_t flow = 0;
  std::int64_t track = 0;   // timeline row (domain id) the endpoint sits on
  std::string name;
  std::string category;
  SimTime at;
  bool begin = true;        // true = "s" (send side), false = "f" (receive)
};

/// One request's phase decomposition.  `segments` partition `total` exactly
/// (same sim clock, no sampling): uplink (client send -> packet-in),
/// resolve (packet-in -> redirect decided), downlink (redirect -> response
/// received).  `phases` are the deployment spans nested inside resolve.
struct RequestBreakdown {
  RequestId request = 0;
  double totalSeconds = 0.0;                    // == root "request" span
  std::vector<std::pair<std::string, double>> segments;
  std::vector<std::pair<std::string, double>> phases;

  double segmentSum() const;
};

class TraceRecorder {
 public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Disabled recorders turn every call into a no-op (and allocate nothing).
  void setEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Bound total stored events (spans + instants across all buffers); 0 =
  /// unbounded, the historical default.  Over the cap, beginSpan returns 0
  /// (endSpan(0) is already a no-op) and instants are discarded; drops are
  /// tallied in droppedEvents() and surfaced through the telemetry registry
  /// as `edgesim_trace_dropped_events`.  The count uses relaxed atomics, so
  /// the cap is approximate under concurrency (off by at most the number of
  /// recording threads).
  void setCapacity(std::size_t maxEvents) {
    maxEvents_.store(maxEvents, std::memory_order_relaxed);
  }
  std::size_t droppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // ---- recording (all thread-safe) ----------------------------------------
  RequestId newRequest();

  SpanId beginSpan(RequestId request, const std::string& name,
                   const std::string& category, SimTime now,
                   TraceArgs args = {}, SpanId parent = 0);
  void endSpan(SpanId span, SimTime now, TraceArgs extraArgs = {});
  /// Record a span whose start/end are both known (async completions).
  SpanId completeSpan(RequestId request, const std::string& name,
                      const std::string& category, SimTime start, SimTime end,
                      TraceArgs args = {}, SpanId parent = 0);
  void instant(RequestId request, const std::string& name,
               const std::string& category, SimTime at, TraceArgs args = {});

  // ---- track-addressed events (parallel-core domain trace) ----------------
  /// Record a closed span on timeline row `track` (pid 2, one row per
  /// EventDomain).  Counts against the event cap like any span.
  SpanId completeTrackSpan(std::int64_t track, const std::string& name,
                           const std::string& category, SimTime start,
                           SimTime end, TraceArgs args = {});
  /// Record one endpoint of a flow-event arrow on row `track`; both
  /// endpoints of `flow` must use the same name/category for viewers to
  /// link them.
  void flowBegin(std::uint64_t flow, std::int64_t track,
                 const std::string& name, const std::string& category,
                 SimTime at);
  void flowEnd(std::uint64_t flow, std::int64_t track, const std::string& name,
               const std::string& category, SimTime at);
  /// Display name for row `track` ("0:main", "3:trace-2", ...); emitted as
  /// pid-2 thread_name metadata.  Re-naming replaces.
  void nameTrack(std::int64_t track, const std::string& name);

  // ---- request-ID propagation to the client side --------------------------
  /// The controller binds the (client, service) flow key to the request ID
  /// it allocated at packet-in; the client-side measurement consumes the
  /// binding when the HTTP exchange completes, attaching the root span to
  /// the same request.  One binding per key; consumed on use, so a warm
  /// request (no packet-in) gets a fresh ID with a "warm-path" marker.
  void bindFlow(Ipv4 client, Endpoint service, RequestId request);
  /// Finish a client request: emits the root "request" span covering
  /// exactly timecurl's time_total.  Returns the request ID used.
  RequestId clientRequestDone(Ipv4 client, Endpoint service, SimTime start,
                              SimTime end, bool success,
                              const std::string& series);

  // ---- access --------------------------------------------------------------
  /// Merged snapshot of all buffers (see header comment for ordering).
  std::vector<TraceSpan> spans() const;
  std::vector<TraceInstant> instants() const;
  /// Merged flow endpoints; multi-buffer recordings sort canonically by
  /// (at, flow, begin-before-end).
  std::vector<TraceFlow> flows() const;
  std::size_t spanCount() const {
    return spanCount_.load(std::memory_order_relaxed);
  }
  /// Decode `id` into its per-thread buffer; pointer stays valid for the
  /// recorder's lifetime (deque storage), but don't hold it across a
  /// concurrent endSpan() of the same span.
  const TraceSpan* spanById(SpanId id) const;

  // ---- export -------------------------------------------------------------
  /// Chrome trace_event document: {"traceEvents": [...], ...}.  `pid` is
  /// constant, `tid` is the request ID so every request gets its own
  /// timeline row; open spans are closed at the maximum observed time.
  JsonValue chromeTrace() const;
  std::string chromeTraceJson(int indent = 0) const;

  /// Per-request breakdowns (requests with a root span only), in request
  /// order.
  std::vector<RequestBreakdown> breakdowns() const;
  /// One row per request: total, per-segment and per-phase seconds.
  Table breakdownTable() const;
  /// Aggregate phase/segment durations across requests, keyed
  /// "trace/<name>" -- merged into BENCH_<name>.json as the trace-derived
  /// phase splits.
  std::map<std::string, Samples> phaseSamples() const;

 private:
  /// One thread's recording area.  Only the owning thread appends;
  /// endSpan() and export may come from other threads, so every access
  /// goes through the buffer mutex (uncontended in the common case).
  struct Buffer {
    mutable std::mutex mutex;
    std::deque<TraceSpan> spans;      // deque: spanById pointers stay stable
    std::deque<TraceInstant> instants;
    std::deque<TraceFlow> flows;
  };

  /// This thread's (buffer index, buffer) in this recorder, creating the
  /// buffer on first use.  The pointer is cached thread-locally so the hot
  /// path never reads the (mutable) registry vector.
  std::pair<std::size_t, Buffer*> myBuffer();
  /// Stable snapshot of the buffer registry (buffers are never removed).
  std::vector<Buffer*> bufferList() const;
  /// Reserve storage for one more event; false = cap reached, drop it.
  bool admitEvent();

  const std::uint64_t id_;  // globally unique; keys the thread-local lookup
  std::atomic<bool> enabled_{true};
  std::atomic<RequestId> nextRequest_{0};
  std::atomic<std::size_t> spanCount_{0};
  std::atomic<std::size_t> maxEvents_{0};
  std::atomic<std::size_t> eventCount_{0};
  std::atomic<std::size_t> dropped_{0};

  mutable std::mutex buffersMutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;

  std::mutex bindingsMutex_;
  std::map<std::pair<Ipv4, Endpoint>, RequestId> flowBindings_;

  mutable std::mutex trackNamesMutex_;
  std::map<std::int64_t, std::string> trackNames_;
};

}  // namespace edgesim::trace
