#include "k8s/objects.hpp"

namespace edgesim::k8s {

bool selectorMatches(const Labels& selector, const Labels& labels) {
  for (const auto& [key, value] : selector) {
    const auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

const char* podPhaseName(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
  }
  return "?";
}

}  // namespace edgesim::k8s
