// Kubernetes controller manager: Deployment, ReplicaSet and Endpoints
// controllers.
//
// Each controller is an idempotent reconciler driven by watch events plus a
// periodic resync, like real informer-based controllers.  Reconciliation
// work pays `controllerSyncLatency` before its API writes are issued --
// one of the hops that add up to the ~3 s Kubernetes scale-up (fig. 11).
#pragma once

#include <string>
#include <unordered_set>

#include "k8s/api_server.hpp"

namespace edgesim::k8s {

/// Deployment -> ReplicaSet.  One RS per Deployment (no rolling-update
/// history; the paper's workflow only creates and scales).
class DeploymentController {
 public:
  DeploymentController(Simulation& sim, ApiServer& api,
                       const ControlPlaneParams& params);

 private:
  void enqueue(const std::string& name);
  void reconcile(const std::string& name);
  static std::string rsNameFor(const std::string& deploymentName) {
    return deploymentName + "-rs";
  }

  Simulation& sim_;
  ApiServer& api_;
  const ControlPlaneParams& params_;
  PeriodicTimer resync_;
  std::unordered_set<std::string> queued_;
};

/// ReplicaSet -> Pods.
class ReplicaSetController {
 public:
  ReplicaSetController(Simulation& sim, ApiServer& api,
                       const ControlPlaneParams& params);

 private:
  void enqueue(const std::string& name);
  void reconcile(const std::string& name);

  Simulation& sim_;
  ApiServer& api_;
  const ControlPlaneParams& params_;
  PeriodicTimer resync_;
  std::unordered_set<std::string> queued_;
  std::uint64_t podCounter_ = 0;
};

/// Services + ready Pods -> Endpoints objects.
class EndpointsController {
 public:
  EndpointsController(Simulation& sim, ApiServer& api,
                      const ControlPlaneParams& params);

 private:
  void enqueueAll();
  void enqueue(const std::string& serviceName);
  void reconcile(const std::string& serviceName);

  Simulation& sim_;
  ApiServer& api_;
  const ControlPlaneParams& params_;
  PeriodicTimer resync_;
  std::unordered_set<std::string> queued_;
};

}  // namespace edgesim::k8s
