#include "k8s/scheduler.hpp"

#include <limits>

#include "util/log.hpp"

namespace edgesim::k8s {

namespace {

int podsOnNode(const Store<Pod>& pods, const std::string& nodeName) {
  int count = 0;
  for (const auto* pod : pods.list()) {
    if (pod->spec.nodeName == nodeName &&
        (pod->status.phase == PodPhase::kPending ||
         pod->status.phase == PodPhase::kRunning)) {
      ++count;
    }
  }
  return count;
}

}  // namespace

int effectiveLoad(const Store<Pod>& pods,
                  const std::map<std::string, int>& assumedLoad,
                  const std::string& nodeName) {
  int load = podsOnNode(pods, nodeName);
  if (const auto it = assumedLoad.find(nodeName); it != assumedLoad.end()) {
    load += it->second;
  }
  return load;
}

ScheduleStrategy leastLoadedStrategy() {
  return [](const Pod& /*pod*/, const std::vector<NodeHandle>& nodes,
            const Store<Pod>& allPods,
            const std::map<std::string, int>& assumedLoad) -> std::string {
    std::string best;
    int bestLoad = std::numeric_limits<int>::max();
    for (const auto& node : nodes) {
      const int load = effectiveLoad(allPods, assumedLoad, node.name);
      if (load >= node.podCapacity) continue;
      if (load < bestLoad) {
        bestLoad = load;
        best = node.name;
      }
    }
    return best;
  };
}

ScheduleStrategy binPackStrategy() {
  return [](const Pod& /*pod*/, const std::vector<NodeHandle>& nodes,
            const Store<Pod>& allPods,
            const std::map<std::string, int>& assumedLoad) -> std::string {
    for (const auto& node : nodes) {
      if (effectiveLoad(allPods, assumedLoad, node.name) < node.podCapacity) {
        return node.name;
      }
    }
    return "";
  };
}

PodScheduler::PodScheduler(Simulation& sim, ApiServer& api,
                           const ControlPlaneParams& params,
                           std::vector<NodeHandle> nodes)
    : sim_(sim), api_(api), params_(params), nodes_(std::move(nodes)) {
  strategies_["default-scheduler"] = leastLoadedStrategy();
  api_.pods().watch([this](const WatchEvent<Pod>& event) {
    if (event.type == WatchEventType::kDeleted) {
      assumedPods_.erase(event.object.meta.name);
      return;
    }
    if (event.object.scheduled()) {
      assumedPods_.erase(event.object.meta.name);
    } else {
      enqueue(event.object.meta.name);
    }
  });
  resync_.start(sim_, params_.controllerResyncPeriod, [this] {
    for (const auto* pod : api_.pods().list()) {
      if (!pod->scheduled() && assumedPods_.count(pod->meta.name) == 0) {
        enqueue(pod->meta.name);
      }
    }
    return true;
  }, params_.controllerResyncPeriod);
}

void PodScheduler::registerStrategy(const std::string& name,
                                    ScheduleStrategy strategy) {
  ES_ASSERT(strategy != nullptr);
  strategies_[name] = std::move(strategy);
}

void PodScheduler::enqueue(const std::string& podName) {
  if (!queued_.insert(podName).second) return;
  sim_.schedule(params_.schedulingLatency, [this, podName] {
    queued_.erase(podName);
    scheduleOne(podName);
  });
}

std::map<std::string, int> PodScheduler::pruneAndCountAssumed() {
  std::map<std::string, int> load;
  for (auto it = assumedPods_.begin(); it != assumedPods_.end();) {
    const Pod* pod = api_.pods().get(it->first);
    if (pod == nullptr || pod->scheduled()) {
      it = assumedPods_.erase(it);
    } else {
      ++load[it->second];
      ++it;
    }
  }
  return load;
}

void PodScheduler::scheduleOne(const std::string& podName) {
  const Pod* pod = api_.pods().get(podName);
  if (pod == nullptr || pod->scheduled()) return;
  if (assumedPods_.count(podName) != 0) return;  // bind already in flight

  std::string strategyName = pod->spec.schedulerName;
  if (strategyName.empty()) strategyName = "default-scheduler";
  const auto it = strategies_.find(strategyName);
  if (it == strategies_.end()) {
    // Unknown scheduler: the pod stays Pending, exactly like real K8s.
    ES_WARN("k8s.sched", "pod %s requests unknown scheduler '%s'",
            podName.c_str(), strategyName.c_str());
    ++unschedulable_;
    return;
  }

  const auto assumedLoad = pruneAndCountAssumed();
  const std::string nodeName =
      it->second(*pod, nodes_, api_.pods(), assumedLoad);
  if (nodeName.empty()) {
    ++unschedulable_;
    ES_DEBUG("k8s.sched", "pod %s unschedulable (no capacity)",
             podName.c_str());
    // Retry on the next resync.
    return;
  }

  ++scheduled_;
  assumedPods_[podName] = nodeName;  // assume before the bind commits
  ES_DEBUG("k8s.sched", "binding pod %s -> node %s", podName.c_str(),
           nodeName.c_str());
  api_.pods().update(podName,
                     [nodeName](Pod& p) { p.spec.nodeName = nodeName; });
}

}  // namespace edgesim::k8s
