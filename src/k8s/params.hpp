// Kubernetes control-plane timing parameters.
//
// THE key calibration surface for reproducing fig. 11's "Kubernetes costs
// ~3 s where Docker costs <1 s".  Nothing hard-codes the 3 s: a scale-up
// traverses api write -> deployment controller -> replicaset controller ->
// scheduler -> kubelet -> containerd -> readiness probe -> status update ->
// endpoints, and each hop pays the latencies below.  Values approximate a
// stock single-node K8s (kubeadm defaults, informer-driven controllers,
// 1 s readiness probe).
#pragma once

#include "sim/time.hpp"

namespace edgesim::k8s {

struct ControlPlaneParams {
  /// API server mutation latency (write -> committed, includes etcd fsync).
  SimTime apiLatency = SimTime::millis(25);
  /// Committed write -> watch event delivered to an informer.
  SimTime watchLatency = SimTime::millis(40);
  /// Controller work-queue processing delay per reconcile item.
  SimTime controllerSyncLatency = SimTime::millis(250);
  /// Periodic resync for all controllers (recovers missed events).
  SimTime controllerResyncPeriod = SimTime::seconds(10.0);
  /// Scheduler: queue wait + scoring before the bind call.
  SimTime schedulingLatency = SimTime::millis(300);
  /// Kubelet: pod-sync reaction time after a watch event.
  SimTime kubeletSyncLatency = SimTime::millis(350);
  /// Kubelet housekeeping re-sync (backstop; also drives probe retries).
  SimTime kubeletResyncPeriod = SimTime::seconds(1.0);
  /// Readiness probe: first probe delay and period.
  SimTime probeInitialDelay = SimTime::millis(600);
  SimTime probePeriod = SimTime::millis(1000);
  /// Pod status update -> endpoints object rewritten.
  SimTime endpointsSyncLatency = SimTime::millis(100);
};

}  // namespace edgesim::k8s
