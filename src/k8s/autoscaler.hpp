// HorizontalAutoscaler: HPA-style replica management for a Deployment.
//
// The paper's §VII argues for deploying to Kubernetes *despite* its slower
// scale-up because it provides "automated management and scaling of
// container instances" -- this component is that capability.  It periodically
// samples a monotonic request counter for the deployment's pods, converts it
// to a request rate, and scales the Deployment toward
// `ceil(rate / targetRequestsPerReplica)` within [minReplicas, maxReplicas].
// Scale-down is damped by a stabilisation window, like the real HPA.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "k8s/cluster.hpp"

namespace edgesim::k8s {

struct AutoscalerParams {
  std::string deployment;
  int minReplicas = 1;
  int maxReplicas = 10;
  /// Target load: requests per second one replica should handle.
  double targetRequestsPerReplica = 10.0;
  SimTime syncPeriod = SimTime::seconds(5.0);
  /// Scale-down only when the desired count stayed below the current one
  /// for this long (HPA's stabilisation window).
  SimTime downscaleStabilisation = SimTime::seconds(30.0);
};

class HorizontalAutoscaler {
 public:
  /// `requestCounter` returns the monotonic total of requests served by the
  /// deployment's instances (e.g. summed ContainerInfo::requestsServed).
  HorizontalAutoscaler(Simulation& sim, K8sCluster& cluster,
                       AutoscalerParams params,
                       std::function<std::uint64_t()> requestCounter);

  int lastDesiredReplicas() const { return lastDesired_; }
  double lastObservedRate() const { return lastRate_; }
  std::uint64_t scaleEvents() const { return scaleEvents_; }

 private:
  void sync();

  Simulation& sim_;
  K8sCluster& cluster_;
  AutoscalerParams params_;
  std::function<std::uint64_t()> requestCounter_;
  PeriodicTimer timer_;
  std::uint64_t lastCount_ = 0;
  SimTime lastSample_;
  bool hasSample_ = false;
  int lastDesired_ = 0;
  double lastRate_ = 0.0;
  SimTime belowSince_ = SimTime::max();
  std::uint64_t scaleEvents_ = 0;
};

}  // namespace edgesim::k8s
