// Kubernetes API object model (the subset the paper's controller uses):
// Deployment, ReplicaSet, Pod, Service, Endpoints.
//
// The paper deploys edge services as a Deployment (created with zero
// replicas -- "scale to zero") plus a Service; scale-up raises
// `spec.replicas`.  We model the controller-visible surface of these
// objects; fields irrelevant to timing/behaviour are omitted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "container/spec.hpp"
#include "net/addr.hpp"
#include "sim/time.hpp"

namespace edgesim::k8s {

using Labels = std::map<std::string, std::string>;

/// True when every entry of `selector` appears in `labels`.
bool selectorMatches(const Labels& selector, const Labels& labels);

struct ObjectMeta {
  std::string name;
  Labels labels;
  Labels annotations;
  std::uint64_t uid = 0;
  std::uint64_t resourceVersion = 0;
  SimTime creationTime;
};

// ---------------------------------------------------------------- Pod ----

enum class PodPhase { kPending, kRunning, kSucceeded, kFailed };

const char* podPhaseName(PodPhase phase);

struct PodSpec {
  std::vector<container::ContainerSpec> containers;
  std::string nodeName;       // empty until scheduled
  std::string schedulerName;  // empty => default scheduler
};

struct PodStatus {
  PodPhase phase = PodPhase::kPending;
  bool ready = false;
  /// Endpoint of the primary (port-exposing) container once ready.
  Endpoint endpoint;
  SimTime readyAt;
};

struct Pod {
  ObjectMeta meta;
  PodSpec spec;
  PodStatus status;
  /// Name of the owning ReplicaSet ("" for bare pods).
  std::string ownerReplicaSet;

  bool scheduled() const { return !spec.nodeName.empty(); }
};

// --------------------------------------------------------- ReplicaSet ----

struct PodTemplate {
  Labels labels;
  PodSpec spec;
};

struct ReplicaSetSpec {
  int replicas = 0;
  Labels selector;
  PodTemplate podTemplate;
};

struct ReplicaSetStatus {
  int replicas = 0;
  int readyReplicas = 0;
};

struct ReplicaSet {
  ObjectMeta meta;
  ReplicaSetSpec spec;
  ReplicaSetStatus status;
  std::string ownerDeployment;
};

// --------------------------------------------------------- Deployment ----

struct DeploymentSpec {
  int replicas = 0;
  Labels selector;
  PodTemplate podTemplate;
};

struct DeploymentStatus {
  int replicas = 0;
  int readyReplicas = 0;
};

struct Deployment {
  ObjectMeta meta;
  DeploymentSpec spec;
  DeploymentStatus status;
};

// ------------------------------------------------------------ Service ----

struct ServicePort {
  std::uint16_t port = 80;        // exposed port
  std::uint16_t targetPort = 80;  // container port
  std::string protocol = "TCP";
};

struct ServiceSpec {
  Labels selector;
  std::vector<ServicePort> ports;
};

struct Service {
  ObjectMeta meta;
  ServiceSpec spec;
};

// ---------------------------------------------------------- Endpoints ----

struct Endpoints {
  ObjectMeta meta;  // same name as the Service
  std::vector<Endpoint> addresses;
};

}  // namespace edgesim::k8s
