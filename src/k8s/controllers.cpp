#include "k8s/controllers.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace edgesim::k8s {

namespace {

bool templatesEqual(const PodTemplate& a, const PodTemplate& b) {
  if (a.labels != b.labels) return false;
  if (a.spec.schedulerName != b.spec.schedulerName) return false;
  if (a.spec.containers.size() != b.spec.containers.size()) return false;
  for (std::size_t i = 0; i < a.spec.containers.size(); ++i) {
    if (a.spec.containers[i].image != b.spec.containers[i].image) return false;
    if (a.spec.containers[i].name != b.spec.containers[i].name) return false;
  }
  return true;
}

bool podAlive(const Pod& pod) {
  return pod.status.phase == PodPhase::kPending ||
         pod.status.phase == PodPhase::kRunning;
}

}  // namespace

// ------------------------------------------------------------------------
// DeploymentController
// ------------------------------------------------------------------------

DeploymentController::DeploymentController(Simulation& sim, ApiServer& api,
                                           const ControlPlaneParams& params)
    : sim_(sim), api_(api), params_(params) {
  api_.deployments().watch([this](const WatchEvent<Deployment>& event) {
    enqueue(event.object.meta.name);
  });
  // ReplicaSet status changes roll up into Deployment status.
  api_.replicaSets().watch([this](const WatchEvent<ReplicaSet>& event) {
    if (!event.object.ownerDeployment.empty()) {
      enqueue(event.object.ownerDeployment);
    }
  });
  resync_.start(sim_, params_.controllerResyncPeriod, [this] {
    for (const auto* deployment : api_.deployments().list()) {
      enqueue(deployment->meta.name);
    }
    return true;
  }, params_.controllerResyncPeriod);
}

void DeploymentController::enqueue(const std::string& name) {
  if (!queued_.insert(name).second) return;  // already pending
  sim_.schedule(params_.controllerSyncLatency, [this, name] {
    queued_.erase(name);
    reconcile(name);
  });
}

void DeploymentController::reconcile(const std::string& name) {
  const Deployment* deployment = api_.deployments().get(name);
  const std::string rsName = rsNameFor(name);
  const ReplicaSet* rs = api_.replicaSets().get(rsName);

  if (deployment == nullptr) {
    if (rs != nullptr) api_.replicaSets().remove(rsName);
    return;
  }

  if (rs == nullptr) {
    ReplicaSet newRs;
    newRs.meta.name = rsName;
    newRs.meta.labels = deployment->spec.podTemplate.labels;
    newRs.spec.replicas = deployment->spec.replicas;
    newRs.spec.selector = deployment->spec.selector;
    newRs.spec.podTemplate = deployment->spec.podTemplate;
    newRs.ownerDeployment = name;
    ES_DEBUG("k8s.deploy", "creating replicaset %s (replicas=%d)",
             rsName.c_str(), newRs.spec.replicas);
    api_.replicaSets().create(std::move(newRs));
    return;
  }

  if (rs->spec.replicas != deployment->spec.replicas ||
      !templatesEqual(rs->spec.podTemplate, deployment->spec.podTemplate)) {
    const int replicas = deployment->spec.replicas;
    const PodTemplate podTemplate = deployment->spec.podTemplate;
    api_.replicaSets().update(rsName, [replicas, podTemplate](ReplicaSet& r) {
      r.spec.replicas = replicas;
      r.spec.podTemplate = podTemplate;
    });
  }

  // Roll the RS status up into the Deployment status when stale.
  if (deployment->status.replicas != rs->status.replicas ||
      deployment->status.readyReplicas != rs->status.readyReplicas) {
    const ReplicaSetStatus status = rs->status;
    api_.deployments().update(name, [status](Deployment& d) {
      d.status.replicas = status.replicas;
      d.status.readyReplicas = status.readyReplicas;
    });
  }
}

// ------------------------------------------------------------------------
// ReplicaSetController
// ------------------------------------------------------------------------

ReplicaSetController::ReplicaSetController(Simulation& sim, ApiServer& api,
                                           const ControlPlaneParams& params)
    : sim_(sim), api_(api), params_(params) {
  api_.replicaSets().watch([this](const WatchEvent<ReplicaSet>& event) {
    enqueue(event.object.meta.name);
  });
  api_.pods().watch([this](const WatchEvent<Pod>& event) {
    if (!event.object.ownerReplicaSet.empty()) {
      enqueue(event.object.ownerReplicaSet);
    }
  });
  resync_.start(sim_, params_.controllerResyncPeriod, [this] {
    for (const auto* rs : api_.replicaSets().list()) {
      enqueue(rs->meta.name);
    }
    return true;
  }, params_.controllerResyncPeriod);
}

void ReplicaSetController::enqueue(const std::string& name) {
  if (!queued_.insert(name).second) return;
  sim_.schedule(params_.controllerSyncLatency, [this, name] {
    queued_.erase(name);
    reconcile(name);
  });
}

void ReplicaSetController::reconcile(const std::string& name) {
  const ReplicaSet* rs = api_.replicaSets().get(name);

  // Collect owned pods.
  std::vector<const Pod*> owned;
  for (const auto* pod : api_.pods().list()) {
    if (pod->ownerReplicaSet == name) owned.push_back(pod);
  }

  if (rs == nullptr) {
    for (const auto* pod : owned) api_.pods().remove(pod->meta.name);
    return;
  }

  std::vector<const Pod*> alive;
  for (const auto* pod : owned) {
    if (podAlive(*pod)) {
      alive.push_back(pod);
    } else {
      // Failed/succeeded pods are garbage-collected and replaced.
      api_.pods().remove(pod->meta.name);
    }
  }

  const int want = rs->spec.replicas;
  const int have = static_cast<int>(alive.size());

  if (have < want) {
    for (int i = 0; i < want - have; ++i) {
      Pod pod;
      pod.meta.name = strprintf("%s-%llu", name.c_str(),
                                static_cast<unsigned long long>(podCounter_++));
      pod.meta.labels = rs->spec.podTemplate.labels;
      pod.spec = rs->spec.podTemplate.spec;
      pod.ownerReplicaSet = name;
      ES_DEBUG("k8s.rs", "creating pod %s", pod.meta.name.c_str());
      api_.pods().create(std::move(pod));
    }
  } else if (have > want) {
    // Scale down: prefer not-ready pods, then newest first.
    std::vector<const Pod*> victims = alive;
    std::sort(victims.begin(), victims.end(), [](const Pod* a, const Pod* b) {
      if (a->status.ready != b->status.ready) return !a->status.ready;
      return a->meta.uid > b->meta.uid;
    });
    for (int i = 0; i < have - want; ++i) {
      ES_DEBUG("k8s.rs", "deleting pod %s (scale down)",
               victims[static_cast<std::size_t>(i)]->meta.name.c_str());
      api_.pods().remove(victims[static_cast<std::size_t>(i)]->meta.name);
    }
  }

  // Refresh status.
  int ready = 0;
  for (const auto* pod : alive) {
    if (pod->status.ready) ++ready;
  }
  if (rs->status.replicas != have || rs->status.readyReplicas != ready) {
    api_.replicaSets().update(name, [have, ready](ReplicaSet& r) {
      r.status.replicas = have;
      r.status.readyReplicas = ready;
    });
  }
}

// ------------------------------------------------------------------------
// EndpointsController
// ------------------------------------------------------------------------

EndpointsController::EndpointsController(Simulation& sim, ApiServer& api,
                                         const ControlPlaneParams& params)
    : sim_(sim), api_(api), params_(params) {
  api_.services().watch([this](const WatchEvent<Service>& event) {
    enqueue(event.object.meta.name);
  });
  api_.pods().watch(
      [this](const WatchEvent<Pod>& /*event*/) { enqueueAll(); });
  resync_.start(sim_, params_.controllerResyncPeriod, [this] {
    enqueueAll();
    return true;
  }, params_.controllerResyncPeriod);
}

void EndpointsController::enqueueAll() {
  for (const auto* service : api_.services().list()) {
    enqueue(service->meta.name);
  }
}

void EndpointsController::enqueue(const std::string& serviceName) {
  if (!queued_.insert(serviceName).second) return;
  sim_.schedule(params_.endpointsSyncLatency, [this, serviceName] {
    queued_.erase(serviceName);
    reconcile(serviceName);
  });
}

void EndpointsController::reconcile(const std::string& serviceName) {
  const Service* service = api_.services().get(serviceName);
  const Endpoints* existing = api_.endpoints().get(serviceName);

  if (service == nullptr) {
    if (existing != nullptr) api_.endpoints().remove(serviceName);
    return;
  }

  std::vector<Endpoint> addresses;
  for (const auto* pod : api_.pods().listBySelector(service->spec.selector)) {
    if (pod->status.ready) addresses.push_back(pod->status.endpoint);
  }
  std::sort(addresses.begin(), addresses.end());

  if (existing == nullptr) {
    Endpoints endpoints;
    endpoints.meta.name = serviceName;
    endpoints.addresses = std::move(addresses);
    api_.endpoints().create(std::move(endpoints));
  } else if (existing->addresses != addresses) {
    api_.endpoints().update(serviceName, [addresses](Endpoints& e) {
      e.addresses = addresses;
    });
  }
}

}  // namespace edgesim::k8s
