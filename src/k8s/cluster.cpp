#include "k8s/cluster.hpp"

namespace edgesim::k8s {

K8sCluster::K8sCluster(Simulation& sim, ControlPlaneParams params,
                       std::vector<NodeHandle> nodes)
    : sim_(sim), params_(params), homeDomain_(sim.activeDomainId()) {
  api_ = std::make_unique<ApiServer>(sim_, params_);
  deploymentController_ =
      std::make_unique<DeploymentController>(sim_, *api_, params_);
  replicaSetController_ =
      std::make_unique<ReplicaSetController>(sim_, *api_, params_);
  endpointsController_ =
      std::make_unique<EndpointsController>(sim_, *api_, params_);
  scheduler_ = std::make_unique<PodScheduler>(sim_, *api_, params_, nodes);
  for (const auto& node : nodes) {
    kubelets_.push_back(std::make_unique<Kubelet>(sim_, *api_, params_, node));
  }
}

void K8sCluster::applyDeployment(Deployment deployment,
                                 std::function<void(Status)> cb) {
  const std::string name = deployment.meta.name;
  if (api_->deployments().get(name) != nullptr) {
    const DeploymentSpec spec = deployment.spec;
    api_->deployments().update(
        name, [spec](Deployment& d) { d.spec = spec; }, std::move(cb));
    return;
  }
  api_->deployments().create(std::move(deployment), std::move(cb));
}

void K8sCluster::applyService(Service service,
                              std::function<void(Status)> cb) {
  const std::string name = service.meta.name;
  if (api_->services().get(name) != nullptr) {
    const ServiceSpec spec = service.spec;
    api_->services().update(
        name, [spec](Service& s) { s.spec = spec; }, std::move(cb));
    return;
  }
  api_->services().create(std::move(service), std::move(cb));
}

void K8sCluster::scaleDeployment(const std::string& name, int replicas,
                                 std::function<void(Status)> cb) {
  api_->deployments().update(
      name, [replicas](Deployment& d) { d.spec.replicas = replicas; },
      std::move(cb));
}

void K8sCluster::deleteDeployment(const std::string& name,
                                  std::function<void(Status)> cb) {
  api_->deployments().remove(name, std::move(cb));
}

void K8sCluster::deleteService(const std::string& name,
                               std::function<void(Status)> cb) {
  api_->services().remove(name, std::move(cb));
}

std::vector<const Pod*> K8sCluster::podsBySelector(
    const Labels& selector) const {
  return api_->pods().listBySelector(selector);
}

std::vector<Endpoint> K8sCluster::readyEndpoints(
    const std::string& serviceName) const {
  const Endpoints* endpoints = api_->endpoints().get(serviceName);
  if (endpoints == nullptr) return {};
  return endpoints->addresses;
}

const Deployment* K8sCluster::deployment(const std::string& name) const {
  return api_->deployments().get(name);
}

std::vector<Kubelet*> K8sCluster::kubelets() {
  std::vector<Kubelet*> out;
  out.reserve(kubelets_.size());
  for (const auto& kubelet : kubelets_) out.push_back(kubelet.get());
  return out;
}

}  // namespace edgesim::k8s
