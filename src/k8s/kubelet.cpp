#include "k8s/kubelet.hpp"

#include "util/log.hpp"

namespace edgesim::k8s {

using container::ContainerId;
using container::ContainerState;

Kubelet::Kubelet(Simulation& sim, ApiServer& api,
                 const ControlPlaneParams& params, NodeHandle node)
    : sim_(sim), api_(api), params_(params), node_(std::move(node)) {
  ES_ASSERT(node_.host != nullptr && node_.runtime != nullptr &&
            node_.puller != nullptr);
  api_.pods().watch(
      [this](const WatchEvent<Pod>& event) { onPodEvent(event); });
  resync_.start(sim_, params_.kubeletResyncPeriod, [this] {
    for (const auto* pod : api_.pods().list()) {
      if (pod->spec.nodeName == node_.name) syncPod(pod->meta.name);
    }
    return true;
  }, params_.kubeletResyncPeriod);
}

void Kubelet::onPodEvent(const WatchEvent<Pod>& event) {
  const Pod& pod = event.object;
  if (event.type == WatchEventType::kDeleted) {
    if (workers_.count(pod.meta.name) != 0) teardown(pod.meta.name);
    return;
  }
  if (pod.spec.nodeName != node_.name) return;
  // React after the kubelet's sync latency (informer -> pod worker).
  const std::string name = pod.meta.name;
  sim_.schedule(params_.kubeletSyncLatency, [this, name] { syncPod(name); });
}

void Kubelet::syncPod(std::string podName) {
  const Pod* pod = api_.pods().get(podName);
  if (pod == nullptr) {
    if (workers_.count(podName) != 0) teardown(podName);
    return;
  }
  if (pod->spec.nodeName != node_.name) return;
  if (pod->status.phase == PodPhase::kFailed) return;

  auto it = workers_.find(podName);
  if (it == workers_.end()) {
    startPod(*pod);
    return;
  }
  // If the API object was replaced (same name, new uid), restart from
  // scratch.
  if (it->second.podUid != pod->meta.uid) {
    teardown(podName);
    startPod(*pod);
  }
}

void Kubelet::startPod(const Pod& pod) {
  PodWorker& worker = workers_[pod.meta.name];
  worker.podUid = pod.meta.uid;
  worker.creating = true;

  // Pull every container image first (already-cached pulls are instant).
  const auto images = pod.spec.containers;
  auto remaining = std::make_shared<std::size_t>(images.size());
  auto failed = std::make_shared<bool>(false);
  const std::string podName = pod.meta.name;

  ES_DEBUG("kubelet", "%s: starting pod %s (%zu containers)",
           node_.name.c_str(), podName.c_str(), images.size());

  for (const auto& spec : images) {
    auto onPulled = [this, podName, remaining, failed](Status status) {
      if (!status.ok()) {
        *failed = true;
        ES_WARN("kubelet", "%s: image pull failed for pod %s: %s",
                node_.name.c_str(), podName.c_str(),
                status.error().toString().c_str());
      }
      if (--*remaining > 0) return;
      if (*failed) {
        markFailed(podName);
        return;
      }
      const Pod* current = api_.pods().get(podName);
      if (current == nullptr) return;  // deleted while pulling
      launchContainers(*current);
    };
    if (node_.registry != nullptr) {
      node_.puller->pull(*node_.registry, spec.image, onPulled);
    } else if (node_.runtime->store().hasImage(spec.image)) {
      sim_.schedule(SimTime::zero(), [onPulled] { onPulled(Status()); });
    } else {
      sim_.schedule(SimTime::zero(), [onPulled, spec] {
        onPulled(makeError(Errc::kUnavailable,
                           "no registry and image absent: " +
                               spec.image.toString()));
      });
    }
  }
}

void Kubelet::launchContainers(const Pod& pod) {
  auto it = workers_.find(pod.meta.name);
  if (it == workers_.end()) return;
  const std::string podName = pod.meta.name;

  // Scripted crash-on-start: the kubelet's pod worker dies before the
  // containers come up, the pod goes Failed, and the ReplicaSet controller
  // replaces it -- the same recovery path a real kubelet crash exercises.
  if (faults_ != nullptr) {
    if (auto injected =
            faults_->evaluate(fault::FaultSite::kContainerStart, node_.name);
        injected.has_value() && injected->fail) {
      ++injectedCrashes_;
      ES_WARN("kubelet", "%s: injected crash launching pod %s: %s",
              node_.name.c_str(), podName.c_str(),
              injected->error.toString().c_str());
      sim_.schedule(injected->stall,
                    [this, podName] { markFailed(podName); });
      return;
    }
  }

  auto remaining = std::make_shared<std::size_t>(pod.spec.containers.size());
  for (const auto& spec : pod.spec.containers) {
    // containerd create latency, then start.
    sim_.schedule(node_.runtime->params().createLatency, [this, podName, spec,
                                                          remaining] {
      auto wit = workers_.find(podName);
      if (wit == workers_.end()) return;
      const auto created = node_.runtime->create(spec);
      if (!created.ok()) {
        ES_WARN("kubelet", "%s: create failed for %s: %s", node_.name.c_str(),
                podName.c_str(), created.error().toString().c_str());
        markFailed(podName);
        return;
      }
      const ContainerId id = created.value();
      wit->second.containers.push_back(id);
      const Status startStatus =
          node_.runtime->start(id, [this, podName, remaining](Status status) {
            if (!status.ok()) {
              markFailed(podName);
              return;
            }
            if (--*remaining > 0) return;
            // All containers started: pod is Running; begin readiness checks.
            api_.pods().update(podName, [](Pod& p) {
              p.status.phase = PodPhase::kRunning;
            });
            ++startedPods_;
            beginProbing(podName);
          });
      if (!startStatus.ok()) markFailed(podName);
    });
  }
}

void Kubelet::beginProbing(std::string podName) {
  auto it = workers_.find(podName);
  if (it == workers_.end()) return;
  it->second.probe.start(
      sim_, params_.probePeriod,
      [this, podName] {
        probePod(podName);
        const auto wit = workers_.find(podName);
        return wit != workers_.end() && !wit->second.ready;
      },
      params_.probeInitialDelay);
}

void Kubelet::probePod(const std::string& podName) {
  auto it = workers_.find(podName);
  if (it == workers_.end()) return;
  PodWorker& worker = it->second;

  bool allReady = true;
  Endpoint endpoint;
  for (const ContainerId id : worker.containers) {
    const auto* info = node_.runtime->find(id);
    if (info == nullptr) {
      allReady = false;
      break;
    }
    if (info->state == ContainerState::kExited) {
      // Crash: restart with the kubelet's backoff, or fail the pod.
      if (worker.restarts >= kMaxRestarts) {
        markFailed(podName);
        return;
      }
      ++worker.restarts;
      ++restarts_;
      ES_DEBUG("kubelet", "%s: restarting crashed container in pod %s",
               node_.name.c_str(), podName.c_str());
      (void)node_.runtime->start(id, [](Status) {});
      allReady = false;
      continue;
    }
    if (!info->spec.app.exposesPort) continue;  // helper container
    if (info->state != ContainerState::kRunning || info->hostPort == 0) {
      allReady = false;
      continue;
    }
    endpoint = Endpoint(node_.host->ip(), info->hostPort);
  }

  if (allReady && endpoint.port != 0 && !worker.ready) {
    worker.ready = true;
    api_.pods().update(podName, [endpoint, this](Pod& p) {
      p.status.ready = true;
      p.status.endpoint = endpoint;
      p.status.readyAt = sim_.now();
    });
    ES_DEBUG("kubelet", "%s: pod %s ready at %s", node_.name.c_str(),
             podName.c_str(), endpoint.toString().c_str());
  }
}

void Kubelet::markFailed(std::string podName) {
  auto it = workers_.find(podName);
  if (it != workers_.end()) {
    it->second.probe.cancel();
    for (const ContainerId id : it->second.containers) {
      const auto* info = node_.runtime->find(id);
      if (info != nullptr && (info->state == ContainerState::kRunning ||
                              info->state == ContainerState::kStarting)) {
        (void)node_.runtime->stop(id, [](Status) {});
      }
    }
  }
  // Defer the erase: markFailed may run from inside the worker's own probe
  // tick, and erasing the worker there would destroy the executing closure.
  sim_.schedule(SimTime::zero(),
                [this, podName] { workers_.erase(podName); });
  api_.pods().update(podName, [](Pod& p) {
    p.status.phase = PodPhase::kFailed;
    p.status.ready = false;
  });
}

void Kubelet::teardown(std::string podName) {
  auto it = workers_.find(podName);
  if (it == workers_.end()) return;
  it->second.probe.cancel();
  for (const ContainerId id : it->second.containers) {
    const auto* info = node_.runtime->find(id);
    if (info == nullptr) continue;
    if (info->state == ContainerState::kRunning ||
        info->state == ContainerState::kStarting) {
      const ContainerId cid = id;
      (void)node_.runtime->stop(cid, [this, cid](Status) {
        (void)node_.runtime->remove(cid);
      });
    } else {
      (void)node_.runtime->remove(id);
    }
  }
  workers_.erase(it);
  ES_DEBUG("kubelet", "%s: tore down pod %s", node_.name.c_str(),
           podName.c_str());
}

}  // namespace edgesim::k8s
