// A Kubernetes worker node: the host it runs on, its container runtime,
// image puller and registry binding, plus scheduling capacity.
#pragma once

#include <string>

#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"

namespace edgesim::k8s {

struct NodeHandle {
  std::string name;
  Host* host = nullptr;
  container::ContainerdRuntime* runtime = nullptr;
  container::ImagePuller* puller = nullptr;
  const container::Registry* registry = nullptr;
  int podCapacity = 110;  // kubelet default max-pods
};

}  // namespace edgesim::k8s
