// Kubernetes pod scheduler with pluggable scheduling strategies.
//
// The paper's *Local Scheduler* (fig. 6) decides which instance runs where
// inside one edge cluster; on Kubernetes that role is played by the K8s
// scheduler, possibly a custom one selected via the pod's `schedulerName`
// (§IV-B: "for Kubernetes, we can even define a custom scheduler ... to be
// used for our edge services only").  Strategies are registered by name,
// mirroring that mechanism.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "k8s/api_server.hpp"
#include "k8s/node.hpp"

namespace edgesim::k8s {

/// Picks a node name for `pod` from `nodes` (empty string = unschedulable).
/// `assumedLoad` counts pods this scheduler has bound whose binding is not
/// yet visible in the store (the scheduler-cache "assume" step of real K8s);
/// add it to the store-derived load to avoid double-booking a node.
using ScheduleStrategy = std::function<std::string(
    const Pod& pod, const std::vector<NodeHandle>& nodes,
    const Store<Pod>& allPods,
    const std::map<std::string, int>& assumedLoad)>;

/// Store-visible pods on a node plus in-flight assumed bindings.
int effectiveLoad(const Store<Pod>& pods,
                  const std::map<std::string, int>& assumedLoad,
                  const std::string& nodeName);

/// Built-in strategy: the node with the fewest scheduled pods that still has
/// capacity (K8s LeastAllocated flavour).
ScheduleStrategy leastLoadedStrategy();
/// Built-in strategy: always the first node with capacity (bin packing).
ScheduleStrategy binPackStrategy();

class PodScheduler {
 public:
  PodScheduler(Simulation& sim, ApiServer& api,
               const ControlPlaneParams& params,
               std::vector<NodeHandle> nodes);

  /// Register a named strategy; pods select it via spec.schedulerName.
  void registerStrategy(const std::string& name, ScheduleStrategy strategy);

  const std::vector<NodeHandle>& nodes() const { return nodes_; }
  std::uint64_t scheduledCount() const { return scheduled_; }
  std::uint64_t unschedulableCount() const { return unschedulable_; }

 private:
  void enqueue(const std::string& podName);
  void scheduleOne(const std::string& podName);
  /// Drop assumed entries whose binding is now visible (or whose pod is
  /// gone) and rebuild the per-node assumed-load map.
  std::map<std::string, int> pruneAndCountAssumed();

  Simulation& sim_;
  ApiServer& api_;
  const ControlPlaneParams& params_;
  std::vector<NodeHandle> nodes_;
  std::map<std::string, ScheduleStrategy> strategies_;
  PeriodicTimer resync_;
  std::unordered_set<std::string> queued_;
  std::map<std::string, std::string> assumedPods_;  // pod -> node
  std::uint64_t scheduled_ = 0;
  std::uint64_t unschedulable_ = 0;
};

}  // namespace edgesim::k8s
