// Kubernetes API server: typed object stores with list/watch semantics.
//
// Mutations commit after `apiLatency`; watch events reach informers after a
// further `watchLatency`.  Controllers never see state synchronously --
// that asynchrony is where most of the K8s scale-up overhead (fig. 11)
// comes from, so it is modelled explicitly rather than folded into one
// constant.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "k8s/objects.hpp"
#include "k8s/params.hpp"
#include "sim/simulation.hpp"
#include "util/result.hpp"

namespace edgesim::k8s {

enum class WatchEventType { kAdded, kModified, kDeleted };

template <typename T>
struct WatchEvent {
  WatchEventType type;
  T object;  // snapshot at event time
};

/// One typed object store (a "resource" in K8s terms).
template <typename T>
class Store {
 public:
  using Watcher = std::function<void(const WatchEvent<T>&)>;

  Store(Simulation& sim, const ControlPlaneParams& params, std::string kind)
      : sim_(sim), params_(params), kind_(std::move(kind)) {}

  /// Create; fails with kAlreadyExists if the name is taken. `cb` optional.
  void create(T object, std::function<void(Status)> cb = nullptr) {
    sim_.schedule(params_.apiLatency, [this, object = std::move(object),
                                       cb = std::move(cb)]() mutable {
      const std::string& name = object.meta.name;
      if (items_.count(name) != 0) {
        if (cb) cb(makeError(Errc::kAlreadyExists, kind_ + "/" + name));
        return;
      }
      object.meta.uid = nextUid_++;
      object.meta.resourceVersion = ++resourceVersion_;
      object.meta.creationTime = sim_.now();
      items_.emplace(name, object);
      notify(WatchEventType::kAdded, object);
      if (cb) cb(Status());
    });
  }

  /// Read-modify-write by name; `mutate` runs at commit time so it sees the
  /// latest state (models resourceVersion-checked updates with retry).
  void update(const std::string& name, std::function<void(T&)> mutate,
              std::function<void(Status)> cb = nullptr) {
    sim_.schedule(params_.apiLatency, [this, name, mutate = std::move(mutate),
                                       cb = std::move(cb)] {
      const auto it = items_.find(name);
      if (it == items_.end()) {
        if (cb) cb(makeError(Errc::kNotFound, kind_ + "/" + name));
        return;
      }
      mutate(it->second);
      it->second.meta.resourceVersion = ++resourceVersion_;
      notify(WatchEventType::kModified, it->second);
      if (cb) cb(Status());
    });
  }

  void remove(const std::string& name,
              std::function<void(Status)> cb = nullptr) {
    sim_.schedule(params_.apiLatency, [this, name, cb = std::move(cb)] {
      const auto it = items_.find(name);
      if (it == items_.end()) {
        if (cb) cb(makeError(Errc::kNotFound, kind_ + "/" + name));
        return;
      }
      const T object = it->second;
      items_.erase(it);
      notify(WatchEventType::kDeleted, object);
      if (cb) cb(Status());
    });
  }

  // -- synchronous reads (informer-cache view) ----------------------------
  const T* get(const std::string& name) const {
    const auto it = items_.find(name);
    return it == items_.end() ? nullptr : &it->second;
  }

  std::vector<const T*> list() const {
    std::vector<const T*> out;
    out.reserve(items_.size());
    for (const auto& [name, object] : items_) out.push_back(&object);
    return out;
  }

  std::vector<const T*> listBySelector(const Labels& selector) const {
    std::vector<const T*> out;
    for (const auto& [name, object] : items_) {
      if (selectorMatches(selector, object.meta.labels)) {
        out.push_back(&object);
      }
    }
    return out;
  }

  /// Register a watcher; events arrive `watchLatency` after commit.
  void watch(Watcher watcher) { watchers_.push_back(std::move(watcher)); }

  std::size_t size() const { return items_.size(); }

 private:
  void notify(WatchEventType type, const T& object) {
    const WatchEvent<T> event{type, object};
    for (const auto& watcher : watchers_) {
      sim_.schedule(params_.watchLatency,
                    [watcher, event] { watcher(event); });
    }
  }

  Simulation& sim_;
  const ControlPlaneParams& params_;
  std::string kind_;
  std::map<std::string, T> items_;
  std::vector<Watcher> watchers_;
  std::uint64_t nextUid_ = 1;
  std::uint64_t resourceVersion_ = 0;
};

/// The API server bundles one store per resource kind.
class ApiServer {
 public:
  ApiServer(Simulation& sim, const ControlPlaneParams& params)
      : deployments_(sim, params, "Deployment"),
        replicaSets_(sim, params, "ReplicaSet"),
        pods_(sim, params, "Pod"),
        services_(sim, params, "Service"),
        endpoints_(sim, params, "Endpoints") {}

  Store<Deployment>& deployments() { return deployments_; }
  Store<ReplicaSet>& replicaSets() { return replicaSets_; }
  Store<Pod>& pods() { return pods_; }
  Store<Service>& services() { return services_; }
  Store<Endpoints>& endpoints() { return endpoints_; }

 private:
  Store<Deployment> deployments_;
  Store<ReplicaSet> replicaSets_;
  Store<Pod> pods_;
  Store<Service> services_;
  Store<Endpoints> endpoints_;
};

}  // namespace edgesim::k8s
