#include "k8s/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace edgesim::k8s {

HorizontalAutoscaler::HorizontalAutoscaler(
    Simulation& sim, K8sCluster& cluster, AutoscalerParams params,
    std::function<std::uint64_t()> requestCounter)
    : sim_(sim),
      cluster_(cluster),
      params_(std::move(params)),
      requestCounter_(std::move(requestCounter)) {
  ES_ASSERT(requestCounter_ != nullptr);
  ES_ASSERT(params_.minReplicas >= 0);
  ES_ASSERT(params_.maxReplicas >= params_.minReplicas);
  ES_ASSERT(params_.targetRequestsPerReplica > 0.0);
  timer_.start(sim_, params_.syncPeriod, [this] {
    sync();
    return true;
  }, params_.syncPeriod);
}

void HorizontalAutoscaler::sync() {
  const Deployment* deployment = cluster_.deployment(params_.deployment);
  if (deployment == nullptr) return;

  const std::uint64_t count = requestCounter_();
  if (!hasSample_) {
    hasSample_ = true;
    lastCount_ = count;
    lastSample_ = sim_.now();
    return;
  }
  const double elapsed = (sim_.now() - lastSample_).toSeconds();
  if (elapsed <= 0.0) return;
  lastRate_ = static_cast<double>(count - lastCount_) / elapsed;
  lastCount_ = count;
  lastSample_ = sim_.now();

  const int current = deployment->spec.replicas;
  int desired = static_cast<int>(
      std::ceil(lastRate_ / params_.targetRequestsPerReplica));
  desired = std::clamp(desired, params_.minReplicas, params_.maxReplicas);
  lastDesired_ = desired;

  if (desired > current) {
    belowSince_ = SimTime::max();
    ++scaleEvents_;
    ES_INFO("hpa", "%s: rate %.1f req/s -> scale %d -> %d",
            params_.deployment.c_str(), lastRate_, current, desired);
    cluster_.scaleDeployment(params_.deployment, desired);
    return;
  }
  if (desired < current) {
    // Stabilisation: only downscale after the desire persisted.
    if (belowSince_ == SimTime::max()) belowSince_ = sim_.now();
    if (sim_.now() - belowSince_ >= params_.downscaleStabilisation) {
      ++scaleEvents_;
      ES_INFO("hpa", "%s: rate %.1f req/s -> scale %d -> %d (down)",
              params_.deployment.c_str(), lastRate_, current, desired);
      cluster_.scaleDeployment(params_.deployment, desired);
      belowSince_ = SimTime::max();
    }
    return;
  }
  belowSince_ = SimTime::max();
}

}  // namespace edgesim::k8s
