// K8sCluster: wires an API server, controller manager, scheduler, and one
// kubelet per node into a cluster, and offers the client-facing operations
// the paper's SDN controller performs through the Kubernetes API:
// apply Deployment/Service, scale, delete, list, read endpoints.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "k8s/api_server.hpp"
#include "k8s/controllers.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/scheduler.hpp"

namespace edgesim::k8s {

class K8sCluster {
 public:
  K8sCluster(Simulation& sim, ControlPlaneParams params,
             std::vector<NodeHandle> nodes);

  ApiServer& api() { return *api_; }
  PodScheduler& scheduler() { return *scheduler_; }
  const ControlPlaneParams& params() const { return params_; }

  /// Time domain active when the cluster was built: all reconcile loops
  /// (deployment/replica-set/endpoints controllers, kubelet sync) armed
  /// their timers there, so they advance with that domain.  Adapters homed
  /// elsewhere must marshal operations into this domain.
  DomainId homeDomain() const { return homeDomain_; }

  // -- client operations (as the SDN controller's K8s adapter uses them) --
  void applyDeployment(Deployment deployment,
                       std::function<void(Status)> cb = nullptr);
  void applyService(Service service, std::function<void(Status)> cb = nullptr);
  void scaleDeployment(const std::string& name, int replicas,
                       std::function<void(Status)> cb = nullptr);
  void deleteDeployment(const std::string& name,
                        std::function<void(Status)> cb = nullptr);
  void deleteService(const std::string& name,
                     std::function<void(Status)> cb = nullptr);

  std::vector<const Pod*> podsBySelector(const Labels& selector) const;
  /// Ready endpoints for the Service object `serviceName` (empty when the
  /// Endpoints object does not exist yet).
  std::vector<Endpoint> readyEndpoints(const std::string& serviceName) const;
  const Deployment* deployment(const std::string& name) const;

  std::vector<Kubelet*> kubelets();

 private:
  Simulation& sim_;
  ControlPlaneParams params_;
  DomainId homeDomain_ = kControlDomain;
  std::unique_ptr<ApiServer> api_;
  std::unique_ptr<DeploymentController> deploymentController_;
  std::unique_ptr<ReplicaSetController> replicaSetController_;
  std::unique_ptr<EndpointsController> endpointsController_;
  std::unique_ptr<PodScheduler> scheduler_;
  std::vector<std::unique_ptr<Kubelet>> kubelets_;
};

}  // namespace edgesim::k8s
