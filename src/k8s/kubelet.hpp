// Kubelet: runs pods bound to its node.
//
// Responsibilities modelled: reacting to pod bindings (watch + sync
// latency), pulling images through the node's registry binding, creating
// and starting containers via the shared containerd runtime, readiness
// probing (initial delay + period -- a visible chunk of the K8s scale-up
// time), status updates through the API server, container restarts with
// backoff, and teardown on pod deletion.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "k8s/api_server.hpp"
#include "k8s/node.hpp"

namespace edgesim::k8s {

class Kubelet {
 public:
  Kubelet(Simulation& sim, ApiServer& api, const ControlPlaneParams& params,
          NodeHandle node);

  const std::string& nodeName() const { return node_.name; }
  std::uint64_t startedPods() const { return startedPods_; }
  std::uint64_t restartedContainers() const { return restarts_; }

  /// Consult `plan` (site kContainerStart, target = node name) when a pod's
  /// containers launch: a triggered fault crashes the kubelet's pod worker
  /// (the pod is marked Failed and its ReplicaSet replaces it).
  void setFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }
  std::uint64_t injectedCrashes() const { return injectedCrashes_; }

  /// Containers may crash after start; this caps restart attempts before
  /// the pod is marked Failed (and replaced by its ReplicaSet).
  static constexpr int kMaxRestarts = 3;

 private:
  struct PodWorker {
    std::uint64_t podUid = 0;
    std::vector<container::ContainerId> containers;
    bool creating = false;
    bool ready = false;
    int restarts = 0;
    PeriodicTimer probe;
  };

  // Pod names are passed by value below: several of these erase the
  // worker map entry that (indirectly) owns the caller's string.
  void onPodEvent(const WatchEvent<Pod>& event);
  void syncPod(std::string podName);
  void startPod(const Pod& pod);
  void launchContainers(const Pod& pod);
  void beginProbing(std::string podName);
  void probePod(const std::string& podName);
  void teardown(std::string podName);
  void markFailed(std::string podName);

  Simulation& sim_;
  ApiServer& api_;
  const ControlPlaneParams& params_;
  NodeHandle node_;
  fault::FaultPlan* faults_ = nullptr;
  std::map<std::string, PodWorker> workers_;  // key: pod name
  PeriodicTimer resync_;
  std::uint64_t startedPods_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t injectedCrashes_ = 0;
};

}  // namespace edgesim::k8s
