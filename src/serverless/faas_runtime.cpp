#include "serverless/faas_runtime.hpp"

#include "util/log.hpp"

namespace edgesim::serverless {

FaasRuntime::FaasRuntime(Simulation& sim, Host& host, FaasParams params)
    : sim_(sim), host_(host), params_(params), rng_(sim.rng().fork(0xFAA5)) {}

void FaasRuntime::fetchModule(const FunctionSpec& spec, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto& function = functions_[spec.name];
  if (function.spec.name.empty()) function.spec = spec;
  if (function.fetched) {
    sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
    return;
  }
  const SimTime transfer = SimTime::nanos(
      params_.repoBandwidth.transmissionNanos(spec.profile.moduleSize));
  sim_.schedule(params_.repoRtt + transfer, [this, name = spec.name, cb] {
    functions_[name].fetched = true;
    cb(Status());
  });
}

bool FaasRuntime::moduleCached(const std::string& name) const {
  const auto it = functions_.find(name);
  return it != functions_.end() && it->second.fetched;
}

void FaasRuntime::deployFunction(const FunctionSpec& spec, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto& function = functions_[spec.name];
  if (function.spec.name.empty()) function.spec = spec;
  if (!function.fetched) {
    sim_.schedule(SimTime::zero(), [cb] {
      cb(makeError(Errc::kFailedPrecondition, "module not fetched"));
    });
    return;
  }
  if (function.compiled) {
    sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
    return;
  }
  sim_.schedule(spec.profile.compileDelay, [this, name = spec.name, cb] {
    functions_[name].compiled = true;
    cb(Status());
  });
}

bool FaasRuntime::deployed(const std::string& name) const {
  const auto it = functions_.find(name);
  return it != functions_.end() && it->second.compiled;
}

void FaasRuntime::activate(const std::string& name, ActivateCallback cb) {
  ES_ASSERT(cb != nullptr);
  const auto it = functions_.find(name);
  if (it == functions_.end() || !it->second.compiled) {
    sim_.schedule(SimTime::zero(), [cb] {
      cb(makeError(Errc::kFailedPrecondition, "function not deployed"));
    });
    return;
  }
  if (it->second.port != 0) {
    const Endpoint endpoint(host_.ip(), it->second.port);
    sim_.schedule(SimTime::zero(), [cb, endpoint] { cb(endpoint); });
    return;
  }
  ++coldStarts_;
  sim_.schedule(it->second.spec.profile.coldStartDelay, [this, name, cb] {
    auto fit = functions_.find(name);
    if (fit == functions_.end() || !fit->second.compiled) {
      cb(makeError(Errc::kConflict, "function removed during activation"));
      return;
    }
    bindIsolate(fit->second);
    cb(Endpoint(host_.ip(), fit->second.port));
  });
}

void FaasRuntime::bindIsolate(Function& function) {
  function.port = nextPort_++;
  function.lastUsed = sim_.now();
  const FunctionProfile profile = function.spec.profile;
  const std::string name = function.spec.name;
  auto requestRng = std::make_shared<Rng>(rng_.fork(function.port));
  host_.listen(function.port, [this, profile, name, requestRng](
                                  const HttpRequest&, HttpRespond respond) {
    auto fit = functions_.find(name);
    if (fit != functions_.end()) {
      fit->second.lastUsed = sim_.now();
      armEviction(name);
    }
    SimTime compute = profile.requestCompute;
    if (profile.computeJitterSigma > 0.0) {
      compute =
          compute.scaled(requestRng->lognormal(0.0, profile.computeJitterSigma));
    }
    sim_.schedule(compute, [profile, respond = std::move(respond)] {
      HttpResponse response;
      response.status = 200;
      response.payload = profile.responseBytes;
      respond(response);
    });
  });
  armEviction(name);
  ES_DEBUG("faas", "%s: isolate for %s active on port %u",
           host_.name().c_str(), name.c_str(), function.port);
}

void FaasRuntime::armEviction(const std::string& name) {
  if (params_.idleEviction <= SimTime::zero()) return;
  auto it = functions_.find(name);
  if (it == functions_.end() || it->second.port == 0) return;
  it->second.evictionTimer.cancel();
  it->second.evictionTimer =
      sim_.schedule(params_.idleEviction, [this, name] {
        auto fit = functions_.find(name);
        if (fit == functions_.end() || fit->second.port == 0) return;
        if (sim_.now() - fit->second.lastUsed < params_.idleEviction) return;
        ++evictions_;
        host_.closeListener(fit->second.port);
        fit->second.port = 0;
        ES_DEBUG("faas", "%s: evicted idle isolate %s", host_.name().c_str(),
                 name.c_str());
      });
}

void FaasRuntime::deactivate(const std::string& name, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto it = functions_.find(name);
  if (it != functions_.end() && it->second.port != 0) {
    it->second.evictionTimer.cancel();
    host_.closeListener(it->second.port);
    it->second.port = 0;
  }
  sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
}

void FaasRuntime::removeFunction(const std::string& name, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto it = functions_.find(name);
  if (it != functions_.end()) {
    it->second.evictionTimer.cancel();
    if (it->second.port != 0) host_.closeListener(it->second.port);
    functions_.erase(it);
  }
  sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
}

std::vector<Endpoint> FaasRuntime::activeEndpoints(
    const std::string& name) const {
  const auto it = functions_.find(name);
  if (it == functions_.end() || it->second.port == 0) return {};
  return {Endpoint(host_.ip(), it->second.port)};
}

Bytes FaasRuntime::moduleCacheBytes() const {
  Bytes total;
  for (const auto& [name, function] : functions_) {
    if (function.fetched) total += function.spec.profile.moduleSize;
  }
  return total;
}

}  // namespace edgesim::serverless
