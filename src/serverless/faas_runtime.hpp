// FaasRuntime: a WebAssembly-style serverless runtime on one edge node.
//
// The paper's future work (§VIII) proposes "side-by-side operation of
// containers and serverless applications" under transparent access, citing
// WebAssembly runtimes whose cold-start latency is far below containers'
// (Gackstatter et al. [7], Faasm [25], aWsm [24]).  This module models such
// a runtime with the same three-phase lifecycle as fig. 4 so it can slot
// into the controller's deployment pipeline:
//
//   Fetch    (~Pull):     download the Wasm module (small; a few MiB)
//   Deploy   (~Create):   compile/JIT the module, cache machine code
//   Activate (~Scale Up): instantiate an isolate and bind the port --
//                         milliseconds instead of hundreds of them
//
// Containers retain their advantages (arbitrary binaries, better isolation)
// -- a Wasm function reuses the AppProfile's request compute, but complex
// apps like TensorFlow Serving don't fit, mirroring reality.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "sim/simulation.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace edgesim::serverless {

struct FunctionProfile {
  Bytes moduleSize = 2_MiB;      // compiled Wasm artifact
  SimTime compileDelay = SimTime::millis(45);   // one-time JIT/AOT compile
  SimTime coldStartDelay = SimTime::millis(6);  // isolate instantiation
  SimTime requestCompute = SimTime::micros(400);
  double computeJitterSigma = 0.0;
  Bytes responseBytes = Bytes{1024};
};

struct FunctionSpec {
  std::string name;
  FunctionProfile profile;
};

struct FaasParams {
  /// Module repository round trip + bandwidth (source fetched from the
  /// cloud like an image pull, but tiny).
  SimTime repoRtt = SimTime::millis(80);
  BitRate repoBandwidth = BitRate{400u * 1000 * 1000};
  /// Idle instance eviction (scale-to-zero) -- the runtime's own policy;
  /// zero disables it (the controller can still deactivate explicitly).
  SimTime idleEviction = SimTime::zero();
};

class FaasRuntime {
 public:
  using Callback = std::function<void(Status)>;
  using ActivateCallback = std::function<void(Result<Endpoint>)>;

  FaasRuntime(Simulation& sim, Host& host, FaasParams params = {});

  /// Phase 1 (Fetch): download the module unless cached.
  void fetchModule(const FunctionSpec& spec, Callback cb);
  bool moduleCached(const std::string& name) const;

  /// Phase 2 (Deploy): compile the cached module; idempotent.
  void deployFunction(const FunctionSpec& spec, Callback cb);
  bool deployed(const std::string& name) const;

  /// Phase 3 (Activate): instantiate an isolate and bind its port.
  void activate(const std::string& name, ActivateCallback cb);
  /// Tear the isolate down (scale-to-zero); the compiled module stays.
  void deactivate(const std::string& name, Callback cb);
  /// Drop the compiled module + source (fig. 4 Remove/Delete analogue).
  void removeFunction(const std::string& name, Callback cb);

  std::vector<Endpoint> activeEndpoints(const std::string& name) const;

  Host& host() { return host_; }
  std::uint64_t coldStarts() const { return coldStarts_; }
  std::uint64_t evictions() const { return evictions_; }
  Bytes moduleCacheBytes() const;

 private:
  struct Function {
    FunctionSpec spec;
    bool fetched = false;
    bool compiled = false;
    std::uint16_t port = 0;  // 0 => no active isolate
    SimTime lastUsed;
    EventHandle evictionTimer;
  };

  void bindIsolate(Function& function);
  void armEviction(const std::string& name);

  Simulation& sim_;
  Host& host_;
  FaasParams params_;
  Rng rng_;
  std::uint16_t nextPort_ = 40000;
  std::map<std::string, Function> functions_;
  std::uint64_t coldStarts_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace edgesim::serverless
