// OpenFlow match structure (the OXM subset the paper's controller uses).
//
// Transparent redirection matches on the registered service address --
// destination IP + TCP port -- optionally narrowed by source fields for
// per-client flows, and by ingress port (fig. 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace edgesim::openflow {

struct FlowMatch {
  std::optional<PortId> inPort;
  std::optional<Ipv4> ipSrc;
  std::optional<Ipv4> ipDst;
  std::optional<IpProto> ipProto;
  std::optional<std::uint16_t> tcpSrc;
  std::optional<std::uint16_t> tcpDst;

  bool matches(const Packet& packet, PortId packetInPort) const {
    if (inPort && *inPort != packetInPort) return false;
    if (ipSrc && *ipSrc != packet.ipSrc) return false;
    if (ipDst && *ipDst != packet.ipDst) return false;
    if (ipProto && *ipProto != packet.ipProto) return false;
    if (tcpSrc && *tcpSrc != packet.tcpSrc) return false;
    if (tcpDst && *tcpDst != packet.tcpDst) return false;
    return true;
  }

  /// Number of specified fields; used only for diagnostics.
  int specificity() const {
    int n = 0;
    n += inPort.has_value();
    n += ipSrc.has_value();
    n += ipDst.has_value();
    n += ipProto.has_value();
    n += tcpSrc.has_value();
    n += tcpDst.has_value();
    return n;
  }

  bool operator==(const FlowMatch&) const = default;

  std::string toString() const;

  // ---- builders ----------------------------------------------------------
  /// Match traffic from `client` to the registered `service` address.
  static FlowMatch clientToService(Endpoint client, Endpoint service) {
    FlowMatch m;
    m.ipSrc = client.ip;
    m.tcpSrc = client.port;
    m.ipDst = service.ip;
    m.tcpDst = service.port;
    m.ipProto = IpProto::kTcp;
    return m;
  }

  /// Match the reverse direction: the edge instance answering the client.
  static FlowMatch instanceToClient(Endpoint instance, Endpoint client) {
    FlowMatch m;
    m.ipSrc = instance.ip;
    m.tcpSrc = instance.port;
    m.ipDst = client.ip;
    m.tcpDst = client.port;
    m.ipProto = IpProto::kTcp;
    return m;
  }

  /// Match any traffic to a registered service address (coarse rule).
  static FlowMatch anyToService(Endpoint service) {
    FlowMatch m;
    m.ipDst = service.ip;
    m.tcpDst = service.port;
    m.ipProto = IpProto::kTcp;
    return m;
  }
};

}  // namespace edgesim::openflow
