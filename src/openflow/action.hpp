// OpenFlow actions: output, set-field (packet rewriting), send-to-controller.
//
// Set-field rewriting of destination/source IP + TCP port is the core
// mechanism behind transparent edge access (§II, fig. 2): the client keeps
// talking to the registered cloud address while the switch rewrites packets
// toward the chosen edge instance and back.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace edgesim::openflow {

struct OutputAction {
  PortId port = kInvalidPort;
  bool operator==(const OutputAction&) const = default;
};

struct ToControllerAction {
  bool operator==(const ToControllerAction&) const = default;
};

enum class Field { kEthSrc, kEthDst, kIpSrc, kIpDst, kTcpSrc, kTcpDst };

const char* fieldName(Field field);

struct SetFieldAction {
  Field field;
  std::uint64_t value = 0;  // Ipv4::value, Mac::value, or TCP port

  bool operator==(const SetFieldAction&) const = default;

  static SetFieldAction ethSrc(Mac mac) { return {Field::kEthSrc, mac.value}; }
  static SetFieldAction ethDst(Mac mac) { return {Field::kEthDst, mac.value}; }
  static SetFieldAction ipSrc(Ipv4 ip) { return {Field::kIpSrc, ip.value}; }
  static SetFieldAction ipDst(Ipv4 ip) { return {Field::kIpDst, ip.value}; }
  static SetFieldAction tcpSrc(std::uint16_t p) { return {Field::kTcpSrc, p}; }
  static SetFieldAction tcpDst(std::uint16_t p) { return {Field::kTcpDst, p}; }
};

using Action = std::variant<SetFieldAction, OutputAction, ToControllerAction>;
using ActionList = std::vector<Action>;

/// Apply `actions` in order to a copy of `packet`; output/controller actions
/// are returned as "effects" for the switch to execute.
struct AppliedActions {
  Packet packet;                 // rewritten packet
  std::vector<PortId> outputs;   // ports to transmit on
  bool toController = false;
};

AppliedActions applyActions(const Packet& packet, const ActionList& actions);

std::string actionsToString(const ActionList& actions);

}  // namespace edgesim::openflow
