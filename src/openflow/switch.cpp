#include "openflow/switch.hpp"

#include "telemetry/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"
#include "util/log.hpp"

namespace edgesim::openflow {

OpenFlowSwitch::OpenFlowSwitch(Network& network, std::string name,
                               Options options)
    : NetNode(network, std::move(name)), options_(options) {
  table_.setRemovalListener([this](const FlowEntry& entry,
                                   RemovalReason reason) {
    if (controller_ == nullptr) return;
    const auto delay = controlDelay(Direction::kToController);
    if (!delay) return;  // notification lost on the control channel
    FlowRemoved event{entry, reason};
    this->network().sim().schedule(*delay, [this, event] {
      if (controller_ != nullptr) controller_->onFlowRemoved(*this, event);
    });
  });
}

void OpenFlowSwitch::setController(ControllerApp* controller) {
  controller_ = controller;
  if (controller_ != nullptr && !expiryTimer_.running()) {
    expiryTimer_.start(network().sim(), options_.expiryScanPeriod, [this] {
      table_.expire(network().sim().now());
      return true;
    });
  }
}

void OpenFlowSwitch::setFaultPlan(fault::FaultPlan* plan) {
  plan_ = plan;
  if (plan_ == nullptr) return;
  auto& sim = network().sim();
  for (const fault::FaultSpec* spec :
       plan_->timedFaults(fault::FaultSite::kControlChannelOutage, name())) {
    sim.scheduleAt(spec->at, [this] { ++outageDepth_; });
    // Zero duration means the channel stays down for the rest of the run,
    // matching Network::scheduleLinkFaults.
    if (spec->duration > SimTime::zero()) {
      sim.scheduleAt(spec->at + spec->duration, [this] { --outageDepth_; });
    }
  }
  for (const fault::FaultSpec* spec :
       plan_->timedFaults(fault::FaultSite::kSwitchRestart, name())) {
    sim.scheduleAt(spec->at,
                   [this, restore = spec->duration] { beginRestart(restore); });
  }
}

void OpenFlowSwitch::setTelemetry(telemetry::MetricsRegistry* metrics,
                                  trace::TraceRecorder* recorder) {
  metrics_ = metrics;
  trace_ = recorder;
}

void OpenFlowSwitch::beginRestart(SimTime restoreDelay) {
  ++restarts_;
  ES_WARN("ofswitch", "%s: restart at t=%.6fs (dropping %zu flows, %zu buffers)",
          name().c_str(), network().sim().now().toSeconds(), table_.size(),
          buffers_.size());
  // The crash loses the table and the buffered packets without a single
  // FlowRemoved: the controller's view is now stale until it reconciles.
  table_.clear();
  buffers_.clear();
  bufferOrder_.clear();
  if (metrics_ != nullptr && restartCounter_ == nullptr) {
    restartCounter_ = &metrics_->counter("edgesim_switch_restarts_total",
                                         {{"switch", name()}});
  }
  if (restartCounter_ != nullptr) restartCounter_->add(1);
  if (trace_ != nullptr) {
    trace_->instant(0, "switch_restart", "ofswitch", network().sim().now(),
                    {{"switch", name()}});
  }
  if (restoreDelay > SimTime::zero()) {
    rebooting_ = true;
    network().sim().schedule(restoreDelay, [this] { rebooting_ = false; });
  }
}

void OpenFlowSwitch::countControlDrop(Direction direction) {
  ++controlDrops_;
  telemetry::Counter** slot = direction == Direction::kToSwitch
                                  ? &dropC2sCounter_
                                  : &dropS2cCounter_;
  if (metrics_ != nullptr && *slot == nullptr) {
    *slot = &metrics_->counter(
        "edgesim_ctrl_channel_dropped_total",
        {{"switch", name()},
         {"direction",
          direction == Direction::kToSwitch ? "c2s" : "s2c"}});
  }
  if (*slot != nullptr) (*slot)->add(1);
}

std::optional<SimTime> OpenFlowSwitch::controlDelay(Direction direction) {
  // Outage windows and a down switch kill messages at the endpoint: the
  // switch neither accepts nor emits anything.
  if (outageDepth_ > 0 || (direction == Direction::kToController &&
                           rebooting_)) {
    countControlDrop(direction);
    return std::nullopt;
  }
  if (plan_ != nullptr) {
    const std::string target =
        name() + (direction == Direction::kToSwitch ? "/c2s" : "/s2c");
    if (const auto fault = plan_->evaluate(
            fault::FaultSite::kControlChannelLoss, target)) {
      if (fault->fail) {
        countControlDrop(direction);
        return std::nullopt;
      }
      return options_.channelLatency + fault->stall;  // stall-only: delayed
    }
  }
  return options_.channelLatency;
}

void OpenFlowSwitch::receive(const Packet& packet, PortId inPort) {
  if (rebooting_) {
    // Data plane is down with the switch; TCP retransmission recovers.
    ES_TRACE("ofswitch", "%s rebooting: dropping %s", name().c_str(),
             packet.summary().c_str());
    return;
  }
  FlowEntry* entry = table_.lookup(packet, inPort, network().sim().now());
  if (entry == nullptr) {
    ++tableMisses_;
    ES_TRACE("ofswitch", "%s table-miss: %s", name().c_str(),
             packet.summary().c_str());
    sendPacketInToController(packet, inPort);
    return;
  }
  ++matched_;
  execute(packet, inPort, entry->actions);
}

void OpenFlowSwitch::execute(const Packet& packet, PortId inPort,
                             const ActionList& actions) {
  const AppliedActions applied = applyActions(packet, actions);
  if (applied.toController) {
    sendPacketInToController(packet, inPort);
  }
  for (const PortId out : applied.outputs) {
    if (out == inPort) continue;  // no hairpin in this model
    network().transmit(*this, out, applied.packet);
  }
}

void OpenFlowSwitch::countEviction(const Packet& packet) {
  ++bufferEvictions_;
  if (metrics_ != nullptr && evictionCounter_ == nullptr) {
    evictionCounter_ = &metrics_->counter(
        "edgesim_switch_buffer_evictions_total", {{"switch", name()}});
  }
  if (evictionCounter_ != nullptr) evictionCounter_->add(1);
  if (trace_ != nullptr) {
    trace_->instant(0, "buffer_evict", "ofswitch", network().sim().now(),
                    {{"switch", name()}, {"packet", packet.summary()}});
  }
}

void OpenFlowSwitch::sendPacketInToController(const Packet& packet,
                                              PortId inPort) {
  if (controller_ == nullptr) {
    ES_WARN("ofswitch", "%s: no controller attached; dropping %s",
            name().c_str(), packet.summary().c_str());
    return;
  }
  BufferId id = kNoBuffer;
  if (buffers_.size() < options_.maxBufferedPackets) {
    id = nextBufferId_++;
    buffers_.emplace(id, std::make_pair(packet, inPort));
    bufferOrder_.push_back(id);
  } else if (!bufferOrder_.empty()) {
    // Evict the oldest buffered packet (it will be retransmitted by TCP) --
    // counted and traced, because silent loss here hid real drops.
    const BufferId victim = bufferOrder_.front();
    bufferOrder_.pop_front();
    const auto vit = buffers_.find(victim);
    if (vit != buffers_.end()) {
      countEviction(vit->second.first);
      buffers_.erase(vit);
    }
    id = nextBufferId_++;
    buffers_.emplace(id, std::make_pair(packet, inPort));
    bufferOrder_.push_back(id);
  }
  ++packetIns_;
  const auto delay = controlDelay(Direction::kToController);
  if (!delay) return;  // PacketIn lost; the buffered packet waits or evicts
  PacketIn event{id, packet, inPort};
  network().sim().schedule(*delay, [this, event] {
    if (controller_ != nullptr) controller_->onPacketIn(*this, event);
  });
}

void OpenFlowSwitch::requestFlowStats(StatsCallback cb) {
  ES_ASSERT(cb != nullptr);
  const auto request = controlDelay(Direction::kToSwitch);
  if (!request) return;  // request lost: the callback never fires
  network().sim().schedule(*request, [this, cb = std::move(cb)] {
    if (rebooting_) return;  // switch down when the request lands
    const std::vector<FlowEntry> snapshot = table_.entries();
    const auto reply = controlDelay(Direction::kToController);
    if (!reply) return;  // reply lost
    network().sim().schedule(*reply, [cb, snapshot] { cb(snapshot); });
  });
}

void OpenFlowSwitch::sendFlowMod(FlowEntry entry, FlowModAck ack) {
  const auto delay = controlDelay(Direction::kToSwitch);
  if (!delay) return;  // install lost: no state change, no ack
  network().sim().schedule(
      *delay, [this, entry = std::move(entry), ack = std::move(ack)]() mutable {
        if (rebooting_) return;  // arrived while the switch was down
        ES_TRACE("ofswitch", "%s flow-mod: prio=%u %s -> %s", name().c_str(),
                 entry.priority, entry.match.toString().c_str(),
                 actionsToString(entry.actions).c_str());
        table_.upsert(std::move(entry), network().sim().now());
        if (!ack) return;
        // Barrier-style acknowledgement: pays the return leg and its faults,
        // so a lost reply looks exactly like a lost install to the sender
        // (which is why retried FlowMods must be -- and are -- idempotent).
        const auto reply = controlDelay(Direction::kToController);
        if (!reply) return;
        network().sim().schedule(*reply, [ack = std::move(ack)] { ack(); });
      });
}

void OpenFlowSwitch::sendFlowRemove(const FlowMatch& match,
                                    std::uint64_t cookie) {
  const auto delay = controlDelay(Direction::kToSwitch);
  if (!delay) return;
  network().sim().schedule(*delay, [this, match, cookie] {
    if (rebooting_) return;
    table_.remove(match, cookie);
  });
}

void OpenFlowSwitch::sendPacketOut(BufferId bufferId, const Packet& packet,
                                   const ActionList& actions) {
  const auto delay = controlDelay(Direction::kToSwitch);
  if (!delay) return;  // buffered packet stays put until evicted
  network().sim().schedule(
      *delay, [this, bufferId, packet, actions] {
        if (rebooting_) return;
        Packet toSend = packet;
        PortId inPort = kInvalidPort;
        if (bufferId != kNoBuffer) {
          const auto it = buffers_.find(bufferId);
          if (it == buffers_.end()) {
            ES_DEBUG("ofswitch", "%s packet-out: stale buffer %u",
                     name().c_str(), bufferId);
            return;  // buffer evicted; TCP retransmission recovers
          }
          toSend = it->second.first;
          inPort = it->second.second;
          buffers_.erase(it);
          for (auto oit = bufferOrder_.begin(); oit != bufferOrder_.end();
               ++oit) {
            if (*oit == bufferId) {
              bufferOrder_.erase(oit);
              break;
            }
          }
        }
        execute(toSend, inPort, actions);
      });
}

}  // namespace edgesim::openflow
