#include "openflow/switch.hpp"

#include "util/log.hpp"

namespace edgesim::openflow {

OpenFlowSwitch::OpenFlowSwitch(Network& network, std::string name,
                               Options options)
    : NetNode(network, std::move(name)), options_(options) {
  table_.setRemovalListener([this](const FlowEntry& entry,
                                   RemovalReason reason) {
    if (controller_ == nullptr) return;
    FlowRemoved event{entry, reason};
    this->network().sim().schedule(options_.channelLatency, [this, event] {
      if (controller_ != nullptr) controller_->onFlowRemoved(*this, event);
    });
  });
}

void OpenFlowSwitch::setController(ControllerApp* controller) {
  controller_ = controller;
  if (controller_ != nullptr && !expiryTimer_.running()) {
    expiryTimer_.start(network().sim(), options_.expiryScanPeriod, [this] {
      table_.expire(network().sim().now());
      return true;
    });
  }
}

void OpenFlowSwitch::receive(const Packet& packet, PortId inPort) {
  FlowEntry* entry = table_.lookup(packet, inPort, network().sim().now());
  if (entry == nullptr) {
    ++tableMisses_;
    ES_TRACE("ofswitch", "%s table-miss: %s", name().c_str(),
             packet.summary().c_str());
    sendPacketInToController(packet, inPort);
    return;
  }
  ++matched_;
  execute(packet, inPort, entry->actions);
}

void OpenFlowSwitch::execute(const Packet& packet, PortId inPort,
                             const ActionList& actions) {
  const AppliedActions applied = applyActions(packet, actions);
  if (applied.toController) {
    sendPacketInToController(packet, inPort);
  }
  for (const PortId out : applied.outputs) {
    if (out == inPort) continue;  // no hairpin in this model
    network().transmit(*this, out, applied.packet);
  }
}

void OpenFlowSwitch::sendPacketInToController(const Packet& packet,
                                              PortId inPort) {
  if (controller_ == nullptr) {
    ES_WARN("ofswitch", "%s: no controller attached; dropping %s",
            name().c_str(), packet.summary().c_str());
    return;
  }
  BufferId id = kNoBuffer;
  if (buffers_.size() < options_.maxBufferedPackets) {
    id = nextBufferId_++;
    buffers_.emplace(id, std::make_pair(packet, inPort));
    bufferOrder_.push_back(id);
  } else if (!bufferOrder_.empty()) {
    // Evict the oldest buffered packet (it will be retransmitted by TCP).
    const BufferId victim = bufferOrder_.front();
    bufferOrder_.pop_front();
    buffers_.erase(victim);
    id = nextBufferId_++;
    buffers_.emplace(id, std::make_pair(packet, inPort));
    bufferOrder_.push_back(id);
  }
  ++packetIns_;
  PacketIn event{id, packet, inPort};
  network().sim().schedule(options_.channelLatency, [this, event] {
    if (controller_ != nullptr) controller_->onPacketIn(*this, event);
  });
}

void OpenFlowSwitch::requestFlowStats(StatsCallback cb) {
  ES_ASSERT(cb != nullptr);
  network().sim().schedule(options_.channelLatency, [this, cb = std::move(cb)] {
    const std::vector<FlowEntry> snapshot = table_.entries();
    network().sim().schedule(options_.channelLatency,
                             [cb, snapshot] { cb(snapshot); });
  });
}

void OpenFlowSwitch::sendFlowMod(FlowEntry entry) {
  network().sim().schedule(
      options_.channelLatency, [this, entry = std::move(entry)]() mutable {
        ES_TRACE("ofswitch", "%s flow-mod: prio=%u %s -> %s", name().c_str(),
                 entry.priority, entry.match.toString().c_str(),
                 actionsToString(entry.actions).c_str());
        table_.upsert(std::move(entry), network().sim().now());
      });
}

void OpenFlowSwitch::sendFlowRemove(const FlowMatch& match,
                                    std::uint64_t cookie) {
  network().sim().schedule(options_.channelLatency, [this, match, cookie] {
    table_.remove(match, cookie);
  });
}

void OpenFlowSwitch::sendPacketOut(BufferId bufferId, const Packet& packet,
                                   const ActionList& actions) {
  network().sim().schedule(
      options_.channelLatency, [this, bufferId, packet, actions] {
        Packet toSend = packet;
        PortId inPort = kInvalidPort;
        if (bufferId != kNoBuffer) {
          const auto it = buffers_.find(bufferId);
          if (it == buffers_.end()) {
            ES_DEBUG("ofswitch", "%s packet-out: stale buffer %u",
                     name().c_str(), bufferId);
            return;  // buffer evicted; TCP retransmission recovers
          }
          toSend = it->second.first;
          inPort = it->second.second;
          buffers_.erase(it);
          for (auto oit = bufferOrder_.begin(); oit != bufferOrder_.end();
               ++oit) {
            if (*oit == bufferId) {
              bufferOrder_.erase(oit);
              break;
            }
          }
        }
        execute(toSend, inPort, actions);
      });
}

}  // namespace edgesim::openflow
