#include "openflow/flow_table.hpp"

#include <algorithm>

namespace edgesim::openflow {

const char* removalReasonName(RemovalReason reason) {
  switch (reason) {
    case RemovalReason::kIdleTimeout: return "idle-timeout";
    case RemovalReason::kHardTimeout: return "hard-timeout";
    case RemovalReason::kDelete: return "delete";
  }
  return "?";
}

void FlowTable::upsert(FlowEntry entry, SimTime now) {
  entry.stats.created = now;
  entry.stats.lastUsed = now;
  for (auto& existing : entries_) {
    if (existing.priority == entry.priority && existing.match == entry.match) {
      // Replace in place, preserving position (priority unchanged).
      existing = std::move(entry);
      return;
    }
  }
  // Insert before the first entry with lower priority (stable w.r.t. equal
  // priorities: earlier installs win ties, matching our documented policy).
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [&entry](const FlowEntry& e) { return e.priority < entry.priority; });
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowTable::remove(const FlowMatch& match, std::uint64_t cookie) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->match == match && (cookie == 0 || it->cookie == cookie)) {
      notifyRemoval(*it, RemovalReason::kDelete);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t FlowTable::removeByCookie(std::uint64_t cookie) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->cookie == cookie) {
      notifyRemoval(*it, RemovalReason::kDelete);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

FlowEntry* FlowTable::lookup(const Packet& packet, PortId inPort,
                             SimTime now) {
  for (auto& entry : entries_) {
    if (entry.match.matches(packet, inPort)) {
      ++entry.stats.packets;
      entry.stats.bytes += packet.wireSize().value;
      entry.stats.lastUsed = now;
      return &entry;
    }
  }
  return nullptr;
}

const FlowEntry* FlowTable::peek(const Packet& packet, PortId inPort) const {
  for (const auto& entry : entries_) {
    if (entry.match.matches(packet, inPort)) return &entry;
  }
  return nullptr;
}

void FlowTable::expire(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    RemovalReason reason = RemovalReason::kDelete;
    bool expired = false;
    if (it->hardTimeout > SimTime::zero() &&
        now - it->stats.created >= it->hardTimeout) {
      expired = true;
      reason = RemovalReason::kHardTimeout;
    } else if (it->idleTimeout > SimTime::zero() &&
               now - it->stats.lastUsed >= it->idleTimeout) {
      expired = true;
      reason = RemovalReason::kIdleTimeout;
    }
    if (expired) {
      notifyRemoval(*it, reason);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowTable::notifyRemoval(const FlowEntry& entry, RemovalReason reason) {
  if (entry.notifyOnRemoval && removalListener_) {
    removalListener_(entry, reason);
  }
}

}  // namespace edgesim::openflow
