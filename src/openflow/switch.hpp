// OpenFlow switch: flow-table pipeline, packet buffering, and the control
// channel to the SDN controller.
//
// Behaviour follows the OpenFlow 1.5 subset the paper relies on:
//   * table-miss sends PacketIn (with a buffer id) to the controller;
//   * FlowMod installs/removes entries; PacketOut releases buffered packets
//     through an action list;
//   * idle/hard timeouts expire entries, optionally notifying the
//     controller with FlowRemoved (the controller's FlowMemory consumes
//     these to track liveness, §V).
// Both control-channel directions pay a configurable latency.
//
// Control-channel faults (PR 10): a FaultPlan threaded in via setFaultPlan
// makes the channel lossy.  kControlChannelLoss drops (or stalls)
// individual messages per direction ("<name>/c2s", "<name>/s2c");
// kControlChannelOutage scripts windows where every message dies;
// kSwitchRestart wipes the flow table and packet buffers mid-run (no
// FlowRemoved fires -- the crash loses them) and holds the switch down for
// the restore delay.  sendFlowMod optionally carries a barrier-style ack
// delivered after the full round trip, so the controller can detect lost
// installs and retry (see core::EdgeController).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "openflow/flow_table.hpp"

namespace edgesim::telemetry {
class MetricsRegistry;
class Counter;
}  // namespace edgesim::telemetry
namespace edgesim::trace {
class TraceRecorder;
}  // namespace edgesim::trace

namespace edgesim::openflow {

using BufferId = std::uint32_t;
inline constexpr BufferId kNoBuffer = 0xffffffff;

struct PacketIn {
  BufferId bufferId = kNoBuffer;
  Packet packet;
  PortId inPort = kInvalidPort;
};

struct FlowRemoved {
  FlowEntry entry;
  RemovalReason reason = RemovalReason::kDelete;
};

class OpenFlowSwitch;

/// Controller side of the OpenFlow channel.
class ControllerApp {
 public:
  virtual ~ControllerApp() = default;
  virtual void onPacketIn(OpenFlowSwitch& sw, const PacketIn& event) = 0;
  virtual void onFlowRemoved(OpenFlowSwitch& sw, const FlowRemoved& event) = 0;
};

/// Switch configuration.
struct SwitchOptions {
  SimTime channelLatency = SimTime::micros(200);  // one-way, per message
  SimTime expiryScanPeriod = SimTime::millis(500);
  std::size_t maxBufferedPackets = 1024;
};

class OpenFlowSwitch : public NetNode {
 public:
  using Options = SwitchOptions;

  OpenFlowSwitch(Network& network, std::string name, Options options = {});

  /// Attach the controller and start the expiry scanner.
  void setController(ControllerApp* controller);

  /// Thread control-channel faults into this switch, the way
  /// Network::scheduleLinkFaults threads link faults: loss specs are drawn
  /// per message, outage windows and restarts are scheduled up front from
  /// their at/duration scripts.  Call before the simulation runs.
  void setFaultPlan(fault::FaultPlan* plan);

  /// Optional observability sinks; series register lazily on first use so
  /// fault-free runs keep their telemetry snapshots byte-stable.
  void setTelemetry(telemetry::MetricsRegistry* metrics,
                    trace::TraceRecorder* recorder);

  // -- data plane ---------------------------------------------------------
  void receive(const Packet& packet, PortId inPort) override;

  // -- control plane (controller -> switch; pays channel latency) ---------
  /// Install or replace a flow entry.  When `ack` is non-null it is invoked
  /// after the full control round trip (install applied, barrier reply
  /// delivered) -- and never invoked if either direction drops the message
  /// or the switch is down, which is exactly the signal the controller's
  /// ack-deadline retry needs.
  using FlowModAck = std::function<void()>;
  void sendFlowMod(FlowEntry entry, FlowModAck ack = nullptr);
  /// Remove entries matching exactly.
  void sendFlowRemove(const FlowMatch& match, std::uint64_t cookie = 0);
  /// Release a buffered packet (or inject `packet` when bufferId is
  /// kNoBuffer) through `actions`.
  void sendPacketOut(BufferId bufferId, const Packet& packet,
                     const ActionList& actions);
  /// Flow statistics request (OFPMP_FLOW): snapshot of all entries,
  /// delivered after a full control-channel round trip.  The controller's
  /// FlowMemory uses this to observe traffic on long-lived entries that
  /// never idle out (§V).
  using StatsCallback = std::function<void(std::vector<FlowEntry>)>;
  void requestFlowStats(StatsCallback cb);

  // -- introspection ------------------------------------------------------
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }
  std::uint64_t packetInCount() const { return packetIns_; }
  std::uint64_t tableMissCount() const { return tableMisses_; }
  std::uint64_t matchedPackets() const { return matched_; }
  std::size_t bufferedPackets() const { return buffers_.size(); }
  const Options& options() const { return options_; }

  /// Buffered packets silently dropped by FIFO eviction (satellite fix:
  /// this loss used to be invisible).
  std::uint64_t bufferEvictions() const { return bufferEvictions_; }
  /// Control messages dropped by loss/outage/restart faults, both
  /// directions combined.
  std::uint64_t controlDrops() const { return controlDrops_; }
  std::uint64_t restartCount() const { return restarts_; }
  /// False inside a scripted kControlChannelOutage window.
  bool channelUp() const { return outageDepth_ == 0; }
  /// True while a kSwitchRestart keeps the switch down (restore delay).
  bool rebooting() const { return rebooting_; }

 private:
  enum class Direction { kToSwitch, kToController };

  void execute(const Packet& packet, PortId inPort, const ActionList& actions);
  void sendPacketInToController(const Packet& packet, PortId inPort);
  /// Delivery delay for one control message, or nullopt when a fault drops
  /// it (outage window, loss draw, or the switch being down).
  std::optional<SimTime> controlDelay(Direction direction);
  void beginRestart(SimTime restoreDelay);
  void countControlDrop(Direction direction);
  void countEviction(const Packet& packet);

  Options options_;
  FlowTable table_;
  ControllerApp* controller_ = nullptr;
  fault::FaultPlan* plan_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
  std::unordered_map<BufferId, std::pair<Packet, PortId>> buffers_;
  std::deque<BufferId> bufferOrder_;  // FIFO eviction
  BufferId nextBufferId_ = 1;
  PeriodicTimer expiryTimer_;
  std::uint64_t packetIns_ = 0;
  std::uint64_t tableMisses_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t bufferEvictions_ = 0;
  std::uint64_t controlDrops_ = 0;
  std::uint64_t restarts_ = 0;
  int outageDepth_ = 0;
  bool rebooting_ = false;
  // Lazily-registered series (see setTelemetry).
  telemetry::Counter* evictionCounter_ = nullptr;
  telemetry::Counter* restartCounter_ = nullptr;
  telemetry::Counter* dropC2sCounter_ = nullptr;
  telemetry::Counter* dropS2cCounter_ = nullptr;
};

}  // namespace edgesim::openflow
