// OpenFlow switch: flow-table pipeline, packet buffering, and the control
// channel to the SDN controller.
//
// Behaviour follows the OpenFlow 1.5 subset the paper relies on:
//   * table-miss sends PacketIn (with a buffer id) to the controller;
//   * FlowMod installs/removes entries; PacketOut releases buffered packets
//     through an action list;
//   * idle/hard timeouts expire entries, optionally notifying the
//     controller with FlowRemoved (the controller's FlowMemory consumes
//     these to track liveness, §V).
// Both control-channel directions pay a configurable latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/network.hpp"
#include "openflow/flow_table.hpp"

namespace edgesim::openflow {

using BufferId = std::uint32_t;
inline constexpr BufferId kNoBuffer = 0xffffffff;

struct PacketIn {
  BufferId bufferId = kNoBuffer;
  Packet packet;
  PortId inPort = kInvalidPort;
};

struct FlowRemoved {
  FlowEntry entry;
  RemovalReason reason = RemovalReason::kDelete;
};

class OpenFlowSwitch;

/// Controller side of the OpenFlow channel.
class ControllerApp {
 public:
  virtual ~ControllerApp() = default;
  virtual void onPacketIn(OpenFlowSwitch& sw, const PacketIn& event) = 0;
  virtual void onFlowRemoved(OpenFlowSwitch& sw, const FlowRemoved& event) = 0;
};

/// Switch configuration.
struct SwitchOptions {
  SimTime channelLatency = SimTime::micros(200);  // one-way, per message
  SimTime expiryScanPeriod = SimTime::millis(500);
  std::size_t maxBufferedPackets = 1024;
};

class OpenFlowSwitch : public NetNode {
 public:
  using Options = SwitchOptions;

  OpenFlowSwitch(Network& network, std::string name, Options options = {});

  /// Attach the controller and start the expiry scanner.
  void setController(ControllerApp* controller);

  // -- data plane ---------------------------------------------------------
  void receive(const Packet& packet, PortId inPort) override;

  // -- control plane (controller -> switch; pays channel latency) ---------
  /// Install or replace a flow entry.
  void sendFlowMod(FlowEntry entry);
  /// Remove entries matching exactly.
  void sendFlowRemove(const FlowMatch& match, std::uint64_t cookie = 0);
  /// Release a buffered packet (or inject `packet` when bufferId is
  /// kNoBuffer) through `actions`.
  void sendPacketOut(BufferId bufferId, const Packet& packet,
                     const ActionList& actions);
  /// Flow statistics request (OFPMP_FLOW): snapshot of all entries,
  /// delivered after a full control-channel round trip.  The controller's
  /// FlowMemory uses this to observe traffic on long-lived entries that
  /// never idle out (§V).
  using StatsCallback = std::function<void(std::vector<FlowEntry>)>;
  void requestFlowStats(StatsCallback cb);

  // -- introspection ------------------------------------------------------
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }
  std::uint64_t packetInCount() const { return packetIns_; }
  std::uint64_t tableMissCount() const { return tableMisses_; }
  std::uint64_t matchedPackets() const { return matched_; }
  std::size_t bufferedPackets() const { return buffers_.size(); }
  const Options& options() const { return options_; }

 private:
  void execute(const Packet& packet, PortId inPort, const ActionList& actions);
  void sendPacketInToController(const Packet& packet, PortId inPort);

  Options options_;
  FlowTable table_;
  ControllerApp* controller_ = nullptr;
  std::unordered_map<BufferId, std::pair<Packet, PortId>> buffers_;
  std::deque<BufferId> bufferOrder_;  // FIFO eviction
  BufferId nextBufferId_ = 1;
  PeriodicTimer expiryTimer_;
  std::uint64_t packetIns_ = 0;
  std::uint64_t tableMisses_ = 0;
  std::uint64_t matched_ = 0;
};

}  // namespace edgesim::openflow
