#include "openflow/action.hpp"

#include "util/strings.hpp"

namespace edgesim::openflow {

const char* fieldName(Field field) {
  switch (field) {
    case Field::kEthSrc: return "eth_src";
    case Field::kEthDst: return "eth_dst";
    case Field::kIpSrc: return "ip_src";
    case Field::kIpDst: return "ip_dst";
    case Field::kTcpSrc: return "tcp_src";
    case Field::kTcpDst: return "tcp_dst";
  }
  return "?";
}

AppliedActions applyActions(const Packet& packet, const ActionList& actions) {
  AppliedActions result;
  result.packet = packet;
  for (const auto& action : actions) {
    if (const auto* set = std::get_if<SetFieldAction>(&action)) {
      switch (set->field) {
        case Field::kEthSrc:
          result.packet.ethSrc = Mac(set->value);
          break;
        case Field::kEthDst:
          result.packet.ethDst = Mac(set->value);
          break;
        case Field::kIpSrc:
          result.packet.ipSrc = Ipv4(static_cast<std::uint32_t>(set->value));
          break;
        case Field::kIpDst:
          result.packet.ipDst = Ipv4(static_cast<std::uint32_t>(set->value));
          break;
        case Field::kTcpSrc:
          result.packet.tcpSrc = static_cast<std::uint16_t>(set->value);
          break;
        case Field::kTcpDst:
          result.packet.tcpDst = static_cast<std::uint16_t>(set->value);
          break;
      }
    } else if (const auto* output = std::get_if<OutputAction>(&action)) {
      result.outputs.push_back(output->port);
    } else {
      result.toController = true;
    }
  }
  return result;
}

std::string actionsToString(const ActionList& actions) {
  std::vector<std::string> parts;
  for (const auto& action : actions) {
    if (const auto* set = std::get_if<SetFieldAction>(&action)) {
      parts.push_back(strprintf("set(%s=%llu)", fieldName(set->field),
                                static_cast<unsigned long long>(set->value)));
    } else if (const auto* output = std::get_if<OutputAction>(&action)) {
      parts.push_back(strprintf("output(%u)", output->port));
    } else {
      parts.push_back("controller");
    }
  }
  return join(parts, ",");
}

}  // namespace edgesim::openflow
