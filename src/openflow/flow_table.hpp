// OpenFlow flow table: priority-ordered entries with idle/hard timeouts and
// per-flow statistics.
//
// The paper's §V design keeps switch-side idle timeouts *short* (entries can
// be re-installed cheaply from the controller's FlowMemory), so expiry is a
// first-class behaviour here, complete with flow-removed notifications.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "openflow/action.hpp"
#include "openflow/match.hpp"
#include "sim/time.hpp"

namespace edgesim::openflow {

struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  SimTime created;
  SimTime lastUsed;
};

struct FlowEntry {
  std::uint16_t priority = 0;
  FlowMatch match;
  ActionList actions;
  SimTime idleTimeout = SimTime::zero();  // zero => never idles out
  SimTime hardTimeout = SimTime::zero();  // zero => never expires
  std::uint64_t cookie = 0;
  bool notifyOnRemoval = false;
  FlowStats stats;
};

enum class RemovalReason { kIdleTimeout, kHardTimeout, kDelete };

const char* removalReasonName(RemovalReason reason);

class FlowTable {
 public:
  using RemovalListener =
      std::function<void(const FlowEntry&, RemovalReason)>;

  /// Insert or replace (same match + priority replaces, per OpenFlow
  /// OFPFC_ADD semantics). Keeps entries sorted by descending priority.
  void upsert(FlowEntry entry, SimTime now);

  /// Remove all entries matching `match` exactly (and `cookie` if nonzero).
  /// Fires the removal listener with reason kDelete.
  std::size_t remove(const FlowMatch& match, std::uint64_t cookie = 0);

  /// Remove every entry with this cookie.
  std::size_t removeByCookie(std::uint64_t cookie);

  /// Highest-priority matching entry, updating its stats; nullptr on miss.
  FlowEntry* lookup(const Packet& packet, PortId inPort, SimTime now);

  /// Same as lookup but without stats side effects (diagnostics).
  const FlowEntry* peek(const Packet& packet, PortId inPort) const;

  /// Expire entries whose idle/hard timeout elapsed at `now`.
  void expire(SimTime now);

  /// Wipe every entry WITHOUT firing removal notifications: models a switch
  /// crash/restart, where pending FlowRemoved messages die with the switch
  /// (the controller must reconcile to discover the loss).
  void clear() { entries_.clear(); }

  void setRemovalListener(RemovalListener listener) {
    removalListener_ = std::move(listener);
  }

  std::size_t size() const { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  void notifyRemoval(const FlowEntry& entry, RemovalReason reason);

  std::vector<FlowEntry> entries_;  // sorted by priority desc, stable
  RemovalListener removalListener_;
};

}  // namespace edgesim::openflow
