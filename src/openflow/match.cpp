#include "openflow/match.hpp"

#include <vector>

#include "util/strings.hpp"

namespace edgesim::openflow {

std::string FlowMatch::toString() const {
  std::vector<std::string> parts;
  if (inPort) parts.push_back(strprintf("in_port=%u", *inPort));
  if (ipSrc) parts.push_back("ip_src=" + ipSrc->toString());
  if (ipDst) parts.push_back("ip_dst=" + ipDst->toString());
  if (ipProto) parts.push_back(strprintf("ip_proto=%u", static_cast<unsigned>(*ipProto)));
  if (tcpSrc) parts.push_back(strprintf("tcp_src=%u", *tcpSrc));
  if (tcpDst) parts.push_back(strprintf("tcp_dst=%u", *tcpDst));
  if (parts.empty()) return "any";
  return join(parts, ",");
}

}  // namespace edgesim::openflow
