// Container images: references, layers, digests.
//
// Pull time in the paper (fig. 13) depends on the image's total size AND its
// layer count ("pull times depend on both the image's total size and its
// number of layers to be downloaded and verified"), and shared base layers
// may already be cached.  Layers are therefore first-class here.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace edgesim::container {

/// Content digest of a layer ("sha256:..." in real life; an opaque string
/// here).  Identical digests mean sharable layers.
using LayerDigest = std::string;

struct Layer {
  LayerDigest digest;
  Bytes size;

  bool operator==(const Layer&) const = default;
};

/// Parsed image reference: [registry-host/]repository[:tag]
struct ImageRef {
  std::string registry;    // "" => default registry (Docker Hub equivalent)
  std::string repository;  // "nginx", "tensorflow-serving/resnet"
  std::string tag = "latest";

  static std::optional<ImageRef> parse(std::string_view text);
  std::string toString() const;

  bool operator==(const ImageRef&) const = default;
};

struct Image {
  ImageRef ref;
  std::vector<Layer> layers;

  Bytes totalSize() const {
    Bytes total;
    for (const auto& layer : layers) total += layer.size;
    return total;
  }
  std::size_t layerCount() const { return layers.size(); }
};

/// Build an image with `layerCount` layers summing to `totalSize`, with a
/// realistic skew (one dominant layer plus smaller ones -- typical of
/// application images).  `sharedBase` layers (if any) are prepended and
/// their names made deterministic so different images can share them.
Image makeImage(ImageRef ref, Bytes totalSize, std::size_t layerCount,
                const std::vector<Layer>& sharedBase = {});

}  // namespace edgesim::container
