// Container specifications and application behaviour profiles.
//
// An AppProfile captures what the evaluation needs to know about the
// process inside a container: how long it takes from exec() until the
// service port is bound (e.g. TensorFlow Serving loading ResNet50), how
// much compute a request costs, and how big the response is.  Table I's
// four services are instances of this profile (see core/service_catalog).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "container/image.hpp"
#include "sim/time.hpp"

namespace edgesim::container {

struct AppProfile {
  /// exec() -> service port bound and answering (includes app init, e.g.
  /// model loading).  This is what the controller's port polling waits for.
  SimTime startupDelay;
  /// Median compute time per request once running.
  SimTime requestCompute;
  /// Lognormal sigma applied to requestCompute (0 => deterministic).
  double computeJitterSigma = 0.0;
  /// Response body size.
  Bytes responseBytes = Bytes{1024};
  /// False for helper containers that serve no port (e.g. the Python
  /// env-writer next to Nginx in Table I's fourth service).
  bool exposesPort = true;
  /// Failure injection: probability that the process exits immediately
  /// after start instead of binding its port.
  double crashOnStartProbability = 0.0;
};

struct ContainerSpec {
  std::string name;
  ImageRef image;
  std::uint16_t containerPort = 80;
  std::map<std::string, std::string> labels;
  std::map<std::string, std::string> env;
  /// hostPath -> containerPath mounts (supported by the paper's controller
  /// for Docker deployments, §V).
  std::vector<std::pair<std::string, std::string>> volumeMounts;
  AppProfile app;
};

}  // namespace edgesim::container
