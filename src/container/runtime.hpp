// ContainerdRuntime: the shared container runtime on one node.
//
// Both the Docker engine and the Kubernetes kubelet in this codebase drive
// the same runtime instance -- exactly as on the paper's EGS testbed ("both
// Kubernetes and Docker use the same containerd container runtime").
// Operation latencies are calibrated so that a plain `docker run` of a
// cached small image completes in a few hundred milliseconds, dominated by
// namespace/cgroup creation (Mohan et al. [23]).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "container/layer_store.hpp"
#include "container/spec.hpp"
#include "net/host.hpp"
#include "sim/simulation.hpp"
#include "util/result.hpp"

namespace edgesim::container {

using ContainerId = std::uint64_t;

enum class ContainerState { kCreated, kStarting, kRunning, kExited, kRemoved };

const char* containerStateName(ContainerState state);

struct RuntimeParams {
  SimTime createLatency = SimTime::millis(80);
  /// Namespace + cgroup + rootfs mount setup; image-size independent.
  SimTime startLatency = SimTime::millis(280);
  /// Relative jitter (lognormal sigma) on create/start latencies.
  double latencyJitterSigma = 0.06;
  SimTime stopLatency = SimTime::millis(60);
  SimTime removeLatency = SimTime::millis(30);
};

struct ContainerInfo {
  ContainerId id = 0;
  ContainerSpec spec;
  ContainerState state = ContainerState::kCreated;
  std::uint16_t hostPort = 0;  // bound service port on the node (0 = none)
  SimTime createdAt;
  SimTime startedAt;
  SimTime readyAt;  // port bound; SimTime::max() until then
  /// Requests served by this container (monotonic; feeds autoscaling).
  std::uint64_t requestsServed = 0;
  /// Single-worker service queue: a request's compute starts when the
  /// previous one finished (what makes an overloaded instance visible and
  /// autoscaling meaningful).
  SimTime busyUntil;
};

class ContainerdRuntime {
 public:
  using Callback = std::function<void(Status)>;

  /// `host` is the node the containers' ports bind on.
  ContainerdRuntime(Simulation& sim, Host& host, LayerStore& store,
                    RuntimeParams params = {});

  /// Create a container (image must be fully present in the layer store).
  Result<ContainerId> create(const ContainerSpec& spec);

  /// Start a created container; `cb` fires when the start syscall returns
  /// (NOT when the app is ready -- readiness is the port becoming open).
  Status start(ContainerId id, Callback cb);

  Status stop(ContainerId id, Callback cb);
  Status remove(ContainerId id);

  const ContainerInfo* find(ContainerId id) const;
  /// All containers whose labels include every entry of `selector`.
  std::vector<const ContainerInfo*> list(
      const std::map<std::string, std::string>& selector = {}) const;

  /// The endpoint a running container serves on (node IP + host port).
  Result<Endpoint> endpointOf(ContainerId id) const;

  Host& host() { return host_; }
  LayerStore& store() { return store_; }
  const RuntimeParams& params() const { return params_; }

  std::uint64_t startedCount() const { return started_; }

 private:
  SimTime jittered(SimTime base);
  void bindPort(ContainerId id);

  Simulation& sim_;
  Host& host_;
  LayerStore& store_;
  RuntimeParams params_;
  Rng rng_;
  ContainerId nextId_ = 1;
  std::uint16_t nextHostPort_ = 30000;
  std::map<ContainerId, ContainerInfo> containers_;
  std::uint64_t started_ = 0;
};

}  // namespace edgesim::container
