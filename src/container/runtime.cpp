#include "container/runtime.hpp"

#include <cmath>

#include "util/log.hpp"

namespace edgesim::container {

const char* containerStateName(ContainerState state) {
  switch (state) {
    case ContainerState::kCreated: return "created";
    case ContainerState::kStarting: return "starting";
    case ContainerState::kRunning: return "running";
    case ContainerState::kExited: return "exited";
    case ContainerState::kRemoved: return "removed";
  }
  return "?";
}

ContainerdRuntime::ContainerdRuntime(Simulation& sim, Host& host,
                                     LayerStore& store, RuntimeParams params)
    : sim_(sim),
      host_(host),
      store_(store),
      params_(params),
      rng_(sim.rng().fork(0xC0471A1EULL)) {}

SimTime ContainerdRuntime::jittered(SimTime base) {
  if (params_.latencyJitterSigma <= 0.0) return base;
  const double factor = rng_.lognormal(0.0, params_.latencyJitterSigma);
  return base.scaled(factor);
}

Result<ContainerId> ContainerdRuntime::create(const ContainerSpec& spec) {
  if (!store_.hasImage(spec.image)) {
    return makeError(Errc::kFailedPrecondition,
                     "image not present: " + spec.image.toString());
  }
  const ContainerId id = nextId_++;
  ContainerInfo info;
  info.id = id;
  info.spec = spec;
  info.state = ContainerState::kCreated;
  info.createdAt = sim_.now();
  info.readyAt = SimTime::max();
  containers_.emplace(id, std::move(info));
  ES_DEBUG("containerd", "%s: created container %llu (%s)",
           host_.name().c_str(), static_cast<unsigned long long>(id),
           spec.image.toString().c_str());
  return id;
}

Status ContainerdRuntime::start(ContainerId id, Callback cb) {
  ES_ASSERT(cb != nullptr);
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    return makeError(Errc::kNotFound, "no such container");
  }
  ContainerInfo& info = it->second;
  if (info.state != ContainerState::kCreated &&
      info.state != ContainerState::kExited) {
    return makeError(Errc::kFailedPrecondition,
                     std::string("cannot start container in state ") +
                         containerStateName(info.state));
  }
  info.state = ContainerState::kStarting;
  const SimTime startDelay = jittered(params_.startLatency);
  sim_.schedule(startDelay, [this, id, cb = std::move(cb)] {
    auto cit = containers_.find(id);
    if (cit == containers_.end() ||
        cit->second.state != ContainerState::kStarting) {
      cb(makeError(Errc::kConflict, "container vanished during start"));
      return;
    }
    ContainerInfo& container = cit->second;
    container.state = ContainerState::kRunning;
    container.startedAt = sim_.now();
    ++started_;

    if (rng_.chance(container.spec.app.crashOnStartProbability)) {
      // Process exits immediately; port never binds.
      container.state = ContainerState::kExited;
      ES_DEBUG("containerd", "%s: container %llu crashed on start",
               host_.name().c_str(), static_cast<unsigned long long>(id));
      cb(Status());  // the start syscall itself succeeded
      return;
    }

    if (container.spec.app.exposesPort) {
      const SimTime appDelay = container.spec.app.startupDelay;
      sim_.schedule(appDelay, [this, id] { bindPort(id); });
    } else {
      container.readyAt = sim_.now();  // helper container: ready == running
    }
    cb(Status());
  });
  return Status();
}

void ContainerdRuntime::bindPort(ContainerId id) {
  const auto it = containers_.find(id);
  if (it == containers_.end() || it->second.state != ContainerState::kRunning) {
    return;  // stopped/removed while the app was initialising
  }
  ContainerInfo& info = it->second;
  info.hostPort = nextHostPort_++;
  info.readyAt = sim_.now();

  const AppProfile app = info.spec.app;
  // Fork a per-container RNG so request jitter does not perturb other
  // containers' sequences.
  auto requestRng = std::make_shared<Rng>(rng_.fork(id));
  host_.listen(info.hostPort, [this, id, app, requestRng](
                                  const HttpRequest&, HttpRespond respond) {
    SimTime compute = app.requestCompute;
    if (app.computeJitterSigma > 0.0) {
      compute = compute.scaled(requestRng->lognormal(0.0, app.computeJitterSigma));
    }
    // Single-worker queue: queue behind the in-flight request, if any.
    SimTime respondAt = sim_.now() + compute;
    if (const auto cit = containers_.find(id); cit != containers_.end()) {
      ++cit->second.requestsServed;
      const SimTime start = std::max(sim_.now(), cit->second.busyUntil);
      respondAt = start + compute;
      cit->second.busyUntil = respondAt;
    }
    sim_.scheduleAt(respondAt, [app, respond = std::move(respond)] {
      HttpResponse response;
      response.status = 200;
      response.payload = app.responseBytes;
      respond(response);
    });
  });
  ES_DEBUG("containerd", "%s: container %llu ready on port %u",
           host_.name().c_str(), static_cast<unsigned long long>(id),
           info.hostPort);
}

Status ContainerdRuntime::stop(ContainerId id, Callback cb) {
  ES_ASSERT(cb != nullptr);
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    return makeError(Errc::kNotFound, "no such container");
  }
  ContainerInfo& info = it->second;
  if (info.state != ContainerState::kRunning &&
      info.state != ContainerState::kStarting) {
    return makeError(Errc::kFailedPrecondition, "container not running");
  }
  if (info.hostPort != 0) {
    host_.closeListener(info.hostPort);
    info.hostPort = 0;
  }
  info.state = ContainerState::kExited;
  info.readyAt = SimTime::max();
  sim_.schedule(jittered(params_.stopLatency),
                [cb = std::move(cb)] { cb(Status()); });
  return Status();
}

Status ContainerdRuntime::remove(ContainerId id) {
  const auto it = containers_.find(id);
  if (it == containers_.end()) {
    return makeError(Errc::kNotFound, "no such container");
  }
  if (it->second.state == ContainerState::kRunning ||
      it->second.state == ContainerState::kStarting) {
    return makeError(Errc::kFailedPrecondition,
                     "stop the container before removing it");
  }
  if (it->second.hostPort != 0) host_.closeListener(it->second.hostPort);
  containers_.erase(it);
  return Status();
}

const ContainerInfo* ContainerdRuntime::find(ContainerId id) const {
  const auto it = containers_.find(id);
  return it == containers_.end() ? nullptr : &it->second;
}

std::vector<const ContainerInfo*> ContainerdRuntime::list(
    const std::map<std::string, std::string>& selector) const {
  std::vector<const ContainerInfo*> out;
  for (const auto& [id, info] : containers_) {
    bool matches = true;
    for (const auto& [key, value] : selector) {
      const auto lit = info.spec.labels.find(key);
      if (lit == info.spec.labels.end() || lit->second != value) {
        matches = false;
        break;
      }
    }
    if (matches) out.push_back(&info);
  }
  return out;
}

Result<Endpoint> ContainerdRuntime::endpointOf(ContainerId id) const {
  const ContainerInfo* info = find(id);
  if (info == nullptr) return makeError(Errc::kNotFound, "no such container");
  if (info->state != ContainerState::kRunning || info->hostPort == 0) {
    return makeError(Errc::kFailedPrecondition, "container not serving");
  }
  return Endpoint(host_.ip(), info->hostPort);
}

}  // namespace edgesim::container
