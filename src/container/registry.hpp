// Container registries (Docker Hub / GCR / private in-network registry).
//
// A registry serves image manifests and layers with a configurable request
// round-trip overhead, per-layer overhead (HTTP request + verification
// handshake) and download bandwidth.  Fig. 13 compares public registries
// against a private registry on the same network; the difference is captured
// by these three knobs.  Registries can be marked unavailable for failure
// injection.
#pragma once

#include <string>
#include <unordered_map>

#include "container/image.hpp"
#include "sim/time.hpp"
#include "util/result.hpp"

namespace edgesim::container {

struct RegistryProfile {
  SimTime requestRtt;       // manifest fetch / auth round trip
  SimTime perLayerOverhead; // per-layer request + checksum verification
  BitRate bandwidth;        // effective download rate toward the edge
};

/// Profile of a busy public registry over the WAN (Docker Hub-like).
RegistryProfile publicRegistryProfile();
/// Profile of a registry on the same network (fig. 13 "private registry").
RegistryProfile privateRegistryProfile();

class Registry {
 public:
  Registry(std::string name, RegistryProfile profile)
      : name_(std::move(name)), profile_(profile) {}

  const std::string& name() const { return name_; }
  const RegistryProfile& profile() const { return profile_; }

  /// Publish an image so edges can pull it.
  void push(Image image);

  bool hasImage(const ImageRef& ref) const;
  Result<Image> manifest(const ImageRef& ref) const;

  /// Wall-clock time to download + verify exactly `layers` from this
  /// registry (sequential, as containerd does by default for verification;
  /// parallel download is folded into the effective bandwidth).
  SimTime downloadTime(const std::vector<Layer>& layers) const;

  /// Failure injection: pulls fail with kUnavailable while down.
  void setAvailable(bool available) { available_ = available; }
  bool available() const { return available_; }

  std::uint64_t pullCount() const { return pulls_; }
  void notePull() const { ++pulls_; }

 private:
  std::string name_;
  RegistryProfile profile_;
  std::unordered_map<std::string, Image> images_;  // key: ref.toString()
  bool available_ = true;
  mutable std::uint64_t pulls_ = 0;
};

}  // namespace edgesim::container
