// ImagePuller: asynchronous image pulls with request coalescing.
//
// Concurrent deployments of the same service on one node must not download
// the image twice; containerd serialises them, and so do we -- all callers
// waiting on the same ref are completed together when the pull finishes.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "container/layer_store.hpp"
#include "container/registry.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulation.hpp"
#include "util/result.hpp"

namespace edgesim::container {

class ImagePuller {
 public:
  using PullCallback = std::function<void(Status)>;

  ImagePuller(Simulation& sim, LayerStore& store) : sim_(sim), store_(store) {}

  /// Ensure `ref` is fully present in the layer store, pulling missing
  /// layers from `registry`.  Invokes `cb` exactly once; immediate (but
  /// still asynchronous) when the image is already cached.
  void pull(const Registry& registry, const ImageRef& ref, PullCallback cb);

  /// Pull currently in flight for `ref`?
  bool pulling(const ImageRef& ref) const {
    return inFlight_.count(ref.toString()) != 0;
  }

  /// Consult `plan` (site kRegistryPull, target = `target`, typically the
  /// node name) before each uncached pull: a failing fault aborts the pull
  /// (all coalesced waiters see the error), a stall-only fault extends the
  /// download.  Pass nullptr to detach.
  void setFaultPlan(fault::FaultPlan* plan, std::string target = "") {
    faults_ = plan;
    faultTarget_ = std::move(target);
  }

  std::uint64_t completedPulls() const { return completed_; }
  std::uint64_t coalescedPulls() const { return coalesced_; }
  std::uint64_t failedPulls() const { return failed_; }

 private:
  struct Inflight {
    std::vector<PullCallback> waiters;
  };

  void finish(const std::string& key, Status status);

  Simulation& sim_;
  LayerStore& store_;
  fault::FaultPlan* faults_ = nullptr;
  std::string faultTarget_;
  std::unordered_map<std::string, Inflight> inFlight_;
  /// Pulls of *different* images share the node's downlink; they are
  /// serialised (earliest request first), so two concurrent pulls take the
  /// sum of their download times.
  SimTime busyUntil_;
  std::uint64_t completed_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace edgesim::container
