#include "container/image.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace edgesim::container {

std::optional<ImageRef> ImageRef::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  ImageRef ref;
  std::string rest(text);

  // A registry host is present when the first path component contains a dot
  // or a colon (e.g. "gcr.io/...", "registry.local:5000/...").
  const auto slash = rest.find('/');
  if (slash != std::string::npos) {
    const std::string first = rest.substr(0, slash);
    if (first.find('.') != std::string::npos ||
        first.find(':') != std::string::npos) {
      ref.registry = first;
      rest = rest.substr(slash + 1);
    }
  }
  const auto colon = rest.rfind(':');
  if (colon != std::string::npos && rest.find('/', colon) == std::string::npos) {
    ref.tag = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  if (rest.empty() || ref.tag.empty()) return std::nullopt;
  ref.repository = rest;
  return ref;
}

std::string ImageRef::toString() const {
  std::string out;
  if (!registry.empty()) out = registry + "/";
  out += repository;
  out += ":";
  out += tag;
  return out;
}

Image makeImage(ImageRef ref, Bytes totalSize, std::size_t layerCount,
                const std::vector<Layer>& sharedBase) {
  ES_ASSERT(layerCount >= 1);
  Image image;
  image.ref = ref;

  Bytes sharedSize;
  for (const auto& layer : sharedBase) {
    image.layers.push_back(layer);
    sharedSize += layer.size;
  }
  ES_ASSERT_MSG(sharedBase.size() <= layerCount,
                "more shared layers than total layers");
  const std::size_t ownLayers = layerCount - sharedBase.size();
  if (ownLayers == 0) return image;

  ES_ASSERT_MSG(totalSize >= sharedSize, "total smaller than shared base");
  const Bytes ownSize = totalSize - sharedSize;

  // Dominant-layer split: the first own layer carries ~70% of the bytes,
  // the remainder is spread evenly (mirrors a big application layer over
  // small config layers).
  const auto dominant =
      ownLayers == 1 ? ownSize.value : ownSize.value * 7 / 10;
  const auto restEach =
      ownLayers > 1 ? (ownSize.value - dominant) / (ownLayers - 1) : 0;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < ownLayers; ++i) {
    Layer layer;
    layer.digest = strprintf("sha256:%s-%zu", ref.toString().c_str(), i);
    if (i == 0) {
      layer.size = Bytes{dominant};
    } else if (i + 1 == ownLayers) {
      layer.size = Bytes{ownSize.value - assigned};  // absorb rounding
    } else {
      layer.size = Bytes{restEach};
    }
    assigned += layer.size.value;
    image.layers.push_back(layer);
  }
  return image;
}

}  // namespace edgesim::container
