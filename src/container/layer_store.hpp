// Node-local content store: cached layers + image manifests.
//
// Models containerd's content store on one node.  Layers are reference-
// counted across images, so deleting an image keeps layers still used by
// other images -- and re-pulling an image only fetches missing layers
// (§IV-C: "even if a container image is deleted, some of its layers may be
// used by other images").
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "container/image.hpp"

namespace edgesim::container {

class LayerStore {
 public:
  /// Layers of `image` that are not yet in the store.
  std::vector<Layer> missingLayers(const Image& image) const;

  /// True when a manifest for `ref` is recorded and all its layers exist.
  bool hasImage(const ImageRef& ref) const;

  /// Record a completed pull: stores the manifest and all layers.
  void commitImage(const Image& image);

  /// Remove an image manifest; unreferenced layers are garbage-collected.
  /// Returns true if the manifest existed.
  bool removeImage(const ImageRef& ref);

  bool hasLayer(const LayerDigest& digest) const {
    return layers_.count(digest) != 0;
  }

  std::size_t imageCount() const { return images_.size(); }
  std::size_t layerCount() const { return layers_.size(); }
  /// Total bytes held (each shared layer counted once).
  Bytes diskUsage() const;

 private:
  struct StoredLayer {
    Bytes size;
    int refs = 0;
  };

  std::unordered_map<std::string, Image> images_;  // key: ref.toString()
  std::unordered_map<LayerDigest, StoredLayer> layers_;
};

}  // namespace edgesim::container
