#include "container/registry.hpp"

namespace edgesim::container {

RegistryProfile publicRegistryProfile() {
  // Calibrated against fig. 13: pulling from a private in-network registry
  // saves ~1.5-2 s *independent of image size*, so the public registry's
  // effective bandwidth is comparable and the saving comes from the
  // manifest/auth round trip and the per-layer request+verify overhead.
  RegistryProfile profile;
  profile.requestRtt = SimTime::millis(600);
  profile.perLayerOverhead = SimTime::millis(220);
  profile.bandwidth = BitRate{850u * 1000 * 1000};  // 850 Mbps effective
  return profile;
}

RegistryProfile privateRegistryProfile() {
  RegistryProfile profile;
  profile.requestRtt = SimTime::millis(20);
  profile.perLayerOverhead = SimTime::millis(30);
  profile.bandwidth = BitRate{900u * 1000 * 1000};  // near line rate
  return profile;
}

void Registry::push(Image image) {
  images_[image.ref.toString()] = std::move(image);
}

bool Registry::hasImage(const ImageRef& ref) const {
  return images_.count(ref.toString()) != 0;
}

Result<Image> Registry::manifest(const ImageRef& ref) const {
  if (!available_) {
    return makeError(Errc::kUnavailable, "registry " + name_ + " is down");
  }
  const auto it = images_.find(ref.toString());
  if (it == images_.end()) {
    return makeError(Errc::kNotFound,
                     "image " + ref.toString() + " not in " + name_);
  }
  return it->second;
}

SimTime Registry::downloadTime(const std::vector<Layer>& layers) const {
  SimTime total = profile_.requestRtt;
  for (const auto& layer : layers) {
    total += profile_.perLayerOverhead;
    total += SimTime::nanos(profile_.bandwidth.transmissionNanos(layer.size));
  }
  return total;
}

}  // namespace edgesim::container
