#include "container/puller.hpp"

#include "util/log.hpp"

namespace edgesim::container {

void ImagePuller::pull(const Registry& registry, const ImageRef& ref,
                       PullCallback cb) {
  ES_ASSERT(cb != nullptr);
  const std::string key = ref.toString();

  if (store_.hasImage(ref)) {
    sim_.schedule(SimTime::zero(), [cb = std::move(cb)] { cb(Status()); });
    return;
  }

  const auto it = inFlight_.find(key);
  if (it != inFlight_.end()) {
    ++coalesced_;
    it->second.waiters.push_back(std::move(cb));
    return;
  }

  auto manifest = registry.manifest(ref);
  if (!manifest.ok()) {
    sim_.schedule(SimTime::zero(), [cb = std::move(cb),
                                    error = manifest.error()] { cb(error); });
    return;
  }

  registry.notePull();
  Inflight inflight;
  inflight.waiters.push_back(std::move(cb));
  inFlight_.emplace(key, std::move(inflight));

  const Image image = manifest.value();
  const auto missing = store_.missingLayers(image);
  SimTime duration = registry.downloadTime(missing);

  // Scripted fault injection: one decision per download.  A failing fault
  // models an interrupted pull (the error surfaces after `stall`, and all
  // coalesced waiters see it); a stall-only fault models a throttled
  // registry and just lengthens the download.
  std::optional<fault::InjectedFault> injected;
  if (faults_ != nullptr) {
    injected = faults_->evaluate(fault::FaultSite::kRegistryPull,
                                 faultTarget_.empty() ? registry.name()
                                                      : faultTarget_);
  }
  if (injected.has_value() && !injected->fail) duration += injected->stall;

  // Serialise behind any pull already saturating the downlink.
  const SimTime start = std::max(sim_.now(), busyUntil_);
  const SimTime done = start + duration;

  if (injected.has_value() && injected->fail) {
    ES_DEBUG("pull", "%s: injected failure after %s", key.c_str(),
             injected->stall.toString().c_str());
    sim_.schedule(injected->stall, [this, key, error = injected->error] {
      ++failed_;
      finish(key, error);
    });
    return;
  }

  busyUntil_ = done;
  ES_DEBUG("pull", "%s: %zu/%zu layers missing, eta %s", key.c_str(),
           missing.size(), image.layerCount(), duration.toString().c_str());

  sim_.schedule(done - sim_.now(), [this, key, image] {
    store_.commitImage(image);
    ++completed_;
    finish(key, Status());
  });
}

void ImagePuller::finish(const std::string& key, Status status) {
  const auto it = inFlight_.find(key);
  if (it == inFlight_.end()) return;
  auto waiters = std::move(it->second.waiters);
  inFlight_.erase(it);
  for (auto& waiter : waiters) waiter(status);
}

}  // namespace edgesim::container
