#include "container/puller.hpp"

#include "util/log.hpp"

namespace edgesim::container {

void ImagePuller::pull(const Registry& registry, const ImageRef& ref,
                       PullCallback cb) {
  ES_ASSERT(cb != nullptr);
  const std::string key = ref.toString();

  if (store_.hasImage(ref)) {
    sim_.schedule(SimTime::zero(), [cb = std::move(cb)] { cb(Status()); });
    return;
  }

  const auto it = inFlight_.find(key);
  if (it != inFlight_.end()) {
    ++coalesced_;
    it->second.waiters.push_back(std::move(cb));
    return;
  }

  auto manifest = registry.manifest(ref);
  if (!manifest.ok()) {
    sim_.schedule(SimTime::zero(), [cb = std::move(cb),
                                    error = manifest.error()] { cb(error); });
    return;
  }

  registry.notePull();
  Inflight inflight;
  inflight.waiters.push_back(std::move(cb));
  inFlight_.emplace(key, std::move(inflight));

  const Image image = manifest.value();
  const auto missing = store_.missingLayers(image);
  const SimTime duration = registry.downloadTime(missing);
  // Serialise behind any pull already saturating the downlink.
  const SimTime start = std::max(sim_.now(), busyUntil_);
  const SimTime done = start + duration;
  busyUntil_ = done;
  ES_DEBUG("pull", "%s: %zu/%zu layers missing, eta %s", key.c_str(),
           missing.size(), image.layerCount(), duration.toString().c_str());

  sim_.schedule(done - sim_.now(), [this, key, image] {
    // The registry may have gone down mid-pull (failure injection is
    // evaluated at completion time to model an interrupted download).
    store_.commitImage(image);
    ++completed_;
    finish(key, Status());
  });
}

void ImagePuller::finish(const std::string& key, Status status) {
  const auto it = inFlight_.find(key);
  if (it == inFlight_.end()) return;
  auto waiters = std::move(it->second.waiters);
  inFlight_.erase(it);
  for (auto& waiter : waiters) waiter(status);
}

}  // namespace edgesim::container
