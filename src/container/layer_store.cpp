#include "container/layer_store.hpp"

#include "util/assert.hpp"

namespace edgesim::container {

std::vector<Layer> LayerStore::missingLayers(const Image& image) const {
  std::vector<Layer> missing;
  std::unordered_set<std::string> seen;  // an image may not repeat a digest
  for (const auto& layer : image.layers) {
    if (layers_.count(layer.digest) == 0 && seen.insert(layer.digest).second) {
      missing.push_back(layer);
    }
  }
  return missing;
}

bool LayerStore::hasImage(const ImageRef& ref) const {
  return images_.count(ref.toString()) != 0;
}

void LayerStore::commitImage(const Image& image) {
  const auto key = image.ref.toString();
  if (images_.count(key) != 0) return;  // already committed
  images_[key] = image;
  for (const auto& layer : image.layers) {
    auto& stored = layers_[layer.digest];
    stored.size = layer.size;
    ++stored.refs;
  }
}

bool LayerStore::removeImage(const ImageRef& ref) {
  const auto it = images_.find(ref.toString());
  if (it == images_.end()) return false;
  for (const auto& layer : it->second.layers) {
    const auto lit = layers_.find(layer.digest);
    ES_ASSERT(lit != layers_.end());
    if (--lit->second.refs <= 0) layers_.erase(lit);
  }
  images_.erase(it);
  return true;
}

Bytes LayerStore::diskUsage() const {
  Bytes total;
  for (const auto& [digest, layer] : layers_) total += layer.size;
  return total;
}

}  // namespace edgesim::container
