#include "metrics/recorder.hpp"

#include "util/strings.hpp"

namespace edgesim::metrics {

void Recorder::add(RequestRecord record) {
  if (record.success) {
    samples_[record.series].add(record.total.toSeconds());
  } else {
    ++failures_;
  }
  records_.push_back(std::move(record));
}

void Recorder::addSample(const std::string& series, double value) {
  samples_[series].add(value);
}

const Samples* Recorder::series(const std::string& name) const {
  const auto it = samples_.find(name);
  return it == samples_.end() ? nullptr : &it->second;
}

std::vector<std::string> Recorder::seriesNames() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const auto& [name, s] : samples_) names.push_back(name);
  return names;
}

Table Recorder::summaryTable(const std::string& valueHeader) const {
  Table table({"series", "n", "median " + valueHeader, "mean", "p95", "min",
               "max"});
  for (const auto& [name, s] : samples_) {
    if (s.empty()) continue;
    table.addRow({name, strprintf("%zu", s.count()),
                  strprintf("%.4f", s.median()), strprintf("%.4f", s.mean()),
                  strprintf("%.4f", s.p95()), strprintf("%.4f", s.min()),
                  strprintf("%.4f", s.max())});
  }
  return table;
}

}  // namespace edgesim::metrics
