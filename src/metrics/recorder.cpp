#include "metrics/recorder.hpp"

#include "util/strings.hpp"

namespace edgesim::metrics {

void Recorder::add(RequestRecord record) {
  std::lock_guard lock(mutex_);
  bool droppedStorage = false;
  if (record.success) {
    Samples& samples = samples_[record.series];
    if (maxSamplesPerSeries_ != 0 &&
        samples.count() >= maxSamplesPerSeries_) {
      droppedStorage = true;
    } else {
      samples.add(record.total.toSeconds());
    }
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  if (maxRecords_ != 0 && records_.size() >= maxRecords_) {
    droppedStorage = true;
  } else {
    records_.push_back(std::move(record));
  }
  if (droppedStorage) dropped_.fetch_add(1, std::memory_order_relaxed);
}

void Recorder::addSample(const std::string& series, double value) {
  std::lock_guard lock(mutex_);
  Samples& samples = samples_[series];
  if (maxSamplesPerSeries_ != 0 && samples.count() >= maxSamplesPerSeries_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  samples.add(value);
}

void Recorder::setCapacity(std::size_t maxRecords,
                           std::size_t maxSamplesPerSeries) {
  std::lock_guard lock(mutex_);
  maxRecords_ = maxRecords;
  maxSamplesPerSeries_ = maxSamplesPerSeries;
}

const Samples* Recorder::series(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = samples_.find(name);
  return it == samples_.end() ? nullptr : &it->second;
}

Samples& Recorder::mutableSeries(const std::string& name) {
  std::lock_guard lock(mutex_);
  return samples_[name];
}

std::vector<std::string> Recorder::seriesNames() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const auto& [name, s] : samples_) names.push_back(name);
  return names;
}

std::size_t Recorder::totalRecords() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

Table Recorder::summaryTable(const std::string& valueHeader) const {
  std::lock_guard lock(mutex_);
  Table table({"series", "n", "median " + valueHeader, "mean", "p95", "min",
               "max"});
  for (const auto& [name, s] : samples_) {
    if (s.empty()) continue;
    table.addRow({name, strprintf("%zu", s.count()),
                  strprintf("%.4f", s.median()), strprintf("%.4f", s.mean()),
                  strprintf("%.4f", s.p95()), strprintf("%.4f", s.min()),
                  strprintf("%.4f", s.max())});
  }
  return table;
}

}  // namespace edgesim::metrics
