// Machine-readable bench output: a schema-versioned JSON report per bench
// binary (BENCH_<name>.json) plus the comparator used by the CI regression
// gate (tools/bench_diff).
//
// Schema (version 1):
//   {
//     "schema": "edgesim-bench",
//     "schema_version": 1,
//     "bench": "fig11_scaleup",
//     "meta": { "seed": "1", ... },
//     "series": {
//       "nginx/docker/total": {
//         "count": 42, "median": 0.48, "mean": ..., "p95": ...,
//         "min": ..., "max": ..., "samples": [ ... ]   // optional
//       }, ...
//     }
//   }
//
// All duration series are lower-is-better; compareReports() flags a series
// whose candidate median (or p95) exceeds baseline * (1 + tolerance), and
// series that disappeared from the candidate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/recorder.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace edgesim::metrics {

struct SeriesStats {
  std::size_t count = 0;
  double median = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;  // empty when not exported

  static SeriesStats fromSamples(const Samples& samples, bool includeSamples);
};

class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "edgesim-bench";

  explicit BenchReport(std::string benchName);

  const std::string& name() const { return name_; }

  void setMeta(const std::string& key, const std::string& value);
  const std::map<std::string, std::string>& meta() const { return meta_; }

  void addSeries(const std::string& name, const Samples& samples,
                 bool includeSamples = true);
  void addSeriesMap(const std::map<std::string, Samples>& map,
                    const std::string& prefix = "",
                    bool includeSamples = true);
  /// Every series of `recorder`, optionally under `prefix + "/"`.
  void addRecorder(const Recorder& recorder, const std::string& prefix = "",
                   bool includeSamples = true);
  /// Single-value series (counters: failures, retries, ...).
  void addScalar(const std::string& name, double value);

  const std::map<std::string, SeriesStats>& series() const { return series_; }
  const SeriesStats* findSeries(const std::string& name) const;

  JsonValue toJson() const;
  std::string toJsonString(int indent = 2) const;
  static Result<BenchReport> fromJson(const JsonValue& json);
  static Result<BenchReport> fromFile(const std::string& path);
  Status writeFile(const std::string& path) const;

 private:
  std::string name_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, SeriesStats> series_;  // ordered, stable output
};

// ---- regression comparison --------------------------------------------------

struct SeriesRegression {
  std::string series;
  std::string metric;   // "median" | "p95" | "count"
  double baseline = 0.0;
  double candidate = 0.0;

  /// candidate / baseline (0 when baseline is 0).
  double ratio() const { return baseline != 0.0 ? candidate / baseline : 0.0; }
  std::string toString() const;
};

struct CompareOptions {
  /// Allowed relative slowdown: candidate <= baseline * (1 + tolerance).
  double tolerance = 0.10;
  /// Also gate the 95th percentile, with twice the median tolerance (tail
  /// metrics are noisier).
  bool comparePercentile = true;
  /// Ignore regressions smaller than this in absolute terms (seconds) --
  /// sub-microsecond series otherwise trip on formatting noise.
  double absoluteFloor = 1e-6;
};

struct CompareResult {
  std::vector<SeriesRegression> regressions;
  std::vector<std::string> missingSeries;   // in baseline, absent in candidate
  std::vector<std::string> improvedSeries;  // got faster beyond tolerance
  std::size_t seriesCompared = 0;

  bool ok() const { return regressions.empty() && missingSeries.empty(); }
};

CompareResult compareReports(const BenchReport& baseline,
                             const BenchReport& candidate,
                             const CompareOptions& options = {});

}  // namespace edgesim::metrics
