// Experiment measurement: timecurl-equivalent per-request records and a
// series recorder that renders the paper's tables.
//
// The paper measures `time_total` with curl: "everything from when Curl
// starts establishing a TCP connection until it gets a response for the
// HTTP request".  `HttpTimings::timeTotal()` in net/host.hpp implements
// exactly that; this module aggregates those samples per experiment series
// and renders medians (the statistic used in Figs. 11-16).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace edgesim::metrics {

/// One measured client request (timecurl.sh line).
struct RequestRecord {
  std::string series;     // e.g. "nginx/k8s/scaleup"
  SimTime start;
  SimTime total;          // curl time_total
  bool success = true;
  int synRetransmits = 0;
};

class Recorder {
 public:
  void add(RequestRecord record);
  void addSample(const std::string& series, double value);

  /// All samples of a series as doubles (seconds for durations).
  const Samples* series(const std::string& name) const;
  Samples& mutableSeries(const std::string& name) { return samples_[name]; }

  std::vector<std::string> seriesNames() const;
  std::size_t totalRecords() const { return records_.size(); }
  const std::vector<RequestRecord>& records() const { return records_; }

  std::size_t failureCount() const { return failures_; }

  /// Render one row per series: count, median, mean, p95, min, max
  /// (durations in seconds).
  Table summaryTable(const std::string& valueHeader = "seconds") const;

 private:
  std::vector<RequestRecord> records_;
  std::map<std::string, Samples> samples_;  // ordered for stable output
  std::size_t failures_ = 0;
};

}  // namespace edgesim::metrics
