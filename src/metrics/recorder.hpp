// Experiment measurement: timecurl-equivalent per-request records and a
// series recorder that renders the paper's tables.
//
// The paper measures `time_total` with curl: "everything from when Curl
// starts establishing a TCP connection until it gets a response for the
// HTTP request".  `HttpTimings::timeTotal()` in net/host.hpp implements
// exactly that; this module aggregates those samples per experiment series
// and renders medians (the statistic used in Figs. 11-16).
//
// Thread model: add() / addSample() are safe to call from any thread (the
// controller's worker pool records warm-path latencies concurrently) --
// they serialize on one internal mutex, which is uncontended in
// single-threaded runs and cheap next to the modeled RTTs in threaded
// ones.  Accessors that hand out references into the recorder
// (records(), series(), mutableSeries()) are for QUIESCENT use: call them
// only after the recording threads have been joined, as every test and
// bench driver does.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace edgesim::metrics {

/// One measured client request (timecurl.sh line).
struct RequestRecord {
  std::string series;     // e.g. "nginx/k8s/scaleup"
  SimTime start;
  SimTime total;          // curl time_total
  bool success = true;
  int synRetransmits = 0;
};

class Recorder {
 public:
  void add(RequestRecord record);
  void addSample(const std::string& series, double value);

  /// All samples of a series as doubles (seconds for durations).
  /// The pointer stays valid for the recorder's lifetime (map nodes are
  /// stable); read it only while no thread is recording to that series.
  const Samples* series(const std::string& name) const;
  /// Quiescent use only: the returned reference is mutated outside the
  /// recorder's lock (bench drivers merging trace-derived samples).
  Samples& mutableSeries(const std::string& name);

  std::vector<std::string> seriesNames() const;
  std::size_t totalRecords() const;
  /// Quiescent use only (see header comment).
  const std::vector<RequestRecord>& records() const { return records_; }

  std::size_t failureCount() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Bound storage: at most `maxRecords` stored request records and
  /// `maxSamplesPerSeries` samples per series (0 = unbounded, the
  /// historical default).  Events over a cap still count failures but
  /// their storage is dropped and tallied in droppedEvents() -- surfaced
  /// through the telemetry registry as `edgesim_recorder_dropped_events`.
  void setCapacity(std::size_t maxRecords, std::size_t maxSamplesPerSeries);
  std::size_t droppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Render one row per series: count, median, mean, p95, min, max
  /// (durations in seconds).
  Table summaryTable(const std::string& valueHeader = "seconds") const;

 private:
  mutable std::mutex mutex_;
  std::vector<RequestRecord> records_;
  std::map<std::string, Samples> samples_;  // ordered for stable output
  std::atomic<std::size_t> failures_{0};
  std::size_t maxRecords_ = 0;             // guarded by mutex_
  std::size_t maxSamplesPerSeries_ = 0;    // guarded by mutex_
  std::atomic<std::size_t> dropped_{0};
};

}  // namespace edgesim::metrics
