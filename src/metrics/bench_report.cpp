#include "metrics/bench_report.hpp"

#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace edgesim::metrics {

SeriesStats SeriesStats::fromSamples(const Samples& samples,
                                     bool includeSamples) {
  SeriesStats stats;
  stats.count = samples.count();
  if (!samples.empty()) {
    stats.median = samples.median();
    stats.mean = samples.mean();
    stats.p95 = samples.p95();
    stats.min = samples.min();
    stats.max = samples.max();
  }
  if (includeSamples) stats.samples = samples.values();
  return stats;
}

BenchReport::BenchReport(std::string benchName) : name_(std::move(benchName)) {}

void BenchReport::setMeta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void BenchReport::addSeries(const std::string& name, const Samples& samples,
                            bool includeSamples) {
  series_[name] = SeriesStats::fromSamples(samples, includeSamples);
}

void BenchReport::addSeriesMap(const std::map<std::string, Samples>& map,
                               const std::string& prefix,
                               bool includeSamples) {
  for (const auto& [name, samples] : map) {
    addSeries(prefix.empty() ? name : prefix + "/" + name, samples,
              includeSamples);
  }
}

void BenchReport::addRecorder(const Recorder& recorder,
                              const std::string& prefix, bool includeSamples) {
  for (const auto& name : recorder.seriesNames()) {
    const Samples* samples = recorder.series(name);
    if (samples == nullptr || samples->empty()) continue;
    addSeries(prefix.empty() ? name : prefix + "/" + name, *samples,
              includeSamples);
  }
}

void BenchReport::addScalar(const std::string& name, double value) {
  Samples samples;
  samples.add(value);
  addSeries(name, samples, /*includeSamples=*/true);
}

const SeriesStats* BenchReport::findSeries(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

JsonValue BenchReport::toJson() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kSchemaName);
  doc.set("schema_version", kSchemaVersion);
  doc.set("bench", name_);

  JsonValue meta = JsonValue::object();
  for (const auto& [key, value] : meta_) meta.set(key, value);
  doc.set("meta", std::move(meta));

  JsonValue series = JsonValue::object();
  for (const auto& [name, stats] : series_) {
    JsonValue entry = JsonValue::object();
    entry.set("count", stats.count);
    entry.set("median", stats.median);
    entry.set("mean", stats.mean);
    entry.set("p95", stats.p95);
    entry.set("min", stats.min);
    entry.set("max", stats.max);
    if (!stats.samples.empty()) {
      JsonValue samples = JsonValue::array();
      for (const double v : stats.samples) samples.push(v);
      entry.set("samples", std::move(samples));
    }
    series.set(name, std::move(entry));
  }
  doc.set("series", std::move(series));
  return doc;
}

std::string BenchReport::toJsonString(int indent) const {
  return toJson().dump(indent);
}

Result<BenchReport> BenchReport::fromJson(const JsonValue& json) {
  if (!json.isObject()) {
    return makeError(Errc::kInvalidArgument, "bench report: not an object");
  }
  if (json.stringOr("schema", "") != kSchemaName) {
    return makeError(Errc::kInvalidArgument,
                     "bench report: unknown schema '" +
                         json.stringOr("schema", "<missing>") + "'");
  }
  const int version =
      static_cast<int>(json.numberOr("schema_version", 0));
  if (version < 1 || version > kSchemaVersion) {
    return makeError(Errc::kInvalidArgument,
                     "bench report: unsupported schema_version " +
                         std::to_string(version));
  }
  BenchReport report(json.stringOr("bench", ""));
  if (report.name_.empty()) {
    return makeError(Errc::kInvalidArgument, "bench report: missing bench name");
  }
  if (const JsonValue* meta = json.find("meta"); meta != nullptr) {
    for (const auto& [key, value] : meta->members()) {
      if (value.isString()) report.meta_[key] = value.asString();
    }
  }
  const JsonValue* series = json.find("series");
  if (series == nullptr || !series->isObject()) {
    return makeError(Errc::kInvalidArgument, "bench report: missing series");
  }
  for (const auto& [name, entry] : series->members()) {
    if (!entry.isObject()) {
      return makeError(Errc::kInvalidArgument,
                       "bench report: series '" + name + "' is not an object");
    }
    SeriesStats stats;
    stats.count = static_cast<std::size_t>(entry.numberOr("count", 0));
    stats.median = entry.numberOr("median", 0.0);
    stats.mean = entry.numberOr("mean", 0.0);
    stats.p95 = entry.numberOr("p95", 0.0);
    stats.min = entry.numberOr("min", 0.0);
    stats.max = entry.numberOr("max", 0.0);
    if (const JsonValue* samples = entry.find("samples");
        samples != nullptr && samples->isArray()) {
      for (const JsonValue& v : samples->items()) {
        if (v.isNumber()) stats.samples.push_back(v.asNumber());
      }
    }
    report.series_[name] = std::move(stats);
  }
  return report;
}

Result<BenchReport> BenchReport::fromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return makeError(Errc::kNotFound, "cannot open " + path);
  }
  std::string text;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  auto json = JsonValue::parse(text);
  if (!json.ok()) {
    return makeError(json.error().code, path + ": " + json.error().message);
  }
  auto report = fromJson(json.value());
  if (!report.ok()) {
    return makeError(report.error().code, path + ": " + report.error().message);
  }
  return report;
}

Status BenchReport::writeFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return makeError(Errc::kUnavailable, "cannot write " + path);
  }
  const std::string text = toJsonString() + "\n";
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return makeError(Errc::kUnavailable, "short write to " + path);
  }
  return Status();
}

// ---- regression comparison --------------------------------------------------

std::string SeriesRegression::toString() const {
  return strprintf("%s: %s %.6f -> %.6f (%.1f%% vs baseline)", series.c_str(),
                   metric.c_str(), baseline, candidate,
                   (ratio() - 1.0) * 100.0);
}

CompareResult compareReports(const BenchReport& baseline,
                             const BenchReport& candidate,
                             const CompareOptions& options) {
  CompareResult result;
  for (const auto& [name, base] : baseline.series()) {
    const SeriesStats* cand = candidate.findSeries(name);
    if (cand == nullptr) {
      result.missingSeries.push_back(name);
      continue;
    }
    ++result.seriesCompared;

    // NaN/inf poisons every comparison below into "no regression" (NaN
    // compares false against everything), so a broken bench would sail
    // through the gate.  Flag non-finite summary stats outright.
    if (!std::isfinite(base.median) || !std::isfinite(base.p95) ||
        !std::isfinite(cand->median) || !std::isfinite(cand->p95)) {
      result.regressions.push_back(
          {name, "non-finite", base.median, cand->median});
      continue;
    }

    const auto regressed = [&options](double b, double c,
                                      double tolerance) {
      return c > b * (1.0 + tolerance) && c - b > options.absoluteFloor;
    };

    if (regressed(base.median, cand->median, options.tolerance)) {
      result.regressions.push_back(
          {name, "median", base.median, cand->median});
    } else if (base.median > 0.0 &&
               cand->median < base.median * (1.0 - options.tolerance) &&
               base.median - cand->median > options.absoluteFloor) {
      result.improvedSeries.push_back(name);
    }
    if (options.comparePercentile &&
        regressed(base.p95, cand->p95, options.tolerance * 2.0)) {
      result.regressions.push_back({name, "p95", base.p95, cand->p95});
    }
    if (base.count != cand->count) {
      result.regressions.push_back({name, "count",
                                    static_cast<double>(base.count),
                                    static_cast<double>(cand->count)});
    }
  }
  return result;
}

}  // namespace edgesim::metrics
