// DockerEngine: a Docker-daemon-like API over the containerd runtime.
//
// This is the "lightweight alternative" cluster type of the paper: a single
// node running plain Docker.  The engine adds API-call latency on top of
// containerd operations, supports label selectors (the paper's controller
// labels Docker deployments to "address and query edge services
// distinctly", §V), image pulls via a registry, and volume mappings.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "fault/fault_plan.hpp"

namespace edgesim::docker {

using container::ContainerId;
using container::ContainerInfo;
using container::ContainerSpec;
using container::ImageRef;

struct EngineParams {
  /// REST API round trip to the daemon (per call).
  SimTime apiLatency = SimTime::millis(15);
};

class DockerEngine {
 public:
  using Callback = std::function<void(Status)>;
  using CreateCallback = std::function<void(Result<ContainerId>)>;

  DockerEngine(Simulation& sim, container::ContainerdRuntime& runtime,
               container::ImagePuller& puller, const container::Registry* registry,
               EngineParams params = {});

  /// `docker pull` -- fetch the image unless cached.
  void pull(const ImageRef& ref, Callback cb);

  /// `docker create` -- requires the image to be present.
  void createContainer(const ContainerSpec& spec, CreateCallback cb);

  /// `docker start` -- resolves when the start call returns (the app may
  /// still be initialising; readiness is observed via the service port).
  void startContainer(ContainerId id, Callback cb);

  void stopContainer(ContainerId id, Callback cb);
  void removeContainer(ContainerId id, Callback cb);
  /// `docker rmi` -- drop the image from the node cache (§IV-C Delete
  /// phase); shared layers referenced by other images survive.
  void removeImage(const ImageRef& ref, Callback cb);

  /// `docker ps --filter label=...` (synchronous snapshot; the controller
  /// maintains its own state and only needs point-in-time listings).
  std::vector<const ContainerInfo*> listContainers(
      const std::map<std::string, std::string>& labelSelector = {}) const;

  const ContainerInfo* inspect(ContainerId id) const;
  Result<Endpoint> endpointOf(ContainerId id) const;
  bool imageCached(const ImageRef& ref) const;

  container::ContainerdRuntime& runtime() { return runtime_; }
  const EngineParams& params() const { return params_; }

  /// Consult `plan` on create (kContainerCreate) and start (kContainerStart)
  /// calls; the target is the engine's node name.  Pass nullptr to detach.
  void setFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }

  /// Time domain active when the engine was built: its API-latency events
  /// and the underlying runtime/puller all advance with that domain.
  DomainId homeDomain() const { return homeDomain_; }

 private:
  void afterApi(std::function<void()> fn);
  /// Non-null when the daemon call must fail with an injected fault.
  std::optional<fault::InjectedFault> checkFault(fault::FaultSite site);

  Simulation& sim_;
  container::ContainerdRuntime& runtime_;
  container::ImagePuller& puller_;
  const container::Registry* registry_;
  fault::FaultPlan* faults_ = nullptr;
  EngineParams params_;
  DomainId homeDomain_ = kControlDomain;
};

}  // namespace edgesim::docker
