#include "docker/engine.hpp"

#include "util/log.hpp"

namespace edgesim::docker {

DockerEngine::DockerEngine(Simulation& sim,
                           container::ContainerdRuntime& runtime,
                           container::ImagePuller& puller,
                           const container::Registry* registry,
                           EngineParams params)
    : sim_(sim),
      runtime_(runtime),
      puller_(puller),
      registry_(registry),
      params_(params),
      homeDomain_(sim.activeDomainId()) {}

void DockerEngine::afterApi(std::function<void()> fn) {
  sim_.schedule(params_.apiLatency, std::move(fn));
}

std::optional<fault::InjectedFault> DockerEngine::checkFault(
    fault::FaultSite site) {
  if (faults_ == nullptr) return std::nullopt;
  auto injected = faults_->evaluate(site, runtime_.host().name());
  // Stall-only faults on daemon calls are folded into the failure path's
  // stall; a non-failing trigger is simply ignored here (the API latency
  // already models the call's base cost).
  if (injected.has_value() && !injected->fail) return std::nullopt;
  return injected;
}

void DockerEngine::pull(const ImageRef& ref, Callback cb) {
  ES_ASSERT(cb != nullptr);
  afterApi([this, ref, cb = std::move(cb)] {
    if (registry_ == nullptr) {
      if (runtime_.store().hasImage(ref)) {
        cb(Status());
      } else {
        cb(makeError(Errc::kUnavailable, "no registry configured"));
      }
      return;
    }
    puller_.pull(*registry_, ref, std::move(cb));
  });
}

void DockerEngine::createContainer(const ContainerSpec& spec,
                                   CreateCallback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkFault(fault::FaultSite::kContainerCreate)) {
    sim_.schedule(params_.apiLatency + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  afterApi([this, spec, cb = std::move(cb)] {
    // containerd's create latency applies before the id is returned.
    sim_.schedule(runtime_.params().createLatency, [this, spec, cb] {
      cb(runtime_.create(spec));
    });
  });
}

void DockerEngine::startContainer(ContainerId id, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkFault(fault::FaultSite::kContainerStart)) {
    sim_.schedule(params_.apiLatency + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  afterApi([this, id, cb = std::move(cb)]() mutable {
    const Status status = runtime_.start(id, cb);
    if (!status.ok()) {
      // start() rejected synchronously; surface asynchronously for a
      // uniform callback contract.
      sim_.schedule(SimTime::zero(), [cb, status] { cb(status); });
    }
  });
}

void DockerEngine::stopContainer(ContainerId id, Callback cb) {
  ES_ASSERT(cb != nullptr);
  afterApi([this, id, cb = std::move(cb)]() mutable {
    const Status status = runtime_.stop(id, cb);
    if (!status.ok()) {
      sim_.schedule(SimTime::zero(), [cb, status] { cb(status); });
    }
  });
}

void DockerEngine::removeContainer(ContainerId id, Callback cb) {
  ES_ASSERT(cb != nullptr);
  afterApi([this, id, cb = std::move(cb)] {
    sim_.schedule(runtime_.params().removeLatency,
                  [this, id, cb] { cb(runtime_.remove(id)); });
  });
}

void DockerEngine::removeImage(const ImageRef& ref, Callback cb) {
  ES_ASSERT(cb != nullptr);
  afterApi([this, ref, cb = std::move(cb)] {
    // Refuse while containers still use the image (as docker rmi does).
    for (const auto* info : runtime_.list()) {
      if (info->spec.image == ref &&
          info->state != container::ContainerState::kRemoved) {
        cb(makeError(Errc::kConflict, "image in use by container"));
        return;
      }
    }
    if (!runtime_.store().removeImage(ref)) {
      cb(makeError(Errc::kNotFound, "no such image"));
      return;
    }
    cb(Status());
  });
}

std::vector<const ContainerInfo*> DockerEngine::listContainers(
    const std::map<std::string, std::string>& labelSelector) const {
  return runtime_.list(labelSelector);
}

const ContainerInfo* DockerEngine::inspect(ContainerId id) const {
  return runtime_.find(id);
}

Result<Endpoint> DockerEngine::endpointOf(ContainerId id) const {
  return runtime_.endpointOf(id);
}

bool DockerEngine::imageCached(const ImageRef& ref) const {
  return runtime_.store().hasImage(ref);
}

}  // namespace edgesim::docker
