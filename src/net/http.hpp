// Minimal HTTP message model carried as TCP payload metadata.
//
// The simulation transfers byte *counts*, not real bodies; `HttpRequest`/
// `HttpResponse` carry the fields the evaluation needs (method, path,
// payload size, status).  A small opaque body string is kept for examples
// and tests that want to assert content round-trips.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace edgesim {

enum class HttpMethod { kGet, kPost };

const char* httpMethodName(HttpMethod method);

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  std::string path = "/";
  Bytes payload;      // request body size (e.g. 83 KiB cat picture for ResNet)
  std::string body;   // optional literal content for tests/examples

  /// Approximate wire size: request line + headers + body.
  Bytes wireSize() const { return Bytes{200} + payload; }
};

struct HttpResponse {
  int status = 200;
  Bytes payload;      // response body size
  std::string body;   // optional literal content

  Bytes wireSize() const { return Bytes{200} + payload; }

  bool ok() const { return status >= 200 && status < 300; }
};

}  // namespace edgesim
