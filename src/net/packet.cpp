#include "net/packet.hpp"

#include "util/strings.hpp"

namespace edgesim {

const char* httpMethodName(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet: return "GET";
    case HttpMethod::kPost: return "POST";
  }
  return "?";
}

namespace {

Packet makeBase(Mac srcMac, Endpoint src, Endpoint dst, std::uint8_t flags) {
  Packet p;
  p.ethSrc = srcMac;
  p.ethDst = Mac::broadcast();  // resolved by switching fabric
  p.ipSrc = src.ip;
  p.ipDst = dst.ip;
  p.tcpSrc = src.port;
  p.tcpDst = dst.port;
  p.tcpFlags = flags;
  return p;
}

}  // namespace

std::string Packet::summary() const {
  std::string flags;
  if (hasFlag(tcpflags::kSyn)) flags += "S";
  if (hasFlag(tcpflags::kAck)) flags += "A";
  if (hasFlag(tcpflags::kFin)) flags += "F";
  if (hasFlag(tcpflags::kRst)) flags += "R";
  if (hasFlag(tcpflags::kPsh)) flags += "P";
  return strprintf("%s -> %s [%s] %llu B", srcEndpoint().toString().c_str(),
                   dstEndpoint().toString().c_str(), flags.c_str(),
                   static_cast<unsigned long long>(payloadBytes.value));
}

Packet makeSyn(Mac srcMac, Endpoint src, Endpoint dst) {
  return makeBase(srcMac, src, dst, tcpflags::kSyn);
}

Packet makeSynAck(Mac srcMac, Endpoint src, Endpoint dst) {
  return makeBase(srcMac, src, dst, tcpflags::kSyn | tcpflags::kAck);
}

Packet makeAck(Mac srcMac, Endpoint src, Endpoint dst) {
  return makeBase(srcMac, src, dst, tcpflags::kAck);
}

Packet makeRst(Mac srcMac, Endpoint src, Endpoint dst) {
  return makeBase(srcMac, src, dst, tcpflags::kRst);
}

Packet makeFin(Mac srcMac, Endpoint src, Endpoint dst) {
  return makeBase(srcMac, src, dst, tcpflags::kFin | tcpflags::kAck);
}

Packet makeData(Mac srcMac, Endpoint src, Endpoint dst, Bytes payload,
                std::shared_ptr<const AppPayload> app) {
  Packet p = makeBase(srcMac, src, dst, tcpflags::kPsh | tcpflags::kAck);
  p.payloadBytes = payload;
  p.app = std::move(app);
  return p;
}

}  // namespace edgesim
