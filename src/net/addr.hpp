// Network addressing primitives: IPv4, MAC, and endpoint (IP:port).
//
// Registered edge services in the paper are identified by their unique
// IP address + port combination; `Endpoint` is that key throughout the
// controller.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace edgesim {

struct Ipv4 {
  std::uint32_t value = 0;  // host byte order

  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t v) : value(v) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4> parse(std::string_view text);
  std::string toString() const;

  constexpr auto operator<=>(const Ipv4&) const = default;
  constexpr bool isZero() const { return value == 0; }
};

struct Mac {
  std::uint64_t value = 0;  // lower 48 bits

  constexpr Mac() = default;
  constexpr explicit Mac(std::uint64_t v) : value(v & 0xffffffffffffULL) {}

  static constexpr Mac broadcast() { return Mac(0xffffffffffffULL); }
  std::string toString() const;

  constexpr auto operator<=>(const Mac&) const = default;
};

struct Endpoint {
  Ipv4 ip;
  std::uint16_t port = 0;

  constexpr Endpoint() = default;
  constexpr Endpoint(Ipv4 i, std::uint16_t p) : ip(i), port(p) {}

  /// Parse "10.0.0.5:80".
  static std::optional<Endpoint> parse(std::string_view text);
  std::string toString() const;

  constexpr auto operator<=>(const Endpoint&) const = default;
};

/// TCP connection 4-tuple as seen from one side.
struct FourTuple {
  Endpoint local;
  Endpoint remote;

  constexpr auto operator<=>(const FourTuple&) const = default;
  std::string toString() const;
};

}  // namespace edgesim

template <>
struct std::hash<edgesim::Ipv4> {
  std::size_t operator()(const edgesim::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};

template <>
struct std::hash<edgesim::Endpoint> {
  std::size_t operator()(const edgesim::Endpoint& ep) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{ep.ip.value} << 16) | ep.port);
  }
};

template <>
struct std::hash<edgesim::FourTuple> {
  std::size_t operator()(const edgesim::FourTuple& t) const noexcept {
    const auto h1 = std::hash<edgesim::Endpoint>{}(t.local);
    const auto h2 = std::hash<edgesim::Endpoint>{}(t.remote);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
