// Host: an end system with an IP/MAC, a lightweight TCP implementation and
// an HTTP client/server API.
//
// The TCP model is intentionally small but packet-accurate where the paper's
// evaluation depends on it:
//   * three-way handshake (SYN / SYN-ACK / ACK), one data segment per
//     request and response, FIN teardown;
//   * SYN retransmission with exponential backoff -- this is what happens
//     while the SDN controller keeps the first request "on hold" during an
//     on-demand deployment;
//   * RST on closed ports ("connection refused") -- the reason the
//     controller polls the service port before installing flows (§VI).
// Sequence-number tracking, congestion control and segmentation are *not*
// modelled; a request/response travels as one segment whose serialisation
// time reflects its full byte size.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "util/result.hpp"

namespace edgesim {

/// Measured timings for one HTTP exchange (timecurl.sh semantics: the total
/// runs from when the client starts the TCP connect until the HTTP response
/// is fully received).
struct HttpTimings {
  SimTime start;         // SYN first sent
  SimTime connected;     // SYN-ACK received
  SimTime responseDone;  // response data received
  int synRetransmits = 0;

  SimTime timeTotal() const { return responseDone - start; }
  SimTime timeConnect() const { return connected - start; }
};

struct HttpExchange {
  HttpRequest request;
  HttpResponse response;
  HttpTimings timings;
};

/// Server-side handler: must eventually invoke `respond` exactly once
/// (possibly after scheduling compute delay on the simulation).
using HttpRespond = std::function<void(HttpResponse)>;
using HttpHandler = std::function<void(const HttpRequest&, HttpRespond)>;

/// Client knobs for one HTTP request.
struct RequestOptions {
  SimTime synRto = SimTime::millis(1000);  // initial SYN retransmit timeout
  int maxSynRetries = 6;                   // 1s,2s,4s,... ~63 s budget
  SimTime totalTimeout = SimTime::seconds(120.0);
};

class Host : public NetNode {
 public:
  using HttpCallback = std::function<void(Result<HttpExchange>)>;
  using ProbeCallback = std::function<void(bool open)>;

  Host(Network& network, std::string name, Ipv4 ip, Mac mac);

  Ipv4 ip() const { return ip_; }
  Mac mac() const { return mac_; }

  // -- server API ---------------------------------------------------------
  /// Open `port`; incoming requests are passed to `handler`.
  void listen(std::uint16_t port, HttpHandler handler);
  /// Close `port`; subsequent SYNs are refused with RST.
  void closeListener(std::uint16_t port);
  bool listening(std::uint16_t port) const;

  // -- client API ---------------------------------------------------------
  /// Issue an HTTP request to `dst`; `cb` fires exactly once with the
  /// exchange (including timings) or an error (kUnavailable on RST,
  /// kTimeout when retries are exhausted).
  void httpRequest(Endpoint dst, HttpRequest request, HttpCallback cb,
                   RequestOptions options = {});

  /// Half-open TCP probe: SYN, then report whether the port answered with
  /// SYN-ACK (true) or RST/timeout (false).  Used by the SDN controller's
  /// readiness polling.
  void tcpProbe(Endpoint dst, ProbeCallback cb,
                SimTime timeout = SimTime::millis(500));

  // -- NetNode ------------------------------------------------------------
  void receive(const Packet& packet, PortId inPort) override;

  std::uint64_t refusedConnections() const { return refused_; }

 private:
  enum class ClientState { kSynSent, kEstablished, kDone };

  struct ClientConn {
    ClientState state = ClientState::kSynSent;
    bool isProbe = false;
    Endpoint remote;
    std::uint16_t localPort = 0;
    HttpRequest request;
    HttpCallback cb;
    ProbeCallback probeCb;
    HttpTimings timings;
    RequestOptions options;
    SimTime rto;
    int retries = 0;
    EventHandle rtoTimer;
    EventHandle totalTimer;
  };

  struct ServerConn {
    Endpoint remote;
    std::uint16_t localPort = 0;
    bool requestSeen = false;
  };

  void send(const Packet& packet);
  void handleClientPacket(const Packet& packet);
  void handleServerPacket(const Packet& packet);
  void armSynRetransmit(FourTuple key);
  void finishClient(FourTuple key, Result<HttpExchange> result);
  void finishProbe(FourTuple key, bool open);
  std::uint16_t allocatePortNumber();

  Ipv4 ip_;
  Mac mac_;
  std::uint16_t nextEphemeral_ = 32768;
  std::unordered_map<std::uint16_t, HttpHandler> listeners_;
  std::unordered_map<FourTuple, ClientConn> clientConns_;
  std::unordered_map<FourTuple, ServerConn> serverConns_;
  std::uint64_t refused_ = 0;
};

}  // namespace edgesim
