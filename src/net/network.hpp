// Network: owns links between node ports and models transmission timing.
//
// Each link direction has a serialisation stage (bandwidth) followed by
// propagation (latency).  Back-to-back packets queue behind each other in
// the serialisation stage (`busyUntil`), which is what makes large image
// pulls slow down concurrent request traffic in the experiments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace edgesim {

class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulation& sim() const { return sim_; }

  /// Register a node (called from the NetNode constructor).
  NodeId registerNode(NetNode& node);

  /// Wire a bidirectional link; allocates one new port on each node and
  /// returns the pair (port on a, port on b).  A link whose endpoints live
  /// in different time domains declares its latency as the cross-domain
  /// lookahead bound (tightening any existing bound), so assign node
  /// domains before wiring.  Cross-domain latencies must be positive.
  struct LinkPorts {
    PortId portA;
    PortId portB;
  };
  LinkPorts connect(NetNode& a, NetNode& b, SimTime latency,
                    BitRate bandwidth);

  /// Transmit `packet` out of (`node`, `port`); delivers to the peer after
  /// serialisation + propagation.  Dropped (with a log line) if the port is
  /// not wired.
  void transmit(const NetNode& node, PortId port, const Packet& packet);

  /// Peer node of (`node`, `port`), or nullptr if unwired.
  NetNode* peer(const NetNode& node, PortId port) const;

  /// Failure injection: take the link at (`node`, `port`) down (both
  /// directions) or bring it back.  Packets sent over a down link are
  /// silently dropped -- TCP's retransmission/timeout machinery reacts.
  void setLinkUp(const NetNode& node, PortId port, bool up);
  bool linkUp(const NetNode& node, PortId port) const;

  /// Schedule every kLinkDown spec of `plan` matching `label` against the
  /// link at (`node`, `port`): down at spec.at, back up at spec.at +
  /// spec.duration (a zero duration leaves the link down for good).
  void scheduleLinkFaults(const fault::FaultPlan& plan,
                          const std::string& label, const NetNode& node,
                          PortId port);

  std::uint64_t deliveredPackets() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t droppedPackets() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct HalfLink {
    NetNode* from = nullptr;
    PortId fromPort = 0;
    NetNode* to = nullptr;
    PortId toPort = 0;
    SimTime latency;
    BitRate bandwidth;
    SimTime busyUntil;
    bool up = true;
  };

  HalfLink* findHalf(const NetNode& node, PortId port);
  const HalfLink* findHalf(const NetNode& node, PortId port) const;

  Simulation& sim_;
  std::vector<NetNode*> nodes_;
  std::vector<std::unique_ptr<HalfLink>> halves_;
  // Atomic: deliveries execute in the RECEIVER's domain, which in parallel
  // runs is another thread.  (All other link state is sender-domain-owned.)
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace edgesim
