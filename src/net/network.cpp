#include "net/network.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace edgesim {

NetNode::NetNode(Network& network, std::string name)
    : network_(network), name_(std::move(name)) {
  id_ = network.registerNode(*this);
}

NodeId Network::registerNode(NetNode& node) {
  nodes_.push_back(&node);
  return static_cast<NodeId>(nodes_.size() - 1);
}

Network::LinkPorts Network::connect(NetNode& a, NetNode& b, SimTime latency,
                                    BitRate bandwidth) {
  const PortId portA = a.allocatePort();
  const PortId portB = b.allocatePort();
  halves_.push_back(std::make_unique<HalfLink>(
      HalfLink{&a, portA, &b, portB, latency, bandwidth, SimTime::zero()}));
  halves_.push_back(std::make_unique<HalfLink>(
      HalfLink{&b, portB, &a, portA, latency, bandwidth, SimTime::zero()}));
  if (a.domain() != b.domain()) {
    // This link's propagation delay is the conservative lookahead bound
    // between the two domains (tightened to the minimum across links); the
    // link name identifies the channel for stall attribution.
    sim_.connectDomains(a.domain(), b.domain(), latency,
                        a.name() + "<->" + b.name());
  }
  return LinkPorts{portA, portB};
}

Network::HalfLink* Network::findHalf(const NetNode& node, PortId port) {
  for (auto& half : halves_) {
    if (half->from == &node && half->fromPort == port) return half.get();
  }
  return nullptr;
}

const Network::HalfLink* Network::findHalf(const NetNode& node,
                                           PortId port) const {
  return const_cast<Network*>(this)->findHalf(node, port);
}

NetNode* Network::peer(const NetNode& node, PortId port) const {
  const HalfLink* half = findHalf(node, port);
  return half != nullptr ? half->to : nullptr;
}

void Network::setLinkUp(const NetNode& node, PortId port, bool up) {
  HalfLink* forward = findHalf(node, port);
  ES_ASSERT_MSG(forward != nullptr, "setLinkUp on unwired port");
  forward->up = up;
  HalfLink* reverse = findHalf(*forward->to, forward->toPort);
  ES_ASSERT(reverse != nullptr);
  reverse->up = up;
}

bool Network::linkUp(const NetNode& node, PortId port) const {
  const HalfLink* half = findHalf(node, port);
  return half != nullptr && half->up;
}

void Network::scheduleLinkFaults(const fault::FaultPlan& plan,
                                 const std::string& label, const NetNode& node,
                                 PortId port) {
  ES_ASSERT_MSG(findHalf(node, port) != nullptr,
                "scheduleLinkFaults on unwired port");
  for (const fault::FaultSpec* spec : plan.linkFaults(label)) {
    const NetNode* nodePtr = &node;
    sim_.scheduleAt(spec->at, [this, nodePtr, port] {
      ES_INFO("net", "injected link-down at %s port %u", nodePtr->name().c_str(),
              port);
      setLinkUp(*nodePtr, port, false);
    });
    if (spec->duration > SimTime::zero()) {
      sim_.scheduleAt(spec->at + spec->duration, [this, nodePtr, port] {
        ES_INFO("net", "injected link restored at %s port %u",
                nodePtr->name().c_str(), port);
        setLinkUp(*nodePtr, port, true);
      });
    }
  }
}

void Network::transmit(const NetNode& node, PortId port,
                       const Packet& packet) {
  HalfLink* half = findHalf(node, port);
  if (half == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ES_WARN("net", "drop: %s out of unwired port %u on %s",
            packet.summary().c_str(), port, node.name().c_str());
    return;
  }
  if (!half->up) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ES_DEBUG("net", "drop: %s on down link at %s port %u",
             packet.summary().c_str(), node.name().c_str(), port);
    return;
  }
  const SimTime now = sim_.now();
  const SimTime txTime =
      SimTime::nanos(half->bandwidth.transmissionNanos(packet.wireSize()));
  const SimTime start = std::max(now, half->busyUntil);
  const SimTime depart = start + txTime;
  half->busyUntil = depart;
  const SimTime arrival = depart + half->latency;

  NetNode* to = half->to;
  const PortId toPort = half->toPort;
  auto deliver = [this, to, toPort, packet] {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    to->receive(packet, toPort);
  };
  if (to->domain() == node.domain()) {
    // Same-domain delivery: the historical (bit-identical) path.
    sim_.scheduleAt(arrival, std::move(deliver));
  } else {
    // Cross-domain: hand off through the domain channel.  arrival >= now +
    // latency >= now + lookahead (the lookahead is the min link latency for
    // this domain pair), so the conservative bound holds by construction.
    sim_.scheduleOnAt(to->domain(), arrival, std::move(deliver));
  }
}

}  // namespace edgesim
