#include "net/addr.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace edgesim {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | octet;
  }
  return Ipv4(value);
}

std::string Ipv4::toString() const {
  return strprintf("%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                   (value >> 8) & 0xff, value & 0xff);
}

std::string Mac::toString() const {
  return strprintf("%02x:%02x:%02x:%02x:%02x:%02x",
                   static_cast<unsigned>((value >> 40) & 0xff),
                   static_cast<unsigned>((value >> 32) & 0xff),
                   static_cast<unsigned>((value >> 24) & 0xff),
                   static_cast<unsigned>((value >> 16) & 0xff),
                   static_cast<unsigned>((value >> 8) & 0xff),
                   static_cast<unsigned>(value & 0xff));
}

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto ip = Ipv4::parse(text.substr(0, colon));
  if (!ip) return std::nullopt;
  const auto portText = text.substr(colon + 1);
  unsigned port = 0;
  const auto [ptr, ec] = std::from_chars(
      portText.data(), portText.data() + portText.size(), port);
  if (ec != std::errc{} || ptr != portText.data() + portText.size() ||
      port > 65535 || portText.empty()) {
    return std::nullopt;
  }
  return Endpoint(*ip, static_cast<std::uint16_t>(port));
}

std::string Endpoint::toString() const {
  return strprintf("%s:%u", ip.toString().c_str(), port);
}

std::string FourTuple::toString() const {
  return local.toString() + "->" + remote.toString();
}

}  // namespace edgesim
