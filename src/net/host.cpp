#include "net/host.hpp"

#include "util/log.hpp"

namespace edgesim {

Host::Host(Network& network, std::string name, Ipv4 ip, Mac mac)
    : NetNode(network, std::move(name)), ip_(ip), mac_(mac) {}

void Host::listen(std::uint16_t port, HttpHandler handler) {
  ES_ASSERT(handler != nullptr);
  listeners_[port] = std::move(handler);
}

void Host::closeListener(std::uint16_t port) { listeners_.erase(port); }

bool Host::listening(std::uint16_t port) const {
  return listeners_.count(port) != 0;
}

std::uint16_t Host::allocatePortNumber() {
  if (nextEphemeral_ < 32768) nextEphemeral_ = 32768;  // wrapped
  return nextEphemeral_++;
}

void Host::send(const Packet& packet) {
  ES_ASSERT_MSG(portCount() >= 1, "host has no uplink");
  network().transmit(*this, 0, packet);
}

void Host::httpRequest(Endpoint dst, HttpRequest request, HttpCallback cb,
                       RequestOptions options) {
  ES_ASSERT(cb != nullptr);
  const Endpoint local(ip_, allocatePortNumber());
  const FourTuple key{local, dst};
  ClientConn conn;
  conn.remote = dst;
  conn.localPort = local.port;
  conn.request = std::move(request);
  conn.cb = std::move(cb);
  conn.options = options;
  conn.rto = options.synRto;
  conn.timings.start = network().sim().now();
  auto [it, inserted] = clientConns_.emplace(key, std::move(conn));
  ES_ASSERT(inserted);

  it->second.totalTimer =
      network().sim().schedule(options.totalTimeout, [this, key] {
        finishClient(key, makeError(Errc::kTimeout, "http total timeout"));
      });

  ES_TRACE("tcp", "%s connect %s", name().c_str(), key.toString().c_str());
  send(makeSyn(mac_, local, dst));
  armSynRetransmit(key);
}

void Host::tcpProbe(Endpoint dst, ProbeCallback cb, SimTime timeout) {
  ES_ASSERT(cb != nullptr);
  const Endpoint local(ip_, allocatePortNumber());
  const FourTuple key{local, dst};
  ClientConn conn;
  conn.isProbe = true;
  conn.remote = dst;
  conn.localPort = local.port;
  conn.probeCb = std::move(cb);
  conn.timings.start = network().sim().now();
  auto [it, inserted] = clientConns_.emplace(key, std::move(conn));
  ES_ASSERT(inserted);

  it->second.totalTimer = network().sim().schedule(
      timeout, [this, key] { finishProbe(key, false); });
  send(makeSyn(mac_, local, dst));
}

void Host::armSynRetransmit(FourTuple key) {
  auto it = clientConns_.find(key);
  if (it == clientConns_.end()) return;
  ClientConn& conn = it->second;
  if (conn.isProbe) return;  // probes do not retransmit
  conn.rtoTimer = network().sim().schedule(conn.rto, [this, key] {
    auto cit = clientConns_.find(key);
    if (cit == clientConns_.end()) return;
    ClientConn& c = cit->second;
    if (c.state != ClientState::kSynSent) return;
    if (c.retries >= c.options.maxSynRetries) {
      finishClient(key, makeError(Errc::kTimeout, "SYN retries exhausted"));
      return;
    }
    ++c.retries;
    ++c.timings.synRetransmits;
    c.rto = c.rto * 2;  // exponential backoff
    ES_TRACE("tcp", "%s SYN retransmit #%d %s", name().c_str(), c.retries,
             key.toString().c_str());
    send(makeSyn(mac_, Endpoint(ip_, c.localPort), c.remote));
    armSynRetransmit(key);
  });
}

void Host::finishClient(FourTuple key, Result<HttpExchange> result) {
  auto it = clientConns_.find(key);
  if (it == clientConns_.end()) return;
  ClientConn conn = std::move(it->second);
  clientConns_.erase(it);
  conn.rtoTimer.cancel();
  conn.totalTimer.cancel();
  if (conn.isProbe) {
    conn.probeCb(result.ok());
    return;
  }
  conn.cb(std::move(result));
}

void Host::finishProbe(FourTuple key, bool open) {
  auto it = clientConns_.find(key);
  if (it == clientConns_.end()) return;
  ClientConn conn = std::move(it->second);
  clientConns_.erase(it);
  conn.rtoTimer.cancel();
  conn.totalTimer.cancel();
  ES_ASSERT(conn.isProbe);
  conn.probeCb(open);
}

void Host::receive(const Packet& packet, PortId /*inPort*/) {
  if (packet.ipDst != ip_) {
    ES_TRACE("tcp", "%s ignores packet for %s", name().c_str(),
             packet.ipDst.toString().c_str());
    return;
  }
  // Packets addressed to an ephemeral local port belong to client
  // connections; otherwise they are server-side traffic.
  const FourTuple clientKey{Endpoint(ip_, packet.tcpDst),
                            packet.srcEndpoint()};
  if (clientConns_.count(clientKey) != 0) {
    handleClientPacket(packet);
  } else {
    handleServerPacket(packet);
  }
}

void Host::handleClientPacket(const Packet& packet) {
  const FourTuple key{Endpoint(ip_, packet.tcpDst), packet.srcEndpoint()};
  auto it = clientConns_.find(key);
  ES_ASSERT(it != clientConns_.end());
  ClientConn& conn = it->second;

  if (packet.hasFlag(tcpflags::kRst)) {
    if (conn.isProbe) {
      finishProbe(key, false);
    } else {
      finishClient(key,
                   makeError(Errc::kUnavailable, "connection refused (RST)"));
    }
    return;
  }

  if (packet.hasFlag(tcpflags::kSyn) && packet.hasFlag(tcpflags::kAck)) {
    if (conn.state != ClientState::kSynSent) return;  // duplicate SYN-ACK
    if (conn.isProbe) {
      // Half-open probe: tear down immediately, report success.
      send(makeRst(mac_, key.local, key.remote));
      finishProbe(key, true);
      return;
    }
    conn.state = ClientState::kEstablished;
    conn.timings.connected = network().sim().now();
    conn.rtoTimer.cancel();
    send(makeAck(mac_, key.local, key.remote));
    auto app = std::make_shared<AppPayload>();
    app->kind = AppPayload::Kind::kHttpRequest;
    app->request = conn.request;
    send(makeData(mac_, key.local, key.remote, conn.request.wireSize(),
                  std::move(app)));
    return;
  }

  if (packet.hasFlag(tcpflags::kPsh) && packet.app != nullptr &&
      packet.app->kind == AppPayload::Kind::kHttpResponse) {
    if (conn.state != ClientState::kEstablished) return;
    conn.timings.responseDone = network().sim().now();
    HttpExchange exchange;
    exchange.request = conn.request;
    exchange.response = packet.app->response;
    exchange.timings = conn.timings;
    send(makeFin(mac_, key.local, key.remote));
    finishClient(key, std::move(exchange));
    return;
  }
  // Bare ACK / FIN on the client side: nothing to do in this model.
}

void Host::handleServerPacket(const Packet& packet) {
  const FourTuple key{packet.dstEndpoint(), packet.srcEndpoint()};

  if (packet.hasFlag(tcpflags::kSyn) && !packet.hasFlag(tcpflags::kAck)) {
    if (listeners_.count(packet.tcpDst) == 0) {
      ++refused_;
      ES_TRACE("tcp", "%s refuses SYN to closed port %u", name().c_str(),
               packet.tcpDst);
      send(makeRst(mac_, packet.dstEndpoint(), packet.srcEndpoint()));
      return;
    }
    // New connection (or retransmitted SYN -- answer again either way).
    serverConns_.emplace(key,
                         ServerConn{packet.srcEndpoint(), packet.tcpDst, false});
    send(makeSynAck(mac_, packet.dstEndpoint(), packet.srcEndpoint()));
    return;
  }

  auto it = serverConns_.find(key);
  if (it == serverConns_.end()) {
    if (packet.hasFlag(tcpflags::kRst)) return;  // probe teardown
    if (!packet.hasFlag(tcpflags::kSyn) && !packet.hasFlag(tcpflags::kFin)) {
      // Stray segment for an unknown connection: refuse so peers don't hang.
      send(makeRst(mac_, packet.dstEndpoint(), packet.srcEndpoint()));
    }
    return;
  }

  if (packet.hasFlag(tcpflags::kRst) || packet.hasFlag(tcpflags::kFin)) {
    serverConns_.erase(it);
    return;
  }

  if (packet.hasFlag(tcpflags::kPsh) && packet.app != nullptr &&
      packet.app->kind == AppPayload::Kind::kHttpRequest) {
    if (it->second.requestSeen) return;  // duplicate data segment
    it->second.requestSeen = true;
    auto handlerIt = listeners_.find(packet.tcpDst);
    if (handlerIt == listeners_.end()) {
      // Listener closed between SYN and data.
      send(makeRst(mac_, packet.dstEndpoint(), packet.srcEndpoint()));
      serverConns_.erase(it);
      return;
    }
    const Endpoint local = packet.dstEndpoint();
    const Endpoint remote = packet.srcEndpoint();
    // The handler may respond synchronously or after scheduling compute
    // time; either way the response is sent back over this connection.
    handlerIt->second(
        packet.app->request, [this, local, remote, key](HttpResponse response) {
          auto app = std::make_shared<AppPayload>();
          app->kind = AppPayload::Kind::kHttpResponse;
          app->response = response;
          const Bytes size = response.wireSize();
          send(makeData(mac_, local, remote, size, std::move(app)));
          serverConns_.erase(key);
        });
    return;
  }
  // Bare ACK completing the handshake: nothing to record.
}

}  // namespace edgesim
