// Network node and port abstraction.
//
// A node owns numbered ports; the `Network` wires ports together with
// `Link`s.  Nodes receive packets via `receive(packet, inPort)` and send by
// asking the network to transmit out of one of their ports.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/event_domain.hpp"

namespace edgesim {

class Network;

using NodeId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr PortId kInvalidPort = 0xffffffff;

class NetNode {
 public:
  NetNode(Network& network, std::string name);
  virtual ~NetNode() = default;

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Network& network() const { return network_; }

  /// Handle a packet arriving on `inPort`.
  virtual void receive(const Packet& packet, PortId inPort) = 0;

  /// Number of ports currently wired (assigned by Network::connect).
  PortId portCount() const { return portCount_; }

  /// Time domain this node's events run in (default: the control domain).
  /// Partitioned topologies assign cluster hosts to their cluster's domain
  /// BEFORE wiring links: Network::connect uses the endpoint domains to
  /// declare the cross-domain lookahead bound (the link latency).
  DomainId domain() const { return domain_; }
  void setDomain(DomainId domain) { domain_ = domain; }

 private:
  friend class Network;
  PortId allocatePort() { return portCount_++; }

  Network& network_;
  std::string name_;
  NodeId id_ = 0;
  PortId portCount_ = 0;
  DomainId domain_ = kControlDomain;
};

}  // namespace edgesim
