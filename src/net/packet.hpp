// Packet model: Ethernet / IPv4 / TCP headers plus application payload
// metadata.  Packets are value types; switches copy-and-rewrite them, which
// mirrors OpenFlow set-field semantics exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/addr.hpp"
#include "net/http.hpp"
#include "util/units.hpp"

namespace edgesim {

enum class EtherType : std::uint16_t { kIpv4 = 0x0800 };
enum class IpProto : std::uint8_t { kTcp = 6 };

/// TCP control flags (bitmask).
namespace tcpflags {
inline constexpr std::uint8_t kSyn = 0x01;
inline constexpr std::uint8_t kAck = 0x02;
inline constexpr std::uint8_t kFin = 0x04;
inline constexpr std::uint8_t kRst = 0x08;
inline constexpr std::uint8_t kPsh = 0x10;
}  // namespace tcpflags

/// Application payload attached to a data segment.  The byte count is
/// authoritative for transfer timing; the message objects carry semantics.
struct AppPayload {
  enum class Kind { kNone, kHttpRequest, kHttpResponse };
  Kind kind = Kind::kNone;
  HttpRequest request;
  HttpResponse response;
};

struct Packet {
  // L2
  Mac ethSrc;
  Mac ethDst;
  EtherType etherType = EtherType::kIpv4;
  // L3
  Ipv4 ipSrc;
  Ipv4 ipDst;
  IpProto ipProto = IpProto::kTcp;
  std::uint8_t ttl = 64;
  // L4
  std::uint16_t tcpSrc = 0;
  std::uint16_t tcpDst = 0;
  std::uint8_t tcpFlags = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  // Payload
  Bytes payloadBytes;
  std::shared_ptr<const AppPayload> app;  // shared: switches copy packets

  Endpoint srcEndpoint() const { return Endpoint(ipSrc, tcpSrc); }
  Endpoint dstEndpoint() const { return Endpoint(ipDst, tcpDst); }

  bool hasFlag(std::uint8_t flag) const { return (tcpFlags & flag) != 0; }

  /// Total wire size used for serialisation-delay modelling
  /// (Eth 14 + IP 20 + TCP 20 + payload).
  Bytes wireSize() const { return Bytes{54} + payloadBytes; }

  std::string summary() const;
};

/// Builders for the packet shapes the TCP layer emits.
Packet makeSyn(Mac srcMac, Endpoint src, Endpoint dst);
Packet makeSynAck(Mac srcMac, Endpoint src, Endpoint dst);
Packet makeAck(Mac srcMac, Endpoint src, Endpoint dst);
Packet makeRst(Mac srcMac, Endpoint src, Endpoint dst);
Packet makeFin(Mac srcMac, Endpoint src, Endpoint dst);
Packet makeData(Mac srcMac, Endpoint src, Endpoint dst, Bytes payload,
                std::shared_ptr<const AppPayload> app);

}  // namespace edgesim
