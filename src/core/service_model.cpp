#include "core/service_model.hpp"

#include "util/strings.hpp"

namespace edgesim::core {

using yamlite::Node;

void AppProfileRegistry::add(const std::string& imageRef,
                             container::AppProfile profile) {
  profiles_[imageRef] = profile;
}

container::AppProfile AppProfileRegistry::lookup(
    const std::string& imageRef) const {
  const auto it = profiles_.find(imageRef);
  if (it != profiles_.end()) return it->second;
  container::AppProfile fallback;
  fallback.startupDelay = SimTime::millis(50);
  fallback.requestCompute = SimTime::micros(300);
  fallback.responseBytes = Bytes{1024};
  return fallback;
}

Result<ServiceModel> buildServiceModel(const AnnotatedService& annotated,
                                       Endpoint serviceAddress,
                                       const AppProfileRegistry& profiles) {
  ServiceModel model;
  model.uniqueName = annotated.uniqueName;
  model.tag = annotated.uniqueName;  // callers usually set a friendlier tag
  model.address = serviceAddress;
  model.deploymentDoc = annotated.deployment;
  model.serviceDoc = annotated.service;

  if (const Node* scheduler =
          annotated.deployment.findPath("spec.template.spec.schedulerName")) {
    if (scheduler->isScalar()) model.schedulerName = scheduler->asString();
  }

  const Node* containers =
      annotated.deployment.findPath("spec.template.spec.containers");
  if (containers == nullptr || !containers->isSequence() ||
      containers->items().empty()) {
    return makeError(Errc::kInvalidArgument, "no containers in definition");
  }

  bool first = true;
  for (const Node& containerNode : containers->items()) {
    const Node* image = containerNode.find("image");
    if (image == nullptr || !image->isScalar()) {
      return makeError(Errc::kInvalidArgument, "container without image");
    }
    const auto ref = container::ImageRef::parse(image->asString());
    if (!ref) {
      return makeError(Errc::kInvalidArgument,
                       "bad image reference: " + image->asString());
    }

    container::ContainerSpec spec;
    spec.image = *ref;
    if (const Node* name = containerNode.find("name");
        name != nullptr && name->isScalar()) {
      spec.name = name->asString();
    } else {
      spec.name = ref->repository;
    }
    spec.labels["app"] = model.uniqueName;
    spec.labels[kEdgeServiceLabel] = serviceAddress.toString();

    spec.containerPort = serviceAddress.port;
    if (const Node* ports = containerNode.find("ports");
        ports != nullptr && ports->isSequence() && !ports->items().empty()) {
      if (const Node* cp = ports->items().front().find("containerPort")) {
        const auto value = cp->asInt();
        if (!value || *value <= 0 || *value > 65535) {
          return makeError(Errc::kInvalidArgument, "bad containerPort");
        }
        spec.containerPort = static_cast<std::uint16_t>(*value);
      }
    }

    if (const Node* env = containerNode.find("env");
        env != nullptr && env->isSequence()) {
      for (const Node& entry : env->items()) {
        const Node* name = entry.find("name");
        const Node* value = entry.find("value");
        if (name != nullptr && name->isScalar() && value != nullptr &&
            value->isScalar()) {
          spec.env[name->asString()] = value->asString();
        }
      }
    }

    if (const Node* mounts = containerNode.find("volumeMounts");
        mounts != nullptr && mounts->isSequence()) {
      for (const Node& mount : mounts->items()) {
        const Node* name = mount.find("name");
        const Node* path = mount.find("mountPath");
        if (name != nullptr && name->isScalar() && path != nullptr &&
            path->isScalar()) {
          spec.volumeMounts.emplace_back(name->asString(), path->asString());
        }
      }
    }

    spec.app = profiles.lookup(ref->toString());
    if (first) {
      model.targetPort = spec.containerPort;
      first = false;
    }
    model.containers.push_back(std::move(spec));
  }

  return model;
}

}  // namespace edgesim::core
