// Global Scheduler framework (§IV-B, fig. 6).
//
// The Global Scheduler chooses the edge cluster: it returns a FAST choice
// (where to send the *current* request) and a BEST choice (where future
// requests should go).  BEST is empty when equal to FAST; a non-empty BEST
// means "on-demand deployment *without* waiting" (the current request is
// served elsewhere while the optimal cluster deploys).  An empty FAST
// forwards the request toward the cloud.
//
// Concrete schedulers are registered by name in a factory registry -- the
// C++ counterpart of the paper's dynamically loaded scheduler classes: the
// controller configuration names the scheduler to instantiate.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"
#include "util/config.hpp"
#include "util/result.hpp"

namespace edgesim::core {

/// What the Dispatcher knows about one cluster when scheduling (fig. 7:
/// "gathers a list of existing and running instances").
struct ClusterView {
  std::string name;
  /// Proximity to the requesting client; lower = closer.  Rank 0 is the
  /// optimal edge; the cloud is conventionally the largest rank.
  int distanceRank = 0;
  bool isCloud = false;
  /// Service instances currently ready in this cluster.
  std::vector<Endpoint> readyInstances;
  /// Deployment state (phases already completed, §IV-C).
  bool imageCached = false;
  bool serviceCreated = false;
  /// Remaining scheduling capacity (pods/containers).
  int freeCapacity = 1;
};

struct ScheduleRequest {
  Endpoint service;
  Ipv4 client;
  std::vector<ClusterView> clusters;
};

struct GlobalDecision {
  /// Cluster for the current request; nullopt => forward toward the cloud.
  std::optional<std::string> fast;
  /// Cluster for future requests; nullopt => same as FAST.
  std::optional<std::string> best;

  bool deploysWithoutWaiting() const {
    return best.has_value() && (!fast.has_value() || *best != *fast);
  }
};

class GlobalScheduler {
 public:
  virtual ~GlobalScheduler() = default;
  virtual const char* name() const = 0;
  virtual GlobalDecision decide(const ScheduleRequest& request) = 0;

  /// What the Dispatcher calls: drops quarantined (non-cloud) clusters from
  /// the request, then delegates to the policy's decide().  Quarantine is a
  /// degradation mechanism, not a policy, so it lives in the base class and
  /// applies uniformly to every registered scheduler.
  GlobalDecision schedule(ScheduleRequest request, SimTime now);

  /// Hide `cluster` from decisions until `until` (extends, never shortens).
  void quarantine(const std::string& cluster, SimTime until);
  bool quarantined(const std::string& cluster, SimTime now) const;

  /// Request-time availability veto consulted for every non-cloud cluster
  /// in schedule(); returning false drops the cluster from the request
  /// before decide(), exactly like quarantine.  The overload governor
  /// installs its circuit breakers here -- a tripped breaker routes around
  /// the cluster long before quarantine (which needs a full retry budget
  /// to burn) would.  Like quarantine, the filter is a degradation
  /// mechanism, not a policy, so it applies uniformly to every scheduler.
  using AvailabilityFilter =
      std::function<bool(const std::string& cluster, SimTime now)>;
  void setAvailabilityFilter(AvailabilityFilter filter) {
    availabilityFilter_ = std::move(filter);
  }

 private:
  std::map<std::string, SimTime> quarantineUntil_;
  AvailabilityFilter availabilityFilter_;
};

/// Factory registry; the controller config names the scheduler to load.
class SchedulerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<GlobalScheduler>(const Config&)>;

  /// Registry pre-populated with the built-in schedulers.
  static SchedulerRegistry& instance();

  void registerScheduler(const std::string& name, Factory factory);
  Result<std::unique_ptr<GlobalScheduler>> create(const std::string& name,
                                                  const Config& config) const;
  std::vector<std::string> names() const;

 private:
  SchedulerRegistry();
  std::map<std::string, Factory> factories_;
};

// ---- built-in schedulers --------------------------------------------------

/// "proximity": FAST = nearest cluster that can host the service (running
/// instance preferred, else deploy there and WAIT).  BEST empty.
std::unique_ptr<GlobalScheduler> makeProximityScheduler();

/// "latency-first": FAST = nearest cluster with a *running* instance (cloud
/// if none); BEST = the optimal (nearest deployable) cluster when different
/// -- i.e. on-demand deployment WITHOUT waiting (fig. 3).
std::unique_ptr<GlobalScheduler> makeLatencyFirstScheduler();

/// "cloud-fallback": never waits and never redirects mid-deployment --
/// FAST = nearest running instance or cloud; BEST = optimal cluster.
/// Differs from latency-first by refusing to wait even when nothing runs
/// anywhere (it always answers from the cloud meanwhile).
std::unique_ptr<GlobalScheduler> makeCloudFallbackScheduler();

/// "round-robin": spread successive requests across all clusters with
/// running instances; deploy (with waiting) on the nearest when none run.
std::unique_ptr<GlobalScheduler> makeRoundRobinScheduler();

// ---- Local Scheduler (fig. 6, right side) ---------------------------------
//
// Once the Global Scheduler picked a cluster, the Local Scheduler picks a
// specific instance *within* it.  On Kubernetes that role can be played by
// the cluster's own (possibly custom) pod scheduler at placement time; at
// request time the controller still chooses among the ready endpoints --
// that is this policy.

class LocalScheduler {
 public:
  virtual ~LocalScheduler() = default;
  virtual const char* name() const = 0;
  /// Pick one of `instances` (never empty) for a request from `client`.
  virtual Endpoint pick(const std::vector<Endpoint>& instances,
                        Ipv4 client) = 0;
};

/// "first": always the first ready instance (stable, cache-friendly).
std::unique_ptr<LocalScheduler> makeFirstInstanceScheduler();
/// "instance-round-robin": rotate across ready instances per service.
std::unique_ptr<LocalScheduler> makeInstanceRoundRobinScheduler();
/// "client-hash": deterministic per-client instance affinity.
std::unique_ptr<LocalScheduler> makeClientHashScheduler();

/// Local scheduler factory by name ("" or unknown -> "first").
std::unique_ptr<LocalScheduler> makeLocalScheduler(const std::string& name);

}  // namespace edgesim::core
