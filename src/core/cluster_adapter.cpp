#include "core/cluster_adapter.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace edgesim::core {

using container::ContainerId;
using container::ContainerInfo;
using container::ContainerState;

// ===========================================================================
// DockerAdapter
// ===========================================================================

DockerAdapter::DockerAdapter(Simulation& sim, std::string name,
                             int distanceRank, docker::DockerEngine& engine,
                             int capacity, SimTime mgmtRtt)
    : ClusterAdapter(std::move(name), distanceRank),
      sim_(sim),
      engine_(engine),
      capacity_(capacity),
      mgmtRtt_(mgmtRtt) {}

std::vector<const ContainerInfo*> DockerAdapter::containersOf(
    const ServiceModel& service) const {
  // Only the containers this adapter created: the EGS runtime is shared
  // with the Kubernetes kubelet (same containerd), so a label query would
  // also return pod containers that belong to the K8s cluster.
  std::vector<const ContainerInfo*> out;
  const auto it = services_.find(service.uniqueName);
  if (it == services_.end()) return out;
  for (const container::ContainerId id : it->second) {
    if (const ContainerInfo* info = engine_.inspect(id)) out.push_back(info);
  }
  return out;
}

ClusterView DockerAdapter::view(const ServiceModel& service) const {
  ClusterView view;
  view.name = name();
  view.distanceRank = distanceRank();
  view.readyInstances = readyInstances(service);
  view.imageCached = true;
  for (const auto& spec : service.containers) {
    if (!engine_.imageCached(spec.image)) {
      view.imageCached = false;
      break;
    }
  }
  view.serviceCreated = services_.count(service.uniqueName) != 0 &&
                        !services_.at(service.uniqueName).empty();
  const int used = static_cast<int>(engine_.listContainers().size());
  view.freeCapacity = std::max(0, capacity_ - used);
  return view;
}

std::vector<Endpoint> DockerAdapter::readyInstances(
    const ServiceModel& service) const {
  std::vector<Endpoint> instances;
  for (const auto* info : containersOf(service)) {
    if (info->state != ContainerState::kRunning || info->hostPort == 0) {
      continue;
    }
    if (!info->spec.app.exposesPort) continue;
    instances.emplace_back(engine_.runtime().host().ip(), info->hostPort);
  }
  return instances;
}

void DockerAdapter::pullImages(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("pull")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  auto remaining = std::make_shared<std::size_t>(service.containers.size());
  auto firstError = std::make_shared<Status>();
  for (const auto& spec : service.containers) {
    engine_.pull(spec.image, [remaining, firstError, cb](Status status) {
      if (!status.ok() && firstError->ok()) *firstError = status;
      if (--*remaining == 0) cb(*firstError);
    });
  }
}

void DockerAdapter::createService(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("create")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  auto& ids = services_[service.uniqueName];
  if (!ids.empty()) {
    sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
    return;
  }
  // Containers are created one after another, as the controller's Docker
  // client library does -- this is why a multi-container service costs
  // visibly more on Docker (fig. 12's Nginx+Py).
  auto collected = std::make_shared<std::vector<ContainerId>>();
  auto createNext = std::make_shared<std::function<void(std::size_t)>>();
  // The recursive step captures itself weakly -- a shared self-capture would
  // make the std::function own its own closure and leak the whole chain.
  // Each in-flight engine callback holds the strong reference instead.
  std::weak_ptr<std::function<void(std::size_t)>> weakNext = createNext;
  *createNext = [this, service, collected, weakNext, cb](std::size_t index) {
    if (index >= service.containers.size()) {
      services_[service.uniqueName] = *collected;
      cb(Status());
      return;
    }
    auto self = weakNext.lock();  // alive: we are being invoked through it
    engine_.createContainer(
        service.containers[index],
        [collected, self, cb, index](Result<ContainerId> result) {
          if (!result.ok()) {
            cb(result.error());
            return;
          }
          collected->push_back(result.value());
          (*self)(index + 1);
        });
  };
  (*createNext)(0);
}

void DockerAdapter::scaleUp(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("scaleup")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  const auto it = services_.find(service.uniqueName);
  if (it == services_.end() || it->second.empty()) {
    sim_.schedule(SimTime::zero(), [cb] {
      cb(makeError(Errc::kFailedPrecondition, "service not created"));
    });
    return;
  }
  // Sequential starts, mirroring per-container API calls.
  const auto ids = it->second;
  auto startNext = std::make_shared<std::function<void(std::size_t)>>();
  // Weak self-capture for the same reason as in createService above.
  std::weak_ptr<std::function<void(std::size_t)>> weakNext = startNext;
  *startNext = [this, ids, weakNext, cb](std::size_t index) {
    if (index >= ids.size()) {
      cb(Status());
      return;
    }
    auto self = weakNext.lock();
    const ContainerId id = ids[index];
    const ContainerInfo* info = engine_.inspect(id);
    if (info != nullptr && (info->state == ContainerState::kRunning ||
                            info->state == ContainerState::kStarting)) {
      (*self)(index + 1);  // already up (idempotent scale-up)
      return;
    }
    engine_.startContainer(id, [self, cb, index](Status status) {
      if (!status.ok()) {
        cb(status);
        return;
      }
      (*self)(index + 1);
    });
  };
  (*startNext)(0);
}

void DockerAdapter::scaleDown(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  const auto it = services_.find(service.uniqueName);
  if (it == services_.end() || it->second.empty()) {
    sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
    return;
  }
  auto remaining = std::make_shared<std::size_t>(it->second.size());
  for (const ContainerId id : it->second) {
    const ContainerInfo* info = engine_.inspect(id);
    if (info == nullptr || info->state != ContainerState::kRunning) {
      if (--*remaining == 0) cb(Status());
      continue;
    }
    engine_.stopContainer(id, [remaining, cb](Status) {
      if (--*remaining == 0) cb(Status());
    });
  }
}

void DockerAdapter::removeService(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  const auto it = services_.find(service.uniqueName);
  if (it == services_.end()) {
    sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
    return;
  }
  const auto ids = it->second;
  services_.erase(it);
  auto remaining = std::make_shared<std::size_t>(ids.size());
  for (const ContainerId id : ids) {
    engine_.stopContainer(id, [this, id, remaining, cb](Status) {
      engine_.removeContainer(id, [remaining, cb](Status) {
        if (--*remaining == 0) cb(Status());
      });
    });
  }
}

void DockerAdapter::deleteImages(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto remaining = std::make_shared<std::size_t>(service.containers.size());
  auto firstError = std::make_shared<Status>();
  for (const auto& spec : service.containers) {
    engine_.removeImage(spec.image,
                        [remaining, firstError, cb](Status status) {
                          if (!status.ok() && firstError->ok()) {
                            *firstError = status;
                          }
                          if (--*remaining == 0) cb(*firstError);
                        });
  }
}

void DockerAdapter::probeInstance(Endpoint instance, ProbeCallback cb) {
  ES_ASSERT(cb != nullptr);
  // Management-plane probe: one RTT to the node, then an open-port check.
  sim_.schedule(mgmtRtt_, [this, instance, cb] {
    cb(engine_.runtime().host().ip() == instance.ip &&
       engine_.runtime().host().listening(instance.port));
  });
}

// ===========================================================================
// K8sAdapter
// ===========================================================================

K8sAdapter::K8sAdapter(Simulation& sim, std::string name, int distanceRank,
                       k8s::K8sCluster& cluster,
                       std::vector<k8s::NodeHandle> nodes, SimTime mgmtRtt)
    : ClusterAdapter(std::move(name), distanceRank),
      sim_(sim),
      cluster_(cluster),
      nodes_(std::move(nodes)),
      mgmtRtt_(mgmtRtt) {}

k8s::Deployment K8sAdapter::toDeployment(const ServiceModel& service,
                                         int replicas) {
  k8s::Deployment deployment;
  deployment.meta.name = service.uniqueName;
  deployment.meta.labels = {{"app", service.uniqueName},
                            {kEdgeServiceLabel, service.address.toString()}};
  deployment.spec.replicas = replicas;
  deployment.spec.selector = deployment.meta.labels;
  deployment.spec.podTemplate.labels = deployment.meta.labels;
  deployment.spec.podTemplate.spec.containers = service.containers;
  deployment.spec.podTemplate.spec.schedulerName = service.schedulerName;
  return deployment;
}

k8s::Service K8sAdapter::toService(const ServiceModel& service) {
  k8s::Service svc;
  svc.meta.name = service.uniqueName;
  svc.meta.labels = {{"app", service.uniqueName},
                     {kEdgeServiceLabel, service.address.toString()}};
  svc.spec.selector = svc.meta.labels;
  svc.spec.ports.push_back(
      k8s::ServicePort{service.address.port, service.targetPort, "TCP"});
  return svc;
}

ClusterView K8sAdapter::view(const ServiceModel& service) const {
  ClusterView view;
  view.name = name();
  view.distanceRank = distanceRank();
  view.readyInstances = readyInstances(service);
  view.imageCached = true;
  for (const auto& spec : service.containers) {
    bool cachedSomewhere = false;
    for (const auto& node : nodes_) {
      if (node.runtime->store().hasImage(spec.image)) {
        cachedSomewhere = true;
        break;
      }
    }
    if (!cachedSomewhere) {
      view.imageCached = false;
      break;
    }
  }
  view.serviceCreated =
      cluster_.deployment(service.uniqueName) != nullptr;
  int capacity = 0;
  for (const auto& node : nodes_) capacity += node.podCapacity;
  view.freeCapacity =
      std::max(0, capacity - static_cast<int>(
                                 cluster_.api().pods().size()));
  return view;
}

std::vector<Endpoint> K8sAdapter::readyInstances(
    const ServiceModel& service) const {
  return cluster_.readyEndpoints(service.uniqueName);
}

void K8sAdapter::pullImages(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("pull")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  // Pre-pull on every node so the kubelet's pull is a cache hit wherever
  // the pod lands (single-node clusters: exactly one pull).
  auto remaining =
      std::make_shared<std::size_t>(service.containers.size() * nodes_.size());
  auto firstError = std::make_shared<Status>();
  for (const auto& node : nodes_) {
    for (const auto& spec : service.containers) {
      if (node.registry == nullptr) {
        if (--*remaining == 0) cb(*firstError);
        continue;
      }
      node.puller->pull(*node.registry, spec.image,
                        [remaining, firstError, cb](Status status) {
                          if (!status.ok() && firstError->ok()) {
                            *firstError = status;
                          }
                          if (--*remaining == 0) cb(*firstError);
                        });
    }
  }
}

void K8sAdapter::createService(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("create")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  // Deployment (replicas=0, "scale to zero") + Service, per the annotator.
  auto remaining = std::make_shared<int>(2);
  auto firstError = std::make_shared<Status>();
  auto done = [remaining, firstError, cb](Status status) {
    if (!status.ok() && firstError->ok()) *firstError = status;
    if (--*remaining == 0) cb(*firstError);
  };
  cluster_.applyDeployment(toDeployment(service, 0), done);
  cluster_.applyService(toService(service), done);
}

void K8sAdapter::scaleUp(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  if (auto injected = checkRpcFault("scaleup")) {
    sim_.schedule(mgmtRtt_ + injected->stall,
                  [cb, error = injected->error] { cb(error); });
    return;
  }
  const k8s::Deployment* deployment =
      cluster_.deployment(service.uniqueName);
  if (deployment == nullptr) {
    sim_.schedule(SimTime::zero(), [cb] {
      cb(makeError(Errc::kFailedPrecondition, "deployment not created"));
    });
    return;
  }
  const int target = std::max(1, deployment->spec.replicas);
  cluster_.scaleDeployment(service.uniqueName, target, std::move(cb));
}

void K8sAdapter::scaleDown(const ServiceModel& service, Callback cb) {
  cluster_.scaleDeployment(service.uniqueName, 0, std::move(cb));
}

void K8sAdapter::removeService(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  auto remaining = std::make_shared<int>(2);
  auto done = [remaining, cb](Status) {
    if (--*remaining == 0) cb(Status());
  };
  cluster_.deleteDeployment(service.uniqueName, done);
  cluster_.deleteService(service.uniqueName, done);
}

void K8sAdapter::deleteImages(const ServiceModel& service, Callback cb) {
  ES_ASSERT(cb != nullptr);
  sim_.schedule(SimTime::zero(), [this, service, cb] {
    for (const auto& node : nodes_) {
      for (const auto& spec : service.containers) {
        node.runtime->store().removeImage(spec.image);
      }
    }
    cb(Status());
  });
}

void K8sAdapter::probeInstance(Endpoint instance, ProbeCallback cb) {
  ES_ASSERT(cb != nullptr);
  sim_.schedule(mgmtRtt_, [this, instance, cb] {
    for (const auto& node : nodes_) {
      if (node.host->ip() == instance.ip) {
        cb(node.host->listening(instance.port));
        return;
      }
    }
    cb(false);
  });
}

// ===========================================================================
// CloudAdapter
// ===========================================================================

CloudAdapter::CloudAdapter(Simulation& sim, std::string name,
                           int distanceRank, Host& cloudHost,
                           const AppProfileRegistry& profiles, SimTime mgmtRtt)
    : ClusterAdapter(std::move(name), distanceRank),
      sim_(sim),
      host_(cloudHost),
      profiles_(profiles),
      mgmtRtt_(mgmtRtt),
      rng_(sim.rng().fork(0xC10CD)) {}

Endpoint CloudAdapter::hostService(const ServiceModel& service) {
  const auto it = instances_.find(service.uniqueName);
  if (it != instances_.end()) return it->second;

  const Endpoint endpoint(host_.ip(), nextPort_++);
  // The primary container's profile defines the cloud instance's behaviour
  // (same binary, beefier machine -- modelled as identical compute).
  ES_ASSERT(!service.containers.empty());
  const container::AppProfile app = service.containers.front().app;
  auto requestRng = std::make_shared<Rng>(rng_.fork(endpoint.port));
  host_.listen(endpoint.port, [this, app, requestRng](const HttpRequest&,
                                                      HttpRespond respond) {
    SimTime compute = app.requestCompute;
    if (app.computeJitterSigma > 0.0) {
      compute =
          compute.scaled(requestRng->lognormal(0.0, app.computeJitterSigma));
    }
    sim_.schedule(compute, [app, respond = std::move(respond)] {
      HttpResponse response;
      response.status = 200;
      response.payload = app.responseBytes;
      respond(response);
    });
  });
  instances_[service.uniqueName] = endpoint;
  return endpoint;
}

ClusterView CloudAdapter::view(const ServiceModel& service) const {
  ClusterView view;
  view.name = name();
  view.distanceRank = distanceRank();
  view.isCloud = true;
  view.readyInstances = readyInstances(service);
  view.imageCached = true;
  view.serviceCreated = true;
  view.freeCapacity = 1000000;  // effectively unlimited
  return view;
}

std::vector<Endpoint> CloudAdapter::readyInstances(
    const ServiceModel& service) const {
  const auto it = instances_.find(service.uniqueName);
  if (it == instances_.end()) return {};
  return {it->second};
}

void CloudAdapter::finish(Callback cb) {
  sim_.schedule(SimTime::zero(), [cb] { cb(Status()); });
}

void CloudAdapter::pullImages(const ServiceModel&, Callback cb) { finish(cb); }
void CloudAdapter::createService(const ServiceModel&, Callback cb) {
  finish(cb);
}
void CloudAdapter::scaleUp(const ServiceModel&, Callback cb) { finish(cb); }
void CloudAdapter::scaleDown(const ServiceModel&, Callback cb) { finish(cb); }
void CloudAdapter::removeService(const ServiceModel&, Callback cb) {
  finish(cb);
}
void CloudAdapter::deleteImages(const ServiceModel&, Callback cb) {
  finish(cb);
}

void CloudAdapter::probeInstance(Endpoint instance, ProbeCallback cb) {
  sim_.schedule(mgmtRtt_, [this, instance, cb] {
    cb(host_.ip() == instance.ip && host_.listening(instance.port));
  });
}

}  // namespace edgesim::core
