// Testbed: the paper's evaluation topology (fig. 8) in one object.
//
//   clients (20x Raspberry Pi)  --1 Gbps-->  OVS switch  --10 Gbps--> EGS
//                                                |-- WAN --> cloud host
//
// The Edge Gateway Server (EGS) hosts BOTH cluster types over one shared
// containerd runtime, exactly like the paper's testbed: a Docker engine and
// a single-node Kubernetes cluster.  An optional second, farther edge
// cluster supports the "on-demand deployment without waiting" scenario
// (fig. 3).  The SDN controller, switch, registries and the Table I service
// catalogue are wired and ready; benches/examples only pick services,
// clusters, and workloads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/serverless_adapter.hpp"
#include "core/service_catalog.hpp"
#include "metrics/recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/slo_watchdog.hpp"
#include "telemetry/snapshot_writer.hpp"
#include "trace/trace_recorder.hpp"

namespace edgesim::core {

enum class ClusterMode { kDockerOnly, kK8sOnly, kBoth, kServerlessOnly };

/// How the simulation's event queue is partitioned into time domains.
enum class DomainPartition {
  /// Everything in the control domain -- the historical single-queue
  /// engine, bit-identical to the determinism goldens.
  kSingle,
  /// Each edge site (EGS, far edge) gets its own EventDomain: cluster
  /// substrate (containerd, Docker engine, kubelets, reconcile loops) and
  /// the site's host advance there, with the site links' latencies as the
  /// cross-domain lookahead.  Clients, switch, controller, and cloud stay
  /// in the control domain.  Sequential drivers (run/runUntil) execute a
  /// canonical global order; parallel advance is for partition-local
  /// workloads (see DomainScheduler).
  kPerCluster,
};

struct TestbedOptions {
  std::uint64_t seed = 1;
  std::size_t clientCount = 20;
  ClusterMode clusterMode = ClusterMode::kBoth;
  DomainPartition domainPartition = DomainPartition::kSingle;
  /// Use the in-network private registry instead of the public one.
  bool privateRegistry = false;
  /// Add a second, farther edge cluster (Docker) for fig. 3 scenarios.
  bool farEdge = false;
  /// Add a Wasm-style serverless runtime on the EGS next to the container
  /// clusters (§VIII future work); implied by kServerlessOnly.
  bool serverlessEdge = false;
  /// Per-request tracing (src/trace).  Cheap (plain vector appends in the
  /// single-threaded sim); disable only for huge batch sweeps.
  bool tracing = true;
  /// Hot-path telemetry (src/telemetry).  The registry itself is always
  /// owned by the testbed; this flag controls whether the controller,
  /// dispatcher, FlowMemory and client callbacks instrument into it.
  bool telemetry = true;
  /// Periodic snapshot export (sim-time interval); zero = no writer.  Each
  /// tick dumps `snapshot_NNNNNN.json` + `.prom` under `snapshotDir`.
  SimTime snapshotPeriod = SimTime::zero();
  std::string snapshotDir = "telemetry-out";
  /// Storage caps (0 = unbounded, the historical default): Recorder record
  /// / per-series sample count, and total trace events (spans + instants).
  /// Drops are counted and exported as edgesim_{recorder,trace}_dropped_events.
  std::size_t recorderMaxRecords = 0;
  std::size_t recorderMaxSamplesPerSeries = 0;
  std::size_t traceMaxEvents = 0;
  /// Client <-> switch link (RPi, 1 Gbps).
  SimTime clientLatency = SimTime::micros(300);
  BitRate clientBandwidth = BitRate{1000u * 1000 * 1000};
  /// Switch <-> EGS link (10 Gbps).
  SimTime egsLatency = SimTime::micros(150);
  BitRate egsBandwidth = BitRate{10u * 1000 * 1000 * 1000};
  /// Switch <-> far edge link.
  SimTime farEdgeLatency = SimTime::millis(5);
  /// Switch <-> cloud WAN link.
  SimTime cloudLatency = SimTime::millis(25);
  BitRate cloudBandwidth = BitRate{1000u * 1000 * 1000};
  ControllerOptions controller;
  k8s::ControlPlaneParams k8sParams;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // ---- access -------------------------------------------------------------
  Simulation& sim() { return sim_; }
  Network& net() { return *net_; }
  EdgeController& controller() { return *controller_; }
  /// The controller's overload governor, or nullptr when
  /// options.controller.overload.enabled was false.
  overload::OverloadGovernor* governor() { return controller_->governor(); }
  ServiceCatalog& catalog() { return catalog_; }
  metrics::Recorder& recorder() { return recorder_; }
  trace::TraceRecorder& trace() { return trace_; }
  /// Live metrics registry; always usable (series exist only when
  /// options.telemetry was on or someone registered their own).
  telemetry::MetricsRegistry& telemetry() { return telemetry_; }
  /// Snapshot writer, or nullptr when options.snapshotPeriod was zero.
  telemetry::SnapshotWriter* snapshotWriter() { return snapshotWriter_.get(); }
  /// Lazily-created SLO watchdog, wired to the registry + trace recorder
  /// and attached to the controller (cold resolves feed its worst-request
  /// table).  Call addBudget()/start() on it before traffic.
  telemetry::SloWatchdog& watchdog();
  openflow::OpenFlowSwitch& ovs() { return *switch_; }
  Host& client(std::size_t index) { return *clients_.at(index); }
  std::size_t clientCount() const { return clients_.size(); }
  Host& egs() { return *egs_; }
  Host& cloud() { return *cloud_; }
  container::LayerStore& egsStore() { return *egsStore_; }
  container::Registry& registry() { return *activeRegistry_; }
  DockerAdapter* dockerAdapter() { return dockerAdapter_; }
  K8sAdapter* k8sAdapter() { return k8sAdapter_; }
  DockerAdapter* farEdgeAdapter() { return farAdapter_; }
  CloudAdapter* cloudAdapter() { return cloudAdapter_; }
  ServerlessAdapter* serverlessAdapter() { return serverlessAdapter_; }
  serverless::FaasRuntime* faasRuntime() { return faasRuntime_.get(); }
  k8s::K8sCluster* k8sCluster() { return k8sCluster_.get(); }
  docker::DockerEngine& dockerEngine() { return *dockerEngine_; }

  // ---- convenience ----------------------------------------------------------
  /// Register a catalogue service at `address` (tag = catalogue key).
  Result<const ServiceModel*> registerCatalogService(
      const std::string& key, Endpoint address);

  /// Pre-seed the EGS layer store with a catalogue entry's images.
  void warmImageCache(const std::string& key);

  /// Thread `plan` through every fault-injection site of the testbed:
  /// cluster adapters (kClusterRpc), image pullers (kRegistryPull, targets
  /// "egs" / "far-edge"), Docker engines (kContainerCreate/kContainerStart)
  /// and kubelets (kContainerStart).  `plan` must outlive the testbed.
  void injectFaults(fault::FaultPlan& plan);

  /// Issue a measured HTTP request from client `clientIndex` to `address`;
  /// the result lands in the recorder under `series` and is forwarded to
  /// `cb` if provided.
  void request(std::size_t clientIndex, Endpoint address,
               const std::string& series, HttpMethod method = HttpMethod::kGet,
               Bytes payload = Bytes{0}, Host::HttpCallback cb = nullptr);

  /// Issue a request shaped like catalogue entry `key` (method + payload).
  void requestCatalog(std::size_t clientIndex, const std::string& key,
                      Endpoint address, const std::string& series,
                      Host::HttpCallback cb = nullptr);

 private:
  TestbedOptions options_;
  Simulation sim_;
  std::unique_ptr<Network> net_;
  ServiceCatalog catalog_;
  metrics::Recorder recorder_;
  trace::TraceRecorder trace_;
  telemetry::MetricsRegistry telemetry_;
  std::unique_ptr<telemetry::SnapshotWriter> snapshotWriter_;
  std::unique_ptr<telemetry::SloWatchdog> watchdog_;
  // Client-side handles (nullptr when options.telemetry is off).
  telemetry::Histogram* clientHist_ = nullptr;
  telemetry::Counter* clientOk_ = nullptr;
  telemetry::Counter* clientError_ = nullptr;

  std::vector<std::unique_ptr<Host>> clients_;
  std::unique_ptr<Host> egs_;
  std::unique_ptr<Host> farEdgeHost_;
  std::unique_ptr<Host> cloud_;
  std::unique_ptr<openflow::OpenFlowSwitch> switch_;

  std::unique_ptr<container::Registry> publicRegistry_;
  std::unique_ptr<container::Registry> privateRegistry_;
  container::Registry* activeRegistry_ = nullptr;

  std::unique_ptr<container::LayerStore> egsStore_;
  std::unique_ptr<container::ContainerdRuntime> egsRuntime_;
  std::unique_ptr<container::ImagePuller> egsPuller_;
  std::unique_ptr<docker::DockerEngine> dockerEngine_;
  std::unique_ptr<k8s::K8sCluster> k8sCluster_;

  std::unique_ptr<container::LayerStore> farStore_;
  std::unique_ptr<container::ContainerdRuntime> farRuntime_;
  std::unique_ptr<container::ImagePuller> farPuller_;
  std::unique_ptr<docker::DockerEngine> farEngine_;

  std::unique_ptr<serverless::FaasRuntime> faasRuntime_;

  std::vector<std::unique_ptr<ClusterAdapter>> adapters_;
  DockerAdapter* dockerAdapter_ = nullptr;
  K8sAdapter* k8sAdapter_ = nullptr;
  DockerAdapter* farAdapter_ = nullptr;
  CloudAdapter* cloudAdapter_ = nullptr;
  ServerlessAdapter* serverlessAdapter_ = nullptr;

  std::unique_ptr<EdgeController> controller_;
};

}  // namespace edgesim::core
