// Anti-entropy rule reconciliation: periodically prove that the switch
// flow tables agree with FlowMemory's intended steering state, and repair
// the drift when they do not.
//
// The paper's transparency guarantee (§V) silently assumes the OpenFlow
// control channel is reliable: every FlowMod lands and every FlowRemoved is
// delivered.  Under control-channel loss, outage windows, or a switch
// restart (src/fault kControlChannel* / kSwitchRestart) that assumption
// breaks and the controller's view diverges from reality.  The acked
// FlowMod path (EdgeController) repairs *individual* lost installs; this
// sweeper is the backstop for everything else -- restarts that wipe whole
// tables, FlowRemoved notifications that never arrived, deletes that got
// dropped.
//
// One sweep, per attached switch:
//   1. snapshot the actual table via requestFlowStats (itself lossy: a
//      sweep deadline bounds the wait and lost replies are counted);
//   2. diff redirect entries (priority >= kRedirectPriority) against the
//      entries FlowMemory implies, keyed by (priority, match, actions);
//   3. re-install missing rules through the normal (tracked) install path,
//      refresh the memorized flow's last-seen in lieu of the FlowRemoved
//      that was lost with them, and delete orphan entries no memorized
//      flow explains.
//
// Invariants (see DESIGN.md §14):
//   * sweeps only shrink drift: repairs go through the same install /
//     remove primitives as normal operation, so a fault-free sweep over a
//     converged table is a pure no-op;
//   * after faults stop, tables converge to the intended state within two
//     sweeps (one to observe, one to confirm -- property-tested);
//   * off by default (reconcile_enabled / reconcile_period_ms), and a
//     disabled reconciler contributes zero events, series, or RNG draws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"

namespace edgesim::core {

struct ReconcilerOptions {
  /// Sweep period.
  SimTime period = SimTime::seconds(1.0);
  /// Give up on a sweep's flow-stats round trips after this long; switches
  /// that did not answer are skipped (counted as stats timeouts).
  SimTime sweepTimeout = SimTime::millis(250);
};

class RuleReconciler {
 public:
  /// Plain counters mirroring the edgesim_reconcile_* series, readable
  /// without a registry (tests, benches).
  struct Stats {
    std::uint64_t sweeps = 0;
    std::uint64_t driftMissing = 0;    // memorized flows with lost entries
    std::uint64_t driftOrphans = 0;    // switch entries nothing explains
    std::uint64_t flowsReinstalled = 0;
    std::uint64_t orphansDeleted = 0;
    std::uint64_t flowRemovedResynthesized = 0;
    std::uint64_t statsTimeouts = 0;   // switches that missed the deadline
  };

  RuleReconciler(Simulation& sim, EdgeController& controller,
                 ReconcilerOptions options,
                 telemetry::MetricsRegistry* telemetry,
                 trace::TraceRecorder* trace);
  ~RuleReconciler();

  RuleReconciler(const RuleReconciler&) = delete;
  RuleReconciler& operator=(const RuleReconciler&) = delete;

  /// Arm the periodic sweep (idempotent).
  void start();
  void stop();

  /// Run one sweep immediately (tests / benches); `done` fires when the
  /// sweep settles -- all stats replies processed or the deadline hit.
  /// No-ops (done fires inline) while another sweep is still collecting.
  void sweepNow(std::function<void()> done = nullptr);

  const Stats& stats() const { return stats_; }
  const ReconcilerOptions& options() const { return options_; }

 private:
  struct SweepState {
    std::size_t remaining = 0;
    bool finished = false;
    SimTime startedAt;
    std::uint64_t missing = 0;  // this sweep's drift, for the trace span
    std::uint64_t orphans = 0;
    trace::RequestId rid = 0;
    trace::SpanId span = 0;
    EventHandle deadline;
    std::function<void()> done;
  };

  void sweep(std::function<void()> done);
  void processSwitch(openflow::OpenFlowSwitch& sw,
                     const std::vector<openflow::FlowEntry>& entries,
                     SweepState& state);
  void finishSweep(const std::shared_ptr<SweepState>& state);
  /// Diff key: redirect entries are identified by shape, not cookie --
  /// cookies change on every (re)install, the steering they encode must not.
  static std::string entryKey(const openflow::FlowEntry& entry);

  Simulation& sim_;
  EdgeController& controller_;
  ReconcilerOptions options_;
  trace::TraceRecorder* trace_;
  PeriodicTimer timer_;
  bool sweeping_ = false;
  Stats stats_;
  // Series registered eagerly: the reconciler only exists when enabled, so
  // fault-free default runs never see these names.
  telemetry::Counter* sweepsCtr_ = nullptr;
  telemetry::Counter* driftMissingCtr_ = nullptr;
  telemetry::Counter* driftOrphanCtr_ = nullptr;
  telemetry::Counter* reinstalledCtr_ = nullptr;
  telemetry::Counter* orphansDeletedCtr_ = nullptr;
  telemetry::Counter* resynthCtr_ = nullptr;
  telemetry::Counter* statsTimeoutCtr_ = nullptr;
  telemetry::Histogram* sweepHist_ = nullptr;
};

}  // namespace edgesim::core
