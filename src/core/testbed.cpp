#include "core/testbed.hpp"

#include <optional>

#include "util/strings.hpp"

namespace edgesim::core {

Testbed::Testbed(TestbedOptions options)
    : options_(options), sim_(options.seed) {
  trace_.setEnabled(options_.tracing);
  recorder_.setCapacity(options_.recorderMaxRecords,
                        options_.recorderMaxSamplesPerSeries);
  trace_.setCapacity(options_.traceMaxEvents);
  if (options_.telemetry) {
    clientHist_ = &telemetry_.histogram("edgesim_client_request_seconds");
    clientOk_ = &telemetry_.counter("edgesim_client_requests_total",
                                    {{"outcome", "ok"}});
    clientError_ = &telemetry_.counter("edgesim_client_requests_total",
                                       {{"outcome", "error"}});
    // Buffer-cap drops are polled at snapshot time rather than pushed on
    // the recording paths.
    telemetry_.gaugeFn("edgesim_recorder_dropped_events", {}, [this] {
      return static_cast<double>(recorder_.droppedEvents());
    });
    telemetry_.gaugeFn("edgesim_trace_dropped_events", {}, [this] {
      return static_cast<double>(trace_.droppedEvents());
    });
  }
  net_ = std::make_unique<Network>(sim_);

  // ---- time domains ---------------------------------------------------------
  // Per-cluster partition: each edge site's substrate and host advance in
  // their own EventDomain; the site link latencies (egsLatency,
  // farEdgeLatency) become the cross-domain lookahead bounds when the links
  // are wired below.  kSingle leaves everything in the control domain --
  // the bit-identical historical engine.
  const bool perCluster =
      options_.domainPartition == DomainPartition::kPerCluster;
  const DomainId egsDomain = perCluster ? sim_.addDomain("egs")
                                        : kControlDomain;
  const DomainId farDomain = (perCluster && options_.farEdge)
                                 ? sim_.addDomain("far-edge")
                                 : kControlDomain;

  // ---- hosts ---------------------------------------------------------------
  for (std::size_t i = 0; i < options_.clientCount; ++i) {
    clients_.push_back(std::make_unique<Host>(
        *net_, strprintf("rpi-%02zu", i),
        Ipv4(10, 0, 2, static_cast<std::uint8_t>(i + 1)),
        Mac(0x020000000000ULL + i)));
  }
  egs_ = std::make_unique<Host>(*net_, "egs", Ipv4(10, 0, 1, 1), Mac(0x10));
  egs_->setDomain(egsDomain);  // before links: connect() reads endpoint domains
  cloud_ = std::make_unique<Host>(*net_, "cloud", Ipv4(198, 51, 100, 1),
                                  Mac(0xC0));
  switch_ = std::make_unique<openflow::OpenFlowSwitch>(*net_, "ovs");
  switch_->setTelemetry(options_.telemetry ? &telemetry_ : nullptr, &trace_);

  // ---- links ---------------------------------------------------------------
  SwitchTopology topo;
  for (auto& client : clients_) {
    const auto ports = net_->connect(*client, *switch_, options_.clientLatency,
                                     options_.clientBandwidth);
    topo.hostPorts[client->ip()] = ports.portB;
  }
  const auto egsPorts = net_->connect(*switch_, *egs_, options_.egsLatency,
                                      options_.egsBandwidth);
  topo.hostPorts[egs_->ip()] = egsPorts.portA;
  const auto cloudPorts = net_->connect(*switch_, *cloud_,
                                        options_.cloudLatency,
                                        options_.cloudBandwidth);
  topo.hostPorts[cloud_->ip()] = cloudPorts.portA;
  topo.uplinkPort = cloudPorts.portA;

  // ---- registries ------------------------------------------------------------
  publicRegistry_ = std::make_unique<container::Registry>(
      "docker-hub", container::publicRegistryProfile());
  privateRegistry_ = std::make_unique<container::Registry>(
      "private-registry", container::privateRegistryProfile());
  catalog_.publishImages(*publicRegistry_);
  catalog_.publishImages(*privateRegistry_);
  activeRegistry_ =
      options_.privateRegistry ? privateRegistry_.get() : publicRegistry_.get();

  // ---- EGS: shared containerd under Docker AND Kubernetes -------------------
  {
    // Per-cluster partition: build the whole EGS substrate with the EGS
    // domain active, so every setup event -- and, via EventDomain::current,
    // every event those events schedule (reconcile re-arms, pull
    // completions, kubelet syncs) -- stays cluster-local.
    std::optional<Simulation::DomainScope> egsScope;
    if (perCluster) egsScope.emplace(sim_, egsDomain);

    egsStore_ = std::make_unique<container::LayerStore>();
    egsRuntime_ = std::make_unique<container::ContainerdRuntime>(
        sim_, *egs_, *egsStore_);
    egsPuller_ = std::make_unique<container::ImagePuller>(sim_, *egsStore_);
    dockerEngine_ = std::make_unique<docker::DockerEngine>(
        sim_, *egsRuntime_, *egsPuller_, activeRegistry_);

    if (options_.clusterMode == ClusterMode::kDockerOnly ||
        options_.clusterMode == ClusterMode::kBoth) {
      auto adapter = std::make_unique<DockerAdapter>(
          sim_, "docker-egs", /*distanceRank=*/0, *dockerEngine_);
      adapter->setDomain(dockerEngine_->homeDomain());
      dockerAdapter_ = adapter.get();
      adapters_.push_back(std::move(adapter));
    }
    if (options_.serverlessEdge ||
        options_.clusterMode == ClusterMode::kServerlessOnly) {
      faasRuntime_ = std::make_unique<serverless::FaasRuntime>(sim_, *egs_);
      auto adapter = std::make_unique<ServerlessAdapter>(
          sim_, "faas-egs", /*distanceRank=*/0, *faasRuntime_);
      adapter->setDomain(egsDomain);
      serverlessAdapter_ = adapter.get();
      adapters_.push_back(std::move(adapter));
    }
    if (options_.clusterMode == ClusterMode::kK8sOnly ||
        options_.clusterMode == ClusterMode::kBoth) {
      k8s::NodeHandle node;
      node.name = "egs";
      node.host = egs_.get();
      node.runtime = egsRuntime_.get();
      node.puller = egsPuller_.get();
      node.registry = activeRegistry_;
      k8sCluster_ = std::make_unique<k8s::K8sCluster>(
          sim_, options_.k8sParams, std::vector<k8s::NodeHandle>{node});
      auto adapter = std::make_unique<K8sAdapter>(
          sim_, "k8s-egs", /*distanceRank=*/0, *k8sCluster_,
          std::vector<k8s::NodeHandle>{node});
      adapter->setDomain(k8sCluster_->homeDomain());
      k8sAdapter_ = adapter.get();
      adapters_.push_back(std::move(adapter));
    }
  }

  // ---- optional far edge (fig. 3: without-waiting scenarios) ----------------
  if (options_.farEdge) {
    farEdgeHost_ = std::make_unique<Host>(*net_, "far-edge",
                                          Ipv4(10, 0, 3, 1), Mac(0x20));
    farEdgeHost_->setDomain(farDomain);
    const auto farPorts = net_->connect(*switch_, *farEdgeHost_,
                                        options_.farEdgeLatency,
                                        options_.clientBandwidth);
    topo.hostPorts[farEdgeHost_->ip()] = farPorts.portA;
    std::optional<Simulation::DomainScope> farScope;
    if (perCluster) farScope.emplace(sim_, farDomain);
    farStore_ = std::make_unique<container::LayerStore>();
    farRuntime_ = std::make_unique<container::ContainerdRuntime>(
        sim_, *farEdgeHost_, *farStore_);
    farPuller_ = std::make_unique<container::ImagePuller>(sim_, *farStore_);
    farEngine_ = std::make_unique<docker::DockerEngine>(
        sim_, *farRuntime_, *farPuller_, activeRegistry_);
    auto adapter = std::make_unique<DockerAdapter>(
        sim_, "docker-far", /*distanceRank=*/1, *farEngine_);
    adapter->setDomain(farEngine_->homeDomain());
    farAdapter_ = adapter.get();
    adapters_.push_back(std::move(adapter));
  }

  // ---- cloud -----------------------------------------------------------------
  auto cloudAdapter = std::make_unique<CloudAdapter>(
      sim_, "cloud", /*distanceRank=*/100, *cloud_, catalog_.profiles());
  cloudAdapter_ = cloudAdapter.get();
  adapters_.push_back(std::move(cloudAdapter));

  // ---- controller --------------------------------------------------------------
  std::vector<ClusterAdapter*> adapterPtrs;
  for (const auto& adapter : adapters_) adapterPtrs.push_back(adapter.get());
  controller_ = std::make_unique<EdgeController>(
      sim_, options_.controller, adapterPtrs, catalog_.profiles(), &recorder_,
      &trace_, options_.telemetry ? &telemetry_ : nullptr);
  controller_->attachSwitch(*switch_, std::move(topo));

  // ---- telemetry export ------------------------------------------------------
  if (options_.snapshotPeriod > SimTime::zero()) {
    telemetry::SnapshotWriterOptions writerOptions;
    writerOptions.dir = options_.snapshotDir;
    writerOptions.period = options_.snapshotPeriod;
    snapshotWriter_ = std::make_unique<telemetry::SnapshotWriter>(
        sim_, telemetry_, writerOptions);
    snapshotWriter_->start();
  }
}

Testbed::~Testbed() = default;

telemetry::SloWatchdog& Testbed::watchdog() {
  if (watchdog_ == nullptr) {
    watchdog_ = std::make_unique<telemetry::SloWatchdog>(
        sim_, telemetry_, options_.tracing ? &trace_ : nullptr);
    controller_->setSloWatchdog(watchdog_.get());
  }
  return *watchdog_;
}

Result<const ServiceModel*> Testbed::registerCatalogService(
    const std::string& key, Endpoint address) {
  const CatalogEntry& entry = catalog_.entry(key);
  return controller_->registerService(entry.yaml, address, key);
}

void Testbed::warmImageCache(const std::string& key) {
  catalog_.seedImages(key, *egsStore_);
  if (farStore_ != nullptr) catalog_.seedImages(key, *farStore_);
}

void Testbed::injectFaults(fault::FaultPlan& plan) {
  for (auto& adapter : adapters_) adapter->setFaultPlan(&plan);
  if (switch_ != nullptr) switch_->setFaultPlan(&plan);
  if (egsPuller_ != nullptr) egsPuller_->setFaultPlan(&plan, "egs");
  if (farPuller_ != nullptr) farPuller_->setFaultPlan(&plan, "far-edge");
  if (dockerEngine_ != nullptr) dockerEngine_->setFaultPlan(&plan);
  if (farEngine_ != nullptr) farEngine_->setFaultPlan(&plan);
  if (k8sCluster_ != nullptr) {
    for (k8s::Kubelet* kubelet : k8sCluster_->kubelets()) {
      kubelet->setFaultPlan(&plan);
    }
  }
}

void Testbed::request(std::size_t clientIndex, Endpoint address,
                      const std::string& series, HttpMethod method,
                      Bytes payload, Host::HttpCallback cb) {
  Host& client = *clients_.at(clientIndex);
  HttpRequest req;
  req.method = method;
  req.payload = payload;
  const Ipv4 clientIp = client.ip();
  client.httpRequest(address, req,
                     [this, series, clientIp, address,
                      cb = std::move(cb)](Result<HttpExchange> r) {
                       metrics::RequestRecord record;
                       record.series = series;
                       record.success = r.ok();
                       if (clientHist_ != nullptr) {
                         (r.ok() ? clientOk_ : clientError_)->add();
                         if (r.ok()) {
                           clientHist_->observe(
                               r.value().timings.timeTotal().toSeconds());
                         }
                       }
                       if (r.ok()) {
                         record.start = r.value().timings.start;
                         record.total = r.value().timings.timeTotal();
                         record.synRetransmits =
                             r.value().timings.synRetransmits;
                         // Join the client-side measurement with the
                         // controller-side trace: the root "request" span
                         // covers exactly timecurl's time_total.
                         trace_.clientRequestDone(
                             clientIp, address, r.value().timings.start,
                             r.value().timings.responseDone, /*success=*/true,
                             series);
                       } else {
                         trace_.instant(0, "request-failed", "client",
                                        sim_.now(),
                                        {{"series", series},
                                         {"client", clientIp.toString()},
                                         {"error",
                                          r.error().toString()}});
                       }
                       recorder_.add(record);
                       if (cb) cb(std::move(r));
                     });
}

void Testbed::requestCatalog(std::size_t clientIndex, const std::string& key,
                             Endpoint address, const std::string& series,
                             Host::HttpCallback cb) {
  const CatalogEntry& entry = catalog_.entry(key);
  request(clientIndex, address, series, entry.requestMethod,
          entry.requestPayload, std::move(cb));
}

}  // namespace edgesim::core
