// EdgeController: the SDN controller for transparent access to edge
// services with distributed on-demand deployment.
//
// This class is the C++ counterpart of the paper's Ryu-based controller.
// It owns the ServiceRegistry (registered service addresses -> annotated
// definitions), the FlowMemory (§V), the Dispatcher + Global Scheduler
// (fig. 6/7), and the OpenFlow interaction:
//
//   packet-in for a registered address
//     -> FlowMemory / Dispatcher / Scheduler decide the instance
//     -> (on-demand deployment phases if needed, §IV)
//     -> forward + reverse rewrite flows installed (fig. 2)
//     -> buffered packet(s) released toward the instance
//
//   packet-in for an unregistered address -> default route to the uplink.
//
//   flow-removed (idle) -> FlowMemory bookkeeping; when the last memorized
//   flow of a service instance expires, the instance is scaled down.
//   Concurrent front-end (submitRequest, options.workers > 0): packet-in
//   handling runs on a LaneExecutor pool, laned by the FlowMemory shard of
//   (client, service) so same-flow requests stay ordered.  Warm requests
//   (memorized flow) complete entirely on the worker -- shared-lock lookup,
//   CAS touch, no simulation-thread involvement.  Cold requests marshal to
//   the simulation thread (Simulation::postExternal), where the Dispatcher's
//   per-(service, cluster) pending table serializes all deployment state.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/service_catalog.hpp"
#include "openflow/switch.hpp"
#include "overload/governor.hpp"
#include "telemetry/slo_watchdog.hpp"
#include "util/lane_executor.hpp"

namespace edgesim::core {

struct ControllerOptions {
  /// Global Scheduler to load (registered name, §IV-B).
  std::string scheduler = "proximity";
  /// Idle timeout for switch flow entries -- kept short (§V).
  SimTime switchIdleTimeout = SimTime::seconds(5.0);
  /// Idle timeout for memorized flows -- longer than the switch's.
  SimTime memoryIdleTimeout = SimTime::seconds(60.0);
  /// Scan period for FlowMemory expiry.
  SimTime memoryScanPeriod = SimTime::seconds(1.0);
  /// Scale idle services down when their last memorized flow expires.
  bool scaleDownIdleServices = true;
  /// Remove a scaled-down service's containers / K8s objects after this
  /// much further idle time (fig. 4 Remove phase); zero disables removal.
  SimTime removeIdleAfter = SimTime::zero();
  /// Also delete the cached images when removing (fig. 4 Delete phase --
  /// "optionally, but unlikely ... if disk space is scarce").
  bool deleteImagesOnRemove = false;
  /// Port-ready polling interval (§VI).
  SimTime portPollInterval = SimTime::millis(50);
  /// Budget for one deployment attempt (Dispatcher deployTimeout).
  SimTime deployTimeout = SimTime::seconds(120.0);
  /// Per-phase watchdog passed to the Dispatcher; zero disables.
  SimTime phaseTimeout = SimTime::zero();
  /// Retry budget + backoff for failed deployment phases.
  int deployRetries = 3;
  SimTime retryBackoff = SimTime::millis(200);
  /// Degrade clients to the cloud when an edge deployment exhausts its
  /// retries (instead of failing the request).
  bool cloudFallback = true;
  /// Quarantine window for a cluster that exhausted its retries; zero
  /// disables quarantine.
  SimTime quarantineCooldown = SimTime::seconds(30.0);
  /// Per-cluster Local Scheduler injected by the annotator ("" = default).
  /// This names the *placement-time* scheduler (K8s schedulerName).
  std::string localScheduler;
  /// Request-time instance choice within a cluster ("first",
  /// "instance-round-robin", "client-hash").
  std::string instancePolicy = "first";
  /// FlowMemory shard count (striped locks).  1 = the deterministic
  /// single-threaded layout; concurrent deployments use workers * 4+.
  std::size_t flowShards = 1;
  /// Hot-path worker pool size for the concurrent front-end
  /// (submitRequest).  0 = no pool: packet-in handling stays inline on the
  /// simulation thread and runs bit-identically to the pre-shard seed.
  std::size_t workers = 0;
  /// Overload governor: bounded lane admission, deadline budgets, deploy
  /// tokens, per-cluster circuit breakers, brownout.  Disabled by default
  /// -- nothing is constructed and every hot-path hook is a null check.
  overload::OverloadOptions overload;
  /// Reliable FlowMods: every redirect install carries a barrier-style ack
  /// (openflow::OpenFlowSwitch::FlowModAck); un-acked installs are retried
  /// with the capped backoff below, and after exhausting the retries the
  /// flow fails over to the service's degraded cloud redirect so requests
  /// are never blackholed.  On a fault-free channel every ack arrives
  /// before its deadline, so this only arms-and-cancels inert timers and
  /// the determinism goldens stay bytewise identical.
  bool reliableFlowMods = true;
  /// Ack deadline for one FlowMod round trip (must exceed 2x the switch
  /// channel latency plus any stall faults you want tolerated in-band).
  SimTime flowModAckTimeout = SimTime::millis(50);
  /// Resend budget for un-acked installs; resend N waits
  /// retryBackoff * 2^(N-1), capped at 10s (the dispatcher's RetryPolicy).
  int flowModRetries = 3;
  /// Anti-entropy rule reconciliation sweep period; zero = off (default).
  /// See core::RuleReconciler.
  SimTime reconcilePeriod = SimTime::zero();
  /// Give up on a reconcile sweep's flow-stats round trips after this long
  /// (a lossy channel can eat the request or the reply).
  SimTime reconcileSweepTimeout = SimTime::millis(250);

  static ControllerOptions fromConfig(const Config& config);
};

/// Priority of the per-client redirect rewrite entries (fig. 2); the
/// RuleReconciler scopes its diff to entries at or above this priority so
/// background routing (priority 1) and coarse uplink flows (priority 10)
/// are never treated as drift.
inline constexpr std::uint16_t kRedirectPriority = 100;

/// Outcome of one transparent handover (EdgeController::requestHandover).
struct HandoverResult {
  /// False when the request was a no-op -- nothing memorized for the flow,
  /// the flow already lives on the target cluster, or a handover for the
  /// same (client, service) is still in flight.  No-ops are not counted in
  /// the handover accounting.
  bool started = false;
  /// The flow was re-steered onto the requested target cluster.
  bool completed = false;
  /// The handover could not land on the target (governor veto, exhausted
  /// deployment, unknown cluster, flow expired mid-handover) and was
  /// degraded to the cloud -- or, with no cloud instance, the flow kept its
  /// old binding (never stranded either way).
  bool abortedToCloud = false;
  /// Where the flow points after the handover.
  Endpoint instance;
  std::string cluster;
  /// Re-steer commit (flow-mods sent) -> new forward flow confirmed in the
  /// switch; bounded by one rule-install RTT for warm handovers.  Zero when
  /// nothing was re-installed (no-op, expired flow, no attached switch).
  SimTime continuityGap;
  /// requestHandover() -> settled, including any target-cluster deployment.
  SimTime latency;
  /// "warm" / "deployed" on success; the abort reason otherwise.
  const char* reason = "";
};

/// Static topology knowledge for one attached switch: which port reaches
/// which host IP, and which port leads toward the cloud/uplink.
struct SwitchTopology {
  std::map<Ipv4, PortId> hostPorts;
  PortId uplinkPort = kInvalidPort;

  PortId portFor(Ipv4 ip) const {
    const auto it = hostPorts.find(ip);
    return it == hostPorts.end() ? uplinkPort : it->second;
  }
};

class RuleReconciler;

class EdgeController : public openflow::ControllerApp {
 public:
  /// `telemetry` (optional) instruments the whole request path: warm/cold
  /// resolve latency histograms, request-outcome counters, per-shard
  /// FlowMemory series, lane queue depth/wait, and per-cluster dispatcher
  /// phase histograms.  Handles are resolved once up front; warm-path
  /// increments are per-thread striped relaxed atomics.
  EdgeController(Simulation& sim, ControllerOptions options,
                 std::vector<ClusterAdapter*> adapters,
                 const AppProfileRegistry& profiles,
                 metrics::Recorder* recorder = nullptr,
                 trace::TraceRecorder* trace = nullptr,
                 telemetry::MetricsRegistry* telemetry = nullptr);
  ~EdgeController() override;

  // ---- setup ------------------------------------------------------------
  /// Register an edge service from its YAML definition (§V).  The service
  /// is annotated, converted, and (if a cloud adapter exists) hosted in
  /// the cloud.  `tag` labels metric series.
  Result<const ServiceModel*> registerService(const std::string& yaml,
                                              Endpoint serviceAddress,
                                              const std::string& tag);

  /// Attach a switch with its port topology; installs background routing
  /// flows (client/host reachability) and becomes its controller app.
  void attachSwitch(openflow::OpenFlowSwitch& sw, SwitchTopology topology);

  // ---- ControllerApp ------------------------------------------------------
  void onPacketIn(openflow::OpenFlowSwitch& sw,
                  const openflow::PacketIn& event) override;
  void onFlowRemoved(openflow::OpenFlowSwitch& sw,
                     const openflow::FlowRemoved& event) override;

  // ---- concurrent front-end ----------------------------------------------
  /// Resolve a request from ANY thread (requires options.workers > 0; with
  /// no pool the call must come from the simulation thread and handles the
  /// request inline).  The callback runs on a pool worker for warm
  /// (FlowMemory) hits and on the simulation thread for cold misses -- the
  /// simulation thread must be pumping (Simulation::pump) for cold requests
  /// to make progress.  The warm path trusts FlowMemory invalidation
  /// (forgetInstance / forgetServiceExcept at scale-down and migration)
  /// instead of re-querying the cluster adapter, which is not thread-safe.
  void submitRequest(Ipv4 client, Endpoint serviceAddress,
                     Dispatcher::ResolveCallback cb);

  // ---- mobility / transparent handover ------------------------------------
  using HandoverCallback = std::function<void(const HandoverResult&)>;

  /// Transparently re-steer the memorized flow (client, serviceAddress)
  /// onto `targetCluster` while the old instance keeps serving until the
  /// switchover: idle -> re-steer -> settle.  A ready instance at the
  /// target makes the handover *warm* -- FlowMemory is re-bound and the
  /// forward redirect flow is atomically replaced (install-or-replace
  /// FlowMod), so the continuity gap is one rule-install RTT; with no
  /// instance the target is deployed first (the old binding keeps
  /// answering meanwhile).  A breaker-open or browned-out target, an
  /// unknown cluster, or an exhausted deployment degrades the handover to
  /// the cloud instead of stranding the flow.  Exact accounting:
  ///   handoversStarted() == handoversCompleted()
  ///                         + handoversAbortedToCloud()
  /// Thread-safe when options.workers > 0 (marshals through
  /// Simulation::postExternal; the sim thread must be pumping); with no
  /// pool the call must come from the simulation thread.
  void requestHandover(Ipv4 client, Endpoint serviceAddress,
                       const std::string& targetCluster,
                       HandoverCallback cb = nullptr);

  /// Per-client proximity override for the Global Scheduler's distance
  /// ranks (mobility attachment table).  Sim thread, before traffic;
  /// `provider` must outlive the controller or be cleared with nullptr.
  void setProximityProvider(const ProximityProvider* provider) {
    dispatcher_->setProximityProvider(provider);
  }

  std::uint64_t handoversStarted() const {
    return handoversStarted_.load(std::memory_order_relaxed);
  }
  std::uint64_t handoversCompleted() const {
    return handoversCompleted_.load(std::memory_order_relaxed);
  }
  std::uint64_t handoversAbortedToCloud() const {
    return handoversAborted_.load(std::memory_order_relaxed);
  }

  /// The lane pool, or nullptr when options.workers == 0.
  LaneExecutor* workerPool() { return pool_.get(); }

  /// The overload governor, or nullptr when options.overload.enabled was
  /// false.
  overload::OverloadGovernor* governor() { return governor_.get(); }

  // ---- introspection ------------------------------------------------------
  const ServiceModel* serviceAt(Endpoint address) const;

  /// Proactive deployment hook (§VII: "more so when combined with good
  /// prediction for proactive deployment"): deploy the service on the
  /// named cluster ahead of any request; `cb` optional, fires when the
  /// instance answers its port.
  Status predeploy(Endpoint serviceAddress, const std::string& clusterName,
                   std::function<void(Result<Endpoint>)> cb = nullptr);

  FlowMemory& flowMemory() { return memory_; }
  Dispatcher& dispatcher() { return *dispatcher_; }
  GlobalScheduler& scheduler() { return *scheduler_; }
  std::uint64_t packetInCount() const {
    return packetIns_.load(std::memory_order_relaxed);
  }
  /// Every request handed to submitRequest().  At quiescence the overload
  /// accounting invariant holds:
  ///   requestsSubmitted() == requestsResolved() + requestsFailed()
  ///                          + requestsShed()
  std::uint64_t requestsSubmitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  /// Requests the governor terminated early: lane-queue admission rejects,
  /// deadline-budget expiries (including fail-fast cloud answers from the
  /// dispatcher).  Disjoint from resolved and failed.
  std::uint64_t requestsShed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t requestsResolved() const {
    return resolved_.load(std::memory_order_relaxed);
  }
  std::uint64_t requestsFailed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  /// Resolves answered with a degraded (cloud-fallback) redirect; these
  /// count toward requestsResolved() as well.
  std::uint64_t requestsDegraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  std::uint64_t scaleDowns() const {
    return scaleDowns_.load(std::memory_order_relaxed);
  }
  std::uint64_t removals() const {
    return removals_.load(std::memory_order_relaxed);
  }
  /// BEST deployments that became ready and triggered flow migration.
  std::uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }
  /// submitRequest() calls answered straight from FlowMemory on a worker.
  std::uint64_t warmHits() const {
    return warmHits_.load(std::memory_order_relaxed);
  }

  // ---- reliable installs (acked FlowMods) ---------------------------------
  /// Tracked FlowMods sent, counting every entry of every (re)send attempt.
  /// At quiescence the control-channel accounting invariant holds:
  ///   flowModsSent() == flowModsAcked() + flowModsTimedOut()
  std::uint64_t flowModsSent() const {
    return flowModsSent_.load(std::memory_order_relaxed);
  }
  std::uint64_t flowModsAcked() const {
    return flowModsAcked_.load(std::memory_order_relaxed);
  }
  /// Tracked FlowMods whose ack missed its deadline (each is then retried
  /// or failed over; late acks of a timed-out attempt are discarded by
  /// epoch, never double-counted).
  std::uint64_t flowModsTimedOut() const {
    return flowModsTimedOut_.load(std::memory_order_relaxed);
  }
  /// Resend rounds triggered by ack timeouts.
  std::uint64_t flowModResends() const {
    return flowModResends_.load(std::memory_order_relaxed);
  }
  /// Installs that exhausted their resend budget and failed over to the
  /// degraded cloud redirect.
  std::uint64_t flowModFailovers() const {
    return flowModFailovers_.load(std::memory_order_relaxed);
  }
  /// Install transactions still waiting for acks (0 at quiescence).
  std::size_t pendingInstallCount() const { return pendingInstalls_.size(); }

  // ---- rule reconciliation ------------------------------------------------
  /// The anti-entropy reconciler, or nullptr when reconcilePeriod was zero.
  RuleReconciler* reconciler() { return reconciler_.get(); }

  /// Switches this controller programs (reconciler sweep set).
  const std::map<openflow::OpenFlowSwitch*, SwitchTopology>& attachedSwitches()
      const {
    return switches_;
  }

  /// One memorized flow with the exact switch entries (cookie 0) the
  /// controller would install for it on `sw` -- FlowMemory's *intended*
  /// steering state, which the RuleReconciler diffs against the switch's
  /// actual table.
  struct IntendedFlow {
    Ipv4 client;
    Endpoint service;
    Endpoint instance;
    std::vector<openflow::FlowEntry> entries;
  };
  /// Intended flows for `sw`, sorted by (client, service) so sweep order is
  /// deterministic regardless of FlowMemory's shard iteration order.
  std::vector<IntendedFlow> intendedFlows(openflow::OpenFlowSwitch& sw) const;

  /// Re-install the redirect entries for a memorized flow the reconciler
  /// found missing; no-op (returns false) if the service is unknown.
  bool reinstallRedirect(openflow::OpenFlowSwitch& sw, Ipv4 client,
                         Endpoint serviceAddress, Endpoint instance);

  /// Attach an SLO watchdog; cold resolve completions are reported to it
  /// (service tag, sim-time latency, trace request ID) so breaches can name
  /// their worst offender.  Called from the sim thread before traffic.
  void setSloWatchdog(telemetry::SloWatchdog* watchdog) {
    watchdog_ = watchdog;
  }

 private:
  struct PendingRequest {
    openflow::OpenFlowSwitch* sw = nullptr;
    std::vector<std::pair<openflow::BufferId, Packet>> buffered;
    bool resolving = false;
    /// Trace identity: request ID allocated at the first packet-in and the
    /// open "resolve" span it is measured under.
    trace::RequestId rid = 0;
    trace::SpanId resolveSpan = 0;
    /// First packet-in time; packet_in -> flow-install latency is observed
    /// into the warm or cold histogram when the resolve completes.
    SimTime startedAt;
  };
  struct PendingKey {
    Ipv4 client;
    Endpoint service;
    bool operator<(const PendingKey& other) const {
      if (client != other.client) return client < other.client;
      return service < other.service;
    }
  };

  /// One in-flight handover per (client, service): idle -> re-steer ->
  /// settle.  All state transitions run on the simulation thread.
  struct ActiveHandover {
    SimTime startedAt;
    /// Re-steer commit time (flow-mods sent); the continuity gap runs from
    /// here to the switch-confirmed settle.
    SimTime commitAt;
    Endpoint oldInstance;
    std::string oldCluster;
    std::string targetCluster;
    trace::RequestId rid = 0;
    trace::SpanId span = 0;
    HandoverCallback cb;
  };

  /// One tracked install transaction (reliable FlowMods): the entries to
  /// (re)send, the acks still outstanding, and the deadline timer.  Keyed
  /// by the install cookie in pendingInstalls_; sim thread only.
  struct PendingInstall {
    openflow::OpenFlowSwitch* sw = nullptr;
    Ipv4 client;
    Endpoint service;
    Endpoint instance;
    std::vector<openflow::FlowEntry> entries;
    int outstanding = 0;  // acks missing from the current attempt
    int attempts = 0;     // send attempts so far (1 = initial send)
    std::uint64_t epoch = 0;  // bumped per attempt; stale acks are ignored
    EventHandle deadline;
  };

  void handleRegisteredService(openflow::OpenFlowSwitch& sw,
                               const openflow::PacketIn& event,
                               const ServiceModel& service);
  void handleUnregistered(openflow::OpenFlowSwitch& sw,
                          const openflow::PacketIn& event);
  /// The forward (+ reverse) redirect entries for (client, service ->
  /// instance) on `sw`, cookie 0: the canonical shape shared by the
  /// install path and the reconciler's intended-state diff.
  std::vector<openflow::FlowEntry> redirectEntries(
      openflow::OpenFlowSwitch& sw, Ipv4 client, const ServiceModel& service,
      Endpoint instance) const;
  /// Install (or atomically replace) the forward + reverse redirect flows
  /// for (client, service) -> instance; returns the cookie stamped on both
  /// entries so callers can confirm the install in a flow-stats snapshot.
  /// With reliableFlowMods the entries are sent tracked (ack deadline,
  /// capped-backoff resends, cloud failover on exhaustion).
  std::uint64_t installRedirectFlows(openflow::OpenFlowSwitch& sw, Ipv4 client,
                                     const ServiceModel& service,
                                     Endpoint instance);
  // ---- reliable-install state machine (sim thread) ------------------------
  void sendTrackedInstall(std::uint64_t cookie);
  void onFlowModAck(std::uint64_t cookie, std::uint64_t epoch);
  void onFlowModDeadline(std::uint64_t cookie);
  /// Resend budget exhausted: re-point FlowMemory (and, best-effort, the
  /// switch) at the degraded cloud redirect so the flow is never blackholed.
  void failOverInstall(std::uint64_t cookie);
  /// Lazily register the edgesim_ctrl_channel_* series on the first ack
  /// timeout so fault-free runs export exactly the pre-existing series set.
  void ensureCtrlChannelTelemetry();
  // ---- handover state machine (sim thread) --------------------------------
  void startHandover(Ipv4 client, Endpoint serviceAddress,
                     const std::string& targetCluster, HandoverCallback cb);
  /// Re-steer commit: re-bind FlowMemory and replace the redirect flows on
  /// every attached switch, then confirm via a flow-stats round trip.
  /// `degraded` marks an abort-to-cloud commit (counts aborted, not
  /// completed).
  void commitReSteer(const PendingKey& key, const ServiceModel& service,
                     Endpoint instance, const std::string& cluster,
                     bool degraded, const char* reason);
  void settleHandover(const PendingKey& key, const ServiceModel& service,
                      Endpoint instance, const std::string& cluster,
                      bool degraded, const char* reason);
  /// Degrade the handover to the service's cached cloud redirect (never
  /// strand the flow); with no cloud instance the old binding is kept.
  void abortHandoverToCloud(const PendingKey& key, const ServiceModel& service,
                            const char* reason);
  void finishHandover(const PendingKey& key, HandoverResult result);
  /// Lazily register the edgesim_handover_* series on the first handover so
  /// mobility-free runs export exactly the pre-mobility series set.
  void ensureHandoverTelemetry();
  void releaseBuffered(openflow::OpenFlowSwitch& sw, const PendingKey& key,
                       const ServiceModel& service, Endpoint instance);
  void dropBuffered(const PendingKey& key);
  void handleSubmit(Ipv4 client, Endpoint serviceAddress,
                    Dispatcher::ResolveCallback cb, SimTime deadline);
  void resolveCold(Ipv4 client, Endpoint serviceAddress,
                   Dispatcher::ResolveCallback cb, SimTime deadline);
  /// Terminate a shed request (thread-safe): bump the shed accounting and
  /// answer `cb` immediately with the service's cached degraded cloud
  /// redirect (an error when the service has none).  This is the "shed
  /// requests get an immediate cloud redirect" half of admission control;
  /// it deliberately touches no adapter state so lane workers may call it.
  void shedRequest(overload::ShedReason reason, Endpoint serviceAddress,
                   const Dispatcher::ResolveCallback& cb);
  /// Cold-path latency histogram for the service (per-service-tag series,
  /// registered at registerService); nullptr when telemetry is off.
  telemetry::Histogram* coldHistogram(Endpoint serviceAddress) const;
  /// Observe a completed resolve: warm/cold latency histogram, outcome
  /// counter, and (cold) the SLO watchdog's worst-request table.
  void recordResolveOutcome(Endpoint serviceAddress, const std::string& tag,
                            SimTime startedAt, bool fromMemory, bool degraded,
                            trace::RequestId rid);
  void expireMemory();
  void finishExpiry();
  openflow::ActionList redirectActions(openflow::OpenFlowSwitch& sw,
                                       const ServiceModel& service,
                                       Endpoint instance) const;

  Simulation& sim_;
  ControllerOptions options_;
  const AppProfileRegistry& profiles_;
  metrics::Recorder* recorder_;
  trace::TraceRecorder* trace_;
  telemetry::MetricsRegistry* telemetry_;
  telemetry::SloWatchdog* watchdog_ = nullptr;
  // Telemetry handles, resolved once at construction (nullptr when
  // telemetry is off).  The warm path touches only striped instruments.
  telemetry::Histogram* warmHist_ = nullptr;
  telemetry::Counter* resolvedCtr_ = nullptr;
  telemetry::Counter* failedCtr_ = nullptr;
  telemetry::Counter* degradedCtr_ = nullptr;
  telemetry::Counter* scaleDownsCtr_ = nullptr;
  /// Per-service cold-resolve histograms, filled at registerService (sim
  /// thread; the cold path only runs there too).
  std::unordered_map<Endpoint, telemetry::Histogram*> coldHists_;
  FlowMemory memory_;
  /// Created before the dispatcher (which borrows it); destroyed after the
  /// pool so shedding workers never race teardown.
  std::unique_ptr<overload::OverloadGovernor> governor_;
  std::unique_ptr<GlobalScheduler> scheduler_;
  std::unique_ptr<Dispatcher> dispatcher_;
  /// Per-service degraded cloud redirect for shed requests, captured at
  /// registerService from CloudAdapter::hostService.  Immutable once
  /// traffic starts, so lane workers read it without locks.
  std::unordered_map<Endpoint, Redirect> cloudRedirects_;
  std::vector<ClusterAdapter*> adapters_;
  std::unordered_map<Endpoint, std::unique_ptr<ServiceModel>> services_;
  std::map<openflow::OpenFlowSwitch*, SwitchTopology> switches_;
  std::map<PendingKey, PendingRequest> pendingRequests_;
  std::map<PendingKey, ActiveHandover> handovers_;
  /// In-flight tracked installs by cookie (sim thread only).
  std::map<std::uint64_t, PendingInstall> pendingInstalls_;
  /// Redirects the controller believes are live on each switch, keyed by
  /// (switch, client, service) and valued with the latest install cookie.
  /// Set when redirect flows are (re)sent, erased when the switch's
  /// FlowRemoved for that cookie is delivered or the memorized flow
  /// expires.  FlowMemory deliberately outlives switch idle expiry (warm
  /// resolution after the entry aged out, §V), so the reconciler must not
  /// treat every memorized flow as intended switch state: only entries in
  /// this map count.  An entry that vanished *without* a delivered
  /// FlowRemoved (restart wipe, lost notification) stays believed-installed
  /// and is therefore detected as drift.  Sim thread only.
  std::map<std::tuple<const openflow::OpenFlowSwitch*, Ipv4, Endpoint>,
           std::uint64_t>
      believedInstalled_;
  /// Anti-entropy sweeper (options.reconcilePeriod > 0), started in the
  /// constructor; declared after switches_/memory_ so it tears down first.
  std::unique_ptr<RuleReconciler> reconciler_;
  // Control-channel telemetry, registered lazily on the first ack timeout.
  telemetry::Counter* ctrlAckedCtr_ = nullptr;
  telemetry::Counter* ctrlTimeoutCtr_ = nullptr;
  telemetry::Counter* ctrlRetriesCtr_ = nullptr;
  telemetry::Counter* ctrlFailoversCtr_ = nullptr;
  // Handover telemetry, registered lazily on the first handover (sim
  // thread; registration is mutex-guarded but not hot-path safe).
  telemetry::Counter* hoStartedCtr_ = nullptr;
  telemetry::Counter* hoCompletedCtr_ = nullptr;
  telemetry::Counter* hoAbortedCtr_ = nullptr;
  telemetry::Histogram* hoLatencyHist_ = nullptr;
  telemetry::Histogram* hoGapHist_ = nullptr;
  PeriodicTimer memoryScan_;
  /// (service address, cluster) -> when the service was scaled down; used
  /// to drive the Remove/Delete phases after prolonged idle.
  std::map<std::pair<Endpoint, std::string>, SimTime> scaledDownAt_;
  /// Request lane pool (options.workers > 0); destroyed first so no worker
  /// can touch controller state during teardown.
  std::unique_ptr<LaneExecutor> pool_;
  // Counters are atomics: the warm path increments them from pool workers
  // while the simulation thread serves cold requests and expiry.
  std::atomic<std::uint64_t> packetIns_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> resolved_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> scaleDowns_{0};
  std::atomic<std::uint64_t> removals_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> warmHits_{0};
  std::atomic<std::uint64_t> handoversStarted_{0};
  std::atomic<std::uint64_t> handoversCompleted_{0};
  std::atomic<std::uint64_t> handoversAborted_{0};
  std::atomic<std::uint64_t> cookieCounter_{1};
  std::atomic<std::uint64_t> flowModsSent_{0};
  std::atomic<std::uint64_t> flowModsAcked_{0};
  std::atomic<std::uint64_t> flowModsTimedOut_{0};
  std::atomic<std::uint64_t> flowModResends_{0};
  std::atomic<std::uint64_t> flowModFailovers_{0};
};

}  // namespace edgesim::core
