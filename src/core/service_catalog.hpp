// The Table I edge-service catalogue.
//
// Four services spanning the paper's evaluation space:
//   Asm      -- asmttpd web server, 6.18 KiB / 1 layer, GET
//   Nginx    -- nginx:1.23.2, 135 MiB / 6 layers, GET
//   ResNet   -- TensorFlow Serving + ResNet50, 308 MiB / 9 layers, POST 83 KiB
//   Nginx+Py -- nginx + Python env-writer, 181 MiB / 7 layers, 2 containers
//
// Each entry provides the service definition YAML (as a developer would
// write it), the images to publish to registries, the app behaviour
// profiles, and the client request shape.
#pragma once

#include <string>
#include <vector>

#include "container/image.hpp"
#include "container/layer_store.hpp"
#include "container/registry.hpp"
#include "core/service_model.hpp"

namespace edgesim::core {

struct CatalogEntry {
  std::string key;          // "asm", "nginx", "resnet", "nginx-py"
  std::string displayName;  // Table I row name
  std::string yaml;         // developer-written service definition
  std::vector<container::Image> images;
  HttpMethod requestMethod = HttpMethod::kGet;
  Bytes requestPayload;
  int containerCount = 1;
};

class ServiceCatalog {
 public:
  ServiceCatalog();

  const std::vector<CatalogEntry>& entries() const { return entries_; }
  const CatalogEntry& entry(const std::string& key) const;
  bool has(const std::string& key) const;

  /// App behaviour for every catalogue image.
  const AppProfileRegistry& profiles() const { return profiles_; }

  /// Publish all catalogue images to `registry`.
  void publishImages(container::Registry& registry) const;

  /// Pre-seed a node's layer store with one entry's images (warm cache).
  void seedImages(const std::string& key,
                  container::LayerStore& store) const;

  /// Total bytes / layer count of one entry (Table I columns).
  Bytes totalImageSize(const std::string& key) const;
  std::size_t totalLayerCount(const std::string& key) const;

 private:
  std::vector<CatalogEntry> entries_;
  AppProfileRegistry profiles_;
};

}  // namespace edgesim::core
