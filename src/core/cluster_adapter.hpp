// ClusterAdapter: the controller's uniform interface to an edge cluster.
//
// The paper's controller talks to Docker and Kubernetes through their
// respective client libraries using ONE service definition for both (§V).
// Each adapter implements the deployment phases of fig. 4 (Pull, Create,
// Scale-Up, and the teardown phases Scale-Down / Remove / Delete) plus the
// state queries the Dispatcher needs (fig. 7) and the management-plane
// port probe used before flows are installed (§VI).
//
// A CloudAdapter represents "the real cloud": services registered there are
// always running, so forwarding a request toward the cloud is modelled as a
// redirect to the cloud instance.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/service_model.hpp"
#include "docker/engine.hpp"
#include "fault/fault_plan.hpp"
#include "k8s/cluster.hpp"

namespace edgesim::core {

class ClusterAdapter {
 public:
  using Callback = std::function<void(Status)>;
  using ProbeCallback = std::function<void(bool open)>;

  ClusterAdapter(std::string name, int distanceRank)
      : name_(std::move(name)), distanceRank_(distanceRank) {}
  virtual ~ClusterAdapter() = default;

  const std::string& name() const { return name_; }
  int distanceRank() const { return distanceRank_; }
  virtual bool isCloud() const { return false; }

  /// Time domain this cluster's substrate (engine/kubelets/reconcilers)
  /// runs in.  The Dispatcher routes deployment-phase RPCs into it and
  /// marshals callbacks back onto the control domain; the default (control
  /// domain) keeps phase calls direct and bit-identical.
  DomainId domain() const { return domain_; }
  void setDomain(DomainId domain) { domain_ = domain; }

  /// Snapshot for the Global Scheduler.
  virtual ClusterView view(const ServiceModel& service) const = 0;

  /// Ready service instances (port open and serving).
  virtual std::vector<Endpoint> readyInstances(
      const ServiceModel& service) const = 0;

  // ---- deployment phases (fig. 4) ----------------------------------------
  virtual void pullImages(const ServiceModel& service, Callback cb) = 0;
  virtual void createService(const ServiceModel& service, Callback cb) = 0;
  virtual void scaleUp(const ServiceModel& service, Callback cb) = 0;
  virtual void scaleDown(const ServiceModel& service, Callback cb) = 0;
  virtual void removeService(const ServiceModel& service, Callback cb) = 0;
  virtual void deleteImages(const ServiceModel& service, Callback cb) = 0;

  /// Management-plane probe: is `instance`'s port open?  (The controller
  /// "continuously tests if the respective port is open" before setting up
  /// flows, §VI.)
  virtual void probeInstance(Endpoint instance, ProbeCallback cb) = 0;

  /// Consult `plan` (site kClusterRpc, target "<name>/<phase>") before each
  /// deployment-phase RPC: a triggered fault fails the phase after the
  /// fault's stall, which the Dispatcher's retry policy then handles.
  void setFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }
  fault::FaultPlan* faultPlan() const { return faults_; }

 protected:
  /// Evaluate the kClusterRpc site for `phase` ("pull", "create", ...).
  /// Returns a fault only when the RPC must fail; stall-only triggers are
  /// ignored at this site.
  std::optional<fault::InjectedFault> checkRpcFault(const char* phase) {
    if (faults_ == nullptr) return std::nullopt;
    auto injected = faults_->evaluate(fault::FaultSite::kClusterRpc,
                                      name_ + "/" + phase);
    if (injected.has_value() && !injected->fail) return std::nullopt;
    return injected;
  }

 private:
  std::string name_;
  int distanceRank_;
  DomainId domain_ = kControlDomain;
  fault::FaultPlan* faults_ = nullptr;
};

// --------------------------------------------------------------------------

/// Run `fn` in `cluster`'s time domain.  When the active domain already
/// matches (the single-domain default, or a call made from inside the
/// cluster's own events) the call is DIRECT -- bit-identical to the
/// pre-domain engine.  Otherwise the closure hops through the domain
/// channel, paying at least the channel lookahead (the modelled
/// management-plane latency between controller and cluster).
template <typename Fn>
void runOnCluster(Simulation& sim, ClusterAdapter& cluster, Fn&& fn) {
  if (cluster.domain() == sim.activeDomainId()) {
    std::forward<Fn>(fn)();
    return;
  }
  sim.scheduleOn(cluster.domain(), SimTime::zero(), std::forward<Fn>(fn));
}

// --------------------------------------------------------------------------

/// Docker cluster: one node running the Docker engine.
class DockerAdapter final : public ClusterAdapter {
 public:
  DockerAdapter(Simulation& sim, std::string name, int distanceRank,
                docker::DockerEngine& engine, int capacity = 100,
                SimTime mgmtRtt = SimTime::millis(1));

  ClusterView view(const ServiceModel& service) const override;
  std::vector<Endpoint> readyInstances(
      const ServiceModel& service) const override;
  void pullImages(const ServiceModel& service, Callback cb) override;
  void createService(const ServiceModel& service, Callback cb) override;
  void scaleUp(const ServiceModel& service, Callback cb) override;
  void scaleDown(const ServiceModel& service, Callback cb) override;
  void removeService(const ServiceModel& service, Callback cb) override;
  void deleteImages(const ServiceModel& service, Callback cb) override;
  void probeInstance(Endpoint instance, ProbeCallback cb) override;

  docker::DockerEngine& engine() { return engine_; }

 private:
  std::vector<const container::ContainerInfo*> containersOf(
      const ServiceModel& service) const;

  Simulation& sim_;
  docker::DockerEngine& engine_;
  int capacity_;
  SimTime mgmtRtt_;
  /// uniqueName -> container ids (created once, started on scale-up).
  std::map<std::string, std::vector<container::ContainerId>> services_;
};

// --------------------------------------------------------------------------

/// Kubernetes cluster adapter.
class K8sAdapter final : public ClusterAdapter {
 public:
  K8sAdapter(Simulation& sim, std::string name, int distanceRank,
             k8s::K8sCluster& cluster, std::vector<k8s::NodeHandle> nodes,
             SimTime mgmtRtt = SimTime::millis(1));

  ClusterView view(const ServiceModel& service) const override;
  std::vector<Endpoint> readyInstances(
      const ServiceModel& service) const override;
  void pullImages(const ServiceModel& service, Callback cb) override;
  void createService(const ServiceModel& service, Callback cb) override;
  void scaleUp(const ServiceModel& service, Callback cb) override;
  void scaleDown(const ServiceModel& service, Callback cb) override;
  void removeService(const ServiceModel& service, Callback cb) override;
  void deleteImages(const ServiceModel& service, Callback cb) override;
  void probeInstance(Endpoint instance, ProbeCallback cb) override;

  k8s::K8sCluster& cluster() { return cluster_; }

  /// Translate a ServiceModel into the K8s API objects (exposed for tests).
  static k8s::Deployment toDeployment(const ServiceModel& service,
                                      int replicas);
  static k8s::Service toService(const ServiceModel& service);

 private:
  Simulation& sim_;
  k8s::K8sCluster& cluster_;
  std::vector<k8s::NodeHandle> nodes_;
  SimTime mgmtRtt_;
};

// --------------------------------------------------------------------------

/// The "real cloud": every registered service is permanently running.
class CloudAdapter final : public ClusterAdapter {
 public:
  CloudAdapter(Simulation& sim, std::string name, int distanceRank,
               Host& cloudHost, const AppProfileRegistry& profiles,
               SimTime mgmtRtt = SimTime::millis(10));

  bool isCloud() const override { return true; }

  /// Start the always-on cloud instance for `service`.
  Endpoint hostService(const ServiceModel& service);

  ClusterView view(const ServiceModel& service) const override;
  std::vector<Endpoint> readyInstances(
      const ServiceModel& service) const override;
  void pullImages(const ServiceModel& service, Callback cb) override;
  void createService(const ServiceModel& service, Callback cb) override;
  void scaleUp(const ServiceModel& service, Callback cb) override;
  void scaleDown(const ServiceModel& service, Callback cb) override;
  void removeService(const ServiceModel& service, Callback cb) override;
  void deleteImages(const ServiceModel& service, Callback cb) override;
  void probeInstance(Endpoint instance, ProbeCallback cb) override;

  Host& host() { return host_; }

 private:
  void finish(Callback cb);

  Simulation& sim_;
  Host& host_;
  const AppProfileRegistry& profiles_;
  SimTime mgmtRtt_;
  std::uint16_t nextPort_ = 20000;
  std::map<std::string, Endpoint> instances_;  // uniqueName -> endpoint
  Rng rng_;
};

}  // namespace edgesim::core
