// FlowMemory (§V): the controller-side memory of installed redirect flows.
//
// The switch keeps *short* idle timeouts (cheap tables); the controller
// memorizes each flow so a returning client is redirected to the same
// instance without rescheduling.  Memorized flows carry their own, longer
// idle timeout; expiry both forgets stale clients and is the trigger for
// scaling down idle edge service instances.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"

namespace edgesim::core {

struct MemorizedFlow {
  Endpoint client;    // client IP + source port is NOT part of the key;
                      // the client is identified by IP (port field unused)
  Endpoint service;   // registered service address
  Endpoint instance;  // chosen instance endpoint
  std::string cluster;
  SimTime lastSeen;
};

class FlowMemory {
 public:
  struct Key {
    Ipv4 client;
    Endpoint service;
    bool operator==(const Key&) const = default;
  };

  explicit FlowMemory(SimTime idleTimeout) : idleTimeout_(idleTimeout) {}

  /// Record or refresh a flow.
  void upsert(Ipv4 client, Endpoint service, Endpoint instance,
              const std::string& cluster, SimTime now);

  /// Refresh the last-seen time (e.g. on switch flow-removed with recent
  /// traffic, or on packet-in from a remembered client).
  void touch(Ipv4 client, Endpoint service, SimTime now);

  const MemorizedFlow* lookup(Ipv4 client, Endpoint service) const;

  /// Drop flows idle for >= idleTimeout; returns the expired flows.
  std::vector<MemorizedFlow> expire(SimTime now);

  /// Forget all flows pointing at `instance` (e.g. instance scaled down).
  void forgetInstance(Endpoint instance);

  /// Forget all flows for `service` that do NOT point at `keepCluster` --
  /// used when a BEST deployment becomes ready (§IV-A2): clients re-resolve
  /// and land on the optimal cluster at their next flow setup.
  void forgetServiceExcept(Endpoint service, const std::string& keepCluster);

  /// Number of live flows referring to (service, cluster); the scale-down
  /// policy keys off this reaching zero.
  std::size_t flowsFor(Endpoint service, const std::string& cluster) const;

  std::size_t size() const { return flows_.size(); }
  SimTime idleTimeout() const { return idleTimeout_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      const auto h1 = std::hash<Ipv4>{}(key.client);
      const auto h2 = std::hash<Endpoint>{}(key.service);
      return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
    }
  };

  SimTime idleTimeout_;
  std::unordered_map<Key, MemorizedFlow, KeyHash> flows_;
};

}  // namespace edgesim::core
