// FlowMemory (§V): the controller-side memory of installed redirect flows.
//
// The switch keeps *short* idle timeouts (cheap tables); the controller
// memorizes each flow so a returning client is redirected to the same
// instance without rescheduling.  Memorized flows carry their own, longer
// idle timeout; expiry both forgets stale clients and is the trigger for
// scaling down idle edge service instances.
//
// Concurrency model: the table is partitioned into `shards` independent
// sub-maps keyed by hash(client, service), each behind its own
// std::shared_mutex (striped locks).  The warm path -- lookup() + touch()
// on every remembered packet-in -- takes only the shard's SHARED lock;
// touch() refreshes last-seen with a CAS-max on an atomic, so concurrent
// readers never serialize against each other and never take a write lock.
// Mutations (upsert, expire, forget*) take the shard's exclusive lock.
//
// Determinism: with shards == 1 (the default) every operation hits one
// unordered_map through the exact op sequence of the pre-shard layout, so
// expire()'s iteration order -- and therefore scale-down order and traces
// -- is bit-identical to the single-threaded seed.  Sharded configurations
// iterate shards in index order, which is deterministic for a fixed shard
// count but groups flows differently; the determinism suite pins both.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics_registry.hpp"

namespace edgesim::core {

struct MemorizedFlow {
  Endpoint client;    // client IP + source port is NOT part of the key;
                      // the client is identified by IP (port field unused)
  Endpoint service;   // registered service address
  Endpoint instance;  // chosen instance endpoint
  std::string cluster;
  SimTime lastSeen;
};

class FlowMemory {
 public:
  struct Key {
    Ipv4 client;
    Endpoint service;
    bool operator==(const Key&) const = default;
  };

  /// `telemetry` (optional) registers per-shard occupancy / hit / miss /
  /// eviction series; handles are resolved here once so the warm path only
  /// pays striped relaxed increments.
  explicit FlowMemory(SimTime idleTimeout, std::size_t shards = 1,
                      telemetry::MetricsRegistry* telemetry = nullptr);

  /// Record or refresh a flow.  Takes the shard's exclusive lock.
  void upsert(Ipv4 client, Endpoint service, Endpoint instance,
              const std::string& cluster, SimTime now);

  /// Refresh the last-seen time (e.g. on switch flow-removed with recent
  /// traffic, or on packet-in from a remembered client).  Warm path:
  /// shared lock + CAS-max, never blocks other readers.
  void touch(Ipv4 client, Endpoint service, SimTime now);

  /// Snapshot of the memorized flow, or nullopt.  Warm path: shared lock.
  std::optional<MemorizedFlow> lookup(Ipv4 client, Endpoint service) const;

  /// Drop flows idle for >= idleTimeout; returns the expired flows in
  /// shard order.  Exclusive lock per shard, taken one shard at a time.
  std::vector<MemorizedFlow> expire(SimTime now);

  /// Re-point an EXISTING flow at a new instance/cluster without touching
  /// its identity -- the handover path: the client keeps talking to the
  /// registered service address while the controller re-steers the flow.
  /// Returns false when no flow is memorized for (client, service) -- e.g.
  /// it expired while the handover was deploying the target instance.
  /// Takes the shard's exclusive lock.
  bool rebind(Ipv4 client, Endpoint service, Endpoint instance,
              const std::string& cluster, SimTime now);

  /// Snapshot of every flow memorized for `client`, in shard order; the
  /// handover trigger enumerates these when the client's attachment moves.
  std::vector<MemorizedFlow> flowsForClient(Ipv4 client) const;

  /// Snapshot of EVERY memorized flow, in shard order: the controller's
  /// intended steering state, which the RuleReconciler diffs against the
  /// switch tables.  Shared lock per shard, one shard at a time.
  std::vector<MemorizedFlow> snapshot() const;

  /// Forget all flows pointing at `instance` (e.g. instance scaled down).
  void forgetInstance(Endpoint instance);

  /// Forget all flows for `service` that do NOT point at `keepCluster` --
  /// used when a BEST deployment becomes ready (§IV-A2): clients re-resolve
  /// and land on the optimal cluster at their next flow setup.
  void forgetServiceExcept(Endpoint service, const std::string& keepCluster);

  /// Number of live flows referring to (service, cluster); the scale-down
  /// policy keys off this reaching zero.
  std::size_t flowsFor(Endpoint service, const std::string& cluster) const;

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  SimTime idleTimeout() const { return idleTimeout_; }

  std::size_t shardCount() const { return shards_.size(); }
  /// Stable shard index for (client, service) -- the controller uses this
  /// as the LaneExecutor lane key so same-flow requests stay ordered.
  std::size_t shardIndex(Ipv4 client, Endpoint service) const {
    return KeyHash{}(Key{client, service}) % shards_.size();
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      const auto h1 = std::hash<Ipv4>{}(key.client);
      const auto h2 = std::hash<Endpoint>{}(key.service);
      return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
    }
  };

  /// Map value: immutable routing fields plus the touch()-refreshed
  /// last-seen nanos.  The atomic lets the warm path refresh under a
  /// SHARED lock; all fields besides lastSeenNanos are only written under
  /// the shard's exclusive lock.
  struct StoredFlow {
    Endpoint client;
    Endpoint service;
    Endpoint instance;
    std::string cluster;
    std::atomic<std::int64_t> lastSeenNanos;

    MemorizedFlow snapshot() const {
      return MemorizedFlow{
          client, service, instance, cluster,
          SimTime::nanos(lastSeenNanos.load(std::memory_order_relaxed))};
    }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, StoredFlow, KeyHash> flows;
    // Telemetry handles (null when telemetry is off).  The counters stripe
    // internally, so the shared-lock warm path can bump them without
    // serializing against other readers of this shard.
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* expirations = nullptr;
    telemetry::Counter* invalidations = nullptr;
    telemetry::Gauge* occupancy = nullptr;
  };

  Shard& shardFor(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }
  const Shard& shardFor(const Key& key) const {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  SimTime idleTimeout_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace edgesim::core
