#include "core/rule_reconciler.hpp"

#include <map>
#include <set>
#include <utility>

#include "util/log.hpp"

namespace edgesim::core {

using openflow::FlowEntry;
using openflow::OpenFlowSwitch;

RuleReconciler::RuleReconciler(Simulation& sim, EdgeController& controller,
                               ReconcilerOptions options,
                               telemetry::MetricsRegistry* telemetry,
                               trace::TraceRecorder* trace)
    : sim_(sim), controller_(controller), options_(options), trace_(trace) {
  ES_ASSERT(options_.period > SimTime::zero());
  if (telemetry != nullptr) {
    sweepsCtr_ = &telemetry->counter("edgesim_reconcile_sweeps_total");
    driftMissingCtr_ = &telemetry->counter(
        "edgesim_reconcile_drift_detected_total", {{"kind", "missing"}});
    driftOrphanCtr_ = &telemetry->counter(
        "edgesim_reconcile_drift_detected_total", {{"kind", "orphan"}});
    reinstalledCtr_ =
        &telemetry->counter("edgesim_reconcile_rules_reinstalled_total");
    orphansDeletedCtr_ =
        &telemetry->counter("edgesim_reconcile_orphans_deleted_total");
    resynthCtr_ =
        &telemetry->counter("edgesim_reconcile_flow_removed_resynth_total");
    statsTimeoutCtr_ =
        &telemetry->counter("edgesim_reconcile_stats_timeouts_total");
    sweepHist_ = &telemetry->histogram("edgesim_reconcile_sweep_seconds");
  }
}

RuleReconciler::~RuleReconciler() { stop(); }

void RuleReconciler::start() {
  if (timer_.running()) return;
  timer_.start(sim_, options_.period, [this] {
    sweep(nullptr);
    return true;
  }, options_.period);
}

void RuleReconciler::stop() { timer_.cancel(); }

void RuleReconciler::sweepNow(std::function<void()> done) {
  sweep(std::move(done));
}

std::string RuleReconciler::entryKey(const FlowEntry& entry) {
  return std::to_string(entry.priority) + "|" + entry.match.toString() + "|" +
         openflow::actionsToString(entry.actions);
}

void RuleReconciler::sweep(std::function<void()> done) {
  const auto& switches = controller_.attachedSwitches();
  if (sweeping_ || switches.empty()) {
    if (done) done();
    return;
  }
  sweeping_ = true;
  auto state = std::make_shared<SweepState>();
  state->remaining = switches.size();
  state->startedAt = sim_.now();
  state->done = std::move(done);
  if (trace_ != nullptr) {
    state->rid = trace_->newRequest();
    state->span = trace_->beginSpan(
        state->rid, "reconcile_sweep", "reconcile", sim_.now(),
        {{"switches", std::to_string(switches.size())}});
  }
  for (const auto& [sw, topo] : switches) {
    OpenFlowSwitch* swPtr = sw;
    sw->requestFlowStats(
        [this, state, swPtr](const std::vector<FlowEntry>& entries) {
          if (state->finished) return;  // answered after the deadline
          processSwitch(*swPtr, entries, *state);
          if (--state->remaining == 0) finishSweep(state);
        });
  }
  // A lossy channel can eat the stats request or the reply; bound the wait
  // so a sweep never wedges the sweeper.
  state->deadline = sim_.schedule(options_.sweepTimeout, [this, state] {
    if (state->finished) return;
    stats_.statsTimeouts += state->remaining;
    if (statsTimeoutCtr_ != nullptr) statsTimeoutCtr_->add(state->remaining);
    finishSweep(state);
  });
}

void RuleReconciler::processSwitch(OpenFlowSwitch& sw,
                                   const std::vector<FlowEntry>& entries,
                                   SweepState& state) {
  // Index the switch's actual redirect entries by shape.  Lower-priority
  // background/uplink flows are controller-static, not FlowMemory state,
  // and are left alone.
  std::map<std::string, const FlowEntry*> installed;
  for (const FlowEntry& entry : entries) {
    if (entry.priority < kRedirectPriority) continue;
    installed.emplace(entryKey(entry), &entry);
  }

  std::set<std::string> wanted;
  for (const auto& flow : controller_.intendedFlows(sw)) {
    bool missing = false;
    for (const FlowEntry& entry : flow.entries) {
      auto key = entryKey(entry);
      if (installed.count(key) == 0) missing = true;
      wanted.insert(std::move(key));
    }
    if (!missing) continue;
    ++stats_.driftMissing;
    ++state.missing;
    if (driftMissingCtr_ != nullptr) driftMissingCtr_->add();
    ES_INFO("reconciler", "re-installing lost flow %s -> %s on %s",
            flow.service.toString().c_str(), flow.instance.toString().c_str(),
            sw.name().c_str());
    if (controller_.reinstallRedirect(sw, flow.client, flow.service,
                                      flow.instance)) {
      ++stats_.flowsReinstalled;
      if (reinstalledCtr_ != nullptr) reinstalledCtr_->add();
      // The entry vanished without the controller hearing a FlowRemoved
      // (restart or lost notification).  Resynthesize its bookkeeping
      // conservatively: refresh last-seen at sweep time, exactly what a
      // delivered idle-removal with recent traffic would have done, so the
      // memorized flow is not expired early because a message died.
      controller_.flowMemory().touch(flow.client, flow.service, sim_.now());
      ++stats_.flowRemovedResynthesized;
      if (resynthCtr_ != nullptr) resynthCtr_->add();
    }
  }

  for (const auto& [key, entry] : installed) {
    if (wanted.count(key) != 0) continue;
    // No memorized flow explains this redirect entry: a delete was lost, or
    // memory expired while the notification died.  Remove it through the
    // normal path so a notify-on-removal entry still yields its FlowRemoved.
    ++stats_.driftOrphans;
    ++state.orphans;
    if (driftOrphanCtr_ != nullptr) driftOrphanCtr_->add();
    ES_INFO("reconciler", "deleting orphan entry %s on %s",
            entry->match.toString().c_str(), sw.name().c_str());
    sw.sendFlowRemove(entry->match, entry->cookie);
    ++stats_.orphansDeleted;
    if (orphansDeletedCtr_ != nullptr) orphansDeletedCtr_->add();
  }
}

void RuleReconciler::finishSweep(const std::shared_ptr<SweepState>& state) {
  state->finished = true;
  state->deadline.cancel();
  ++stats_.sweeps;
  if (sweepsCtr_ != nullptr) sweepsCtr_->add();
  const SimTime elapsed = sim_.now() - state->startedAt;
  if (sweepHist_ != nullptr) sweepHist_->observe(elapsed.toSeconds());
  if (trace_ != nullptr) {
    trace_->endSpan(state->span, sim_.now(),
                    {{"missing", std::to_string(state->missing)},
                     {"orphans", std::to_string(state->orphans)},
                     {"timed_out", std::to_string(state->remaining)}});
  }
  sweeping_ = false;
  if (state->done) state->done();
}

}  // namespace edgesim::core
