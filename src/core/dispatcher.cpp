#include "core/dispatcher.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace edgesim::core {

SimTime RetryPolicy::backoff(int retryIndex) const {
  SimTime delay = initialBackoff;
  for (int i = 0; i < retryIndex; ++i) {
    delay = delay.scaled(multiplier);
    if (delay >= maxBackoff) return maxBackoff;
  }
  return std::min(delay, maxBackoff);
}

Dispatcher::Dispatcher(Simulation& sim, FlowMemory& memory,
                       GlobalScheduler& scheduler,
                       std::vector<ClusterAdapter*> adapters,
                       metrics::Recorder* recorder, DispatcherOptions options,
                       trace::TraceRecorder* trace,
                       telemetry::MetricsRegistry* telemetry,
                       overload::OverloadGovernor* governor)
    : sim_(sim),
      controlThread_(std::this_thread::get_id()),
      memory_(memory),
      scheduler_(scheduler),
      adapters_(std::move(adapters)),
      recorder_(recorder),
      trace_(trace),
      governor_(governor),
      options_(options),
      localScheduler_(makeLocalScheduler(options.instancePolicy)) {
  ES_ASSERT(!adapters_.empty());
  if (telemetry != nullptr) {
    for (const ClusterAdapter* adapter : adapters_) {
      const std::string name = adapter->name();
      ClusterTelemetry& handles = clusterTelemetry_[name];
      for (const char* phase : {"pull", "create", "scaleup-cmd", "wait"}) {
        handles.phases[phase] = &telemetry->histogram(
            "edgesim_deploy_phase_seconds",
            {{"cluster", name}, {"phase", phase}});
      }
      handles.deployments =
          &telemetry->counter("edgesim_deploys_total", {{"cluster", name}});
      handles.retries = &telemetry->counter("edgesim_deploy_retries_total",
                                            {{"cluster", name}});
      handles.fallbacks = &telemetry->counter("edgesim_deploy_fallbacks_total",
                                              {{"cluster", name}});
      handles.quarantines = &telemetry->counter(
          "edgesim_deploy_quarantines_total", {{"cluster", name}});
      handles.decisionsFast =
          &telemetry->counter("edgesim_scheduler_decisions_total",
                              {{"cluster", name}, {"role", "fast"}});
      handles.decisionsBest =
          &telemetry->counter("edgesim_scheduler_decisions_total",
                              {{"cluster", name}, {"role", "best"}});
    }
  }
}

Dispatcher::ClusterTelemetry* Dispatcher::clusterTelemetry(
    const std::string& cluster) {
  const auto it = clusterTelemetry_.find(cluster);
  return it == clusterTelemetry_.end() ? nullptr : &it->second;
}

ClusterAdapter* Dispatcher::adapterByName(const std::string& name) const {
  for (auto* adapter : adapters_) {
    if (adapter->name() == name) return adapter;
  }
  return nullptr;
}

ClusterAdapter* Dispatcher::cloudAdapter() const {
  for (auto* adapter : adapters_) {
    if (adapter->isCloud()) return adapter;
  }
  return nullptr;
}

Endpoint Dispatcher::pickInstance(const std::vector<Endpoint>& instances,
                                  Ipv4 client) {
  ES_ASSERT(!instances.empty());
  return localScheduler_->pick(instances, client);
}

overload::CircuitBreaker* Dispatcher::breakerFor(
    const ClusterAdapter& cluster) {
  if (governor_ == nullptr || !governor_->options().breakerEnabled ||
      cluster.isCloud()) {
    return nullptr;
  }
  return &governor_->breaker(cluster.name());
}

bool Dispatcher::answerFromCloud(const ServiceModel& service, Ipv4 client,
                                 const ResolveCallback& cb, bool shed,
                                 trace::RequestId rid, const char* why) {
  ClusterAdapter* cloud = cloudAdapter();
  if (cloud == nullptr) return false;
  const auto ready = cloud->readyInstances(service);
  if (ready.empty()) return false;
  Redirect redirect{localScheduler_->pick(ready, client), cloud->name(),
                    false};
  redirect.degraded = true;
  redirect.shed = shed;
  if (trace_ != nullptr) {
    trace_->instant(rid, why, "overload", sim_.now(),
                    {{"instance", redirect.instance.toString()}});
  }
  sim_.schedule(SimTime::zero(), [cb, redirect] { cb(redirect); });
  return true;
}

void Dispatcher::recordPhase(const ServiceModel& service,
                             ClusterAdapter& cluster, const char* phase,
                             SimTime duration) {
  if (ClusterTelemetry* handles = clusterTelemetry(cluster.name())) {
    if (const auto it = handles->phases.find(phase);
        it != handles->phases.end()) {
      it->second->observe(duration.toSeconds());
    }
  }
  if (recorder_ == nullptr) return;
  recorder_->addSample(
      strprintf("%s/%s/%s", service.tag.c_str(), cluster.name().c_str(), phase),
      duration.toSeconds());
}

void Dispatcher::tracePhase(const std::string& key, const char* phase,
                            SimTime start, bool ok) {
  if (trace_ == nullptr) return;
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  trace_->completeSpan(it->second.rid, phase, "deploy", start, sim_.now(),
                       {{"ok", ok ? "true" : "false"}}, it->second.span);
}

void Dispatcher::resolve(const ServiceModel& service, Ipv4 client,
                         ResolveCallback cb, trace::RequestId rid,
                         SimTime deadline) {
  ES_ASSERT(cb != nullptr);
  ES_ASSERT_MSG(std::this_thread::get_id() == controlThread_,
                "Dispatcher::resolve off the control (simulation) thread; "
                "worker threads must marshal via Simulation::postExternal");

  // 1. Memorized flow? Redirect to the same instance without rescheduling.
  if (const auto memorized = memory_.lookup(client, service.address)) {
    // Verify the instance is still alive; a scaled-down instance must not
    // receive traffic.
    ClusterAdapter* adapter = adapterByName(memorized->cluster);
    if (adapter != nullptr) {
      const auto ready = adapter->readyInstances(service);
      for (const auto& instance : ready) {
        if (instance == memorized->instance) {
          memory_.touch(client, service.address, sim_.now());
          if (trace_ != nullptr) {
            trace_->instant(rid, "flow-memory-hit", "controller", sim_.now(),
                            {{"instance", memorized->instance.toString()},
                             {"cluster", memorized->cluster}});
          }
          Redirect redirect{memorized->instance, memorized->cluster, true};
          sim_.schedule(SimTime::zero(),
                        [cb, redirect] { cb(redirect); });
          return;
        }
      }
    }
    memory_.forgetInstance(memorized->instance);  // stale entry
  }
  if (trace_ != nullptr) {
    trace_->instant(rid, "flow-memory-miss", "controller", sim_.now());
  }

  // 2. Gather system state for the scheduler.
  ScheduleRequest request;
  request.service = service.address;
  request.client = client;
  for (const auto* adapter : adapters_) {
    ClusterView view = adapter->view(service);
    if (proximity_ != nullptr) {
      // Mobility: the client's current attachment decides who is nearest.
      const int rank = proximity_->distanceRank(client, view.name);
      if (rank >= 0) view.distanceRank = rank;
    }
    request.clusters.push_back(std::move(view));
  }

  // 3. FAST / BEST decision (quarantined clusters are filtered out).
  const GlobalDecision decision = scheduler_.schedule(request, sim_.now());
  if (decision.fast.has_value()) {
    if (ClusterTelemetry* handles = clusterTelemetry(*decision.fast)) {
      handles->decisionsFast->add();
    }
  }
  if (decision.best.has_value()) {
    if (ClusterTelemetry* handles = clusterTelemetry(*decision.best)) {
      handles->decisionsBest->add();
    }
  }
  if (trace_ != nullptr) {
    trace_->completeSpan(
        rid, "schedule", "scheduler", sim_.now(), sim_.now(),
        {{"fast", decision.fast.value_or("<none>")},
         {"best", decision.best.value_or("<none>")}});
  }

  // 4. Background deployment for BEST ("without waiting", fig. 3).
  if (decision.deploysWithoutWaiting()) {
    if (ClusterAdapter* best = adapterByName(*decision.best)) {
      ++background_;
      ES_DEBUG("dispatcher", "background deployment of %s on %s",
               service.uniqueName.c_str(), best->name().c_str());
      if (trace_ != nullptr) {
        trace_->instant(rid, "background-deploy", "scheduler", sim_.now(),
                        {{"cluster", best->name()}});
      }
      const Endpoint serviceAddress = service.address;
      const std::string clusterName = best->name();
      ensureReady(service, *best,
                  [this, serviceAddress, clusterName](Result<Endpoint> result) {
                    if (!result.ok()) {
                      ES_WARN("dispatcher", "background deployment failed: %s",
                              result.error().toString().c_str());
                      return;
                    }
                    if (backgroundListener_) {
                      backgroundListener_(serviceAddress, clusterName,
                                          result.value());
                    }
                  },
                  rid);
    }
  }

  // 5. FAST choice resolves the current request.
  ClusterAdapter* fast =
      decision.fast.has_value() ? adapterByName(*decision.fast) : nullptr;
  if (fast == nullptr) {
    // Forward toward the cloud.
    ClusterAdapter* cloud = cloudAdapter();
    if (cloud == nullptr) {
      sim_.schedule(SimTime::zero(), [cb] {
        cb(makeError(Errc::kUnavailable,
                     "no cluster can serve the request and no cloud exists"));
      });
      return;
    }
    fast = cloud;
  }

  overload::CircuitBreaker* breaker = breakerFor(*fast);
  const auto ready = fast->readyInstances(service);
  if (!ready.empty()) {
    // Local Scheduler choice within the cluster (fig. 6).
    const Redirect redirect{localScheduler_->pick(ready, client),
                            fast->name(), false};
    if (trace_ != nullptr) {
      trace_->instant(rid, "local-schedule", "scheduler", sim_.now(),
                      {{"instance", redirect.instance.toString()},
                       {"cluster", redirect.cluster},
                       {"policy", options_.instancePolicy}});
    }
    // A ready-instance answer is success evidence for the cluster's
    // breaker (and settles a half-open probe without one ever starting).
    if (breaker != nullptr) breaker->recordSuccess(sim_.now(), 0.0);
    memory_.upsert(client, service.address, redirect.instance, fast->name(),
                   sim_.now());
    sim_.schedule(SimTime::zero(), [cb, redirect] { cb(redirect); });
    return;
  }

  // Brownout: sustained shedding means waiting on ANY deployment is a
  // losing game -- force the paper's "without waiting" behaviour (fig. 3)
  // for every cold request: deploy on the chosen edge in the background,
  // answer the client from a ready cloud instance right now.
  if (governor_ != nullptr && !fast->isCloud() &&
      governor_->brownoutActive(sim_.now()) &&
      answerFromCloud(service, client, cb, /*shed=*/false, rid,
                      "brownout-redirect")) {
    if (auto* counter = governor_->brownoutRedirectCounter()) counter->add();
    const SimTime deployStart = sim_.now();
    ensureReady(service, *fast,
                [this, breaker, deployStart](Result<Endpoint> result) {
                  if (breaker == nullptr) return;
                  if (result.ok()) {
                    breaker->recordSuccess(
                        sim_.now(), (sim_.now() - deployStart).toSeconds());
                  } else {
                    breaker->recordFailure(sim_.now());
                  }
                },
                rid);
    return;
  }

  // Deploy on demand and wait for readiness (fig. 5).  Under the governor,
  // a half-open breaker treats this deployment as its probe, and the
  // request's deadline budget caps the wait: when it expires first, the
  // waiter is answered with a shed degraded cloud redirect while the
  // deployment itself keeps running.
  bool probeStarted = false;
  if (breaker != nullptr &&
      breaker->state(sim_.now()) == overload::BreakerState::kHalfOpen) {
    breaker->beginProbe(sim_.now());
    probeStarted = true;
  }
  auto answered = std::make_shared<bool>(false);
  auto budgetTimer = std::make_shared<EventHandle>();
  if (governor_ != nullptr && deadline < SimTime::max()) {
    const SimTime now = sim_.now();
    const SimTime delay = deadline > now ? deadline - now : SimTime::zero();
    *budgetTimer = sim_.schedule(delay, [this, service, client, cb, answered,
                                         rid] {
      if (*answered) return;
      *answered = true;
      governor_->noteShed(overload::ShedReason::kBudgetExpired);
      if (!answerFromCloud(service, client, cb, /*shed=*/true, rid,
                           "budget-expired")) {
        cb(makeError(Errc::kTimeout,
                     "request deadline budget expired before " +
                         service.uniqueName + " deployed"));
      }
    });
  }
  const SimTime deployStart = sim_.now();
  const std::string clusterName = fast->name();
  ensureReady(service, *fast,
              [this, service, client, clusterName, cb, rid, breaker,
               probeStarted, deployStart, answered,
               budgetTimer](Result<Endpoint> result) {
                budgetTimer->cancel();
                if (breaker != nullptr) {
                  if (result.ok()) {
                    breaker->recordSuccess(
                        sim_.now(), (sim_.now() - deployStart).toSeconds());
                  } else if (result.error().code ==
                             Errc::kResourceExhausted) {
                    // A deploy-token refusal judges the governor's cap, not
                    // the cluster's health -- release the probe slot
                    // without recording an outcome.
                    if (probeStarted) breaker->cancelProbe(sim_.now());
                  } else {
                    breaker->recordFailure(sim_.now());
                  }
                }
                if (*answered) {
                  // The budget expired first and the waiter already got its
                  // shed cloud answer; the deployment outcome only feeds
                  // the breaker (and FlowMemory for future requests).
                  if (result.ok()) {
                    memory_.upsert(client, service.address, result.value(),
                                   clusterName, sim_.now());
                  }
                  return;
                }
                *answered = true;
                if (!result.ok()) {
                  // Graceful degradation: the edge deployment died even after
                  // retries -- answer from the cloud rather than failing the
                  // client.  Not memorized, so the next request tries the
                  // edge again (by then the quarantine may have lifted).
                  ClusterAdapter* cloud = cloudAdapter();
                  if (options_.cloudFallback && cloud != nullptr &&
                      cloud->name() != clusterName) {
                    const auto cloudReady = cloud->readyInstances(service);
                    if (!cloudReady.empty()) {
                      ++fallbacks_;
                      if (ClusterTelemetry* handles =
                              clusterTelemetry(clusterName)) {
                        handles->fallbacks->add();
                      }
                      if (trace_ != nullptr) {
                        trace_->instant(
                            rid, "cloud-fallback", "deploy", sim_.now(),
                            {{"failed_cluster", clusterName},
                             {"error", result.error().toString()}});
                      }
                      if (recorder_ != nullptr) {
                        recorder_->addSample("fallback", 1.0);
                        recorder_->addSample(
                            strprintf("%s/%s/fallback", service.tag.c_str(),
                                      clusterName.c_str()),
                            1.0);
                      }
                      ES_WARN("dispatcher",
                              "degrading %s to cloud after failure on %s: %s",
                              service.uniqueName.c_str(), clusterName.c_str(),
                              result.error().toString().c_str());
                      Redirect redirect{localScheduler_->pick(cloudReady,
                                                              client),
                                        cloud->name(), false};
                      redirect.degraded = true;
                      cb(redirect);
                      return;
                    }
                  }
                  cb(result.error());
                  return;
                }
                memory_.upsert(client, service.address, result.value(),
                               clusterName, sim_.now());
                cb(Redirect{result.value(), clusterName, false});
              },
              rid);
}

void Dispatcher::ensureReady(const ServiceModel& service,
                             ClusterAdapter& cluster, ReadyCallback cb,
                             trace::RequestId rid) {
  ES_ASSERT(cb != nullptr);

  const auto ready = cluster.readyInstances(service);
  if (!ready.empty()) {
    const Endpoint instance = ready.front();
    sim_.schedule(SimTime::zero(), [cb, instance] { cb(instance); });
    return;
  }

  const std::string key = service.uniqueName + "@" + cluster.name();
  if (const auto it = pending_.find(key); it != pending_.end()) {
    if (trace_ != nullptr) {
      // Coalesced onto the in-flight deployment: the phases are traced
      // under the initiating request's ID; this one just marks the join.
      trace_->instant(rid, "join-deployment", "deploy", sim_.now(),
                      {{"key", key},
                       {"initiator",
                        strprintf("%llu", static_cast<unsigned long long>(
                                              it->second.rid))}});
    }
    it->second.waiters.push_back(std::move(cb));
    return;
  }

  // A NEW deployment on an edge cluster costs one of the governor's
  // per-cluster deploy tokens (joining an in-flight one above does not).
  // At the cap the request is refused with kResourceExhausted, which flows
  // into resolve()'s cloud-fallback degradation; the cloud itself is never
  // capped -- it is the degradation target.
  bool holdsToken = false;
  if (governor_ != nullptr && !cluster.isCloud()) {
    if (!governor_->tryAcquireDeployToken(cluster.name())) {
      governor_->noteShed(overload::ShedReason::kDeployCap);
      if (trace_ != nullptr) {
        trace_->instant(rid, "deploy-cap", "overload", sim_.now(),
                        {{"cluster", cluster.name()},
                         {"in_use", strprintf("%d", governor_->deployTokensInUse(
                                                        cluster.name()))}});
      }
      ES_DEBUG("dispatcher", "deploy cap reached on %s; refusing deployment",
               cluster.name().c_str());
      const std::string name = cluster.name();
      sim_.schedule(SimTime::zero(), [cb = std::move(cb), name] {
        cb(makeError(Errc::kResourceExhausted,
                     "concurrent deployment cap reached on " + name));
      });
      return;
    }
    holdsToken = true;
  }

  PendingDeploy deploy;
  deploy.waiters.push_back(std::move(cb));
  deploy.startedAt = sim_.now();
  deploy.cluster = cluster.name();
  deploy.rid = rid;
  deploy.holdsToken = holdsToken;
  if (trace_ != nullptr) {
    deploy.span = trace_->beginSpan(rid, "deploy", "deploy", sim_.now(),
                                    {{"cluster", cluster.name()},
                                     {"service", service.uniqueName}});
  }
  const SimTime hardDeadline =
      options_.deployTimeout *
      static_cast<std::int64_t>(options_.retry.maxRetries + 1);
  deploy.timeoutHandle = sim_.schedule(hardDeadline, [this, key] {
    finishDeploy(key, makeError(Errc::kTimeout, "deployment timed out"));
  });
  pending_.emplace(key, std::move(deploy));
  ++deployments_;
  if (ClusterTelemetry* handles = clusterTelemetry(cluster.name())) {
    handles->deployments->add();
  }
  runPhases(service, cluster, key, /*epoch=*/0);
}

void Dispatcher::armPhaseTimer(const ServiceModel& service,
                               ClusterAdapter& cluster, const std::string& key,
                               int epoch) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  it->second.phaseTimer.cancel();
  if (options_.phaseTimeout <= SimTime::zero()) return;
  it->second.phaseTimer =
      sim_.schedule(options_.phaseTimeout, [this, service, &cluster, key,
                                            epoch] {
        onPhaseFailure(service, cluster, key, epoch,
                       makeError(Errc::kTimeout, "deployment phase timed out on " +
                                                     cluster.name()));
      });
}

void Dispatcher::onPhaseFailure(const ServiceModel& service,
                                ClusterAdapter& cluster, const std::string& key,
                                int epoch, Error error) {
  const auto it = pending_.find(key);
  if (it == pending_.end() || it->second.epoch != epoch) return;
  PendingDeploy& deploy = it->second;
  deploy.phaseTimer.cancel();
  ++deploy.epoch;  // invalidate every callback of the failed attempt
  if (deploy.retriesUsed >= options_.retry.maxRetries) {
    finishDeploy(key, std::move(error));
    return;
  }
  const SimTime delay = options_.retry.backoff(deploy.retriesUsed);
  ++deploy.retriesUsed;
  ++retries_;
  if (ClusterTelemetry* handles = clusterTelemetry(cluster.name())) {
    handles->retries->add();
  }
  if (trace_ != nullptr) {
    trace_->instant(deploy.rid, "retry", "deploy", sim_.now(),
                    {{"attempt", strprintf("%d/%d", deploy.retriesUsed,
                                           options_.retry.maxRetries)},
                     {"cluster", cluster.name()},
                     {"backoff_ms", strprintf("%.1f", delay.toMillis())},
                     {"error", error.toString()}});
  }
  if (recorder_ != nullptr) {
    recorder_->addSample("retry", 1.0);
    recorder_->addSample(strprintf("%s/%s/retry", service.tag.c_str(),
                                   cluster.name().c_str()),
                         delay.toSeconds());
  }
  ES_INFO("dispatcher", "retry %d/%d of %s on %s in %.3fs after: %s",
          deploy.retriesUsed, options_.retry.maxRetries,
          service.uniqueName.c_str(), cluster.name().c_str(), delay.toSeconds(),
          error.toString().c_str());
  const int nextEpoch = deploy.epoch;
  sim_.schedule(delay, [this, service, &cluster, key, nextEpoch] {
    runPhases(service, cluster, key, nextEpoch);
  });
}

void Dispatcher::invokeOnCluster(
    ClusterAdapter& cluster,
    std::function<void(ClusterAdapter::Callback)> invoke,
    ClusterAdapter::Callback done) {
  if (cluster.domain() == sim_.activeDomainId()) {
    invoke(std::move(done));
    return;
  }
  Simulation& sim = sim_;
  // The completion fires inside the cluster's domain; hop home before
  // touching any dispatcher state (pending_, telemetry, traces -- all
  // control-domain-owned).
  auto homeward = [&sim, done = std::move(done)](Status status) {
    sim.scheduleOn(kControlDomain, SimTime::zero(),
                   [done, status] { done(status); });
  };
  sim_.scheduleOn(cluster.domain(), SimTime::zero(),
                  [invoke = std::move(invoke),
                   homeward = std::move(homeward)] { invoke(homeward); });
}

void Dispatcher::probeOnCluster(ClusterAdapter& cluster, Endpoint instance,
                                ClusterAdapter::ProbeCallback done) {
  if (cluster.domain() == sim_.activeDomainId()) {
    cluster.probeInstance(instance, std::move(done));
    return;
  }
  Simulation& sim = sim_;
  ClusterAdapter* clusterPtr = &cluster;
  auto homeward = [&sim, done = std::move(done)](bool open) {
    sim.scheduleOn(kControlDomain, SimTime::zero(),
                   [done, open] { done(open); });
  };
  sim_.scheduleOn(cluster.domain(), SimTime::zero(),
                  [clusterPtr, instance, homeward = std::move(homeward)] {
                    clusterPtr->probeInstance(instance, homeward);
                  });
}

void Dispatcher::runPhases(const ServiceModel& service,
                           ClusterAdapter& cluster, const std::string& key,
                           int epoch) {
  const auto it = pending_.find(key);
  if (it == pending_.end() || it->second.epoch != epoch) return;
  const ClusterView view = cluster.view(service);
  const SimTime phaseStart = sim_.now();
  armPhaseTimer(service, cluster, key, epoch);

  ClusterAdapter* clusterPtr = &cluster;
  if (!view.imageCached) {
    // Phase 1: Pull.
    invokeOnCluster(
        cluster,
        [clusterPtr, service](ClusterAdapter::Callback cb) {
          clusterPtr->pullImages(service, std::move(cb));
        },
        [this, service, &cluster, key, epoch, phaseStart](Status status) {
          const auto pit = pending_.find(key);
          if (pit == pending_.end() || pit->second.epoch != epoch) return;
          recordPhase(service, cluster, "pull", sim_.now() - phaseStart);
          tracePhase(key, "pull", phaseStart, status.ok());
          if (!status.ok()) {
            onPhaseFailure(service, cluster, key, epoch, status.error());
            return;
          }
          runPhases(service, cluster, key, epoch);
        });
    return;
  }

  if (!view.serviceCreated) {
    // Phase 2: Create.
    invokeOnCluster(
        cluster,
        [clusterPtr, service](ClusterAdapter::Callback cb) {
          clusterPtr->createService(service, std::move(cb));
        },
        [this, service, &cluster, key, epoch, phaseStart](Status status) {
          const auto pit = pending_.find(key);
          if (pit == pending_.end() || pit->second.epoch != epoch) return;
          recordPhase(service, cluster, "create", sim_.now() - phaseStart);
          tracePhase(key, "create", phaseStart, status.ok());
          if (!status.ok()) {
            onPhaseFailure(service, cluster, key, epoch, status.error());
            return;
          }
          runPhases(service, cluster, key, epoch);
        });
    return;
  }

  // Phase 3: Scale Up, then wait for the port to open.  The phase timer
  // armed above spans the scale-up command plus the wait.
  invokeOnCluster(
      cluster,
      [clusterPtr, service](ClusterAdapter::Callback cb) {
        clusterPtr->scaleUp(service, std::move(cb));
      },
      [this, service, &cluster, key, epoch, phaseStart](Status status) {
        const auto pit = pending_.find(key);
        if (pit == pending_.end() || pit->second.epoch != epoch) return;
        recordPhase(service, cluster, "scaleup-cmd", sim_.now() - phaseStart);
        tracePhase(key, "scaleup", phaseStart, status.ok());
        if (!status.ok()) {
          onPhaseFailure(service, cluster, key, epoch, status.error());
          return;
        }
        pollUntilReady(service, cluster, key, sim_.now(), epoch);
      });
}

void Dispatcher::pollUntilReady(const ServiceModel& service,
                                ClusterAdapter& cluster, const std::string& key,
                                SimTime scaledUpAt, int epoch) {
  // "Before setting up the flows, the controller continuously tests if the
  // respective port is open" (§VI).
  const auto it = pending_.find(key);
  if (it == pending_.end() || it->second.epoch != epoch) {
    return;  // timed out or superseded by a retry meanwhile
  }
  const auto ready = cluster.readyInstances(service);
  if (!ready.empty()) {
    const Endpoint candidate = ready.front();
    probeOnCluster(
        cluster, candidate,
        [this, service, &cluster, key, scaledUpAt, epoch,
         candidate](bool open) {
          const auto pit = pending_.find(key);
          if (pit == pending_.end() || pit->second.epoch != epoch) return;
          if (open) {
            recordPhase(service, cluster, "wait", sim_.now() - scaledUpAt);
            tracePhase(key, "wait", scaledUpAt, /*ok=*/true);
            finishDeploy(key, candidate);
            return;
          }
          sim_.schedule(
              options_.portPollInterval,
              [this, service, &cluster, key, scaledUpAt, epoch] {
                pollUntilReady(service, cluster, key, scaledUpAt, epoch);
              });
        });
    return;
  }
  sim_.schedule(options_.portPollInterval,
                [this, service, &cluster, key, scaledUpAt, epoch] {
                  pollUntilReady(service, cluster, key, scaledUpAt, epoch);
                });
}

void Dispatcher::finishDeploy(const std::string& key,
                              Result<Endpoint> result) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  auto waiters = std::move(it->second.waiters);
  it->second.timeoutHandle.cancel();
  it->second.phaseTimer.cancel();
  const std::string cluster = it->second.cluster;
  const trace::RequestId deployRid = it->second.rid;
  const bool holdsToken = it->second.holdsToken;
  if (trace_ != nullptr) {
    trace_->endSpan(it->second.span, sim_.now(),
                    {{"ok", result.ok() ? "true" : "false"},
                     {"retries", strprintf("%d", it->second.retriesUsed)}});
  }
  pending_.erase(it);
  if (holdsToken && governor_ != nullptr) {
    governor_->releaseDeployToken(cluster);
  }

  if (!result.ok()) {
    // The retry budget is spent: hide the cluster from scheduling decisions
    // until the cooldown passes.  The cloud is never quarantined -- it is
    // the degradation target.
    ClusterAdapter* adapter = adapterByName(cluster);
    const bool isCloud = adapter != nullptr && adapter->isCloud();
    if (!isCloud && options_.quarantineCooldown > SimTime::zero()) {
      scheduler_.quarantine(cluster, sim_.now() + options_.quarantineCooldown);
      ++quarantines_;
      if (ClusterTelemetry* handles = clusterTelemetry(cluster)) {
        handles->quarantines->add();
      }
      if (trace_ != nullptr) {
        trace_->instant(deployRid, "quarantine", "deploy", sim_.now(),
                        {{"cluster", cluster},
                         {"cooldown_s",
                          strprintf("%.1f",
                                    options_.quarantineCooldown.toSeconds())},
                         {"error", result.error().toString()}});
      }
      if (recorder_ != nullptr) recorder_->addSample("quarantine", 1.0);
      ES_WARN("dispatcher", "quarantining %s for %.1fs after: %s",
              cluster.c_str(), options_.quarantineCooldown.toSeconds(),
              result.error().toString().c_str());
    }
  }

  for (auto& waiter : waiters) waiter(result);
}

}  // namespace edgesim::core
