#include "core/service_catalog.hpp"

#include "util/assert.hpp"

namespace edgesim::core {

using container::AppProfile;
using container::ImageRef;
using container::makeImage;
using namespace timeliterals;

namespace {

constexpr const char* kAsmYaml = R"(# asmttpd -- smallest possible web service
spec:
  template:
    spec:
      containers:
      - name: web-asm
        image: josefhammer/web-asm:amd64
        ports:
        - containerPort: 80
)";

constexpr const char* kNginxYaml = R"(# plain nginx web server
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
)";

constexpr const char* kResnetYaml = R"(# TensorFlow Serving with built-in ResNet50 model
spec:
  template:
    spec:
      containers:
      - name: resnet
        image: gcr.io/tensorflow-serving/resnet:latest
        ports:
        - containerPort: 8501
)";

constexpr const char* kNginxPyYaml = R"(# nginx + python env-writer sidecar sharing index.html
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
        volumeMounts:
        - name: shared-html
          mountPath: /usr/share/nginx/html
      - name: env-writer
        image: josefhammer/env-writer-py:latest
        env:
        - name: WRITE_INTERVAL_SECONDS
          value: "1"
        volumeMounts:
        - name: shared-html
          mountPath: /out
      volumes:
      - name: shared-html
        hostPath:
          path: /data/edge/shared-html
)";

}  // namespace

ServiceCatalog::ServiceCatalog() {
  // ---- images -----------------------------------------------------------
  const auto asmRef = *ImageRef::parse("josefhammer/web-asm:amd64");
  const auto nginxRef = *ImageRef::parse("nginx:1.23.2");
  const auto resnetRef = *ImageRef::parse("gcr.io/tensorflow-serving/resnet:latest");
  const auto pyRef = *ImageRef::parse("josefhammer/env-writer-py:latest");

  Bytes asmSize;
  ES_ASSERT(parseBytes("6.18 KiB", asmSize));
  const auto asmImage = makeImage(asmRef, asmSize, 1);
  const auto nginxImage = makeImage(nginxRef, 135_MiB, 6);
  const auto resnetImage = makeImage(resnetRef, 308_MiB, 9);
  // Table I: nginx + env-writer-py together are 181 MiB / 7 layers, so the
  // Python helper adds 46 MiB in a single layer on top of the nginx image.
  const auto pyImage = makeImage(pyRef, 46_MiB, 1);

  // ---- app behaviour profiles -------------------------------------------
  // Asm: negligible launch time ("allows us to measure the minimal overhead
  // of starting a service in a container"); trivial request handling.
  AppProfile asmApp;
  asmApp.startupDelay = 8_ms;
  asmApp.requestCompute = SimTime::micros(150);
  asmApp.responseBytes = Bytes{512};  // short plain-text file
  profiles_.add(asmRef.toString(), asmApp);

  // Nginx: fast, but a real event loop + config parse at startup.
  AppProfile nginxApp;
  nginxApp.startupDelay = 60_ms;
  nginxApp.requestCompute = SimTime::micros(350);
  nginxApp.responseBytes = Bytes{612};
  profiles_.add(nginxRef.toString(), nginxApp);

  // ResNet: TensorFlow Serving must load the model before the port answers
  // ("loading a model takes time; thus, we expect a higher startup time"),
  // and inference dominates warm request time (fig. 16).
  AppProfile resnetApp;
  resnetApp.startupDelay = 3200_ms;
  resnetApp.requestCompute = 180_ms;
  resnetApp.computeJitterSigma = 0.15;
  resnetApp.responseBytes = Bytes{2048};  // classification scores JSON
  profiles_.add(resnetRef.toString(), resnetApp);

  // env-writer: helper container, no service port; interpreter startup only
  // matters for the Create/Scale-Up accounting of the two-container service.
  AppProfile pyApp;
  pyApp.exposesPort = false;
  pyApp.startupDelay = 250_ms;
  profiles_.add(pyRef.toString(), pyApp);

  // ---- catalogue rows ----------------------------------------------------
  CatalogEntry asmEntry;
  asmEntry.key = "asm";
  asmEntry.displayName = "Asm";
  asmEntry.yaml = kAsmYaml;
  asmEntry.images = {asmImage};
  entries_.push_back(asmEntry);

  CatalogEntry nginxEntry;
  nginxEntry.key = "nginx";
  nginxEntry.displayName = "Nginx";
  nginxEntry.yaml = kNginxYaml;
  nginxEntry.images = {nginxImage};
  entries_.push_back(nginxEntry);

  CatalogEntry resnetEntry;
  resnetEntry.key = "resnet";
  resnetEntry.displayName = "ResNet";
  resnetEntry.yaml = kResnetYaml;
  resnetEntry.images = {resnetImage};
  resnetEntry.requestMethod = HttpMethod::kPost;
  Bytes catPicture;
  ES_ASSERT(parseBytes("83 KiB", catPicture));
  resnetEntry.requestPayload = catPicture;
  entries_.push_back(resnetEntry);

  CatalogEntry nginxPyEntry;
  nginxPyEntry.key = "nginx-py";
  nginxPyEntry.displayName = "Nginx+Py";
  nginxPyEntry.yaml = kNginxPyYaml;
  nginxPyEntry.images = {nginxImage, pyImage};
  nginxPyEntry.containerCount = 2;
  entries_.push_back(nginxPyEntry);
}

const CatalogEntry& ServiceCatalog::entry(const std::string& key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return e;
  }
  ES_ASSERT_MSG(false, "unknown catalogue key");
  return entries_.front();  // unreachable
}

bool ServiceCatalog::has(const std::string& key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return true;
  }
  return false;
}

void ServiceCatalog::publishImages(container::Registry& registry) const {
  for (const auto& e : entries_) {
    for (const auto& image : e.images) registry.push(image);
  }
}

void ServiceCatalog::seedImages(const std::string& key,
                                container::LayerStore& store) const {
  for (const auto& image : entry(key).images) store.commitImage(image);
}

Bytes ServiceCatalog::totalImageSize(const std::string& key) const {
  Bytes total;
  for (const auto& image : entry(key).images) total += image.totalSize();
  return total;
}

std::size_t ServiceCatalog::totalLayerCount(const std::string& key) const {
  std::size_t total = 0;
  for (const auto& image : entry(key).images) total += image.layerCount();
  return total;
}

}  // namespace edgesim::core
