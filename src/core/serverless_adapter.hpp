// ServerlessAdapter: transparent edge access backed by a Wasm-style FaaS
// runtime instead of a container cluster (the paper's §VIII future work).
//
// The fig. 4 phases map onto the function lifecycle: Pull -> Fetch module,
// Create -> compile, Scale Up -> activate an isolate.  Lightweight HTTP
// services (Asm, Nginx-shaped workloads) fit; heavyweight apps like
// TensorFlow Serving do not run as a small Wasm function, so services whose
// per-request compute exceeds `maxFunctionCompute` are refused -- mirroring
// the container-vs-serverless flexibility trade-off the paper discusses.
#pragma once

#include "core/cluster_adapter.hpp"
#include "serverless/faas_runtime.hpp"

namespace edgesim::core {

class ServerlessAdapter final : public ClusterAdapter {
 public:
  ServerlessAdapter(Simulation& sim, std::string name, int distanceRank,
                    serverless::FaasRuntime& runtime,
                    SimTime mgmtRtt = SimTime::millis(1));

  /// Services whose request compute exceeds this do not fit in a function.
  static constexpr SimTime kMaxFunctionCompute = SimTime::millis(50);

  static bool supportsService(const ServiceModel& service);
  static serverless::FunctionSpec toFunctionSpec(const ServiceModel& service);

  ClusterView view(const ServiceModel& service) const override;
  std::vector<Endpoint> readyInstances(
      const ServiceModel& service) const override;
  void pullImages(const ServiceModel& service, Callback cb) override;
  void createService(const ServiceModel& service, Callback cb) override;
  void scaleUp(const ServiceModel& service, Callback cb) override;
  void scaleDown(const ServiceModel& service, Callback cb) override;
  void removeService(const ServiceModel& service, Callback cb) override;
  void deleteImages(const ServiceModel& service, Callback cb) override;
  void probeInstance(Endpoint instance, ProbeCallback cb) override;

  serverless::FaasRuntime& runtime() { return runtime_; }

 private:
  Status checkSupported(const ServiceModel& service) const;

  Simulation& sim_;
  serverless::FaasRuntime& runtime_;
  SimTime mgmtRtt_;
};

}  // namespace edgesim::core
