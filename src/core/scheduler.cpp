#include "core/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/assert.hpp"

namespace edgesim::core {

namespace {

/// Clusters sorted by distance rank (closest first).
std::vector<const ClusterView*> byDistance(const ScheduleRequest& request) {
  std::vector<const ClusterView*> sorted;
  sorted.reserve(request.clusters.size());
  for (const auto& cluster : request.clusters) sorted.push_back(&cluster);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ClusterView* a, const ClusterView* b) {
                     return a->distanceRank < b->distanceRank;
                   });
  return sorted;
}

const ClusterView* nearestRunning(
    const std::vector<const ClusterView*>& sorted) {
  for (const auto* cluster : sorted) {
    if (!cluster->readyInstances.empty()) return cluster;
  }
  return nullptr;
}

const ClusterView* nearestDeployable(
    const std::vector<const ClusterView*>& sorted) {
  for (const auto* cluster : sorted) {
    if (!cluster->isCloud && cluster->freeCapacity > 0) return cluster;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------

class ProximityScheduler final : public GlobalScheduler {
 public:
  const char* name() const override { return "proximity"; }

  GlobalDecision decide(const ScheduleRequest& request) override {
    const auto sorted = byDistance(request);
    const ClusterView* deployable = nearestDeployable(sorted);
    GlobalDecision decision;
    if (deployable != nullptr) {
      // Nearest deployable cluster, running or not: deploy there and wait
      // if needed.  A running instance in an even nearer cluster cannot
      // exist (deployable is the nearest non-cloud cluster), but a running
      // instance in the *same* cluster is reused by the Dispatcher.
      decision.fast = deployable->name;
    } else if (const ClusterView* running = nearestRunning(sorted)) {
      decision.fast = running->name;  // edge full: use whatever runs
    }
    return decision;  // fast empty => cloud
  }
};

class LatencyFirstScheduler final : public GlobalScheduler {
 public:
  const char* name() const override { return "latency-first"; }

  GlobalDecision decide(const ScheduleRequest& request) override {
    const auto sorted = byDistance(request);
    const ClusterView* running = nearestRunning(sorted);
    const ClusterView* optimal = nearestDeployable(sorted);
    GlobalDecision decision;
    if (running != nullptr) {
      decision.fast = running->name;
      if (optimal != nullptr && optimal->name != running->name &&
          optimal->distanceRank < running->distanceRank) {
        decision.best = optimal->name;  // deploy without waiting (fig. 3)
      }
      return decision;
    }
    // Nothing runs anywhere: deploy on the optimal edge and wait for it
    // (the alternative -- forwarding to a cloud instance -- is the
    // cloud-fallback scheduler's policy).
    if (optimal != nullptr) decision.fast = optimal->name;
    return decision;
  }
};

class CloudFallbackScheduler final : public GlobalScheduler {
 public:
  const char* name() const override { return "cloud-fallback"; }

  GlobalDecision decide(const ScheduleRequest& request) override {
    const auto sorted = byDistance(request);
    const ClusterView* running = nearestRunning(sorted);
    const ClusterView* optimal = nearestDeployable(sorted);
    GlobalDecision decision;
    if (running != nullptr) decision.fast = running->name;  // else cloud
    if (optimal != nullptr &&
        (running == nullptr || optimal->name != running->name)) {
      decision.best = optimal->name;
    }
    return decision;
  }
};

class RoundRobinScheduler final : public GlobalScheduler {
 public:
  const char* name() const override { return "round-robin"; }

  GlobalDecision decide(const ScheduleRequest& request) override {
    std::vector<const ClusterView*> running;
    for (const auto& cluster : request.clusters) {
      if (!cluster.readyInstances.empty() && !cluster.isCloud) {
        running.push_back(&cluster);
      }
    }
    GlobalDecision decision;
    if (!running.empty()) {
      auto& counter = counters_[request.service];
      decision.fast = running[counter % running.size()]->name;
      ++counter;
      return decision;
    }
    const auto sorted = byDistance(request);
    if (const ClusterView* optimal = nearestDeployable(sorted)) {
      decision.fast = optimal->name;
    }
    return decision;
  }

 private:
  std::unordered_map<Endpoint, std::size_t> counters_;
};

}  // namespace

GlobalDecision GlobalScheduler::schedule(ScheduleRequest request, SimTime now) {
  if (!quarantineUntil_.empty() || availabilityFilter_ != nullptr) {
    auto& clusters = request.clusters;
    clusters.erase(std::remove_if(clusters.begin(), clusters.end(),
                                  [&](const ClusterView& view) {
                                    if (view.isCloud) return false;
                                    if (quarantined(view.name, now)) {
                                      return true;
                                    }
                                    return availabilityFilter_ != nullptr &&
                                           !availabilityFilter_(view.name, now);
                                  }),
                   clusters.end());
  }
  return decide(request);
}

void GlobalScheduler::quarantine(const std::string& cluster, SimTime until) {
  SimTime& entry = quarantineUntil_[cluster];
  if (until > entry) entry = until;
}

bool GlobalScheduler::quarantined(const std::string& cluster,
                                  SimTime now) const {
  const auto it = quarantineUntil_.find(cluster);
  return it != quarantineUntil_.end() && now < it->second;
}

std::unique_ptr<GlobalScheduler> makeProximityScheduler() {
  return std::make_unique<ProximityScheduler>();
}
std::unique_ptr<GlobalScheduler> makeLatencyFirstScheduler() {
  return std::make_unique<LatencyFirstScheduler>();
}
std::unique_ptr<GlobalScheduler> makeCloudFallbackScheduler() {
  return std::make_unique<CloudFallbackScheduler>();
}
std::unique_ptr<GlobalScheduler> makeRoundRobinScheduler() {
  return std::make_unique<RoundRobinScheduler>();
}

namespace {

class FirstInstanceScheduler final : public LocalScheduler {
 public:
  const char* name() const override { return "first"; }
  Endpoint pick(const std::vector<Endpoint>& instances, Ipv4) override {
    ES_ASSERT(!instances.empty());
    return instances.front();
  }
};

class InstanceRoundRobinScheduler final : public LocalScheduler {
 public:
  const char* name() const override { return "instance-round-robin"; }
  Endpoint pick(const std::vector<Endpoint>& instances, Ipv4) override {
    ES_ASSERT(!instances.empty());
    return instances[counter_++ % instances.size()];
  }

 private:
  std::size_t counter_ = 0;
};

class ClientHashScheduler final : public LocalScheduler {
 public:
  const char* name() const override { return "client-hash"; }
  Endpoint pick(const std::vector<Endpoint>& instances, Ipv4 client) override {
    ES_ASSERT(!instances.empty());
    // splitmix-style scramble for a uniform, deterministic mapping.
    std::uint64_t h = client.value;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return instances[h % instances.size()];
  }
};

}  // namespace

std::unique_ptr<LocalScheduler> makeFirstInstanceScheduler() {
  return std::make_unique<FirstInstanceScheduler>();
}
std::unique_ptr<LocalScheduler> makeInstanceRoundRobinScheduler() {
  return std::make_unique<InstanceRoundRobinScheduler>();
}
std::unique_ptr<LocalScheduler> makeClientHashScheduler() {
  return std::make_unique<ClientHashScheduler>();
}

std::unique_ptr<LocalScheduler> makeLocalScheduler(const std::string& name) {
  if (name == "instance-round-robin") return makeInstanceRoundRobinScheduler();
  if (name == "client-hash") return makeClientHashScheduler();
  return makeFirstInstanceScheduler();
}

SchedulerRegistry::SchedulerRegistry() {
  registerScheduler("proximity",
                    [](const Config&) { return makeProximityScheduler(); });
  registerScheduler("latency-first",
                    [](const Config&) { return makeLatencyFirstScheduler(); });
  registerScheduler("cloud-fallback",
                    [](const Config&) { return makeCloudFallbackScheduler(); });
  registerScheduler("round-robin",
                    [](const Config&) { return makeRoundRobinScheduler(); });
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::registerScheduler(const std::string& name,
                                          Factory factory) {
  ES_ASSERT(factory != nullptr);
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<GlobalScheduler>> SchedulerRegistry::create(
    const std::string& name, const Config& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    return makeError(Errc::kNotFound, "unknown scheduler: " + name);
  }
  return it->second(config);
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace edgesim::core
