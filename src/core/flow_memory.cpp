#include "core/flow_memory.hpp"

#include <algorithm>
#include <mutex>

namespace edgesim::core {

FlowMemory::FlowMemory(SimTime idleTimeout, std::size_t shards,
                       telemetry::MetricsRegistry* telemetry)
    : idleTimeout_(idleTimeout) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (telemetry != nullptr) {
      const std::string index = std::to_string(i);
      shard->hits = &telemetry->counter("edgesim_flow_memory_lookups_total",
                                        {{"shard", index}, {"result", "hit"}});
      shard->misses = &telemetry->counter(
          "edgesim_flow_memory_lookups_total",
          {{"shard", index}, {"result", "miss"}});
      shard->expirations = &telemetry->counter(
          "edgesim_flow_memory_evictions_total",
          {{"shard", index}, {"reason", "expired"}});
      shard->invalidations = &telemetry->counter(
          "edgesim_flow_memory_evictions_total",
          {{"shard", index}, {"reason", "invalidated"}});
      shard->occupancy =
          &telemetry->gauge("edgesim_flow_memory_flows", {{"shard", index}});
    }
    shards_.push_back(std::move(shard));
  }
}

void FlowMemory::upsert(Ipv4 client, Endpoint service, Endpoint instance,
                        const std::string& cluster, SimTime now) {
  const Key key{client, service};
  Shard& shard = shardFor(key);
  std::unique_lock lock(shard.mutex);
  auto [it, inserted] = shard.flows.try_emplace(key);
  StoredFlow& stored = it->second;
  stored.client = Endpoint(client, 0);
  stored.service = service;
  stored.instance = instance;
  stored.cluster = cluster;
  stored.lastSeenNanos.store(now.toNanos(), std::memory_order_relaxed);
  if (inserted) {
    size_.fetch_add(1, std::memory_order_relaxed);
    if (shard.occupancy != nullptr) shard.occupancy->add(1);
  }
}

void FlowMemory::touch(Ipv4 client, Endpoint service, SimTime now) {
  const Key key{client, service};
  Shard& shard = shardFor(key);
  std::shared_lock lock(shard.mutex);
  const auto it = shard.flows.find(key);
  if (it == shard.flows.end()) return;
  // CAS-max: concurrent touches of one flow keep the latest timestamp
  // without ever upgrading to the exclusive lock.
  auto& lastSeen = it->second.lastSeenNanos;
  std::int64_t seen = lastSeen.load(std::memory_order_relaxed);
  const std::int64_t candidate = now.toNanos();
  while (seen < candidate &&
         !lastSeen.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
  }
}

bool FlowMemory::rebind(Ipv4 client, Endpoint service, Endpoint instance,
                        const std::string& cluster, SimTime now) {
  const Key key{client, service};
  Shard& shard = shardFor(key);
  std::unique_lock lock(shard.mutex);
  const auto it = shard.flows.find(key);
  if (it == shard.flows.end()) return false;
  StoredFlow& stored = it->second;
  stored.instance = instance;
  stored.cluster = cluster;
  stored.lastSeenNanos.store(now.toNanos(), std::memory_order_relaxed);
  return true;
}

std::vector<MemorizedFlow> FlowMemory::flowsForClient(Ipv4 client) const {
  std::vector<MemorizedFlow> flows;
  for (const auto& shardPtr : shards_) {
    const Shard& shard = *shardPtr;
    std::shared_lock lock(shard.mutex);
    for (const auto& [key, flow] : shard.flows) {
      if (key.client == client) flows.push_back(flow.snapshot());
    }
  }
  return flows;
}

std::vector<MemorizedFlow> FlowMemory::snapshot() const {
  std::vector<MemorizedFlow> flows;
  flows.reserve(size());
  for (const auto& shardPtr : shards_) {
    const Shard& shard = *shardPtr;
    std::shared_lock lock(shard.mutex);
    for (const auto& [key, flow] : shard.flows) {
      flows.push_back(flow.snapshot());
    }
  }
  return flows;
}

std::optional<MemorizedFlow> FlowMemory::lookup(Ipv4 client,
                                                Endpoint service) const {
  const Key key{client, service};
  const Shard& shard = shardFor(key);
  std::shared_lock lock(shard.mutex);
  const auto it = shard.flows.find(key);
  if (it == shard.flows.end()) {
    if (shard.misses != nullptr) shard.misses->add();
    return std::nullopt;
  }
  if (shard.hits != nullptr) shard.hits->add();
  return it->second.snapshot();
}

std::vector<MemorizedFlow> FlowMemory::expire(SimTime now) {
  std::vector<MemorizedFlow> expired;
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::unique_lock lock(shard.mutex);
    for (auto it = shard.flows.begin(); it != shard.flows.end();) {
      const SimTime lastSeen = SimTime::nanos(
          it->second.lastSeenNanos.load(std::memory_order_relaxed));
      if (now - lastSeen >= idleTimeout_) {
        expired.push_back(it->second.snapshot());
        it = shard.flows.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        if (shard.expirations != nullptr) shard.expirations->add();
        if (shard.occupancy != nullptr) shard.occupancy->add(-1);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

void FlowMemory::forgetInstance(Endpoint instance) {
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::unique_lock lock(shard.mutex);
    for (auto it = shard.flows.begin(); it != shard.flows.end();) {
      if (it->second.instance == instance) {
        it = shard.flows.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        if (shard.invalidations != nullptr) shard.invalidations->add();
        if (shard.occupancy != nullptr) shard.occupancy->add(-1);
      } else {
        ++it;
      }
    }
  }
}

void FlowMemory::forgetServiceExcept(Endpoint service,
                                     const std::string& keepCluster) {
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::unique_lock lock(shard.mutex);
    for (auto it = shard.flows.begin(); it != shard.flows.end();) {
      if (it->second.service == service && it->second.cluster != keepCluster) {
        it = shard.flows.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        if (shard.invalidations != nullptr) shard.invalidations->add();
        if (shard.occupancy != nullptr) shard.occupancy->add(-1);
      } else {
        ++it;
      }
    }
  }
}

std::size_t FlowMemory::flowsFor(Endpoint service,
                                 const std::string& cluster) const {
  std::size_t count = 0;
  for (const auto& shardPtr : shards_) {
    const Shard& shard = *shardPtr;
    std::shared_lock lock(shard.mutex);
    for (const auto& [key, flow] : shard.flows) {
      if (flow.service == service && flow.cluster == cluster) ++count;
    }
  }
  return count;
}

}  // namespace edgesim::core
