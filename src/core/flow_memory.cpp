#include "core/flow_memory.hpp"

#include <algorithm>

namespace edgesim::core {

void FlowMemory::upsert(Ipv4 client, Endpoint service, Endpoint instance,
                        const std::string& cluster, SimTime now) {
  MemorizedFlow flow;
  flow.client = Endpoint(client, 0);
  flow.service = service;
  flow.instance = instance;
  flow.cluster = cluster;
  flow.lastSeen = now;
  flows_[Key{client, service}] = std::move(flow);
}

void FlowMemory::touch(Ipv4 client, Endpoint service, SimTime now) {
  const auto it = flows_.find(Key{client, service});
  if (it != flows_.end()) {
    it->second.lastSeen = std::max(it->second.lastSeen, now);
  }
}

const MemorizedFlow* FlowMemory::lookup(Ipv4 client, Endpoint service) const {
  const auto it = flows_.find(Key{client, service});
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<MemorizedFlow> FlowMemory::expire(SimTime now) {
  std::vector<MemorizedFlow> expired;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.lastSeen >= idleTimeout_) {
      expired.push_back(it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void FlowMemory::forgetInstance(Endpoint instance) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.instance == instance) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void FlowMemory::forgetServiceExcept(Endpoint service,
                                     const std::string& keepCluster) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.service == service && it->second.cluster != keepCluster) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t FlowMemory::flowsFor(Endpoint service,
                                 const std::string& cluster) const {
  std::size_t count = 0;
  for (const auto& [key, flow] : flows_) {
    if (flow.service == service && flow.cluster == cluster) ++count;
  }
  return count;
}

}  // namespace edgesim::core
