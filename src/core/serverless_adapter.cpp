#include "core/serverless_adapter.hpp"

namespace edgesim::core {

ServerlessAdapter::ServerlessAdapter(Simulation& sim, std::string name,
                                     int distanceRank,
                                     serverless::FaasRuntime& runtime,
                                     SimTime mgmtRtt)
    : ClusterAdapter(std::move(name), distanceRank),
      sim_(sim),
      runtime_(runtime),
      mgmtRtt_(mgmtRtt) {}

bool ServerlessAdapter::supportsService(const ServiceModel& service) {
  if (service.containers.empty()) return false;
  // Single lightweight HTTP handler only: no sidecars, bounded compute.
  if (service.containers.size() > 1) return false;
  return service.containers.front().app.requestCompute <= kMaxFunctionCompute;
}

serverless::FunctionSpec ServerlessAdapter::toFunctionSpec(
    const ServiceModel& service) {
  serverless::FunctionSpec spec;
  spec.name = service.uniqueName;
  const auto& app = service.containers.front().app;
  spec.profile.requestCompute = app.requestCompute;
  spec.profile.computeJitterSigma = app.computeJitterSigma;
  spec.profile.responseBytes = app.responseBytes;
  return spec;
}

Status ServerlessAdapter::checkSupported(const ServiceModel& service) const {
  if (!supportsService(service)) {
    return makeError(Errc::kFailedPrecondition,
                     service.uniqueName + " does not fit a Wasm function");
  }
  return Status();
}

ClusterView ServerlessAdapter::view(const ServiceModel& service) const {
  ClusterView view;
  view.name = name();
  view.distanceRank = distanceRank();
  view.readyInstances = readyInstances(service);
  view.imageCached = runtime_.moduleCached(service.uniqueName);
  view.serviceCreated = runtime_.deployed(service.uniqueName);
  view.freeCapacity = supportsService(service) ? 1000 : 0;
  return view;
}

std::vector<Endpoint> ServerlessAdapter::readyInstances(
    const ServiceModel& service) const {
  return runtime_.activeEndpoints(service.uniqueName);
}

void ServerlessAdapter::pullImages(const ServiceModel& service, Callback cb) {
  if (const Status status = checkSupported(service); !status.ok()) {
    sim_.schedule(SimTime::zero(), [cb, status] { cb(status); });
    return;
  }
  runtime_.fetchModule(toFunctionSpec(service), std::move(cb));
}

void ServerlessAdapter::createService(const ServiceModel& service,
                                      Callback cb) {
  if (const Status status = checkSupported(service); !status.ok()) {
    sim_.schedule(SimTime::zero(), [cb, status] { cb(status); });
    return;
  }
  runtime_.deployFunction(toFunctionSpec(service), std::move(cb));
}

void ServerlessAdapter::scaleUp(const ServiceModel& service, Callback cb) {
  runtime_.activate(service.uniqueName, [cb](Result<Endpoint> result) {
    if (result.ok()) {
      cb(Status());
    } else {
      cb(result.error());
    }
  });
}

void ServerlessAdapter::scaleDown(const ServiceModel& service, Callback cb) {
  runtime_.deactivate(service.uniqueName, std::move(cb));
}

void ServerlessAdapter::removeService(const ServiceModel& service,
                                      Callback cb) {
  runtime_.removeFunction(service.uniqueName, std::move(cb));
}

void ServerlessAdapter::deleteImages(const ServiceModel& service,
                                     Callback cb) {
  // Modules are removed together with the function (removeService).
  runtime_.removeFunction(service.uniqueName, std::move(cb));
}

void ServerlessAdapter::probeInstance(Endpoint instance, ProbeCallback cb) {
  sim_.schedule(mgmtRtt_, [this, instance, cb] {
    cb(runtime_.host().ip() == instance.ip &&
       runtime_.host().listening(instance.port));
  });
}

}  // namespace edgesim::core
