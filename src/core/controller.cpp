#include "core/controller.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "core/rule_reconciler.hpp"
#include "util/log.hpp"

namespace edgesim::core {

using openflow::ActionList;
using openflow::BufferId;
using openflow::FlowEntry;
using openflow::FlowMatch;
using openflow::OpenFlowSwitch;
using openflow::OutputAction;
using openflow::PacketIn;
using openflow::SetFieldAction;

ControllerOptions ControllerOptions::fromConfig(const Config& config) {
  ControllerOptions options;
  options.scheduler = config.getStringOr("scheduler", options.scheduler);
  options.switchIdleTimeout = SimTime::millis(
      config.getIntOr("switch_idle_timeout_ms",
                      options.switchIdleTimeout.toNanos() / 1000000));
  options.memoryIdleTimeout = SimTime::millis(
      config.getIntOr("memory_idle_timeout_ms",
                      options.memoryIdleTimeout.toNanos() / 1000000));
  options.scaleDownIdleServices =
      config.getBoolOr("scale_down_idle", options.scaleDownIdleServices);
  options.portPollInterval = SimTime::millis(
      config.getIntOr("port_poll_interval_ms",
                      options.portPollInterval.toNanos() / 1000000));
  options.localScheduler =
      config.getStringOr("local_scheduler", options.localScheduler);
  options.instancePolicy =
      config.getStringOr("instance_policy", options.instancePolicy);
  options.removeIdleAfter = SimTime::millis(
      config.getIntOr("remove_idle_after_ms",
                      options.removeIdleAfter.toNanos() / 1000000));
  options.deleteImagesOnRemove =
      config.getBoolOr("delete_images_on_remove", options.deleteImagesOnRemove);
  options.deployTimeout = SimTime::millis(
      config.getIntOr("deploy_timeout_ms",
                      options.deployTimeout.toNanos() / 1000000));
  options.phaseTimeout = SimTime::millis(
      config.getIntOr("phase_timeout_ms",
                      options.phaseTimeout.toNanos() / 1000000));
  options.deployRetries = static_cast<int>(
      config.getIntOr("deploy_retries", options.deployRetries));
  options.retryBackoff = SimTime::millis(
      config.getIntOr("retry_backoff_ms",
                      options.retryBackoff.toNanos() / 1000000));
  options.cloudFallback =
      config.getBoolOr("cloud_fallback", options.cloudFallback);
  options.quarantineCooldown = SimTime::millis(
      config.getIntOr("quarantine_cooldown_ms",
                      options.quarantineCooldown.toNanos() / 1000000));
  options.flowShards = static_cast<std::size_t>(
      config.getIntOr("flow_shards", static_cast<long long>(options.flowShards)));
  options.workers = static_cast<std::size_t>(
      config.getIntOr("workers", static_cast<long long>(options.workers)));
  options.overload = overload::OverloadOptions::fromConfig(config);
  options.reliableFlowMods =
      config.getBoolOr("reliable_flow_mods", options.reliableFlowMods);
  options.flowModAckTimeout = SimTime::millis(
      config.getIntOr("flow_mod_ack_timeout_ms",
                      options.flowModAckTimeout.toNanos() / 1000000));
  options.flowModRetries = static_cast<int>(
      config.getIntOr("flow_mod_retries", options.flowModRetries));
  // Reconciliation is keyed twice: `reconcile_enabled: true` turns it on at
  // the default 1s period, `reconcile_period_ms` sets (and implies) it.
  options.reconcilePeriod = SimTime::millis(
      config.getIntOr("reconcile_period_ms",
                      options.reconcilePeriod.toNanos() / 1000000));
  if (config.getBoolOr("reconcile_enabled", false) &&
      options.reconcilePeriod == SimTime::zero()) {
    options.reconcilePeriod = SimTime::seconds(1.0);
  }
  options.reconcileSweepTimeout = SimTime::millis(
      config.getIntOr("reconcile_sweep_timeout_ms",
                      options.reconcileSweepTimeout.toNanos() / 1000000));
  return options;
}

EdgeController::EdgeController(Simulation& sim, ControllerOptions options,
                               std::vector<ClusterAdapter*> adapters,
                               const AppProfileRegistry& profiles,
                               metrics::Recorder* recorder,
                               trace::TraceRecorder* trace,
                               telemetry::MetricsRegistry* telemetry)
    : sim_(sim),
      options_(options),
      profiles_(profiles),
      recorder_(recorder),
      trace_(trace),
      telemetry_(telemetry),
      memory_(options.memoryIdleTimeout,
              options.flowShards == 0 ? 1 : options.flowShards, telemetry),
      adapters_(std::move(adapters)) {
  if (telemetry_ != nullptr) {
    warmHist_ = &telemetry_->histogram("edgesim_resolve_seconds",
                                       {{"path", "warm"}});
    resolvedCtr_ = &telemetry_->counter("edgesim_requests_total",
                                        {{"outcome", "resolved"}});
    failedCtr_ = &telemetry_->counter("edgesim_requests_total",
                                      {{"outcome", "failed"}});
    degradedCtr_ = &telemetry_->counter("edgesim_requests_total",
                                        {{"outcome", "degraded"}});
    scaleDownsCtr_ = &telemetry_->counter("edgesim_scale_downs_total");
  }
  if (options_.overload.enabled) {
    governor_ = std::make_unique<overload::OverloadGovernor>(
        options_.overload, telemetry_);
  }
  auto scheduler =
      SchedulerRegistry::instance().create(options_.scheduler, Config());
  ES_ASSERT_MSG(scheduler.ok(), "unknown scheduler in controller options");
  scheduler_ = std::move(scheduler).value();
  if (governor_ != nullptr && options_.overload.breakerEnabled) {
    // Circuit breakers veto clusters at scheduling time, next to (and
    // before) quarantine.
    scheduler_->setAvailabilityFilter(
        [gov = governor_.get()](const std::string& cluster, SimTime now) {
          return gov->clusterAllowed(cluster, now);
        });
  }

  DispatcherOptions dispatcherOptions;
  dispatcherOptions.portPollInterval = options_.portPollInterval;
  dispatcherOptions.instancePolicy = options_.instancePolicy;
  dispatcherOptions.deployTimeout = options_.deployTimeout;
  dispatcherOptions.phaseTimeout = options_.phaseTimeout;
  dispatcherOptions.retry.maxRetries = options_.deployRetries;
  dispatcherOptions.retry.initialBackoff = options_.retryBackoff;
  dispatcherOptions.cloudFallback = options_.cloudFallback;
  dispatcherOptions.quarantineCooldown = options_.quarantineCooldown;
  dispatcher_ = std::make_unique<Dispatcher>(
      sim_, memory_, *scheduler_, adapters_, recorder_, dispatcherOptions,
      trace_, telemetry_, governor_.get());

  // §IV-A2: once a BEST (background) deployment is running, future
  // requests must go there.  Forget memorized flows that point elsewhere;
  // switch flows of in-flight connections are left to finish and idle out,
  // but each client's next packet-in re-schedules onto the new instance.
  dispatcher_->setBackgroundReadyListener(
      [this](Endpoint service, const std::string& cluster, Endpoint) {
        memory_.forgetServiceExcept(service, cluster);
        ++migrations_;
        ES_INFO("controller", "BEST instance ready on %s; future requests "
                "for %s will be re-scheduled there",
                cluster.c_str(), service.toString().c_str());
      });

  memoryScan_.start(sim_, options_.memoryScanPeriod, [this] {
    expireMemory();
    return true;
  }, options_.memoryScanPeriod);

  if (options_.workers > 0) {
    LaneExecutorOptions poolOptions;
    poolOptions.workers = options_.workers;
    if (governor_ != nullptr) {
      poolOptions.queueCapacity = options_.overload.laneQueueCapacity;
      poolOptions.shedPolicy =
          options_.overload.shedPolicy == "deadline-aware"
              ? ShedPolicy::kDeadlineAware
              : ShedPolicy::kRejectNewest;
    }
    pool_ = std::make_unique<LaneExecutor>(poolOptions);
    if (telemetry_ != nullptr) {
      auto* waitHist = &telemetry_->histogram("edgesim_lane_wait_seconds");
      auto* depth = &telemetry_->gauge("edgesim_lane_queue_depth");
      LaneExecutor::TaskObserver observer;
      observer.onTaskStart = [waitHist, depth](double waitSeconds,
                                               std::int64_t inFlight) {
        waitHist->observe(waitSeconds);
        depth->set(inFlight);
      };
      observer.onTaskShed = [depth](std::int64_t inFlight) {
        depth->set(inFlight);
      };
      pool_->setTaskObserver(std::move(observer));
    }
  }

  if (options_.reconcilePeriod > SimTime::zero()) {
    ReconcilerOptions reconcilerOptions;
    reconcilerOptions.period = options_.reconcilePeriod;
    reconcilerOptions.sweepTimeout = options_.reconcileSweepTimeout;
    reconciler_ = std::make_unique<RuleReconciler>(
        sim_, *this, reconcilerOptions, telemetry_, trace_);
    reconciler_->start();
  }
}

EdgeController::~EdgeController() {
  // Join the workers before any member they touch is destroyed.
  pool_.reset();
  reconciler_.reset();
}

void EdgeController::submitRequest(Ipv4 client, Endpoint serviceAddress,
                                   Dispatcher::ResolveCallback cb) {
  ES_ASSERT(cb != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // The deadline budget starts at submit: it rides through the lane queue
  // (deadline-aware shedding), the FlowMemory lookup, and the dispatcher's
  // deployment wait.
  SimTime deadline = SimTime::max();
  if (governor_ != nullptr &&
      governor_->options().requestBudget > SimTime::zero()) {
    deadline = sim_.approxNow() + governor_->options().requestBudget;
  }
  if (pool_ == nullptr) {
    handleSubmit(client, serviceAddress, std::move(cb), deadline);
    return;
  }
  // Lane = FlowMemory shard of (client, service): requests for the same
  // flow are handled in submission order; independent flows in parallel.
  const std::uint64_t lane = memory_.shardIndex(client, serviceAddress);
  if (governor_ == nullptr) {
    pool_->post(lane, [this, client, serviceAddress, cb = std::move(cb)] {
      handleSubmit(client, serviceAddress, std::move(cb), SimTime::max());
    });
    return;
  }
  // Bounded admission: the callback is shared between the task body and
  // its onShed path -- exactly one of the two ever runs.
  auto shared =
      std::make_shared<Dispatcher::ResolveCallback>(std::move(cb));
  LaneExecutor::TaskMeta meta;
  meta.deadlineNanos = deadline == SimTime::max() ? 0 : deadline.toNanos();
  meta.onShed = [this, serviceAddress, shared] {
    shedRequest(overload::ShedReason::kQueueFull, serviceAddress, *shared);
  };
  pool_->post(
      lane,
      [this, client, serviceAddress, shared, deadline] {
        handleSubmit(client, serviceAddress, std::move(*shared), deadline);
      },
      std::move(meta));
}

void EdgeController::shedRequest(overload::ShedReason reason,
                                 Endpoint serviceAddress,
                                 const Dispatcher::ResolveCallback& cb) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  governor_->noteShed(reason);
  // cloudRedirects_ is immutable after setup, so this lock-free read is
  // safe from any lane worker.
  if (const auto it = cloudRedirects_.find(serviceAddress);
      it != cloudRedirects_.end()) {
    cb(it->second);
    return;
  }
  cb(makeError(Errc::kUnavailable,
               "request shed (" + std::string(shedReasonName(reason)) +
                   ") and no cloud instance hosts " +
                   serviceAddress.toString()));
}

void EdgeController::handleSubmit(Ipv4 client, Endpoint serviceAddress,
                                  Dispatcher::ResolveCallback cb,
                                  SimTime deadline) {
  packetIns_.fetch_add(1, std::memory_order_relaxed);
  if (governor_ != nullptr && deadline < SimTime::max() &&
      sim_.approxNow() >= deadline) {
    // The budget burned away while the request sat in the lane queue:
    // fail fast to the cloud instead of doing work nobody waits for.
    shedRequest(overload::ShedReason::kBudgetExpired, serviceAddress, cb);
    return;
  }
  if (const auto memorized = memory_.lookup(client, serviceAddress)) {
    // Warm path: answered entirely on this worker.  The memorized instance
    // is trusted -- scale-down and migration invalidate FlowMemory before
    // the instance goes away (forgetInstance / forgetServiceExcept).
    const SimTime now = sim_.approxNow();
    memory_.touch(client, serviceAddress, now);
    warmHits_.fetch_add(1, std::memory_order_relaxed);
    resolved_.fetch_add(1, std::memory_order_relaxed);
    if (warmHist_ != nullptr) {
      // Warm answers complete within the same sim instant; the series
      // carries the count (and the registry's striped cells keep this
      // worker-thread safe).
      warmHist_->observe(0.0);
      resolvedCtr_->add();
    }
    if (trace_ != nullptr) {
      const trace::RequestId rid = trace_->newRequest();
      trace_->instant(rid, "warm-hit", "controller", now,
                      {{"client", client.toString()},
                       {"instance", memorized->instance.toString()},
                       {"cluster", memorized->cluster}});
    }
    cb(Redirect{memorized->instance, memorized->cluster, true});
    return;
  }
  // Cold miss: deployment state lives on the simulation thread.  With no
  // pool this call already IS the simulation thread (submitRequest's
  // contract), so resolve directly; from a lane worker, marshal through
  // the one thread-safe seam.  The Dispatcher's per-(service, cluster)
  // pending table then coalesces concurrent cold requests into a single
  // deployment.
  if (pool_ == nullptr) {
    resolveCold(client, serviceAddress, std::move(cb), deadline);
    return;
  }
  sim_.postExternal(
      [this, client, serviceAddress, deadline, cb = std::move(cb)]() mutable {
        resolveCold(client, serviceAddress, std::move(cb), deadline);
      });
}

void EdgeController::resolveCold(Ipv4 client, Endpoint serviceAddress,
                                 Dispatcher::ResolveCallback cb,
                                 SimTime deadline) {
  if (governor_ != nullptr && deadline < SimTime::max() &&
      sim_.now() >= deadline) {
    // Budget burned between the worker's hand-off and this sim-thread
    // turn; same fail-fast answer as in the lane queue.
    shedRequest(overload::ShedReason::kBudgetExpired, serviceAddress, cb);
    return;
  }
  const ServiceModel* service = serviceAt(serviceAddress);
  if (service == nullptr) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (failedCtr_ != nullptr) failedCtr_->add();
    cb(makeError(Errc::kNotFound,
                 "no service registered at " + serviceAddress.toString()));
    return;
  }
  trace::RequestId rid = 0;
  trace::SpanId span = 0;
  if (trace_ != nullptr) {
    rid = trace_->newRequest();
    trace_->instant(rid, "submit-cold", "controller", sim_.now(),
                    {{"client", client.toString()},
                     {"service", serviceAddress.toString()}});
    span = trace_->beginSpan(rid, "resolve", "controller", sim_.now(),
                             {{"service", service->uniqueName}});
  }
  const SimTime startedAt = sim_.now();
  const std::string tag = service->tag;
  dispatcher_->resolve(
      *service, client,
      [this, span, rid, startedAt, serviceAddress, tag,
       cb = std::move(cb)](Result<Redirect> result) {
        if (!result.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          if (failedCtr_ != nullptr) failedCtr_->add();
          if (trace_ != nullptr) {
            trace_->endSpan(span, sim_.now(),
                            {{"ok", "false"},
                             {"error", result.error().toString()}});
          }
          cb(std::move(result));
          return;
        }
        if (result.value().shed) {
          // The dispatcher failed fast on an expired deadline budget; the
          // governor already counted the reason -- the request lands in
          // the shed bucket, not resolved.
          shed_.fetch_add(1, std::memory_order_relaxed);
          if (trace_ != nullptr) {
            trace_->endSpan(span, sim_.now(),
                            {{"ok", "true"},
                             {"shed", "true"},
                             {"instance", result.value().instance.toString()},
                             {"cluster", result.value().cluster}});
          }
          cb(std::move(result));
          return;
        }
        resolved_.fetch_add(1, std::memory_order_relaxed);
        if (result.value().degraded) {
          degraded_.fetch_add(1, std::memory_order_relaxed);
        }
        recordResolveOutcome(serviceAddress, tag, startedAt,
                             result.value().fromMemory,
                             result.value().degraded, rid);
        if (trace_ != nullptr) {
          trace_->endSpan(span, sim_.now(),
                          {{"ok", "true"},
                           {"instance", result.value().instance.toString()},
                           {"cluster", result.value().cluster}});
        }
        cb(std::move(result));
      },
      rid, deadline);
}

telemetry::Histogram* EdgeController::coldHistogram(
    Endpoint serviceAddress) const {
  const auto it = coldHists_.find(serviceAddress);
  return it == coldHists_.end() ? nullptr : it->second;
}

void EdgeController::recordResolveOutcome(Endpoint serviceAddress,
                                          const std::string& tag,
                                          SimTime startedAt, bool fromMemory,
                                          bool degraded,
                                          trace::RequestId rid) {
  if (telemetry_ == nullptr) return;
  const double seconds = (sim_.now() - startedAt).toSeconds();
  if (fromMemory) {
    warmHist_->observe(seconds);
  } else if (auto* hist = coldHistogram(serviceAddress); hist != nullptr) {
    hist->observe(seconds);
  }
  resolvedCtr_->add();
  if (degraded) degradedCtr_->add();
  if (!fromMemory && watchdog_ != nullptr) {
    watchdog_->observeRequest(tag, seconds, rid);
  }
}

Result<const ServiceModel*> EdgeController::registerService(
    const std::string& yaml, Endpoint serviceAddress, const std::string& tag) {
  if (services_.count(serviceAddress) != 0) {
    return makeError(Errc::kAlreadyExists,
                     "service already registered at " +
                         serviceAddress.toString());
  }
  AnnotatorConfig annotatorConfig;
  annotatorConfig.localScheduler = options_.localScheduler;
  auto annotated = annotateServiceYaml(yaml, serviceAddress, annotatorConfig);
  if (!annotated.ok()) return annotated.error();

  auto model = buildServiceModel(annotated.value(), serviceAddress, profiles_);
  if (!model.ok()) return model.error();
  model.value().tag = tag;

  auto owned = std::make_unique<ServiceModel>(std::move(model).value());
  // The "real" service exists in the cloud from day one -- that is what
  // the transparent approach redirects away from.  Its address doubles as
  // the governor's shed target: a request dropped under overload is
  // answered with this degraded redirect without touching any adapter
  // state, so lane workers can shed without marshalling to the sim thread.
  for (auto* adapter : adapters_) {
    if (adapter->isCloud()) {
      const Endpoint cloudInstance =
          static_cast<CloudAdapter*>(adapter)->hostService(*owned);
      Redirect redirect{cloudInstance, adapter->name(), false};
      redirect.degraded = true;
      redirect.shed = true;
      cloudRedirects_.emplace(serviceAddress, redirect);
    }
  }
  const ServiceModel* result = owned.get();
  services_.emplace(serviceAddress, std::move(owned));
  if (telemetry_ != nullptr) {
    coldHists_[serviceAddress] = &telemetry_->histogram(
        "edgesim_resolve_seconds",
        {{"path", "cold"}, {"service", result->tag}});
  }
  ES_INFO("controller", "registered service %s at %s (tag %s)",
          result->uniqueName.c_str(), serviceAddress.toString().c_str(),
          tag.c_str());
  return result;
}

void EdgeController::attachSwitch(OpenFlowSwitch& sw,
                                  SwitchTopology topology) {
  // Background reachability flows: plain routing to every known host at the
  // lowest priority, so only *first packets of registered services* (and
  // unknown destinations) reach the controller.
  for (const auto& [ip, port] : topology.hostPorts) {
    FlowEntry entry;
    entry.priority = 1;
    entry.match.ipDst = ip;
    entry.actions = {OutputAction{port}};
    sw.sendFlowMod(entry);
  }
  switches_.emplace(&sw, std::move(topology));
  sw.setController(this);
}

const ServiceModel* EdgeController::serviceAt(Endpoint address) const {
  const auto it = services_.find(address);
  return it == services_.end() ? nullptr : it->second.get();
}

void EdgeController::onPacketIn(OpenFlowSwitch& sw, const PacketIn& event) {
  ++packetIns_;
  const Endpoint dst = event.packet.dstEndpoint();
  const ServiceModel* service = serviceAt(dst);
  if (service == nullptr) {
    handleUnregistered(sw, event);
    return;
  }
  handleRegisteredService(sw, event, *service);
}

void EdgeController::handleUnregistered(OpenFlowSwitch& sw,
                                        const PacketIn& event) {
  const auto topoIt = switches_.find(&sw);
  if (topoIt == switches_.end()) return;
  const SwitchTopology& topo = topoIt->second;
  const PortId out = topo.portFor(event.packet.ipDst);
  if (out == kInvalidPort) {
    ES_DEBUG("controller", "no route for %s; dropping",
             event.packet.summary().c_str());
    return;
  }
  // Install a coarse forwarding flow for this destination and release the
  // packet along it.
  FlowEntry entry;
  entry.priority = 10;
  entry.match.ipDst = event.packet.ipDst;
  entry.idleTimeout = options_.switchIdleTimeout;
  entry.actions = {OutputAction{out}};
  sw.sendFlowMod(entry);
  sw.sendPacketOut(event.bufferId, event.packet, entry.actions);
}

ActionList EdgeController::redirectActions(OpenFlowSwitch& sw,
                                           const ServiceModel& service,
                                           Endpoint instance) const {
  const SwitchTopology& topo = switches_.at(&sw);
  ActionList actions;
  if (instance != service.address) {
    actions.push_back(SetFieldAction::ipDst(instance.ip));
    actions.push_back(SetFieldAction::tcpDst(instance.port));
  }
  actions.push_back(OutputAction{topo.portFor(instance.ip)});
  return actions;
}

void EdgeController::handleRegisteredService(OpenFlowSwitch& sw,
                                             const PacketIn& event,
                                             const ServiceModel& service) {
  const Ipv4 client = event.packet.ipSrc;
  const PendingKey key{client, service.address};

  auto& pending = pendingRequests_[key];
  pending.sw = &sw;
  pending.buffered.emplace_back(event.bufferId, event.packet);
  if (pending.resolving) {
    // Duplicate packet-in (e.g. a retransmitted SYN) while deployment is in
    // progress: buffered, will be released with the first one.
    if (trace_ != nullptr) {
      trace_->instant(pending.rid, "packet-in-duplicate", "controller",
                      sim_.now(), {{"buffer", strprintf("%u", event.bufferId)}});
    }
    return;
  }
  pending.resolving = true;
  pending.startedAt = sim_.now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SimTime deadline = SimTime::max();
  if (governor_ != nullptr &&
      governor_->options().requestBudget > SimTime::zero()) {
    deadline = sim_.now() + governor_->options().requestBudget;
  }

  // Allocate the per-request trace ID here, at packet-in: everything the
  // request triggers downstream (FlowMemory lookup, scheduler decision,
  // deployment phases, flow install) is stamped with it, and the client-side
  // timecurl measurement joins via the (client, service) flow binding.
  if (trace_ != nullptr) {
    pending.rid = trace_->newRequest();
    trace_->bindFlow(client, service.address, pending.rid);
    trace_->instant(pending.rid, "packet-in", "controller", sim_.now(),
                    {{"client", client.toString()},
                     {"service", service.address.toString()},
                     {"packet", event.packet.summary()}});
    pending.resolveSpan = trace_->beginSpan(
        pending.rid, "resolve", "controller", sim_.now(),
        {{"service", service.uniqueName}});
  }
  const trace::RequestId rid = pending.rid;

  dispatcher_->resolve(
      service, client,
      [this, key, &sw, &service](Result<Redirect> result) {
        trace::SpanId resolveSpan = 0;
        trace::RequestId rrid = 0;
        SimTime startedAt = sim_.now();
        if (const auto it = pendingRequests_.find(key);
            it != pendingRequests_.end()) {
          resolveSpan = it->second.resolveSpan;
          rrid = it->second.rid;
          startedAt = it->second.startedAt;
        }
        if (!result.ok()) {
          ++failed_;
          if (failedCtr_ != nullptr) failedCtr_->add();
          ES_WARN("controller", "resolve failed for %s: %s",
                  service.uniqueName.c_str(),
                  result.error().toString().c_str());
          if (trace_ != nullptr) {
            trace_->endSpan(resolveSpan, sim_.now(),
                            {{"ok", "false"},
                             {"error", result.error().toString()}});
          }
          dropBuffered(key);
          return;
        }
        const Redirect& redirect = result.value();
        if (redirect.shed) {
          // Deadline budget expired mid-deployment: the redirect still
          // points the client at the cloud (flows below), but the request
          // counts as shed, not resolved.
          ++shed_;
        } else {
          ++resolved_;
          if (redirect.degraded) {
            ++degraded_;
            ES_INFO("controller",
                    "degraded resolve for %s -> cloud instance %s",
                    service.uniqueName.c_str(),
                    redirect.instance.toString().c_str());
          }
          recordResolveOutcome(service.address, service.tag, startedAt,
                               redirect.fromMemory, redirect.degraded, rrid);
        }
        if (trace_ != nullptr) {
          trace_->endSpan(resolveSpan, sim_.now(),
                          {{"ok", "true"},
                           {"instance", redirect.instance.toString()},
                           {"cluster", redirect.cluster},
                           {"from_memory",
                            redirect.fromMemory ? "true" : "false"},
                           {"degraded", redirect.degraded ? "true" : "false"}});
          trace_->instant(rrid, "flow-install", "controller", sim_.now(),
                          {{"instance", redirect.instance.toString()},
                           {"cluster", redirect.cluster}});
        }
        installRedirectFlows(sw, key.client, service, redirect.instance);
        releaseBuffered(sw, key, service, redirect.instance);
      },
      rid, deadline);
}

std::vector<FlowEntry> EdgeController::redirectEntries(
    OpenFlowSwitch& sw, Ipv4 client, const ServiceModel& service,
    Endpoint instance) const {
  const SwitchTopology& topo = switches_.at(&sw);
  std::vector<FlowEntry> entries;

  // Forward: client -> registered address, rewritten toward the instance.
  FlowEntry fwd;
  fwd.priority = kRedirectPriority;
  fwd.match = FlowMatch::anyToService(service.address);
  fwd.match.ipSrc = client;
  fwd.idleTimeout = options_.switchIdleTimeout;
  fwd.notifyOnRemoval = true;
  fwd.actions = redirectActions(sw, service, instance);
  entries.push_back(std::move(fwd));

  // Reverse: instance -> client, source rewritten back to the registered
  // address so the redirect stays invisible (fig. 2).
  if (instance != service.address) {
    FlowEntry rev;
    rev.priority = kRedirectPriority;
    rev.match.ipSrc = instance.ip;
    rev.match.tcpSrc = instance.port;
    rev.match.ipDst = client;
    rev.match.ipProto = IpProto::kTcp;
    rev.idleTimeout = options_.switchIdleTimeout;
    rev.actions = {SetFieldAction::ipSrc(service.address.ip),
                   SetFieldAction::tcpSrc(service.address.port),
                   OutputAction{topo.portFor(client)}};
    entries.push_back(std::move(rev));
  }
  return entries;
}

std::uint64_t EdgeController::installRedirectFlows(OpenFlowSwitch& sw,
                                                   Ipv4 client,
                                                   const ServiceModel& service,
                                                   Endpoint instance) {
  const std::uint64_t cookie = cookieCounter_++;
  std::vector<FlowEntry> entries = redirectEntries(sw, client, service,
                                                   instance);
  for (FlowEntry& entry : entries) entry.cookie = cookie;
  believedInstalled_[{&sw, client, service.address}] = cookie;

  if (!options_.reliableFlowMods) {
    for (FlowEntry& entry : entries) sw.sendFlowMod(std::move(entry));
    return cookie;
  }

  PendingInstall install;
  install.sw = &sw;
  install.client = client;
  install.service = service.address;
  install.instance = instance;
  install.entries = std::move(entries);
  pendingInstalls_.emplace(cookie, std::move(install));
  sendTrackedInstall(cookie);
  return cookie;
}

void EdgeController::sendTrackedInstall(std::uint64_t cookie) {
  const auto it = pendingInstalls_.find(cookie);
  if (it == pendingInstalls_.end()) return;
  PendingInstall& install = it->second;
  ++install.attempts;
  const std::uint64_t epoch = ++install.epoch;
  install.outstanding = static_cast<int>(install.entries.size());
  flowModsSent_.fetch_add(install.entries.size(), std::memory_order_relaxed);
  for (const FlowEntry& entry : install.entries) {
    // Resends are safe because FlowMod is install-or-replace: a duplicate
    // upsert of the identical entry is a no-op apart from refreshed stats.
    install.sw->sendFlowMod(
        entry, [this, cookie, epoch] { onFlowModAck(cookie, epoch); });
  }
  install.deadline = sim_.schedule(
      options_.flowModAckTimeout, [this, cookie] { onFlowModDeadline(cookie); });
}

void EdgeController::onFlowModAck(std::uint64_t cookie, std::uint64_t epoch) {
  const auto it = pendingInstalls_.find(cookie);
  if (it == pendingInstalls_.end() || it->second.epoch != epoch) {
    // Ack of a superseded attempt (it already counted as timed out) or of
    // an install that settled; discarding keeps the accounting exact.
    return;
  }
  flowModsAcked_.fetch_add(1, std::memory_order_relaxed);
  if (ctrlAckedCtr_ != nullptr) ctrlAckedCtr_->add();
  if (--it->second.outstanding > 0) return;
  it->second.deadline.cancel();
  pendingInstalls_.erase(it);
}

void EdgeController::onFlowModDeadline(std::uint64_t cookie) {
  const auto it = pendingInstalls_.find(cookie);
  if (it == pendingInstalls_.end()) return;
  PendingInstall& install = it->second;
  // Every ack still missing is a timeout; bump the epoch immediately so a
  // late (stalled) ack of this attempt cannot also decrement the count.
  ++install.epoch;
  ensureCtrlChannelTelemetry();
  flowModsTimedOut_.fetch_add(install.outstanding, std::memory_order_relaxed);
  if (ctrlTimeoutCtr_ != nullptr) ctrlTimeoutCtr_->add(install.outstanding);
  if (install.attempts <= options_.flowModRetries) {
    flowModResends_.fetch_add(1, std::memory_order_relaxed);
    if (ctrlRetriesCtr_ != nullptr) ctrlRetriesCtr_->add();
    RetryPolicy policy;
    policy.maxRetries = options_.flowModRetries;
    policy.initialBackoff = options_.retryBackoff;
    const SimTime backoff = policy.backoff(install.attempts - 1);
    ES_WARN("controller",
            "flow-mod ack timeout (cookie %llu, attempt %d); resending in "
            "%.0f ms",
            static_cast<unsigned long long>(cookie), install.attempts,
            backoff.toSeconds() * 1e3);
    if (trace_ != nullptr) {
      trace_->instant(0, "flowmod_retry", "controller", sim_.now(),
                      {{"cookie", std::to_string(cookie)},
                       {"attempt", std::to_string(install.attempts)}});
    }
    install.deadline =
        sim_.schedule(backoff, [this, cookie] { sendTrackedInstall(cookie); });
    return;
  }
  failOverInstall(cookie);
}

void EdgeController::failOverInstall(std::uint64_t cookie) {
  const auto it = pendingInstalls_.find(cookie);
  if (it == pendingInstalls_.end()) return;
  const PendingInstall install = std::move(it->second);
  pendingInstalls_.erase(it);
  flowModFailovers_.fetch_add(1, std::memory_order_relaxed);
  if (ctrlFailoversCtr_ != nullptr) ctrlFailoversCtr_->add();
  if (trace_ != nullptr) {
    trace_->instant(0, "flowmod_failover", "controller", sim_.now(),
                    {{"cookie", std::to_string(cookie)},
                     {"service", install.service.toString()}});
  }
  const auto cloudIt = cloudRedirects_.find(install.service);
  const ServiceModel* service = serviceAt(install.service);
  if (cloudIt == cloudRedirects_.end() || service == nullptr) {
    // No cloud instance to degrade to: the memorized binding stays; the
    // client's TCP retransmissions re-trigger packet-in once the channel
    // heals, so the flow still is not permanently blackholed.
    ES_WARN("controller",
            "install %llu exhausted retries and no cloud redirect exists "
            "for %s",
            static_cast<unsigned long long>(cookie),
            install.service.toString().c_str());
    return;
  }
  const Redirect& cloud = cloudIt->second;
  ES_WARN("controller",
          "install %llu exhausted retries; degrading %s to cloud instance %s",
          static_cast<unsigned long long>(cookie),
          install.service.toString().c_str(),
          cloud.instance.toString().c_str());
  // Re-point FlowMemory so every later resolve answers from the cloud, and
  // push the cloud entries best-effort (untracked: during an outage these
  // die too, but the memorized cloud binding + TCP retransmission recover
  // the flow as soon as the channel heals).
  if (!memory_.rebind(install.client, install.service, cloud.instance,
                      cloud.cluster, sim_.now())) {
    memory_.upsert(install.client, install.service, cloud.instance,
                   cloud.cluster, sim_.now());
  }
  degraded_.fetch_add(1, std::memory_order_relaxed);
  if (degradedCtr_ != nullptr) degradedCtr_->add();
  std::vector<FlowEntry> entries =
      redirectEntries(*install.sw, install.client, *service, cloud.instance);
  for (FlowEntry& entry : entries) {
    entry.cookie = cookie;
    install.sw->sendFlowMod(std::move(entry));
  }
}

void EdgeController::ensureCtrlChannelTelemetry() {
  if (telemetry_ == nullptr || ctrlTimeoutCtr_ != nullptr) return;
  ctrlAckedCtr_ = &telemetry_->counter("edgesim_ctrl_channel_acks_total",
                                       {{"result", "acked"}});
  ctrlTimeoutCtr_ = &telemetry_->counter("edgesim_ctrl_channel_acks_total",
                                         {{"result", "timeout"}});
  ctrlRetriesCtr_ = &telemetry_->counter("edgesim_ctrl_channel_retries_total");
  ctrlFailoversCtr_ =
      &telemetry_->counter("edgesim_ctrl_channel_failovers_total");
  // Seed the acked series with the acks that arrived before the first
  // timeout registered it, so acked+timeout reconciles with the atomics.
  ctrlAckedCtr_->add(flowModsAcked_.load(std::memory_order_relaxed));
}

std::vector<EdgeController::IntendedFlow> EdgeController::intendedFlows(
    OpenFlowSwitch& sw) const {
  std::vector<IntendedFlow> intended;
  for (const MemorizedFlow& flow : memory_.snapshot()) {
    const ServiceModel* service = serviceAt(flow.service);
    if (service == nullptr) continue;
    // Only flows believed to be on the switch count as intended: a flow
    // whose entry aged out with a delivered FlowRemoved lives on in memory
    // (warm resolution, §V) but is NOT missing switch state.
    if (believedInstalled_.count({&sw, flow.client.ip, flow.service}) == 0) {
      continue;
    }
    IntendedFlow item;
    item.client = flow.client.ip;
    item.service = flow.service;
    item.instance = flow.instance;
    item.entries = redirectEntries(sw, item.client, *service, item.instance);
    intended.push_back(std::move(item));
  }
  // snapshot() walks unordered shards; sort so sweep order (and therefore
  // repair traffic) is deterministic for a given memory state.
  std::sort(intended.begin(), intended.end(),
            [](const IntendedFlow& a, const IntendedFlow& b) {
              if (a.client != b.client) return a.client < b.client;
              return a.service < b.service;
            });
  return intended;
}

bool EdgeController::reinstallRedirect(OpenFlowSwitch& sw, Ipv4 client,
                                       Endpoint serviceAddress,
                                       Endpoint instance) {
  const ServiceModel* service = serviceAt(serviceAddress);
  if (service == nullptr || switches_.count(&sw) == 0) return false;
  installRedirectFlows(sw, client, *service, instance);
  return true;
}

void EdgeController::releaseBuffered(OpenFlowSwitch& sw, const PendingKey& key,
                                     const ServiceModel& service,
                                     Endpoint instance) {
  const auto it = pendingRequests_.find(key);
  if (it == pendingRequests_.end()) return;
  const ActionList actions = redirectActions(sw, service, instance);
  for (const auto& [bufferId, packet] : it->second.buffered) {
    sw.sendPacketOut(bufferId, packet, actions);
  }
  pendingRequests_.erase(it);
}

void EdgeController::dropBuffered(const PendingKey& key) {
  pendingRequests_.erase(key);
  // Buffered packets expire in the switch; TCP retransmission (or the
  // client's timeout) handles the rest.
}

void EdgeController::onFlowRemoved(OpenFlowSwitch& sw,
                                   const openflow::FlowRemoved& event) {
  // A removed forward flow whose entry saw recent traffic refreshes the
  // memorized flow: the client is still active, only the switch entry aged
  // out (short switch timeouts by design, §V).
  const auto& match = event.entry.match;
  if (!match.ipSrc || !match.ipDst || !match.tcpDst) return;
  const Endpoint serviceAddress(*match.ipDst, *match.tcpDst);
  if (services_.count(serviceAddress) == 0) return;
  // The switch told us the entry is gone: this is orderly expiry, not
  // drift, so stop treating the redirect as installed.  The cookie guard
  // keeps a late notification for a superseded entry from clearing the
  // belief about its replacement.
  const auto believedIt = believedInstalled_.find(
      {&sw, *match.ipSrc, serviceAddress});
  if (believedIt != believedInstalled_.end() &&
      believedIt->second == event.entry.cookie) {
    believedInstalled_.erase(believedIt);
  }
  if (event.reason == openflow::RemovalReason::kIdleTimeout &&
      event.entry.stats.packets > 0) {
    memory_.touch(*match.ipSrc, serviceAddress, event.entry.stats.lastUsed);
  }
}

void EdgeController::expireMemory() {
  // Before expiring, sync FlowMemory with switch-side flow statistics:
  // long-lived entries carrying steady traffic never idle out, so their
  // activity is only visible through stats (OFPMP_FLOW).  Expiry decisions
  // are taken after all switches answered.
  if (switches_.empty()) {
    finishExpiry();
    return;
  }
  auto remaining = std::make_shared<std::size_t>(switches_.size());
  for (auto& [sw, topo] : switches_) {
    sw->requestFlowStats(
        [this, remaining](const std::vector<openflow::FlowEntry>& entries) {
          for (const auto& entry : entries) {
            const auto& match = entry.match;
            if (!match.ipSrc || !match.ipDst || !match.tcpDst) continue;
            const Endpoint serviceAddress(*match.ipDst, *match.tcpDst);
            if (services_.count(serviceAddress) == 0) continue;
            if (entry.stats.packets == 0) continue;
            memory_.touch(*match.ipSrc, serviceAddress, entry.stats.lastUsed);
          }
          if (--*remaining == 0) finishExpiry();
        });
  }
}

void EdgeController::finishExpiry() {
  const auto expired = memory_.expire(sim_.now());
  // A flow evicted from memory is no longer intended anywhere: drop the
  // believed-installed marks so any leftover switch entries surface as
  // orphans for the reconciler instead of lingering as stale beliefs.
  for (const auto& flow : expired) {
    for (const auto& [sw, topo] : switches_) {
      believedInstalled_.erase({sw, flow.client.ip, flow.service});
    }
  }
  if (!options_.scaleDownIdleServices) return;
  // One scale-down per (service, cluster) per sweep: when many flows of the
  // same instance expire in a single scan they ALL see flowsFor() == 0, and
  // without the dedupe the instance was scaled down once per flow.
  std::set<std::pair<Endpoint, std::string>> handled;
  for (const auto& flow : expired) {
    if (!handled.insert({flow.service, flow.cluster}).second) continue;
    if (memory_.flowsFor(flow.service, flow.cluster) != 0) continue;
    ClusterAdapter* adapter = dispatcher_->adapterByName(flow.cluster);
    if (adapter == nullptr || adapter->isCloud()) continue;
    const ServiceModel* service = serviceAt(flow.service);
    if (service == nullptr) continue;
    ++scaleDowns_;
    if (scaleDownsCtr_ != nullptr) scaleDownsCtr_->add();
    ES_INFO("controller", "scaling down idle service %s on %s",
            service->uniqueName.c_str(), flow.cluster.c_str());
    ClusterAdapter* adapterPtr = adapter;
    const ServiceModel* servicePtr = service;
    runOnCluster(sim_, *adapter, [adapterPtr, servicePtr] {
      adapterPtr->scaleDown(*servicePtr, [](Status) {});
    });
    scaledDownAt_[{flow.service, flow.cluster}] = sim_.now();
  }

  // Remove / Delete phases after prolonged idle (fig. 4).
  if (options_.removeIdleAfter <= SimTime::zero()) return;
  for (auto it = scaledDownAt_.begin(); it != scaledDownAt_.end();) {
    const auto& [key, since] = *it;
    const auto& [address, clusterName] = key;
    if (memory_.flowsFor(address, clusterName) != 0) {
      // The service came back; forget the pending removal.
      it = scaledDownAt_.erase(it);
      continue;
    }
    if (sim_.now() - since < options_.removeIdleAfter) {
      ++it;
      continue;
    }
    ClusterAdapter* adapter = dispatcher_->adapterByName(clusterName);
    const ServiceModel* service = serviceAt(address);
    if (adapter != nullptr && service != nullptr) {
      ++removals_;
      ES_INFO("controller", "removing long-idle service %s from %s",
              service->uniqueName.c_str(), clusterName.c_str());
      const bool deleteImages = options_.deleteImagesOnRemove;
      ClusterAdapter* adapterPtr = adapter;
      const ServiceModel* servicePtr = service;
      runOnCluster(sim_, *adapter, [deleteImages, adapterPtr, servicePtr] {
        auto afterRemove = [deleteImages, adapterPtr, servicePtr](Status) {
          if (deleteImages) {
            adapterPtr->deleteImages(*servicePtr, [](Status) {});
          }
        };
        adapterPtr->removeService(*servicePtr, std::move(afterRemove));
      });
    }
    it = scaledDownAt_.erase(it);
  }
}

Status EdgeController::predeploy(Endpoint serviceAddress,
                                 const std::string& clusterName,
                                 std::function<void(Result<Endpoint>)> cb) {
  const ServiceModel* service = serviceAt(serviceAddress);
  if (service == nullptr) {
    return makeError(Errc::kNotFound, "no service registered at " +
                                          serviceAddress.toString());
  }
  ClusterAdapter* adapter = dispatcher_->adapterByName(clusterName);
  if (adapter == nullptr) {
    return makeError(Errc::kNotFound, "no cluster named " + clusterName);
  }
  scaledDownAt_.erase({serviceAddress, clusterName});
  dispatcher_->ensureReady(*service, *adapter,
                           [cb = std::move(cb)](Result<Endpoint> result) {
                             if (cb) cb(std::move(result));
                           });
  return Status();
}

// ---- mobility / transparent handover --------------------------------------
//
// idle -> re-steer -> settle, one state machine per (client, service).
// The old instance keeps serving throughout: its reverse flow stays
// installed until the settle confirms the new forward flow in the switch,
// and the forward flow is *replaced* (install-or-replace FlowMod semantics)
// rather than removed-then-added, so no packet ever hits a hole in the
// table.  The continuity gap is therefore bounded by one rule-install RTT
// -- the flow-stats round trip that confirms the re-steer -- not by a cold
// deploy (a missing target instance is deployed *before* the re-steer
// commits, with the old binding answering meanwhile).

void EdgeController::ensureHandoverTelemetry() {
  if (telemetry_ == nullptr || hoStartedCtr_ != nullptr) return;
  hoStartedCtr_ = &telemetry_->counter("edgesim_handovers_total",
                                       {{"outcome", "started"}});
  hoCompletedCtr_ = &telemetry_->counter("edgesim_handovers_total",
                                         {{"outcome", "completed"}});
  hoAbortedCtr_ = &telemetry_->counter("edgesim_handovers_total",
                                       {{"outcome", "aborted_to_cloud"}});
  hoLatencyHist_ = &telemetry_->histogram("edgesim_handover_latency_seconds");
  hoGapHist_ =
      &telemetry_->histogram("edgesim_handover_continuity_gap_seconds");
}

void EdgeController::requestHandover(Ipv4 client, Endpoint serviceAddress,
                                     const std::string& targetCluster,
                                     HandoverCallback cb) {
  if (pool_ != nullptr) {
    // Mobility triggers may fire from lane workers; all handover state
    // lives on the simulation thread, so marshal through the one
    // thread-safe seam (same contract as cold submitRequest).
    sim_.postExternal([this, client, serviceAddress, targetCluster,
                       cb = std::move(cb)]() mutable {
      startHandover(client, serviceAddress, targetCluster, std::move(cb));
    });
    return;
  }
  startHandover(client, serviceAddress, targetCluster, std::move(cb));
}

void EdgeController::startHandover(Ipv4 client, Endpoint serviceAddress,
                                   const std::string& targetCluster,
                                   HandoverCallback cb) {
  const auto noop = [&cb](const char* reason) {
    if (cb) {
      HandoverResult result;
      result.reason = reason;
      cb(result);
    }
  };
  const ServiceModel* service = serviceAt(serviceAddress);
  if (service == nullptr) {
    noop("unknown-service");
    return;
  }
  const auto memorized = memory_.lookup(client, serviceAddress);
  if (!memorized.has_value()) {
    noop("no-memorized-flow");
    return;
  }
  if (memorized->cluster == targetCluster) {
    noop("already-on-target");
    return;
  }
  const PendingKey key{client, serviceAddress};
  if (handovers_.count(key) != 0) {
    // One handover per flow at a time; the mobility layer retries on the
    // next attachment scan if the client moved again meanwhile.
    noop("handover-in-flight");
    return;
  }

  ensureHandoverTelemetry();
  handoversStarted_.fetch_add(1, std::memory_order_relaxed);
  if (hoStartedCtr_ != nullptr) hoStartedCtr_->add();
  ActiveHandover& ah = handovers_[key];
  ah.startedAt = sim_.now();
  ah.oldInstance = memorized->instance;
  ah.oldCluster = memorized->cluster;
  ah.targetCluster = targetCluster;
  ah.cb = std::move(cb);
  if (trace_ != nullptr) {
    ah.rid = trace_->newRequest();
    trace_->instant(ah.rid, "handover-start", "mobility", sim_.now(),
                    {{"client", client.toString()},
                     {"service", serviceAddress.toString()},
                     {"from", ah.oldCluster},
                     {"to", targetCluster}});
    ah.span = trace_->beginSpan(ah.rid, "handover", "mobility", sim_.now(),
                                {{"service", service->uniqueName},
                                 {"from", ah.oldCluster},
                                 {"to", targetCluster}});
  }

  ClusterAdapter* target = dispatcher_->adapterByName(targetCluster);
  if (target == nullptr) {
    abortHandoverToCloud(key, *service, "unknown-cluster");
    return;
  }
  if (governor_ != nullptr && !target->isCloud() &&
      (!governor_->clusterAllowed(targetCluster, sim_.now()) ||
       governor_->brownoutActive(sim_.now()))) {
    // A breaker-open or browned-out target would turn the handover into
    // the very overload it protects against: degrade to the cloud now.
    abortHandoverToCloud(key, *service, "governor-vetoed-target");
    return;
  }

  const auto ready = target->readyInstances(*service);
  if (!ready.empty()) {
    // Warm handover: re-steer straight onto an existing instance.
    commitReSteer(key, *service, dispatcher_->pickInstance(ready, client),
                  targetCluster, /*degraded=*/false, "warm");
    return;
  }

  // Cold handover: deploy at the target first; the old binding keeps
  // serving until the re-steer commits.  ensureReady brings the full
  // retry/backoff/fault machinery, so kubelet or registry faults at the
  // target surface here as a deploy failure -> degrade to cloud.
  if (trace_ != nullptr) {
    trace_->instant(ah.rid, "handover-deploy", "mobility", sim_.now(),
                    {{"cluster", targetCluster}});
  }
  const ServiceModel* servicePtr = service;
  dispatcher_->ensureReady(
      *service, *target,
      [this, key, servicePtr, targetCluster](Result<Endpoint> result) {
        if (handovers_.count(key) == 0) return;
        if (!result.ok()) {
          abortHandoverToCloud(key, *servicePtr, "deploy-failed");
          return;
        }
        commitReSteer(key, *servicePtr, result.value(), targetCluster,
                      /*degraded=*/false, "deployed");
      },
      handovers_[key].rid);
}

void EdgeController::commitReSteer(const PendingKey& key,
                                   const ServiceModel& service,
                                   Endpoint instance,
                                   const std::string& cluster, bool degraded,
                                   const char* reason) {
  const auto it = handovers_.find(key);
  if (it == handovers_.end()) return;
  ActiveHandover& ah = it->second;
  ah.commitAt = sim_.now();
  if (!memory_.rebind(key.client, key.service, instance, cluster,
                      sim_.now())) {
    // The flow expired while the target was deploying: nothing left to
    // re-steer.  Counts in the aborted bucket to keep the accounting exact.
    HandoverResult result;
    result.started = true;
    result.abortedToCloud = true;
    result.instance = ah.oldInstance;
    result.cluster = ah.oldCluster;
    result.latency = sim_.now() - ah.startedAt;
    result.reason = "flow-expired";
    handoversAborted_.fetch_add(1, std::memory_order_relaxed);
    if (hoAbortedCtr_ != nullptr) hoAbortedCtr_->add();
    if (hoLatencyHist_ != nullptr) {
      hoLatencyHist_->observe(result.latency.toSeconds());
    }
    if (trace_ != nullptr) {
      trace_->endSpan(ah.span, sim_.now(),
                      {{"outcome", "aborted"}, {"reason", result.reason}});
    }
    finishHandover(key, std::move(result));
    return;
  }
  // The flow may have been scheduled for the Remove phase on the cluster it
  // just (re-)landed on; it is live again.
  scaledDownAt_.erase({key.service, cluster});

  // Replace the redirect flows on every attached switch, then confirm the
  // install with a flow-stats round trip: the FlowMod and the stats request
  // ride the same ordered control channel, so the snapshot that comes back
  // provably contains the new forward entry (matched by cookie).  That
  // round trip IS the continuity gap.
  std::vector<std::pair<OpenFlowSwitch*, std::uint64_t>> installs;
  for (auto& [sw, topo] : switches_) {
    installs.emplace_back(sw,
                          installRedirectFlows(*sw, key.client, service,
                                               instance));
  }
  if (installs.empty()) {
    // Headless controller (no attached switch, e.g. pure submitRequest
    // harnesses): the FlowMemory re-bind is the whole switchover.
    settleHandover(key, service, instance, cluster, degraded, reason);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(installs.size());
  const ServiceModel* servicePtr = &service;
  for (auto& [sw, cookie] : installs) {
    sw->requestFlowStats([this, key, servicePtr, instance, cluster, degraded,
                          reason, cookie, remaining](
                             const std::vector<openflow::FlowEntry>& entries) {
      bool found = false;
      for (const auto& entry : entries) {
        if (entry.cookie == cookie) {
          found = true;
          break;
        }
      }
      if (!found) {
        ES_WARN("controller",
                "handover re-steer cookie %llu missing from flow stats",
                static_cast<unsigned long long>(cookie));
      }
      if (--*remaining == 0) {
        settleHandover(key, *servicePtr, instance, cluster, degraded, reason);
      }
    });
  }
}

void EdgeController::settleHandover(const PendingKey& key,
                                    const ServiceModel& service,
                                    Endpoint instance,
                                    const std::string& cluster, bool degraded,
                                    const char* reason) {
  const auto it = handovers_.find(key);
  if (it == handovers_.end()) return;
  ActiveHandover& ah = it->second;
  const SimTime now = sim_.now();

  // Switchover done: retire the old instance's reverse flow.  Until this
  // point it kept rewriting in-flight responses from the old instance back
  // to the service address, so the hand-off never dropped a reply.
  if (ah.oldInstance != instance && ah.oldInstance != service.address) {
    for (auto& [sw, topo] : switches_) {
      FlowMatch oldReverse;
      oldReverse.ipSrc = ah.oldInstance.ip;
      oldReverse.tcpSrc = ah.oldInstance.port;
      oldReverse.ipDst = key.client;
      oldReverse.ipProto = IpProto::kTcp;
      sw->sendFlowRemove(oldReverse);
    }
  }

  HandoverResult result;
  result.started = true;
  result.completed = !degraded;
  result.abortedToCloud = degraded;
  result.instance = instance;
  result.cluster = cluster;
  result.continuityGap = now - ah.commitAt;
  result.latency = now - ah.startedAt;
  result.reason = reason;
  if (degraded) {
    handoversAborted_.fetch_add(1, std::memory_order_relaxed);
    if (hoAbortedCtr_ != nullptr) hoAbortedCtr_->add();
  } else {
    handoversCompleted_.fetch_add(1, std::memory_order_relaxed);
    if (hoCompletedCtr_ != nullptr) hoCompletedCtr_->add();
  }
  if (hoLatencyHist_ != nullptr) {
    hoLatencyHist_->observe(result.latency.toSeconds());
    hoGapHist_->observe(result.continuityGap.toSeconds());
  }
  if (trace_ != nullptr) {
    trace_->completeSpan(ah.rid, "continuity-gap", "mobility", ah.commitAt,
                         now, {}, ah.span);
    trace_->endSpan(ah.span, now,
                    {{"outcome", degraded ? "aborted_to_cloud" : "completed"},
                     {"instance", instance.toString()},
                     {"cluster", cluster},
                     {"reason", reason}});
  }
  ES_INFO("controller", "handover %s for %s: %s -> %s (%s)",
          degraded ? "degraded" : "completed", service.uniqueName.c_str(),
          ah.oldCluster.c_str(), cluster.c_str(), reason);

  // Scale the vacated instance down once no flow needs it -- mirror of the
  // idle-expiry policy, but triggered by the migration itself.
  if (options_.scaleDownIdleServices && ah.oldCluster != cluster &&
      memory_.flowsFor(key.service, ah.oldCluster) == 0) {
    ClusterAdapter* old = dispatcher_->adapterByName(ah.oldCluster);
    const ServiceModel* servicePtr = serviceAt(key.service);
    if (old != nullptr && !old->isCloud() && servicePtr != nullptr) {
      ++scaleDowns_;
      if (scaleDownsCtr_ != nullptr) scaleDownsCtr_->add();
      ES_INFO("controller", "scaling down vacated service %s on %s",
              servicePtr->uniqueName.c_str(), ah.oldCluster.c_str());
      ClusterAdapter* oldPtr = old;
      runOnCluster(sim_, *old, [oldPtr, servicePtr] {
        oldPtr->scaleDown(*servicePtr, [](Status) {});
      });
      scaledDownAt_[{key.service, ah.oldCluster}] = now;
    }
  }
  finishHandover(key, std::move(result));
}

void EdgeController::abortHandoverToCloud(const PendingKey& key,
                                          const ServiceModel& service,
                                          const char* reason) {
  const auto cloudIt = cloudRedirects_.find(key.service);
  if (cloudIt != cloudRedirects_.end()) {
    // Same re-steer path as a successful handover, pointed at the cloud
    // instance: the flow ends up on a working binding either way.
    commitReSteer(key, service, cloudIt->second.instance,
                  cloudIt->second.cluster, /*degraded=*/true, reason);
    return;
  }
  const auto it = handovers_.find(key);
  if (it == handovers_.end()) return;
  ActiveHandover& ah = it->second;
  // No cloud to degrade to: keep the old binding (still serving) rather
  // than strand the flow.
  HandoverResult result;
  result.started = true;
  result.abortedToCloud = true;
  result.instance = ah.oldInstance;
  result.cluster = ah.oldCluster;
  result.latency = sim_.now() - ah.startedAt;
  result.reason = reason;
  handoversAborted_.fetch_add(1, std::memory_order_relaxed);
  if (hoAbortedCtr_ != nullptr) hoAbortedCtr_->add();
  if (hoLatencyHist_ != nullptr) {
    hoLatencyHist_->observe(result.latency.toSeconds());
  }
  if (trace_ != nullptr) {
    trace_->endSpan(ah.span, sim_.now(),
                    {{"outcome", "aborted"}, {"reason", reason}});
  }
  finishHandover(key, std::move(result));
}

void EdgeController::finishHandover(const PendingKey& key,
                                    HandoverResult result) {
  const auto it = handovers_.find(key);
  if (it == handovers_.end()) return;
  HandoverCallback cb = std::move(it->second.cb);
  handovers_.erase(it);
  if (cb) cb(result);
}

}  // namespace edgesim::core
