// ServiceModel: everything the controller knows about one registered edge
// service -- the annotated definition documents plus the concrete container
// specs used to instantiate it on a cluster.
//
// YAML gives the *structure* (images, ports, volumes); simulated app
// behaviour (startup delay, per-request compute) comes from an
// AppProfileRegistry keyed by image reference, standing in for the real
// binaries inside the images.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "container/spec.hpp"
#include "core/annotator.hpp"
#include "net/http.hpp"

namespace edgesim::core {

/// Image behaviour lookup: what the process in this image does when run.
class AppProfileRegistry {
 public:
  void add(const std::string& imageRef, container::AppProfile profile);
  /// Profile for `imageRef`, or a generic small-web-service default.
  container::AppProfile lookup(const std::string& imageRef) const;

 private:
  std::map<std::string, container::AppProfile> profiles_;
};

struct ServiceModel {
  std::string uniqueName;
  /// Short human label used in metrics series ("nginx", "resnet", ...).
  std::string tag;
  Endpoint address;  // the registered (cloud) service address
  yamlite::Node deploymentDoc;
  yamlite::Node serviceDoc;
  std::string schedulerName;
  std::uint16_t targetPort = 80;
  /// Concrete container specs (labels + profiles attached), primary first.
  std::vector<container::ContainerSpec> containers;
  /// How clients talk to this service (Table I's HTTP column).
  HttpMethod requestMethod = HttpMethod::kGet;
  Bytes requestPayload;
};

/// Build a ServiceModel from an annotated definition.  Fails when the
/// definition's containers are malformed (no image, bad port).
Result<ServiceModel> buildServiceModel(const AnnotatedService& annotated,
                                       Endpoint serviceAddress,
                                       const AppProfileRegistry& profiles);

}  // namespace edgesim::core
