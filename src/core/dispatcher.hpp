// Dispatcher (§IV-B, fig. 7): feeds the Global Scheduler with the current
// system state and drives the deployment phases.
//
// On a request for which no flow is memorized, the Dispatcher gathers the
// list of existing and running instances across all clusters, asks the
// Global Scheduler for its FAST and BEST choices, ensures the chosen
// instances are pulled/created/scaled up, waits (port polling) until the
// FAST instance answers, and hands the redirect back to the controller.
// A non-empty BEST choice triggers a background deployment ("without
// waiting", fig. 3).
//
// Phase durations (Pull / Create / Scale-Up / Wait) are recorded per
// service tag -- these are exactly the quantities plotted in figs. 11-15.
//
// Failure handling: a failed or watchdog-timed-out phase is retried with
// capped exponential backoff (RetryPolicy).  When the budget is exhausted
// the cluster is quarantined from the Global Scheduler for a cooldown and
// waiting clients are degraded to a ready cloud instance (when one exists)
// instead of receiving an error.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster_adapter.hpp"
#include "core/flow_memory.hpp"
#include "core/proximity.hpp"
#include "core/scheduler.hpp"
#include "metrics/recorder.hpp"
#include "overload/governor.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace edgesim::core {

struct Redirect {
  Endpoint instance;
  std::string cluster;
  bool fromMemory = false;
  /// True when this redirect is a degraded answer: the chosen edge cluster
  /// failed its deployment and the client was sent to the cloud instead.
  /// Degraded redirects are NOT memorized, so the client's next request
  /// re-tries the edge.
  bool degraded = false;
  /// True when the overload governor terminated the request early (deadline
  /// budget expired while the deployment was still in flight) and this is
  /// the fail-fast cloud answer.  Implies degraded.  The controller counts
  /// these as SHED, not resolved.
  bool shed = false;
};

/// Capped exponential backoff for failed deployment phases.
struct RetryPolicy {
  int maxRetries = 3;
  SimTime initialBackoff = SimTime::millis(200);
  double multiplier = 2.0;
  SimTime maxBackoff = SimTime::seconds(10.0);

  /// Delay before retry number `retryIndex` (0-based):
  /// min(initialBackoff * multiplier^retryIndex, maxBackoff).
  SimTime backoff(int retryIndex) const;
};

struct DispatcherOptions {
  SimTime portPollInterval = SimTime::millis(50);
  /// Overall budget for one deployment *attempt*; the hard deadline for a
  /// deployment including retries is deployTimeout * (retry.maxRetries + 1).
  SimTime deployTimeout = SimTime::seconds(120.0);
  /// Per-phase watchdog: a Pull / Create / Scale-Up(+wait) phase running
  /// longer than this is failed and retried.  Zero disables the watchdog
  /// (the overall deadline still applies).
  SimTime phaseTimeout = SimTime::zero();
  RetryPolicy retry;
  /// When a FAST deployment exhausts its retry budget, resolve the waiting
  /// clients to a ready cloud instance (degraded redirect) instead of
  /// failing them.
  bool cloudFallback = true;
  /// How long a cluster whose deployment exhausted its retry budget is
  /// hidden from the Global Scheduler.  Zero disables quarantine.
  SimTime quarantineCooldown = SimTime::seconds(30.0);
  /// Request-time instance choice within the chosen cluster (fig. 6 Local
  /// Scheduler): "first", "instance-round-robin", or "client-hash".
  std::string instancePolicy = "first";
};

class Dispatcher {
 public:
  using ResolveCallback = std::function<void(Result<Redirect>)>;
  using ReadyCallback = std::function<void(Result<Endpoint>)>;

  /// `telemetry` (optional) registers per-cluster phase-duration histograms
  /// plus deployment / retry / fallback / quarantine and scheduler-decision
  /// counters; handles are resolved once here (deployment work is sim-thread
  /// only, but the striped instruments stay safe to read at any time).
  /// `governor` (optional) adds overload protection: deadline budgets fail
  /// fast to the cloud, per-cluster deploy tokens cap concurrent
  /// deployments, circuit-breaker outcomes are fed from deployment results,
  /// and brownout forces the "without waiting" redirect behaviour.
  Dispatcher(Simulation& sim, FlowMemory& memory, GlobalScheduler& scheduler,
             std::vector<ClusterAdapter*> adapters,
             metrics::Recorder* recorder = nullptr,
             DispatcherOptions options = {},
             trace::TraceRecorder* trace = nullptr,
             telemetry::MetricsRegistry* telemetry = nullptr,
             overload::OverloadGovernor* governor = nullptr);

  /// Resolve a client request to a service instance (fig. 7).  `rid` is the
  /// trace request ID allocated by the controller at packet-in (0 = not
  /// traced); every span/instant this resolve produces carries it.
  /// `deadline` is the request's absolute deadline budget (SimTime::max() =
  /// none): if it expires while the FAST deployment is still in flight, the
  /// request is answered immediately with a shed degraded cloud redirect
  /// instead of waiting the deployment out.
  void resolve(const ServiceModel& service, Ipv4 client, ResolveCallback cb,
               trace::RequestId rid = 0, SimTime deadline = SimTime::max());

  /// Ensure the service is deployed and ready on `cluster`; callbacks for
  /// the same (service, cluster) pair are coalesced onto one deployment.
  /// The deployment's trace spans carry the `rid` of the request that
  /// initiated it; joining requests record a "join-deployment" instant.
  void ensureReady(const ServiceModel& service, ClusterAdapter& cluster,
                   ReadyCallback cb, trace::RequestId rid = 0);

  ClusterAdapter* adapterByName(const std::string& name) const;
  ClusterAdapter* cloudAdapter() const;
  const std::vector<ClusterAdapter*>& adapters() const { return adapters_; }

  /// Per-client proximity override (mobility): when set, ClusterView
  /// distance ranks handed to the Global Scheduler come from the provider
  /// instead of each adapter's static rank (negative = keep static).
  /// Consulted on the simulation thread only; `provider` must outlive the
  /// dispatcher or be cleared with nullptr first.
  void setProximityProvider(const ProximityProvider* provider) {
    proximity_ = provider;
  }
  const ProximityProvider* proximityProvider() const { return proximity_; }

  /// Local Scheduler choice among `instances` (never empty) for `client` --
  /// exposed so the controller's handover path picks a target instance with
  /// the same request-time policy as resolve().
  Endpoint pickInstance(const std::vector<Endpoint>& instances, Ipv4 client);

  /// Invoked whenever a BEST (background, "without waiting") deployment
  /// becomes ready: (service address, cluster name, instance).  The
  /// controller uses this to migrate future requests to the optimal
  /// location "as soon as the new instance is running" (§IV-A2).
  using BackgroundReadyListener =
      std::function<void(Endpoint service, const std::string& cluster,
                         Endpoint instance)>;
  void setBackgroundReadyListener(BackgroundReadyListener listener) {
    backgroundListener_ = std::move(listener);
  }

  /// Deployments currently in flight.
  std::size_t pendingDeployments() const { return pending_.size(); }
  std::uint64_t deploymentsTriggered() const { return deployments_; }
  std::uint64_t backgroundDeployments() const { return background_; }
  /// Phase retries performed across all deployments.
  std::uint64_t retries() const { return retries_; }
  /// Resolves answered with a degraded cloud redirect.
  std::uint64_t fallbacks() const { return fallbacks_; }
  /// Clusters quarantined after an exhausted retry budget.
  std::uint64_t quarantines() const { return quarantines_; }

 private:
  struct PendingDeploy {
    std::vector<ReadyCallback> waiters;
    SimTime startedAt;
    std::string cluster;
    /// Trace identity of the deployment: `rid` of the initiating request
    /// and the enclosing "deploy" span the phase spans nest under.
    trace::RequestId rid = 0;
    trace::SpanId span = 0;
    int retriesUsed = 0;
    /// Bumped on every retry; callbacks from a superseded attempt carry a
    /// stale epoch and are dropped on arrival.
    int epoch = 0;
    /// This deployment holds one of the governor's per-cluster deploy
    /// tokens; finishDeploy() returns it.
    bool holdsToken = false;
    EventHandle timeoutHandle;  // overall hard deadline
    EventHandle phaseTimer;     // per-phase watchdog
  };

  /// Run one deployment-phase RPC (`invoke` calls the adapter method with
  /// the callback it is given) in `cluster`'s time domain, marshalling the
  /// completion back onto the control domain.  Clusters homed on the
  /// control domain -- every single-domain setup -- keep the historical
  /// direct call; cross-domain clusters pay one channel-lookahead hop each
  /// way, the modelled management-plane round trip.
  void invokeOnCluster(ClusterAdapter& cluster,
                       std::function<void(ClusterAdapter::Callback)> invoke,
                       ClusterAdapter::Callback done);
  /// probeInstance variant (bool payload instead of Status).
  void probeOnCluster(ClusterAdapter& cluster, Endpoint instance,
                      ClusterAdapter::ProbeCallback done);
  void runPhases(const ServiceModel& service, ClusterAdapter& cluster,
                 const std::string& key, int epoch);
  void pollUntilReady(const ServiceModel& service, ClusterAdapter& cluster,
                      const std::string& key, SimTime scaledUpAt, int epoch);
  void armPhaseTimer(const ServiceModel& service, ClusterAdapter& cluster,
                     const std::string& key, int epoch);
  /// Retry after backoff if budget remains, else finish with `error`.
  void onPhaseFailure(const ServiceModel& service, ClusterAdapter& cluster,
                      const std::string& key, int epoch, Error error);
  void finishDeploy(const std::string& key, Result<Endpoint> result);
  void recordPhase(const ServiceModel& service, ClusterAdapter& cluster,
                   const char* phase, SimTime duration);
  /// Emit a completed phase span nested under `key`'s deploy span.
  void tracePhase(const std::string& key, const char* phase, SimTime start,
                  bool ok);
  /// The governor's breaker for `cluster`, or nullptr when breakers are off
  /// or the cluster is the cloud (never broken -- it is the fallback
  /// target, like quarantine).
  overload::CircuitBreaker* breakerFor(const ClusterAdapter& cluster);
  /// Answer `cb` with a degraded redirect to a ready cloud instance.
  /// Returns false (and leaves `cb` uncalled) when no such instance exists.
  bool answerFromCloud(const ServiceModel& service, Ipv4 client,
                       const ResolveCallback& cb, bool shed,
                       trace::RequestId rid, const char* why);

  /// Per-cluster telemetry handles, resolved at construction (empty map
  /// when telemetry is off).
  struct ClusterTelemetry {
    std::map<std::string, telemetry::Histogram*> phases;  // by phase name
    telemetry::Counter* deployments = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* fallbacks = nullptr;
    telemetry::Counter* quarantines = nullptr;
    telemetry::Counter* decisionsFast = nullptr;
    telemetry::Counter* decisionsBest = nullptr;
  };
  ClusterTelemetry* clusterTelemetry(const std::string& cluster);

  Simulation& sim_;
  /// The control lane: all deployment state (pending_, adapters, the
  /// schedulers) is single-threaded by construction.  resolve() asserts it
  /// runs on the thread that built the Dispatcher -- the simulation
  /// thread; the controller's worker pool must marshal cold requests
  /// through Simulation::postExternal, never call in directly.
  const std::thread::id controlThread_;
  FlowMemory& memory_;
  GlobalScheduler& scheduler_;
  std::vector<ClusterAdapter*> adapters_;
  metrics::Recorder* recorder_;
  trace::TraceRecorder* trace_;
  overload::OverloadGovernor* governor_;
  const ProximityProvider* proximity_ = nullptr;
  std::map<std::string, ClusterTelemetry> clusterTelemetry_;
  DispatcherOptions options_;
  std::unique_ptr<LocalScheduler> localScheduler_;
  std::map<std::string, PendingDeploy> pending_;
  BackgroundReadyListener backgroundListener_;
  std::uint64_t deployments_ = 0;
  std::uint64_t background_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t quarantines_ = 0;
};

}  // namespace edgesim::core
