// Dispatcher (§IV-B, fig. 7): feeds the Global Scheduler with the current
// system state and drives the deployment phases.
//
// On a request for which no flow is memorized, the Dispatcher gathers the
// list of existing and running instances across all clusters, asks the
// Global Scheduler for its FAST and BEST choices, ensures the chosen
// instances are pulled/created/scaled up, waits (port polling) until the
// FAST instance answers, and hands the redirect back to the controller.
// A non-empty BEST choice triggers a background deployment ("without
// waiting", fig. 3).
//
// Phase durations (Pull / Create / Scale-Up / Wait) are recorded per
// service tag -- these are exactly the quantities plotted in figs. 11-15.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster_adapter.hpp"
#include "core/flow_memory.hpp"
#include "core/scheduler.hpp"
#include "metrics/recorder.hpp"

namespace edgesim::core {

struct Redirect {
  Endpoint instance;
  std::string cluster;
  bool fromMemory = false;
};

struct DispatcherOptions {
  SimTime portPollInterval = SimTime::millis(50);
  SimTime deployTimeout = SimTime::seconds(120.0);
  /// Request-time instance choice within the chosen cluster (fig. 6 Local
  /// Scheduler): "first", "instance-round-robin", or "client-hash".
  std::string instancePolicy = "first";
};

class Dispatcher {
 public:
  using ResolveCallback = std::function<void(Result<Redirect>)>;
  using ReadyCallback = std::function<void(Result<Endpoint>)>;

  Dispatcher(Simulation& sim, FlowMemory& memory, GlobalScheduler& scheduler,
             std::vector<ClusterAdapter*> adapters,
             metrics::Recorder* recorder = nullptr,
             DispatcherOptions options = {});

  /// Resolve a client request to a service instance (fig. 7).
  void resolve(const ServiceModel& service, Ipv4 client, ResolveCallback cb);

  /// Ensure the service is deployed and ready on `cluster`; callbacks for
  /// the same (service, cluster) pair are coalesced onto one deployment.
  void ensureReady(const ServiceModel& service, ClusterAdapter& cluster,
                   ReadyCallback cb);

  ClusterAdapter* adapterByName(const std::string& name) const;
  ClusterAdapter* cloudAdapter() const;
  const std::vector<ClusterAdapter*>& adapters() const { return adapters_; }

  /// Invoked whenever a BEST (background, "without waiting") deployment
  /// becomes ready: (service address, cluster name, instance).  The
  /// controller uses this to migrate future requests to the optimal
  /// location "as soon as the new instance is running" (§IV-A2).
  using BackgroundReadyListener =
      std::function<void(Endpoint service, const std::string& cluster,
                         Endpoint instance)>;
  void setBackgroundReadyListener(BackgroundReadyListener listener) {
    backgroundListener_ = std::move(listener);
  }

  /// Deployments currently in flight.
  std::size_t pendingDeployments() const { return pending_.size(); }
  std::uint64_t deploymentsTriggered() const { return deployments_; }
  std::uint64_t backgroundDeployments() const { return background_; }

 private:
  struct PendingDeploy {
    std::vector<ReadyCallback> waiters;
    SimTime startedAt;
    EventHandle timeoutHandle;
  };

  void runPhases(const ServiceModel& service, ClusterAdapter& cluster,
                 const std::string& key);
  void pollUntilReady(const ServiceModel& service, ClusterAdapter& cluster,
                      const std::string& key, SimTime scaledUpAt);
  void finishDeploy(const std::string& key, Result<Endpoint> result);
  void recordPhase(const ServiceModel& service, ClusterAdapter& cluster,
                   const char* phase, SimTime duration);

  Simulation& sim_;
  FlowMemory& memory_;
  GlobalScheduler& scheduler_;
  std::vector<ClusterAdapter*> adapters_;
  metrics::Recorder* recorder_;
  DispatcherOptions options_;
  std::unique_ptr<LocalScheduler> localScheduler_;
  std::map<std::string, PendingDeploy> pending_;
  BackgroundReadyListener backgroundListener_;
  std::uint64_t deployments_ = 0;
  std::uint64_t background_ = 0;
};

}  // namespace edgesim::core
