#include "core/annotator.hpp"

#include "util/strings.hpp"
#include "yamlite/parse.hpp"

namespace edgesim::core {

namespace {

using yamlite::Node;

/// The primary container's exposed port, falling back to the registered
/// service port when the definition does not state one.
std::uint16_t primaryContainerPort(const Node& deployment,
                                   Endpoint serviceAddress) {
  const Node* containers =
      deployment.findPath("spec.template.spec.containers");
  if (containers != nullptr && containers->isSequence() &&
      !containers->items().empty()) {
    const Node& first = containers->items().front();
    if (const Node* ports = first.find("ports");
        ports != nullptr && ports->isSequence() && !ports->items().empty()) {
      if (const Node* cp = ports->items().front().find("containerPort")) {
        if (const auto value = cp->asInt();
            value && *value > 0 && *value <= 65535) {
          return static_cast<std::uint16_t>(*value);
        }
      }
    }
  }
  return serviceAddress.port;
}

}  // namespace

std::string uniqueServiceName(Endpoint serviceAddress) {
  std::string ip = serviceAddress.ip.toString();
  for (char& c : ip) {
    if (c == '.') c = '-';
  }
  return strprintf("edge-%s-%u", ip.c_str(), serviceAddress.port);
}

Result<AnnotatedService> annotateServiceDefinition(
    const yamlite::Node& definition, Endpoint serviceAddress,
    const AnnotatorConfig& config) {
  if (!definition.isMapping()) {
    return makeError(Errc::kInvalidArgument,
                     "service definition must be a mapping");
  }
  const Node* image = definition.findPath("spec.template.spec.containers");
  if (image == nullptr || !image->isSequence() || image->items().empty() ||
      image->items().front().find("image") == nullptr) {
    return makeError(
        Errc::kInvalidArgument,
        "service definition must name at least one container image");
  }

  AnnotatedService out;
  out.uniqueName = uniqueServiceName(serviceAddress);
  out.deployment = definition;
  Node& deployment = out.deployment;

  // Fixed framing for the Deployment document.
  if (!deployment.contains("apiVersion")) {
    deployment.set("apiVersion", Node::scalar("apps/v1"));
  }
  if (!deployment.contains("kind")) {
    deployment.set("kind", Node::scalar("Deployment"));
  }

  // (1) unique worldwide name -- always overridden: developers "may easily
  // forget" to make their local names unique.
  deployment.makePath("metadata.name") = Node::scalar(out.uniqueName);

  // (2)+(3) matchLabels and the edge.service label everywhere K8s needs
  // them to line up: selector.matchLabels and template.metadata.labels.
  const std::string serviceKey = serviceAddress.toString();
  auto applyLabels = [&](Node& labels) {
    labels["app"] = Node::scalar(out.uniqueName);
    labels[kEdgeServiceLabel] = Node::scalar(serviceKey);
  };
  applyLabels(deployment.makePath("metadata.labels"));
  applyLabels(deployment.makePath("spec.selector.matchLabels"));
  applyLabels(deployment.makePath("spec.template.metadata.labels"));

  // (4) replicas: scale to zero by default (always enforced -- on-demand
  // deployment owns the scaling decision).
  deployment.makePath("spec.replicas") = Node::scalar(config.defaultReplicas);

  // (5) the configured Local Scheduler, if any.
  if (!config.localScheduler.empty()) {
    deployment.makePath("spec.template.spec.schedulerName") =
        Node::scalar(config.localScheduler);
  }

  // (6) the Service definition: use the developer's when embedded under the
  // (non-standard but convenient) `service` key, else generate one.
  const std::uint16_t targetPort =
      primaryContainerPort(deployment, serviceAddress);
  if (const Node* provided = deployment.find("service");
      provided != nullptr && provided->isMapping()) {
    out.service = *provided;
    out.service.makePath("metadata.name") = Node::scalar(out.uniqueName);
    applyLabels(out.service.makePath("metadata.labels"));
    deployment.erase("service");
    out.serviceGenerated = false;
  } else {
    Node service = Node::mapping();
    service["apiVersion"] = Node::scalar("v1");
    service["kind"] = Node::scalar("Service");
    service.makePath("metadata.name") = Node::scalar(out.uniqueName);
    applyLabels(service.makePath("metadata.labels"));
    Node& spec = service.makePath("spec");
    applyLabels(spec.makePath("selector"));
    Node port = Node::mapping();
    port["port"] = Node::scalar(static_cast<std::int64_t>(serviceAddress.port));
    port["targetPort"] = Node::scalar(static_cast<std::int64_t>(targetPort));
    port["protocol"] = Node::scalar("TCP");  // default protocol (§V)
    spec.makePath("ports").push(std::move(port));
    out.service = std::move(service);
    out.serviceGenerated = true;
  }

  return out;
}

Result<AnnotatedService> annotateServiceYaml(const std::string& yamlText,
                                             Endpoint serviceAddress,
                                             const AnnotatorConfig& config) {
  auto parsed = yamlite::parse(yamlText);
  if (!parsed.ok()) return parsed.error();
  return annotateServiceDefinition(parsed.value(), serviceAddress, config);
}

}  // namespace edgesim::core
