// Per-client proximity: who is "nearest" depends on where the client is.
//
// Every ClusterAdapter carries a static distanceRank -- correct for a fixed
// topology, wrong the moment clients move between base stations.  A
// ProximityProvider overrides that rank per (client, cluster) pair when the
// Dispatcher gathers ClusterViews for the Global Scheduler, so a client that
// walked from the EGS cell to the far-edge cell is scheduled onto the
// far-edge cluster without any scheduler knowing about mobility.
//
// The mobility subsystem's AttachmentManager implements this interface from
// its base-station attachment table; the provider is consulted on the
// simulation thread only (Dispatcher::resolve asserts it).
#pragma once

#include <string>

#include "net/addr.hpp"

namespace edgesim::core {

class ProximityProvider {
 public:
  virtual ~ProximityProvider() = default;

  /// Distance rank of `cluster` as seen from `client`'s current position;
  /// lower = closer, matching ClusterView::distanceRank.  Return a negative
  /// value to keep the adapter's static rank (e.g. for the cloud, whose
  /// distance does not depend on which base station serves the client).
  virtual int distanceRank(Ipv4 client, const std::string& cluster) const = 0;
};

}  // namespace edgesim::core
