// yamlite: a small YAML-subset document model.
//
// The paper's controller consumes Kubernetes Deployment definition files and
// auto-annotates them (§V).  We implement the subset those files use: block
// mappings, block sequences, scalars (plain / single- / double-quoted),
// comments, and nesting -- no anchors, aliases, flow collections, or
// multi-document streams.  Mappings preserve insertion order so emitted
// files diff cleanly against their inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/assert.hpp"

namespace edgesim::yamlite {

class Node;

using Sequence = std::vector<Node>;
using MapEntries = std::vector<std::pair<std::string, Node>>;

enum class NodeType { kNull, kScalar, kSequence, kMapping };

class Node {
 public:
  Node() : data_(std::monostate{}) {}

  static Node null() { return Node(); }
  static Node scalar(std::string value) {
    Node n;
    n.data_ = std::move(value);
    return n;
  }
  static Node scalar(std::string_view value) { return scalar(std::string(value)); }
  static Node scalar(const char* value) { return scalar(std::string(value)); }
  static Node scalar(std::int64_t value);
  static Node scalar(int value) { return scalar(static_cast<std::int64_t>(value)); }
  static Node scalar(bool value) { return scalar(std::string(value ? "true" : "false")); }
  static Node sequence() {
    Node n;
    n.data_ = Sequence{};
    return n;
  }
  static Node mapping() {
    Node n;
    n.data_ = MapEntries{};
    return n;
  }

  NodeType type() const;
  bool isNull() const { return type() == NodeType::kNull; }
  bool isScalar() const { return type() == NodeType::kScalar; }
  bool isSequence() const { return type() == NodeType::kSequence; }
  bool isMapping() const { return type() == NodeType::kMapping; }

  // -- scalar access ------------------------------------------------------
  const std::string& asString() const;
  std::optional<std::int64_t> asInt() const;
  std::optional<double> asDouble() const;
  std::optional<bool> asBool() const;

  // -- sequence access ----------------------------------------------------
  Sequence& items();
  const Sequence& items() const;
  void push(Node child);
  std::size_t size() const;

  // -- mapping access -----------------------------------------------------
  MapEntries& entries();
  const MapEntries& entries() const;

  /// Pointer to the value under `key`, or nullptr.
  Node* find(std::string_view key);
  const Node* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Mapping index; creates the key (null value) on non-const access.
  Node& operator[](std::string_view key);

  /// Dotted-path lookup ("spec.template.metadata.labels"); nullptr if any
  /// component is missing or a non-mapping is traversed.
  Node* findPath(std::string_view dottedPath);
  const Node* findPath(std::string_view dottedPath) const;

  /// Dotted-path insert; creates intermediate mappings as needed.
  Node& makePath(std::string_view dottedPath);

  /// Set key to value (replacing), returns the stored node.
  Node& set(std::string_view key, Node value);
  /// Remove a key; returns true if it existed.
  bool erase(std::string_view key);

  bool operator==(const Node& other) const;

 private:
  // boxed containers keep Node cheap to move and allow recursion
  std::variant<std::monostate, std::string, Sequence, MapEntries> data_;
};

}  // namespace edgesim::yamlite
