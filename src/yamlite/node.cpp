#include "yamlite/node.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace edgesim::yamlite {

Node Node::scalar(std::int64_t value) {
  return scalar(strprintf("%lld", static_cast<long long>(value)));
}

NodeType Node::type() const {
  switch (data_.index()) {
    case 0: return NodeType::kNull;
    case 1: return NodeType::kScalar;
    case 2: return NodeType::kSequence;
    default: return NodeType::kMapping;
  }
}

const std::string& Node::asString() const {
  ES_ASSERT_MSG(isScalar(), "asString() on non-scalar");
  return std::get<std::string>(data_);
}

std::optional<std::int64_t> Node::asInt() const {
  if (!isScalar()) return std::nullopt;
  const auto& s = std::get<std::string>(data_);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> Node::asDouble() const {
  if (!isScalar()) return std::nullopt;
  const auto& s = std::get<std::string>(data_);
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<bool> Node::asBool() const {
  if (!isScalar()) return std::nullopt;
  const auto lower = toLower(std::get<std::string>(data_));
  if (lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "no" || lower == "off") return false;
  return std::nullopt;
}

Sequence& Node::items() {
  ES_ASSERT_MSG(isSequence(), "items() on non-sequence");
  return std::get<Sequence>(data_);
}

const Sequence& Node::items() const {
  ES_ASSERT_MSG(isSequence(), "items() on non-sequence");
  return std::get<Sequence>(data_);
}

void Node::push(Node child) {
  if (isNull()) data_ = Sequence{};
  items().push_back(std::move(child));
}

std::size_t Node::size() const {
  if (isSequence()) return std::get<Sequence>(data_).size();
  if (isMapping()) return std::get<MapEntries>(data_).size();
  return 0;
}

MapEntries& Node::entries() {
  ES_ASSERT_MSG(isMapping(), "entries() on non-mapping");
  return std::get<MapEntries>(data_);
}

const MapEntries& Node::entries() const {
  ES_ASSERT_MSG(isMapping(), "entries() on non-mapping");
  return std::get<MapEntries>(data_);
}

Node* Node::find(std::string_view key) {
  if (!isMapping()) return nullptr;
  for (auto& [k, v] : std::get<MapEntries>(data_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Node* Node::find(std::string_view key) const {
  return const_cast<Node*>(this)->find(key);
}

Node& Node::operator[](std::string_view key) {
  if (isNull()) data_ = MapEntries{};
  if (Node* existing = find(key)) return *existing;
  auto& map = entries();
  map.emplace_back(std::string(key), Node());
  return map.back().second;
}

Node* Node::findPath(std::string_view dottedPath) {
  Node* node = this;
  std::size_t start = 0;
  while (start <= dottedPath.size()) {
    const auto dot = dottedPath.find('.', start);
    const auto part = dottedPath.substr(
        start, dot == std::string_view::npos ? dottedPath.size() - start
                                             : dot - start);
    node = node->find(part);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) return node;
    start = dot + 1;
  }
  return nullptr;
}

const Node* Node::findPath(std::string_view dottedPath) const {
  return const_cast<Node*>(this)->findPath(dottedPath);
}

Node& Node::makePath(std::string_view dottedPath) {
  Node* node = this;
  std::size_t start = 0;
  while (true) {
    const auto dot = dottedPath.find('.', start);
    const auto part = dottedPath.substr(
        start, dot == std::string_view::npos ? dottedPath.size() - start
                                             : dot - start);
    node = &(*node)[part];
    if (dot == std::string_view::npos) return *node;
    start = dot + 1;
  }
}

Node& Node::set(std::string_view key, Node value) {
  Node& slot = (*this)[key];
  slot = std::move(value);
  return slot;
}

bool Node::erase(std::string_view key) {
  if (!isMapping()) return false;
  auto& map = std::get<MapEntries>(data_);
  for (auto it = map.begin(); it != map.end(); ++it) {
    if (it->first == key) {
      map.erase(it);
      return true;
    }
  }
  return false;
}

bool Node::operator==(const Node& other) const { return data_ == other.data_; }

}  // namespace edgesim::yamlite
