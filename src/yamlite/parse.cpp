#include "yamlite/parse.hpp"

#include <cctype>
#include <vector>

#include "util/strings.hpp"

namespace edgesim::yamlite {

namespace {

struct Line {
  int indent = 0;
  std::string content;
  int number = 0;
};

Error parseError(int line, const std::string& message) {
  return makeError(Errc::kInvalidArgument,
                   strprintf("yaml line %d: %s", line, message.c_str()));
}

/// Strip a trailing comment that is outside quotes.
std::string stripComment(std::string_view s) {
  char quote = '\0';
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return std::string(trim(s.substr(0, i)));
    }
  }
  return std::string(trim(s));
}

/// Find the key/value separating colon outside quotes; npos if none.
std::size_t findColon(std::string_view s) {
  char quote = '\0';
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) {
      return i;
    }
  }
  return std::string_view::npos;
}

Result<std::string> unquote(std::string_view s, int lineNo) {
  s = trim(s);
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      if (s[i] == '\'' && i + 2 < s.size() && s[i + 1] == '\'') {
        out += '\'';
        ++i;
      } else {
        out += s[i];
      }
    }
    return out;
  }
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      if (s[i] == '\\' && i + 2 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default:
            return parseError(lineNo,
                              strprintf("unknown escape '\\%c'", s[i]));
        }
      } else {
        out += s[i];
      }
    }
    return out;
  }
  if (!s.empty() && (s.front() == '\'' || s.front() == '"')) {
    return parseError(lineNo, "unterminated quoted scalar");
  }
  return std::string(s);
}

Node scalarOrNull(const std::string& text) {
  if (text == "null" || text == "~" || text.empty()) return Node::null();
  return Node::scalar(text);
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Result<Node> parseDocument() {
    if (lines_.empty()) return Node::null();
    auto result = parseNode(lines_[0].indent);
    if (!result.ok()) return result;
    if (pos_ != lines_.size()) {
      return parseError(lines_[pos_].number, "unexpected dedent/content");
    }
    return result;
  }

 private:
  bool atEnd() const { return pos_ >= lines_.size(); }
  const Line& cur() const { return lines_[pos_]; }

  static bool isDashItem(const std::string& s) {
    return !s.empty() && s[0] == '-' && (s.size() == 1 || s[1] == ' ');
  }

  Result<Node> parseNode(int indent) {
    if (atEnd() || cur().indent < indent) return Node::null();
    if (isDashItem(cur().content)) return parseSequence(cur().indent);
    if (findColon(cur().content) != std::string_view::npos) {
      return parseMapping(cur().indent);
    }
    // bare scalar document / item
    auto value = unquote(cur().content, cur().number);
    if (!value.ok()) return value.error();
    ++pos_;
    return scalarOrNull(value.value());
  }

  Result<Node> parseSequence(int indent) {
    Node seq = Node::sequence();
    while (!atEnd() && cur().indent == indent && isDashItem(cur().content)) {
      const int lineNo = cur().number;
      std::string rest(trim(std::string_view(cur().content).substr(1)));
      if (rest.empty()) {
        ++pos_;
        if (atEnd() || cur().indent <= indent) {
          seq.push(Node::null());
        } else {
          auto child = parseNode(cur().indent);
          if (!child.ok()) return child;
          seq.push(std::move(child).value());
        }
        continue;
      }
      // Inline content after the dash: re-interpret this line as starting a
      // nested node at the item indent (dash + one space = 2 columns).
      const int itemIndent = indent + 2;
      lines_[pos_].indent = itemIndent;
      lines_[pos_].content = std::move(rest);
      if (isDashItem(lines_[pos_].content)) {
        auto child = parseSequence(itemIndent);
        if (!child.ok()) return child;
        seq.push(std::move(child).value());
      } else if (findColon(lines_[pos_].content) != std::string_view::npos) {
        auto child = parseMapping(itemIndent);
        if (!child.ok()) return child;
        seq.push(std::move(child).value());
      } else {
        auto value = unquote(lines_[pos_].content, lineNo);
        if (!value.ok()) return value.error();
        ++pos_;
        seq.push(scalarOrNull(value.value()));
      }
    }
    return seq;
  }

  Result<Node> parseMapping(int indent) {
    Node map = Node::mapping();
    while (!atEnd() && cur().indent == indent &&
           !isDashItem(cur().content)) {
      const int lineNo = cur().number;
      const std::string content = cur().content;
      const auto colon = findColon(content);
      if (colon == std::string_view::npos) {
        return parseError(lineNo, "expected 'key: value'");
      }
      auto key = unquote(std::string_view(content).substr(0, colon), lineNo);
      if (!key.ok()) return key.error();
      if (key.value().empty()) return parseError(lineNo, "empty key");
      if (map.contains(key.value())) {
        return parseError(lineNo,
                          strprintf("duplicate key '%s'", key.value().c_str()));
      }
      const auto valueText =
          std::string(trim(std::string_view(content).substr(colon + 1)));
      ++pos_;
      if (!valueText.empty()) {
        auto value = unquote(valueText, lineNo);
        if (!value.ok()) return value.error();
        map.set(key.value(), scalarOrNull(value.value()));
        continue;
      }
      // Block value: deeper indent, or a sequence at the same indent
      // (K8s style), or null.
      if (!atEnd() && cur().indent > indent) {
        auto child = parseNode(cur().indent);
        if (!child.ok()) return child;
        map.set(key.value(), std::move(child).value());
      } else if (!atEnd() && cur().indent == indent &&
                 isDashItem(cur().content)) {
        auto child = parseSequence(indent);
        if (!child.ok()) return child;
        map.set(key.value(), std::move(child).value());
      } else {
        map.set(key.value(), Node::null());
      }
    }
    return map;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

void emitScalar(const std::string& s, std::string& out) {
  const bool needsQuotes =
      s.empty() || s.find(": ") != std::string::npos ||
      s.find(" #") != std::string::npos || s.front() == ' ' ||
      s.back() == ' ' || s.front() == '\'' || s.front() == '"' ||
      s.front() == '-' || s.front() == '#' || s == "null" || s == "~" ||
      s.find('\n') != std::string::npos ||
      (s.back() == ':') || s.find(":\t") != std::string::npos;
  if (!needsQuotes) {
    out += s;
    return;
  }
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void emitNode(const Node& node, int indent, std::string& out);

void emitMapping(const Node& node, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const auto& [key, value] : node.entries()) {
    out += pad;
    emitScalar(key, out);
    out += ':';
    switch (value.type()) {
      case NodeType::kNull:
        out += '\n';
        break;
      case NodeType::kScalar:
        out += ' ';
        emitScalar(value.asString(), out);
        out += '\n';
        break;
      case NodeType::kSequence:
        out += '\n';
        emitNode(value, indent, out);  // K8s style: dash at key indent
        break;
      case NodeType::kMapping:
        out += '\n';
        emitNode(value, indent + 2, out);
        break;
    }
  }
}

void emitSequence(const Node& node, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const auto& item : node.items()) {
    switch (item.type()) {
      case NodeType::kNull:
        out += pad + "-\n";
        break;
      case NodeType::kScalar:
        out += pad + "- ";
        emitScalar(item.asString(), out);
        out += '\n';
        break;
      case NodeType::kMapping: {
        // "- key: value" with continuation lines at indent + 2.
        std::string body;
        emitMapping(item, indent + 2, body);
        if (body.size() > pad.size() + 2) {
          body[pad.size()] = '-';
        }
        out += body;
        break;
      }
      case NodeType::kSequence:
        out += pad + "-\n";
        emitNode(item, indent + 2, out);
        break;
    }
  }
}

void emitNode(const Node& node, int indent, std::string& out) {
  switch (node.type()) {
    case NodeType::kNull:
      break;
    case NodeType::kScalar:
      out.append(static_cast<std::size_t>(indent), ' ');
      emitScalar(node.asString(), out);
      out += '\n';
      break;
    case NodeType::kSequence:
      emitSequence(node, indent, out);
      break;
    case NodeType::kMapping:
      emitMapping(node, indent, out);
      break;
  }
}

}  // namespace

Result<Node> parse(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  for (const auto& raw : split(text, '\n')) {
    ++number;
    if (raw.find('\t') != std::string::npos) {
      return parseError(number, "tabs are not allowed in yamlite");
    }
    if (startsWith(trim(raw), "---")) {
      return parseError(number, "multi-document streams are not supported");
    }
    const std::string content = stripComment(raw);
    if (content.empty()) continue;
    int indent = 0;
    while (indent < static_cast<int>(raw.size()) &&
           raw[static_cast<std::size_t>(indent)] == ' ') {
      ++indent;
    }
    if (!content.empty() &&
        (content.front() == '{' || content.front() == '[')) {
      return parseError(number, "flow collections are not supported");
    }
    if (content.front() == '|' || content.front() == '>') {
      return parseError(number, "block scalars are not supported");
    }
    lines.push_back(Line{indent, content, number});
  }
  return Parser(std::move(lines)).parseDocument();
}

std::string emit(const Node& node) {
  std::string out;
  emitNode(node, 0, out);
  return out;
}

}  // namespace edgesim::yamlite
