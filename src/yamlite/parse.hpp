// yamlite parser and emitter.
//
// Supported syntax (the subset used by Kubernetes Deployment/Service files):
//   * block mappings   `key: value` / `key:` + indented block
//   * block sequences  `- item`, including inline-mapping items
//     (`- name: nginx` with continuation lines at the item indent)
//   * sequences indented at the same level as their mapping key (K8s style)
//   * plain, 'single-quoted' and "double-quoted" scalars
//   * `#` comments and blank lines
// Not supported (rejected with an error): tabs, anchors/aliases, flow
// collections `{}`/`[]`, multi-line block scalars `|`/`>`, documents `---`.
#pragma once

#include <string>
#include <string_view>

#include "util/result.hpp"
#include "yamlite/node.hpp"

namespace edgesim::yamlite {

/// Parse a document; the root is a mapping, sequence, or scalar.
Result<Node> parse(std::string_view text);

/// Serialise a node as block YAML (2-space indent, K8s-style sequences).
std::string emit(const Node& node);

}  // namespace edgesim::yamlite
