// Deterministic fault injection (chaos testing for the deployment path).
//
// A FaultPlan scripts failures by *site* (where in the stack the fault
// fires) and *occurrence* (which of the matching operations it hits).  Every
// spec owns an independent RNG stream forked from the plan seed, so the same
// seed and the same sequence of evaluate() calls always produce the same
// failure schedule -- a fault schedule is as reproducible as the simulation
// itself and can be bisected with it.
//
// Components hold an optional FaultPlan* and consult it at their injection
// point:
//   kRegistryPull     container::ImagePuller (target: node name)
//   kContainerCreate  docker::DockerEngine::createContainer (target: node)
//   kContainerStart   docker::DockerEngine::startContainer and
//                     k8s::Kubelet pod launch (target: node name)
//   kClusterRpc       core::ClusterAdapter phase RPCs
//                     (target: "<cluster>/<phase>", e.g. "docker-egs/pull")
//   kLinkDown         Network::scheduleLinkFaults (target: link label);
//                     time-scripted via FaultSpec::at/duration instead of
//                     occurrence counting.
//   kControlChannelLoss
//                     openflow::OpenFlowSwitch, per control message; target
//                     "<switch>/c2s" (controller->switch: FlowMod,
//                     FlowRemove, PacketOut, stats request) or
//                     "<switch>/s2c" (switch->controller: PacketIn,
//                     FlowRemoved, stats reply, FlowMod ack).  A bare
//                     "<switch>" target hits both directions.  A failing
//                     spec drops the message; a stall-only spec (code ==
//                     kOk) delays it.
//   kControlChannelOutage
//                     openflow::OpenFlowSwitch (target: switch name);
//                     time-scripted via at/duration: every control message
//                     in either direction is dropped inside the window.
//   kSwitchRestart    openflow::OpenFlowSwitch (target: switch name);
//                     time-scripted: at `at` the flow table and packet
//                     buffers are wiped (no FlowRemoved notifications --
//                     the crash loses them) and the switch stays down for
//                     `duration` (the table-restore delay; zero = the
//                     switch comes back immediately, empty).
//
// Target matching: an empty spec target matches everything; otherwise the
// spec matches an exact target or any "<target>/<suffix>" refinement, so
// "docker-egs" hits every phase of that cluster while "docker-egs/pull"
// hits only its Pull RPC.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace edgesim::fault {

enum class FaultSite {
  kRegistryPull = 0,
  kContainerCreate,
  kContainerStart,
  kClusterRpc,
  kLinkDown,
  kControlChannelLoss,
  kControlChannelOutage,
  kSwitchRestart,
};

inline constexpr std::size_t kFaultSiteCount = 8;

/// Sites scripted by FaultSpec::at/duration and queried via timedFaults()
/// instead of per-occurrence evaluate() draws.
bool isTimeScripted(FaultSite site);

const char* faultSiteName(FaultSite site);

struct FaultSpec {
  FaultSite site = FaultSite::kClusterRpc;
  /// "" matches every target; otherwise exact or prefix ("a" matches "a/b").
  std::string target;
  /// Per-occurrence trigger probability (1.0 = always).
  double probability = 1.0;
  /// Let the first N matching occurrences pass unharmed.
  int skipFirst = 0;
  /// Trigger budget: -1 = persistent, 1 = one-shot, N = first N hits.
  int maxTriggers = -1;
  /// Extra latency before the outcome: models a stalled download / RPC.
  SimTime stall = SimTime::zero();
  /// Error delivered on trigger; kOk makes the fault stall-only (the
  /// operation is delayed by `stall` but still succeeds).
  Errc code = Errc::kUnavailable;
  std::string message = "injected fault";
  /// Time-scripted sites only (kLinkDown, kControlChannelOutage,
  /// kSwitchRestart): the fault starts at `at` and lasts `duration`.
  SimTime at = SimTime::zero();
  SimTime duration = SimTime::zero();
};

/// What an injection point must do for one triggered occurrence.
struct InjectedFault {
  SimTime stall;       // delay to apply before completing the operation
  bool fail = false;   // false: stall-only, proceed normally afterwards
  Error error;         // valid when fail
  std::size_t specIndex = 0;
};

/// Trace entry for tests and post-mortem inspection.
struct FaultEvent {
  FaultSite site = FaultSite::kClusterRpc;
  std::string target;
  std::size_t specIndex = 0;
  bool failed = false;  // false = stall-only trigger
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1);

  /// Append a spec; returns its index (stable, reported in events).
  std::size_t add(FaultSpec spec);

  /// Consult the plan for one occurrence at `site` / `target`.  Counts the
  /// occurrence, draws from the matching specs' RNG streams, and returns
  /// the injected fault of the first spec that triggers (specs are tried
  /// in insertion order), or nullopt to proceed normally.
  std::optional<InjectedFault> evaluate(FaultSite site,
                                        const std::string& target);

  /// kLinkDown specs matching `target` (for Network::scheduleLinkFaults).
  std::vector<const FaultSpec*> linkFaults(const std::string& target) const;

  /// Time-scripted specs of `site` matching `target` (for components that
  /// schedule outage windows / restarts up front instead of drawing per
  /// occurrence).
  std::vector<const FaultSpec*> timedFaults(FaultSite site,
                                            const std::string& target) const;

  std::uint64_t seed() const { return seed_; }
  std::size_t specCount() const { return specs_.size(); }
  const FaultSpec& spec(std::size_t index) const {
    return specs_.at(index).spec;
  }

  /// Matching evaluate() calls seen per site (triggered or not).
  std::uint64_t occurrences(FaultSite site) const;
  /// Triggered injections (failures + stalls), in order.
  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t triggerCount() const { return events_.size(); }

 private:
  struct SpecState {
    FaultSpec spec;
    Rng rng;
    int seen = 0;       // matching occurrences so far
    int triggered = 0;  // times this spec fired
  };

  static bool matches(const std::string& specTarget, const std::string& target);

  std::uint64_t seed_;
  std::vector<SpecState> specs_;
  std::uint64_t occurrences_[kFaultSiteCount] = {};
  std::vector<FaultEvent> events_;
};

}  // namespace edgesim::fault
