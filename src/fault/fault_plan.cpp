#include "fault/fault_plan.hpp"

namespace edgesim::fault {

const char* faultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kRegistryPull: return "registry-pull";
    case FaultSite::kContainerCreate: return "container-create";
    case FaultSite::kContainerStart: return "container-start";
    case FaultSite::kClusterRpc: return "cluster-rpc";
    case FaultSite::kLinkDown: return "link-down";
    case FaultSite::kControlChannelLoss: return "control-channel-loss";
    case FaultSite::kControlChannelOutage: return "control-channel-outage";
    case FaultSite::kSwitchRestart: return "switch-restart";
  }
  return "unknown";
}

bool isTimeScripted(FaultSite site) {
  return site == FaultSite::kLinkDown ||
         site == FaultSite::kControlChannelOutage ||
         site == FaultSite::kSwitchRestart;
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {}

std::size_t FaultPlan::add(FaultSpec spec) {
  ES_ASSERT(spec.probability >= 0.0 && spec.probability <= 1.0);
  SpecState state;
  state.spec = std::move(spec);
  // Per-spec stream derived from (plan seed, spec index): adding a spec
  // never perturbs the draws of the ones before it.
  state.rng =
      Rng(seed_ ^ ((specs_.size() + 1) * 0x9e3779b97f4a7c15ULL));
  specs_.push_back(std::move(state));
  return specs_.size() - 1;
}

bool FaultPlan::matches(const std::string& specTarget,
                        const std::string& target) {
  if (specTarget.empty()) return true;
  if (specTarget == target) return true;
  // Prefix refinement: "docker-egs" matches "docker-egs/pull".
  return target.size() > specTarget.size() + 1 &&
         target.compare(0, specTarget.size(), specTarget) == 0 &&
         target[specTarget.size()] == '/';
}

std::optional<InjectedFault> FaultPlan::evaluate(FaultSite site,
                                                 const std::string& target) {
  ++occurrences_[static_cast<std::size_t>(site)];
  for (std::size_t index = 0; index < specs_.size(); ++index) {
    SpecState& state = specs_[index];
    const FaultSpec& spec = state.spec;
    if (spec.site != site || isTimeScripted(spec.site)) continue;
    if (!matches(spec.target, target)) continue;
    ++state.seen;
    // Always draw, so trigger decisions of later occurrences never depend
    // on whether earlier ones were skipped.
    const double draw = state.rng.uniform01();
    if (state.seen <= spec.skipFirst) continue;
    if (spec.maxTriggers >= 0 && state.triggered >= spec.maxTriggers) continue;
    if (draw >= spec.probability) continue;

    ++state.triggered;
    InjectedFault injected;
    injected.stall = spec.stall;
    injected.fail = spec.code != Errc::kOk;
    if (injected.fail) {
      injected.error = makeError(
          spec.code, spec.message + " (" + std::string(faultSiteName(site)) +
                         (target.empty() ? "" : " @ " + target) + ")");
    }
    injected.specIndex = index;
    events_.push_back(FaultEvent{site, target, index, injected.fail});
    return injected;
  }
  return std::nullopt;
}

std::vector<const FaultSpec*> FaultPlan::linkFaults(
    const std::string& target) const {
  return timedFaults(FaultSite::kLinkDown, target);
}

std::vector<const FaultSpec*> FaultPlan::timedFaults(
    FaultSite site, const std::string& target) const {
  std::vector<const FaultSpec*> out;
  for (const auto& state : specs_) {
    if (state.spec.site != site) continue;
    if (!matches(state.spec.target, target)) continue;
    out.push_back(&state.spec);
  }
  return out;
}

std::uint64_t FaultPlan::occurrences(FaultSite site) const {
  return occurrences_[static_cast<std::size_t>(site)];
}

}  // namespace edgesim::fault
