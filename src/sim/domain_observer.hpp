// Observation seam for the parallel discrete-event core.
//
// The sim module sits at the bottom of the dependency graph (sim DEPS util)
// and cannot include telemetry or trace headers.  DomainObserver inverts the
// dependency: EventDomain / Simulation / DomainScheduler call OUT through
// this abstract interface, and telemetry::DomainProbe (which may depend on
// everything) implements it.  With no observer attached (the default), every
// hook site is a single null-pointer test -- the engine's behaviour, event
// order and RNG streams are untouched, so determinism goldens stay bytewise
// identical.
//
// Threading contract: onAdvance() is invoked on the domain's advancing
// thread (one thread at a time per domain -- the LaneExecutor lane
// serializes it), so per-domain observer state needs no locking as long as
// it is keyed by domain id.  onCrossSend() runs on the SENDING domain's
// thread, onCrossReceive() on the RECEIVING domain's thread; watchdog hooks
// run on the coordinating thread.  Attach/detach only while no run is in
// flight.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace edgesim {

using DomainId = std::uint32_t;

/// Sentinel for "no domain" (e.g. an advance that was not bounded by any
/// inbound channel).
inline constexpr DomainId kNoDomainId = 0xFFFFFFFFu;

class EventDomain;

class DomainObserver {
 public:
  virtual ~DomainObserver() = default;

  /// One completed EventDomain::advance() call (parallel driver slice).
  struct AdvanceInfo {
    DomainId domain = 0;
    /// Events dispatched during this slice.
    std::size_t dispatched = 0;
    /// Iterations that lifted the clock on null-message progress alone
    /// (no event ran in that iteration).
    std::size_t lifts = 0;
    /// The domain clock moved during this slice (events or lifts).
    bool clockMoved = false;
    /// The domain reached the horizon with no live local event left at or
    /// before it (same value advance() publishes via idleAtHorizon()).
    bool idleAtHorizon = false;
    /// When not idle: the inbound channel whose safeBound() gates further
    /// progress, identified by its source domain; kNoDomainId otherwise.
    DomainId boundedBy = kNoDomainId;
    /// Domain clock at the end of the slice.
    SimTime now;
    /// Wall-clock interval the slice occupied.
    std::chrono::steady_clock::time_point wallStart;
    std::chrono::steady_clock::time_point wallEnd;
  };

  /// Called at the end of every advance() slice, on the advancing thread.
  virtual void onAdvance(const AdvanceInfo& info) = 0;

  /// A cross-domain send is being committed (Simulation::scheduleOnAt after
  /// the same-domain short-circuit).  Runs on the sending domain's thread.
  /// Return a non-zero flow id to have the matching receive reported via
  /// onCrossReceive (the engine wraps the closure); return 0 to only count.
  virtual std::uint64_t onCrossSend(DomainId from, DomainId to,
                                    SimTime when) = 0;
  /// The closure of a cross-domain send with a non-zero flow id is about to
  /// execute in the target domain.  Runs on the receiving domain's thread.
  virtual void onCrossReceive(std::uint64_t flow, DomainId from, DomainId to,
                              SimTime when) = 0;

  /// One watchdog sweep over all domains (coordinating thread).
  virtual void onWatchdogPass() = 0;
  /// A watchdog re-post was admitted for `domain` and its advance slice has
  /// finished; `productive` = the slice dispatched events or moved the
  /// clock (a redundant wake found nothing to do).  Advancing thread.
  virtual void onWatchdogWake(DomainId domain, bool productive) = 0;
};

}  // namespace edgesim
