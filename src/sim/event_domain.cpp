#include "sim/event_domain.hpp"

#include <algorithm>
#include <chrono>

#include "sim/domain_observer.hpp"
#include "sim/simulation.hpp"

namespace edgesim {

namespace {
// Domain currently dispatching an event on this thread; see
// EventDomain::current().
thread_local EventDomain* tlsCurrentDomain = nullptr;

// RAII guard so nested dispatch (the sequential multi-domain driver runs
// several domains on one thread) restores the outer domain.
class CurrentDomainScope {
 public:
  explicit CurrentDomainScope(EventDomain* domain)
      : saved_(tlsCurrentDomain) {
    tlsCurrentDomain = domain;
  }
  ~CurrentDomainScope() { tlsCurrentDomain = saved_; }
  CurrentDomainScope(const CurrentDomainScope&) = delete;
  CurrentDomainScope& operator=(const CurrentDomainScope&) = delete;

 private:
  EventDomain* saved_;
};
}  // namespace

// ---- DomainChannel ---------------------------------------------------------

DomainChannel::DomainChannel(EventDomain& from, EventDomain& to,
                             SimTime lookahead, std::string via)
    : from_(from),
      to_(to),
      lookaheadNanos_(lookahead.toNanos()),
      via_(std::move(via)) {
  ES_ASSERT_MSG(lookahead > SimTime::zero(),
                "cross-domain lookahead must be positive");
  ES_ASSERT_MSG(&from != &to, "channel endpoints must differ");
}

void DomainChannel::tighten(SimTime lookahead, const std::string& via) {
  ES_ASSERT_MSG(lookahead > SimTime::zero(),
                "cross-domain lookahead must be positive");
  std::int64_t observed = lookaheadNanos_.load(std::memory_order_relaxed);
  while (lookahead.toNanos() < observed &&
         !lookaheadNanos_.compare_exchange_weak(observed, lookahead.toNanos(),
                                                std::memory_order_relaxed)) {
  }
  // The tightest latency defines the bound, so the link that set it owns the
  // channel's identity for attribution (setup phase: single-threaded).
  if (!via.empty() && lookahead.toNanos() <= observed) via_ = via;
}

void DomainChannel::push(SimTime when, std::function<void()> fn) {
  ES_ASSERT(fn != nullptr);
  {
    std::lock_guard lock(mutex_);
    pending_.push_back(Message{when, nextSeq_++, std::move(fn)});
    pendingCount_.store(pending_.size(), std::memory_order_relaxed);
    nonEmpty_.store(true, std::memory_order_release);
  }
}

SimTime DomainChannel::safeBound() const {
  return SimTime::nanos(from_.nowNanosAtomic()) + lookahead();
}

std::size_t DomainChannel::drainInto(EventDomain& target) {
  ES_ASSERT(&target == &to_);
  if (!nonEmpty_.load(std::memory_order_acquire)) return 0;
  std::vector<Message> batch;
  {
    std::lock_guard lock(mutex_);
    batch.swap(pending_);
    pendingCount_.store(0, std::memory_order_relaxed);
    nonEmpty_.store(false, std::memory_order_release);
  }
  // Senders push in their own execution order, but stamps are send-time plus
  // a per-message latency, so a later push may carry an earlier stamp.
  // Restore (when, push order) so admission into the receiver's queue -- and
  // therefore the receiver's tie-break sequence numbers -- is deterministic.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Message& a, const Message& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.seq < b.seq;
                   });
  for (auto& message : batch) {
    target.scheduleAt(message.when, std::move(message.fn));
  }
  return batch.size();
}

// ---- EventDomain -----------------------------------------------------------

EventDomain::EventDomain(Simulation& sim, DomainId id, std::string name,
                         Rng* sharedRng, std::uint64_t rngSeed)
    : sim_(sim), id_(id), name_(std::move(name)) {
  if (sharedRng != nullptr) {
    rng_ = sharedRng;
  } else {
    ownedRng_ = std::make_unique<Rng>(rngSeed);
    rng_ = ownedRng_.get();
  }
}

EventDomain* EventDomain::current() { return tlsCurrentDomain; }

EventHandle EventDomain::schedule(SimTime delay, std::function<void()> fn) {
  ES_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle EventDomain::scheduleAt(SimTime when, std::function<void()> fn) {
  ES_ASSERT_MSG(when >= now_, "scheduling into the past");
  ES_ASSERT(fn != nullptr);
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_.push(Event{when, nextSeq_++, std::move(fn), std::move(alive)});
  queueSize_.fetch_add(1, std::memory_order_relaxed);
  return handle;
}

void EventDomain::dispatch(Event event) {
  setNow(event.when);
  if (*event.alive) {
    *event.alive = false;
    processed_.fetch_add(1, std::memory_order_relaxed);
    CurrentDomainScope scope(this);
    event.fn();
  }
}

bool EventDomain::step() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    queueSize_.fetch_sub(1, std::memory_order_relaxed);
    if (!*event.alive) continue;  // cancelled; skip without advancing
    dispatch(std::move(event));
    return true;
  }
  return false;
}

SimTime EventDomain::nextEventTime() {
  while (!queue_.empty()) {
    if (*queue_.top().alive) return queue_.top().when;
    queue_.pop();  // prune cancelled front entries
    queueSize_.fetch_sub(1, std::memory_order_relaxed);
  }
  return SimTime::max();
}

std::size_t EventDomain::advance(SimTime horizon) {
  DomainObserver* const observer = observer_;
  std::chrono::steady_clock::time_point wallStart;
  if (observer != nullptr) wallStart = std::chrono::steady_clock::now();
  const SimTime clockBefore = now_;
  idleAtHorizon_.store(false, std::memory_order_relaxed);
  std::size_t dispatched = 0;
  std::size_t lifts = 0;
  const DomainChannel* gating = nullptr;  // argmin channel of the last bound
  for (;;) {
    // Bound BEFORE drain: a message pushed after this read was sent at a
    // sender clock >= the one folded into `bound`, so its stamp is >= bound
    // and the strict `when < bound` cut below cannot miss it.
    SimTime bound = SimTime::max();
    gating = nullptr;
    for (const DomainChannel* channel : inbound_) {
      const SimTime b = channel->safeBound();
      if (b < bound) {
        bound = b;
        gating = channel;
      }
    }
    for (DomainChannel* channel : inbound_) channel->drainInto(*this);

    bool progressed = false;
    std::size_t ranThisRound = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.when > horizon || top.when >= bound) break;
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      queueSize_.fetch_sub(1, std::memory_order_relaxed);
      if (!*event.alive) continue;
      dispatch(std::move(event));
      ++dispatched;
      ++ranThisRound;
      progressed = true;
    }

    // Null-message progress: lift the commit clock to everything proven
    // safe, so downstream domains' bounds advance even when we ran nothing.
    const SimTime target = std::min(horizon, bound);
    if (target > now_) {
      if (ranThisRound == 0) ++lifts;
      setNow(target);
      progressed = true;
    }
    if (!progressed) break;
  }
  const bool idle = now_ >= horizon && !hasEventAtOrBefore(horizon);
  idleAtHorizon_.store(idle, std::memory_order_release);
  if (observer != nullptr) {
    DomainObserver::AdvanceInfo info;
    info.domain = id_;
    info.dispatched = dispatched;
    info.lifts = lifts;
    info.clockMoved = now_ > clockBefore;
    info.idleAtHorizon = idle;
    info.boundedBy =
        (!idle && gating != nullptr) ? gating->from().id() : kNoDomainId;
    info.now = now_;
    info.wallStart = wallStart;
    info.wallEnd = std::chrono::steady_clock::now();
    observer->onAdvance(info);
  }
  return dispatched;
}

}  // namespace edgesim
