#include "sim/domain_scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/domain_observer.hpp"
#include "util/lane_executor.hpp"

namespace edgesim {

void DomainScheduler::runParallel(LaneExecutor& pool, SimTime until) {
  const std::size_t domainCount = sim_.domainCount();
  advanceTasks_.store(0, std::memory_order_relaxed);
  notifyWakes_.store(0, std::memory_order_relaxed);
  watchdogPasses_.store(0, std::memory_order_relaxed);
  watchdogWakes_.store(0, std::memory_order_relaxed);
  watchdogProductive_.store(0, std::memory_order_relaxed);
  watchdogRedundant_.store(0, std::memory_order_relaxed);
  if (domainCount <= 1) {
    sim_.runUntil(until);
    return;
  }
  DomainObserver* const observer = sim_.domainObserver();
  sim_.beginParallel();

  // One queued-flag per domain: collapses redundant re-posts so a domain has
  // at most one advance task pending at any time (plus at most one running,
  // serialized by its lane).
  struct DomainState {
    std::atomic<bool> queued{false};
  };
  std::vector<std::unique_ptr<DomainState>> states;
  states.reserve(domainCount);
  for (std::size_t i = 0; i < domainCount; ++i) {
    states.push_back(std::make_unique<DomainState>());
  }

  std::mutex doneMutex;
  std::condition_variable doneCv;

  // Recursive: advance tasks re-post themselves and their downstream
  // domains.  Safe to capture by reference -- pool.drain() below guarantees
  // every task (and everything tasks post transitively) finishes before
  // these locals go out of scope.  `fromWatchdog` tags the task so its
  // outcome can be classified productive vs redundant -- the lost-wakeup
  // detector the domain-scaling test bounds.
  std::function<void(DomainId, bool)> enqueue = [&](DomainId id,
                                                    bool fromWatchdog) {
    if (states[id]->queued.exchange(true, std::memory_order_acq_rel)) return;
    const bool admitted = pool.post(id, [this, &states, &enqueue, &doneCv, id,
                                         until, fromWatchdog, observer] {
      states[id]->queued.store(false, std::memory_order_release);
      advanceTasks_.fetch_add(1, std::memory_order_relaxed);
      EventDomain& domain = sim_.domain(id);
      if (id == kControlDomain) sim_.drainExternal();
      const SimTime clockBefore = domain.now();
      const std::size_t dispatched = domain.advance(until);
      const bool productive = dispatched > 0 || domain.now() > clockBefore;
      if (fromWatchdog) {
        (productive ? watchdogProductive_ : watchdogRedundant_)
            .fetch_add(1, std::memory_order_relaxed);
        if (observer != nullptr) observer->onWatchdogWake(id, productive);
      }
      if (productive) {
        // Progress moved this domain's commit clock: downstream bounds grew,
        // so their domains may be able to advance further.
        for (const DomainChannel* channel : domain.outbound()) {
          enqueue(channel->to().id(), false);
        }
      }
      // No self-repost: advance() only returns once no further progress is
      // possible under the CURRENT bounds, so spinning on ourselves would
      // burn the pool.  The next wake arrives from an upstream domain's
      // progress (the loop above, run by ITS task) or from the watchdog.
      doneCv.notify_one();
    });
    if (admitted) {
      (fromWatchdog ? watchdogWakes_ : notifyWakes_)
          .fetch_add(1, std::memory_order_relaxed);
    } else {
      // A bounded pool may shed the task; clear the flag so the watchdog can
      // retry instead of believing an advance is pending forever.
      states[id]->queued.store(false, std::memory_order_release);
    }
  };

  const auto allIdle = [&] {
    if (sim_.externalPending()) return false;
    for (DomainId id = 0; id < domainCount; ++id) {
      EventDomain& domain = sim_.domain(id);
      if (!domain.idleAtHorizon()) return false;
      for (const DomainChannel* channel : domain.inbound()) {
        if (!channel->empty()) return false;
      }
    }
    return true;
  };

  for (DomainId id = 0; id < domainCount; ++id) enqueue(id, false);
  {
    std::unique_lock lock(doneMutex);
    while (!allIdle()) {
      doneCv.wait_for(lock, std::chrono::milliseconds(2));
      // Watchdog: wake anything not yet at the horizon.  Redundant posts
      // are collapsed by the queued flags; an idle domain whose inbound
      // channel is non-empty gets re-posted to drain it.
      watchdogPasses_.fetch_add(1, std::memory_order_relaxed);
      if (observer != nullptr) observer->onWatchdogPass();
      for (DomainId id = 0; id < domainCount; ++id) {
        EventDomain& domain = sim_.domain(id);
        bool inboundPending = false;
        for (const DomainChannel* channel : domain.inbound()) {
          inboundPending = inboundPending || !channel->empty();
        }
        if (!domain.idleAtHorizon() || inboundPending ||
            (id == kControlDomain && sim_.externalPending())) {
          enqueue(id, true);
        }
      }
    }
  }
  // In-flight tasks may still be running (an idle recheck, a final
  // notification); let them finish before the captured locals die.
  pool.drain();
  sim_.endParallel();
  for (DomainId id = 0; id < domainCount; ++id) sim_.domain(id).finishAt(until);
}

}  // namespace edgesim
