// Deterministic discrete-event simulation engine, partitioned into time
// domains (see sim/event_domain.hpp).
//
// A Simulation is a set of EventDomains sharing one logical experiment.  The
// default configuration has exactly ONE domain, and then the engine is the
// historical single-queue machine, bit for bit: determinism goldens assert
// identical output.  Partitioned setups call addDomain()/connectDomains()
// during construction; domains then advance either
//
//   * sequentially (run/runUntil/step): one thread executes the globally
//     earliest event across all domains -- a canonical total order, used by
//     determinism tests as the reference for parallel runs; or
//   * in parallel (DomainScheduler::runParallel): each domain advances on a
//     LaneExecutor worker under the conservative lookahead rule.
//
// Ordinary components never name domains: schedule()/now()/rng() route to
// the ACTIVE domain -- the one dispatching the current event, or the
// DomainScope-selected domain during setup.  An event scheduled from inside
// a handler therefore stays in its component's domain automatically.
// Cross-domain posting is explicit (scheduleOn/scheduleOnAt) and pays at
// least the channel's lookahead latency.
//
// Concurrent deployments (the controller's worker-pool hot path) interact
// with the engine through ONE narrow, thread-safe seam: postExternal()
// enqueues a closure from any thread into a mutex-guarded inbox; the
// control domain alone admits inbox entries (drainExternal / pump) and
// executes them.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_domain.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace edgesim {

class DomainScheduler;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Clock of the active domain (single-domain: THE clock).
  SimTime now() const;
  /// Thread-safe approximation of now() for worker threads (stamping
  /// trace/metrics events while the sim thread advances time).  Reads the
  /// control domain's commit clock; exact whenever that domain is quiescent.
  SimTime approxNow() const {
    return SimTime::nanos(domains_.front()->nowNanosAtomic());
  }
  /// RNG stream of the active domain (single-domain: the master stream).
  Rng& rng();

  /// Schedule `fn` in the active domain, `delay` after its now (delay >= 0).
  EventHandle schedule(SimTime delay, std::function<void()> fn);
  /// Schedule `fn` in the active domain at an absolute time (>= its now).
  EventHandle scheduleAt(SimTime when, std::function<void()> fn);

  // ---- time domains --------------------------------------------------------
  /// Create a new domain (setup phase only).  Its RNG stream is derived
  /// deterministically from the simulation seed and the domain id, so adding
  /// domains never perturbs the master stream.
  DomainId addDomain(const std::string& name);
  std::size_t domainCount() const { return domains_.size(); }
  EventDomain& domain(DomainId id) {
    ES_ASSERT(id < domains_.size());
    return *domains_[id];
  }
  /// Domain dispatching the current event on this thread, else the
  /// DomainScope-selected setup domain (default: the control domain).
  EventDomain& activeDomain();
  DomainId activeDomainId() { return activeDomain().id(); }

  /// Declare (or tighten) the bidirectional lookahead bound between two
  /// domains -- the minimum model latency any cross-domain event pays.
  /// Links crossing domains call this with their latency (setup phase only).
  /// `via` names the link for stall attribution (e.g. "edge-3<->edge-7");
  /// the tightest link owns the channel identity.
  void connectDomains(DomainId a, DomainId b, SimTime lookahead,
                      const std::string& via = {});
  /// Lookahead of the from->to channel; SimTime::max() when unconnected.
  SimTime domainLookahead(DomainId from, DomainId to) const;
  /// The from->to channel, nullptr when unconnected.  Observers use this to
  /// enumerate channel identities; the engine's own callers go through
  /// scheduleOn/scheduleOnAt.
  const DomainChannel* domainChannel(DomainId from, DomainId to) const {
    return channelBetween(from, to);
  }

  /// Attach (or detach, with nullptr) a DomainObserver: every domain's
  /// advance() slices, cross-domain sends, and the parallel driver's
  /// watchdog report through it.  Setup phase only -- never while a run is
  /// in flight.  Null observer (the default) keeps the engine on its
  /// zero-instrumentation path.
  void setDomainObserver(DomainObserver* observer);
  DomainObserver* domainObserver() const { return observer_; }

  /// Schedule `fn` on `target`, at least max(delay, channel lookahead) after
  /// the active domain's now.  Same-domain calls degrade to schedule().
  /// Cross-domain sends return an inert (non-cancellable) handle.
  EventHandle scheduleOn(DomainId target, SimTime delay,
                         std::function<void()> fn);
  /// Schedule `fn` on `target` at an absolute time.  Cross-domain, `when`
  /// must be >= the active domain's now + channel lookahead (parallel runs
  /// enforce this; it is what makes the conservative advance rule sound).
  EventHandle scheduleOnAt(DomainId target, SimTime when,
                           std::function<void()> fn);

  /// Route setup-phase schedule()/now()/rng() calls to a chosen domain for
  /// the scope's lifetime, so component constructors (stores, engines,
  /// kubelets, reconcile timers) land their events cluster-locally without
  /// threading DomainIds through every signature.  Setup only (asserts no
  /// event is dispatching); scopes nest.
  class DomainScope {
   public:
    DomainScope(Simulation& sim, DomainId id);
    ~DomainScope();
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

   private:
    Simulation& sim_;
    DomainId saved_;
  };

  // ---- cross-thread injection (concurrent controller front-end) -----------
  /// Enqueue `fn` from ANY thread; it runs on the control domain at the
  /// current sim time once the inbox is drained.
  void postExternal(std::function<void()> fn);
  /// Move externally posted closures into the control domain's queue (at its
  /// now()).  Control-domain thread only.  Returns the number admitted.
  std::size_t drainExternal();
  /// Concurrent-phase pump: admit external posts, then advance the clock by
  /// at most `slice`, running everything that becomes due.  The caller
  /// loops on this until its own completion condition holds (an unbounded
  /// run would never return: periodic timers re-arm forever).  Returns the
  /// number of inbox closures admitted.  Simulation thread only.
  std::size_t pump(SimTime slice);
  /// Block up to `timeout` for a postExternal() to arrive; false on
  /// timeout.  Lets pump loops idle without spinning the clock forward.
  bool waitForExternal(std::chrono::microseconds timeout);
  bool externalPending() const {
    return inboxNonEmpty_.load(std::memory_order_acquire);
  }
  /// Number of externally posted closures not yet admitted (mutex-guarded;
  /// safe from any thread -- feeds the external-inbox-depth gauge).
  std::size_t externalQueueDepth() const;

  /// Run until every domain's queue drains or `stop()` is called.
  /// Sequential: multi-domain setups execute the globally earliest event.
  void run();
  /// Run while events exist at time <= `until`; afterwards every domain's
  /// now() == until (or beyond, matching the historical engine's behaviour
  /// when the last executed event overshoots).
  void runUntil(SimTime until);
  /// Execute at most one event (globally earliest across domains); returns
  /// false if all queues were empty.
  bool step();

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pendingEvents() const;
  std::uint64_t processedEvents() const;

  /// "[t=...] " prefix for the logger (control-domain clock).
  std::string timePrefix() const;

  /// Route the global logger's time prefix to this simulation for the
  /// object's lifetime (used by tests/benches for readable traces).
  class LogScope {
   public:
    explicit LogScope(Simulation& sim);
    ~LogScope();
    LogScope(const LogScope&) = delete;
    LogScope& operator=(const LogScope&) = delete;
  };

 private:
  friend class DomainScheduler;

  DomainChannel* channelBetween(DomainId from, DomainId to) const;
  void drainAllChannels();
  /// Globally earliest live event across domains (sequential drivers).
  EventDomain* earliestDomain(SimTime* when);
  void beginParallel();
  void endParallel();
  bool parallelPhase() const {
    return parallel_.load(std::memory_order_relaxed);
  }

  std::uint64_t seed_;
  Rng rng_;  // master stream, aliased by domain 0
  std::vector<std::unique_ptr<EventDomain>> domains_;
  std::vector<std::unique_ptr<DomainChannel>> channels_;
  std::map<std::pair<DomainId, DomainId>, DomainChannel*> channelIndex_;
  DomainId setupDomain_ = kControlDomain;
  std::atomic<bool> parallel_{false};
  DomainObserver* observer_ = nullptr;  // setup-phase writes only
  bool stopped_ = false;

  // External inbox: the one cross-thread seam (see header comment).
  mutable std::mutex inboxMutex_;
  std::condition_variable inboxCv_;
  std::vector<std::function<void()>> inbox_;
  std::atomic<bool> inboxNonEmpty_{false};
};

/// Periodic callback helper; fires every `period` until cancelled or the
/// callback returns false.  Safe to cancel or even destroy from within its
/// own tick callback (common when a tick tears down the owning object).
/// Ticks re-arm through Simulation::schedule, so a timer started while a
/// domain is active (via DomainScope or from one of its events) stays in
/// that domain.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// `tick` returns true to continue, false to stop.
  void start(Simulation& sim, SimTime period, std::function<bool()> tick,
             SimTime initialDelay = SimTime::zero());
  void cancel();
  bool running() const { return running_; }

 private:
  void arm(Simulation& sim, SimTime delay);

  SimTime period_;
  std::function<bool()> tick_;
  EventHandle handle_;
  bool running_ = false;
  /// Liveness token shared with in-flight events; flipped on cancel and
  /// destruction so a stale event never touches this object.
  std::shared_ptr<bool> alive_;
};

}  // namespace edgesim
