// Deterministic discrete-event simulation engine.
//
// Single-threaded by design: determinism is a core requirement (the tests
// assert bit-identical reruns).  Events with equal timestamps execute in
// scheduling order (a monotonically increasing sequence number breaks ties),
// so component registration order -- not heap internals -- defines the
// semantics.  Parallelism belongs one level up: run many Simulations on a
// ThreadPool, one per experiment repetition.
//
// Concurrent deployments (the controller's worker-pool hot path) interact
// with the engine through ONE narrow, thread-safe seam: postExternal()
// enqueues a closure from any thread into a mutex-guarded inbox; the
// simulation thread alone moves inbox entries into the event queue
// (drainExternal / serviceLoop) and executes them.  All other members stay
// single-threaded, so deterministic runs pay nothing beyond one relaxed
// atomic load per drain check.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace edgesim {

/// Handle for cancelling a scheduled event.  Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (const auto alive = alive_.lock()) *alive = false;
  }
  bool pending() const {
    const auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class Simulation;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  /// Thread-safe approximation of now() for worker threads (stamping
  /// trace/metrics events while the sim thread advances time).  Exact
  /// whenever the simulation thread is quiescent.
  SimTime approxNow() const {
    return SimTime::nanos(nowNanos_.load(std::memory_order_relaxed));
  }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` after now (delay >= 0).
  EventHandle schedule(SimTime delay, std::function<void()> fn);
  /// Schedule `fn` at an absolute time (>= now).
  EventHandle scheduleAt(SimTime when, std::function<void()> fn);

  // ---- cross-thread injection (concurrent controller front-end) -----------
  /// Enqueue `fn` from ANY thread; it runs on the simulation thread at the
  /// current sim time once the inbox is drained.  The only thread-safe
  /// entry point of the engine.
  void postExternal(std::function<void()> fn);
  /// Move externally posted closures into the event queue (at now()).
  /// Simulation thread only.  Returns the number of closures admitted.
  std::size_t drainExternal();
  /// Concurrent-phase pump: admit external posts, then advance the clock by
  /// at most `slice`, running everything that becomes due.  The caller
  /// loops on this until its own completion condition holds (an unbounded
  /// run would never return: periodic timers re-arm forever).  Returns the
  /// number of inbox closures admitted.  Simulation thread only.
  std::size_t pump(SimTime slice);
  /// Block up to `timeout` for a postExternal() to arrive; false on
  /// timeout.  Lets pump loops idle without spinning the clock forward.
  bool waitForExternal(std::chrono::microseconds timeout);

  /// Run until the event queue drains or `stop()` is called.
  void run();
  /// Run while events exist and their time is <= `until`; afterwards,
  /// now() == min(until, drain time).
  void runUntil(SimTime until);
  /// Execute at most one event; returns false if the queue was empty.
  bool step();

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::size_t pendingEvents() const { return queueSize_; }
  std::uint64_t processedEvents() const { return processed_; }

  /// "[t=...] " prefix for the logger.
  std::string timePrefix() const;

  /// Route the global logger's time prefix to this simulation for the
  /// object's lifetime (used by tests/benches for readable traces).
  class LogScope {
   public:
    explicit LogScope(Simulation& sim);
    ~LogScope();
    LogScope(const LogScope&) = delete;
    LogScope& operator=(const LogScope&) = delete;
  };

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap
      return a.seq > b.seq;
    }
  };

  void dispatch(Event event);

  void setNow(SimTime when) {
    now_ = when;
    nowNanos_.store(when.toNanos(), std::memory_order_relaxed);
  }

  SimTime now_ = SimTime::zero();
  std::atomic<std::int64_t> nowNanos_{0};  // mirror of now_ for approxNow()
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t queueSize_ = 0;
  bool stopped_ = false;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;

  // External inbox: the one mutex-guarded seam (see header comment).
  std::mutex inboxMutex_;
  std::condition_variable inboxCv_;
  std::vector<std::function<void()>> inbox_;
  std::atomic<bool> inboxNonEmpty_{false};
};

/// Periodic callback helper; fires every `period` until cancelled or the
/// callback returns false.  Safe to cancel or even destroy from within its
/// own tick callback (common when a tick tears down the owning object).
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// `tick` returns true to continue, false to stop.
  void start(Simulation& sim, SimTime period, std::function<bool()> tick,
             SimTime initialDelay = SimTime::zero());
  void cancel();
  bool running() const { return running_; }

 private:
  void arm(Simulation& sim, SimTime delay);

  SimTime period_;
  std::function<bool()> tick_;
  EventHandle handle_;
  bool running_ = false;
  /// Liveness token shared with in-flight events; flipped on cancel and
  /// destruction so a stale event never touches this object.
  std::shared_ptr<bool> alive_;
};

}  // namespace edgesim
