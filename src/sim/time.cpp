#include "sim/time.hpp"

#include "util/strings.hpp"

namespace edgesim {

std::string SimTime::toString() const {
  const std::int64_t n = nanos_;
  const std::int64_t mag = n < 0 ? -n : n;
  if (mag >= 1000000000) return strprintf("%.3fs", toSeconds());
  if (mag >= 1000000) return strprintf("%.2fms", toMillis());
  if (mag >= 1000) return strprintf("%.1fus", toMicros());
  return strprintf("%lldns", static_cast<long long>(n));
}

}  // namespace edgesim
