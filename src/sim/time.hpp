// Simulated time: signed 64-bit nanoseconds since simulation start.
//
// A strong type (not std::chrono) keeps the event queue simple and makes
// accidental mixing with wall-clock durations a compile error.  Literals:
//   using namespace edgesim::timeliterals;  5_s, 100_ms, 50_us, 7_ns
#pragma once

#include <cstdint>
#include <string>

namespace edgesim {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t u) { return SimTime(u * 1000); }
  static constexpr SimTime millis(std::int64_t m) { return SimTime(m * 1000000); }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t toNanos() const { return nanos_; }
  constexpr double toMicros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double toMillis() const { return static_cast<double>(nanos_) / 1e6; }
  constexpr double toSeconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(nanos_ + o.nanos_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(nanos_ - o.nanos_); }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(nanos_ * k); }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(nanos_ / k); }
  SimTime& operator+=(SimTime o) { nanos_ += o.nanos_; return *this; }
  SimTime& operator-=(SimTime o) { nanos_ -= o.nanos_; return *this; }

  /// Scale by a double (used for jittered latencies).
  constexpr SimTime scaled(double k) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(nanos_) * k));
  }

  /// "1.234s" / "56.7ms" / "890us" / "12ns" -- picks a readable unit.
  std::string toString() const;

 private:
  constexpr explicit SimTime(std::int64_t n) : nanos_(n) {}
  std::int64_t nanos_ = 0;
};

namespace timeliterals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanos(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::millis(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<double>(v));
}
constexpr SimTime operator""_s(long double v) {
  return SimTime::seconds(static_cast<double>(v));
}
}  // namespace timeliterals

}  // namespace edgesim
