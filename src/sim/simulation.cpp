#include "sim/simulation.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace edgesim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() = default;

EventHandle Simulation::schedule(SimTime delay, std::function<void()> fn) {
  ES_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulation::scheduleAt(SimTime when, std::function<void()> fn) {
  ES_ASSERT_MSG(when >= now_, "scheduling into the past");
  ES_ASSERT(fn != nullptr);
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_.push(Event{when, nextSeq_++, std::move(fn), std::move(alive)});
  ++queueSize_;
  return handle;
}

void Simulation::dispatch(Event event) {
  setNow(event.when);
  if (*event.alive) {
    *event.alive = false;
    ++processed_;
    event.fn();
  }
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --queueSize_;
    if (!*event.alive) continue;  // cancelled; skip without advancing
    dispatch(std::move(event));
    return true;
  }
  return false;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::runUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.top().when > until) break;
    step();
  }
  if (now_ < until) setNow(until);
}

void Simulation::postExternal(std::function<void()> fn) {
  ES_ASSERT(fn != nullptr);
  {
    std::lock_guard lock(inboxMutex_);
    inbox_.push_back(std::move(fn));
    inboxNonEmpty_.store(true, std::memory_order_release);
  }
  inboxCv_.notify_one();
}

std::size_t Simulation::drainExternal() {
  if (!inboxNonEmpty_.load(std::memory_order_acquire)) return 0;
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(inboxMutex_);
    batch.swap(inbox_);
    inboxNonEmpty_.store(false, std::memory_order_release);
  }
  // Admission at now(): posting order defines execution order, exactly as
  // if each closure had been scheduled with delay zero on arrival.
  for (auto& fn : batch) scheduleAt(now_, std::move(fn));
  return batch.size();
}

std::size_t Simulation::pump(SimTime slice) {
  const std::size_t admitted = drainExternal();
  runUntil(now_ + slice);
  return admitted;
}

bool Simulation::waitForExternal(std::chrono::microseconds timeout) {
  std::unique_lock lock(inboxMutex_);
  return inboxCv_.wait_for(lock, timeout, [this] { return !inbox_.empty(); });
}

std::string Simulation::timePrefix() const {
  return strprintf("[t=%11.6fs] ", now_.toSeconds());
}

Simulation::LogScope::LogScope(Simulation& sim) {
  Logger::instance().setTimePrefix([&sim] { return sim.timePrefix(); });
}

Simulation::LogScope::~LogScope() { Logger::instance().clearTimePrefix(); }

PeriodicTimer::~PeriodicTimer() { cancel(); }

void PeriodicTimer::start(Simulation& sim, SimTime period,
                          std::function<bool()> tick, SimTime initialDelay) {
  ES_ASSERT(period > SimTime::zero());
  ES_ASSERT(tick != nullptr);
  cancel();
  period_ = period;
  tick_ = std::move(tick);
  running_ = true;
  alive_ = std::make_shared<bool>(true);
  arm(sim, initialDelay);
}

void PeriodicTimer::arm(Simulation& sim, SimTime delay) {
  handle_ = sim.schedule(delay, [this, &sim, alive = alive_] {
    if (!*alive || !running_) return;
    const bool again = tick_();
    // The tick may have cancelled or destroyed this timer: re-check the
    // liveness token before touching any member.
    if (!*alive) return;
    if (again) {
      arm(sim, period_);
    } else {
      running_ = false;
    }
  });
}

void PeriodicTimer::cancel() {
  if (alive_ != nullptr) *alive_ = false;
  handle_.cancel();
  running_ = false;
}

}  // namespace edgesim
