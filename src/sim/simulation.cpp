#include "sim/simulation.hpp"

#include <algorithm>

#include "sim/domain_observer.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace edgesim {

namespace {
// splitmix64 finalizer: spreads (seed, domain id) into an independent
// per-domain stream seed without consuming draws from the master RNG, so
// adding domains never perturbs the domain-0 stream the goldens depend on.
std::uint64_t domainSeed(std::uint64_t seed, DomainId id) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Simulation::Simulation(std::uint64_t seed) : seed_(seed), rng_(seed) {
  domains_.push_back(
      std::make_unique<EventDomain>(*this, kControlDomain, "main", &rng_, 0));
}

Simulation::~Simulation() = default;

SimTime Simulation::now() const {
  if (EventDomain* d = EventDomain::current();
      d != nullptr && &d->sim() == this) {
    return d->now();
  }
  return domains_[setupDomain_]->now();
}

Rng& Simulation::rng() { return activeDomain().rng(); }

EventDomain& Simulation::activeDomain() {
  if (EventDomain* d = EventDomain::current();
      d != nullptr && &d->sim() == this) {
    return *d;
  }
  return *domains_[setupDomain_];
}

EventHandle Simulation::schedule(SimTime delay, std::function<void()> fn) {
  return activeDomain().schedule(delay, std::move(fn));
}

EventHandle Simulation::scheduleAt(SimTime when, std::function<void()> fn) {
  return activeDomain().scheduleAt(when, std::move(fn));
}

DomainId Simulation::addDomain(const std::string& name) {
  ES_ASSERT_MSG(!parallelPhase(), "addDomain during a parallel phase");
  ES_ASSERT_MSG(EventDomain::current() == nullptr,
                "addDomain from inside an event");
  const auto id = static_cast<DomainId>(domains_.size());
  domains_.push_back(std::make_unique<EventDomain>(*this, id, name, nullptr,
                                                   domainSeed(seed_, id)));
  domains_.back()->observer_ = observer_;
  return id;
}

void Simulation::connectDomains(DomainId a, DomainId b, SimTime lookahead,
                                const std::string& via) {
  ES_ASSERT_MSG(!parallelPhase(), "connectDomains during a parallel phase");
  ES_ASSERT_MSG(a != b, "connectDomains endpoints must differ");
  ES_ASSERT(a < domains_.size() && b < domains_.size());
  for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    if (DomainChannel* existing = channelBetween(from, to)) {
      existing->tighten(lookahead, via);
      continue;
    }
    auto channel = std::make_unique<DomainChannel>(
        *domains_[from], *domains_[to], lookahead, via);
    domains_[from]->addOutbound(channel.get());
    domains_[to]->addInbound(channel.get());
    channelIndex_.emplace(std::pair{from, to}, channel.get());
    channels_.push_back(std::move(channel));
  }
}

void Simulation::setDomainObserver(DomainObserver* observer) {
  ES_ASSERT_MSG(!parallelPhase(), "setDomainObserver during a parallel phase");
  ES_ASSERT_MSG(EventDomain::current() == nullptr,
                "setDomainObserver from inside an event");
  observer_ = observer;
  for (const auto& domain : domains_) domain->observer_ = observer;
}

SimTime Simulation::domainLookahead(DomainId from, DomainId to) const {
  const DomainChannel* channel = channelBetween(from, to);
  return channel != nullptr ? channel->lookahead() : SimTime::max();
}

DomainChannel* Simulation::channelBetween(DomainId from, DomainId to) const {
  const auto it = channelIndex_.find(std::pair{from, to});
  return it != channelIndex_.end() ? it->second : nullptr;
}

EventHandle Simulation::scheduleOn(DomainId target, SimTime delay,
                                   std::function<void()> fn) {
  ES_ASSERT_MSG(delay >= SimTime::zero(), "negative delay");
  EventDomain& active = activeDomain();
  if (target != active.id()) {
    // Cross-domain sends pay at least the channel lookahead: the modelled
    // management-plane latency, and (in parallel runs) the bound that keeps
    // the conservative advance rule sound.
    const SimTime lookahead = domainLookahead(active.id(), target);
    if (lookahead != SimTime::max() && delay < lookahead) delay = lookahead;
  }
  return scheduleOnAt(target, active.now() + delay, std::move(fn));
}

EventHandle Simulation::scheduleOnAt(DomainId target, SimTime when,
                                     std::function<void()> fn) {
  ES_ASSERT(target < domains_.size());
  EventDomain& active = activeDomain();
  EventDomain& dst = *domains_[target];
  if (&dst == &active) return dst.scheduleAt(when, std::move(fn));
  if (DomainObserver* observer = observer_) {
    // Causality stamp: the observer pairs this send with the receive.  A
    // zero flow id means "count only" -- the closure stays unwrapped and the
    // execution path is untouched.
    const std::uint64_t flow = observer->onCrossSend(active.id(), target, when);
    if (flow != 0) {
      fn = [observer, flow, from = active.id(), target, when,
            inner = std::move(fn)]() {
        observer->onCrossReceive(flow, from, target, when);
        inner();
      };
    }
  }
  if (!parallelPhase()) {
    // Sequential: direct admission into the target queue keeps the single
    // canonical global order the determinism suites compare against.
    dst.scheduleAt(when, std::move(fn));
    return EventHandle{};  // cross-domain sends are not cancellable
  }
  DomainChannel* channel = channelBetween(active.id(), target);
  ES_ASSERT_MSG(channel != nullptr,
                "cross-domain event without a connecting channel");
  ES_ASSERT_MSG(when >= active.now() + channel->lookahead(),
                "cross-domain event violates the lookahead bound");
  channel->push(when, std::move(fn));
  return EventHandle{};
}

Simulation::DomainScope::DomainScope(Simulation& sim, DomainId id)
    : sim_(sim), saved_(sim.setupDomain_) {
  ES_ASSERT(id < sim.domains_.size());
  ES_ASSERT_MSG(EventDomain::current() == nullptr,
                "DomainScope is setup-only; events already run in a domain");
  sim.setupDomain_ = id;
}

Simulation::DomainScope::~DomainScope() { sim_.setupDomain_ = saved_; }

void Simulation::postExternal(std::function<void()> fn) {
  ES_ASSERT(fn != nullptr);
  {
    std::lock_guard lock(inboxMutex_);
    inbox_.push_back(std::move(fn));
    inboxNonEmpty_.store(true, std::memory_order_release);
  }
  inboxCv_.notify_one();
}

std::size_t Simulation::drainExternal() {
  if (!inboxNonEmpty_.load(std::memory_order_acquire)) return 0;
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(inboxMutex_);
    batch.swap(inbox_);
    inboxNonEmpty_.store(false, std::memory_order_release);
  }
  // Admission at the control domain's now(): posting order defines execution
  // order, exactly as if each closure had been scheduled with delay zero on
  // arrival.
  EventDomain& control = *domains_.front();
  for (auto& fn : batch) control.scheduleAt(control.now(), std::move(fn));
  return batch.size();
}

std::size_t Simulation::pump(SimTime slice) {
  const std::size_t admitted = drainExternal();
  runUntil(domains_.front()->now() + slice);
  return admitted;
}

bool Simulation::waitForExternal(std::chrono::microseconds timeout) {
  std::unique_lock lock(inboxMutex_);
  return inboxCv_.wait_for(lock, timeout, [this] { return !inbox_.empty(); });
}

std::size_t Simulation::externalQueueDepth() const {
  std::lock_guard lock(inboxMutex_);
  return inbox_.size();
}

void Simulation::drainAllChannels() {
  for (const auto& channel : channels_) channel->drainInto(channel->to());
}

EventDomain* Simulation::earliestDomain(SimTime* when) {
  EventDomain* next = nullptr;
  SimTime best = SimTime::max();
  for (const auto& domain : domains_) {
    const SimTime t = domain->nextEventTime();
    if (t < best) {
      best = t;
      next = domain.get();
    }
  }
  if (when != nullptr) *when = best;
  return next;
}

void Simulation::run() {
  stopped_ = false;
  if (domains_.size() == 1) {
    while (!stopped_ && domains_.front()->step()) {
    }
    return;
  }
  while (!stopped_) {
    drainAllChannels();
    EventDomain* next = earliestDomain(nullptr);
    if (next == nullptr) break;
    next->step();
  }
}

void Simulation::runUntil(SimTime until) {
  stopped_ = false;
  if (domains_.size() == 1) {
    // Historical single-queue loop, verbatim (peeks the raw heap top, so a
    // cancelled front entry at <= until still admits the next live event
    // even when that event lies beyond `until` -- goldens depend on it).
    EventDomain& d = *domains_.front();
    while (!stopped_ && !d.queueEmpty()) {
      if (d.peekWhenRaw() > until) break;
      d.step();
    }
    d.finishAt(until);
    return;
  }
  // Sequential multi-domain: one thread, globally earliest live event first
  // -- the canonical total order parallel runs are validated against.
  while (!stopped_) {
    drainAllChannels();
    SimTime best = SimTime::max();
    EventDomain* next = earliestDomain(&best);
    if (next == nullptr || best > until) break;
    next->step();
  }
  for (const auto& domain : domains_) domain->finishAt(until);
}

bool Simulation::step() {
  if (domains_.size() == 1) return domains_.front()->step();
  drainAllChannels();
  EventDomain* next = earliestDomain(nullptr);
  return next != nullptr && next->step();
}

void Simulation::beginParallel() {
  ES_ASSERT_MSG(!parallel_.exchange(true, std::memory_order_acq_rel),
                "nested parallel phase");
}

void Simulation::endParallel() {
  parallel_.store(false, std::memory_order_release);
}

std::size_t Simulation::pendingEvents() const {
  std::size_t total = 0;
  for (const auto& domain : domains_) total += domain->pendingEvents();
  return total;
}

std::uint64_t Simulation::processedEvents() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->processedEvents();
  return total;
}

std::string Simulation::timePrefix() const {
  return strprintf("[t=%11.6fs] ", domains_.front()->now().toSeconds());
}

Simulation::LogScope::LogScope(Simulation& sim) {
  Logger::instance().setTimePrefix([&sim] { return sim.timePrefix(); });
}

Simulation::LogScope::~LogScope() { Logger::instance().clearTimePrefix(); }

PeriodicTimer::~PeriodicTimer() { cancel(); }

void PeriodicTimer::start(Simulation& sim, SimTime period,
                          std::function<bool()> tick, SimTime initialDelay) {
  ES_ASSERT(period > SimTime::zero());
  ES_ASSERT(tick != nullptr);
  cancel();
  period_ = period;
  tick_ = std::move(tick);
  running_ = true;
  alive_ = std::make_shared<bool>(true);
  arm(sim, initialDelay);
}

void PeriodicTimer::arm(Simulation& sim, SimTime delay) {
  handle_ = sim.schedule(delay, [this, &sim, alive = alive_] {
    if (!*alive || !running_) return;
    const bool again = tick_();
    // The tick may have cancelled or destroyed this timer: re-check the
    // liveness token before touching any member.
    if (!*alive) return;
    if (again) {
      arm(sim, period_);
    } else {
      running_ = false;
    }
  });
}

void PeriodicTimer::cancel() {
  if (alive_ != nullptr) *alive_ = false;
  handle_.cancel();
  running_ = false;
}

}  // namespace edgesim
