// Parallel driver for a multi-domain Simulation.
//
// runParallel(pool, until) advances every EventDomain to `until`
// concurrently on LaneExecutor workers, barrier-free: a domain's advance
// task re-posts itself while local work remains and re-posts its DOWNSTREAM
// domains whenever it makes progress (their channel bounds just moved).
// Lane = domain id, so one domain never advances on two workers at once
// (the LaneExecutor's per-lane mutual exclusion is the only lock the
// advance loop needs) and a domain tends to stick to one worker's cache.
//
// The coordinating thread is a watchdog, not a barrier: it periodically
// re-posts every non-idle domain, which makes termination independent of
// wake-up edge cases (a progress notification racing a task that already
// observed an older bound).  All channel lookaheads are strictly positive,
// so the conservative advance rule cannot deadlock: the globally earliest
// pending event is always below every bound that gates it.
#pragma once

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace edgesim {

class LaneExecutor;

class DomainScheduler {
 public:
  explicit DomainScheduler(Simulation& sim) : sim_(sim) {}

  DomainScheduler(const DomainScheduler&) = delete;
  DomainScheduler& operator=(const DomainScheduler&) = delete;

  /// Advance every domain to `until` on `pool` workers.  Blocks until all
  /// domains are quiescent at the horizon; afterwards every domain's clock
  /// reads `until`, matching Simulation::runUntil's end state.  Single-
  /// domain simulations fall back to the sequential (bit-identical) path.
  /// Caller must be outside any event dispatch; external posts arriving
  /// during the run are admitted into the control domain as usual.
  void runParallel(LaneExecutor& pool, SimTime until);

 private:
  Simulation& sim_;
};

}  // namespace edgesim
