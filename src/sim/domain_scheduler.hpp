// Parallel driver for a multi-domain Simulation.
//
// runParallel(pool, until) advances every EventDomain to `until`
// concurrently on LaneExecutor workers, barrier-free: a domain's advance
// task re-posts itself while local work remains and re-posts its DOWNSTREAM
// domains whenever it makes progress (their channel bounds just moved).
// Lane = domain id, so one domain never advances on two workers at once
// (the LaneExecutor's per-lane mutual exclusion is the only lock the
// advance loop needs) and a domain tends to stick to one worker's cache.
//
// The coordinating thread is a watchdog, not a barrier: it periodically
// re-posts every non-idle domain, which makes termination independent of
// wake-up edge cases (a progress notification racing a task that already
// observed an older bound).  All channel lookaheads are strictly positive,
// so the conservative advance rule cannot deadlock: the globally earliest
// pending event is always below every bound that gates it.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace edgesim {

class LaneExecutor;

class DomainScheduler {
 public:
  explicit DomainScheduler(Simulation& sim) : sim_(sim) {}

  DomainScheduler(const DomainScheduler&) = delete;
  DomainScheduler& operator=(const DomainScheduler&) = delete;

  /// Advance every domain to `until` on `pool` workers.  Blocks until all
  /// domains are quiescent at the horizon; afterwards every domain's clock
  /// reads `until`, matching Simulation::runUntil's end state.  Single-
  /// domain simulations fall back to the sequential (bit-identical) path.
  /// Caller must be outside any event dispatch; external posts arriving
  /// during the run are admitted into the control domain as usual.
  void runParallel(LaneExecutor& pool, SimTime until);

  /// Wake/task accounting of the most recent runParallel() call (always on
  /// -- a handful of relaxed counters).  `watchdogWakes` counts ADMITTED
  /// watchdog re-posts (the queued flags collapse the rest) and splits into
  /// productive (the slice dispatched events or moved the clock -- i.e. the
  /// notification edge really was lost) and redundant (nothing to do; the
  /// safety net spun).  A lost-wakeup regression shows up as productive
  /// wakes growing with run size; redundant wakes are bounded by passes x
  /// domains.
  struct RunStats {
    std::uint64_t advanceTasks = 0;      // advance slices executed
    std::uint64_t notifyWakes = 0;       // admitted progress-notification posts
    std::uint64_t watchdogPasses = 0;    // coordinator sweeps over all domains
    std::uint64_t watchdogWakes = 0;     // admitted watchdog posts
    std::uint64_t watchdogProductive = 0;
    std::uint64_t watchdogRedundant = 0;
  };
  RunStats lastRunStats() const {
    RunStats stats;
    stats.advanceTasks = advanceTasks_.load(std::memory_order_relaxed);
    stats.notifyWakes = notifyWakes_.load(std::memory_order_relaxed);
    stats.watchdogPasses = watchdogPasses_.load(std::memory_order_relaxed);
    stats.watchdogWakes = watchdogWakes_.load(std::memory_order_relaxed);
    stats.watchdogProductive =
        watchdogProductive_.load(std::memory_order_relaxed);
    stats.watchdogRedundant =
        watchdogRedundant_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  Simulation& sim_;
  std::atomic<std::uint64_t> advanceTasks_{0};
  std::atomic<std::uint64_t> notifyWakes_{0};
  std::atomic<std::uint64_t> watchdogPasses_{0};
  std::atomic<std::uint64_t> watchdogWakes_{0};
  std::atomic<std::uint64_t> watchdogProductive_{0};
  std::atomic<std::uint64_t> watchdogRedundant_{0};
};

}  // namespace edgesim
