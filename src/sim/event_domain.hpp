// Time domains: the unit of parallelism in the discrete-event core.
//
// An EventDomain is one independently-advancing slice of the simulation: it
// owns its OWN priority queue, clock, sequence counter, and RNG stream.  A
// Simulation always has at least domain 0 (the control domain); partitioned
// setups add one domain per cluster/region and wire DomainChannels between
// them.  Events within a domain execute in (timestamp, sequence) order
// exactly like the historical single-queue engine -- a single-domain
// Simulation IS the historical engine, bit for bit.
//
// Cross-domain events travel through latency-stamped DomainChannels.  Each
// channel declares a LOOKAHEAD bound L > 0 (in the network partition this is
// the inter-cluster link latency): the sender guarantees that a message
// pushed while its clock reads t is stamped no earlier than t + L.  The
// receiver may therefore safely execute every local event strictly earlier
// than
//
//     min over inbound channels of (sender clock + channel lookahead)
//
// -- the classic conservative (null-message) advance rule, with the sender
// clock published through a shared atomic instead of explicit null messages.
// Equal-timestamp events within one domain keep deterministic order; ties
// BETWEEN domains arriving over different channels have unspecified relative
// order in parallel runs (use the sequential multi-domain driver for a
// canonical order; workloads keep outcomes order-independent).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace edgesim {

class Simulation;
class EventDomain;
class DomainChannel;
class DomainObserver;

/// Identifies one time domain within a Simulation.  Domain 0 always exists
/// and hosts the control plane (controller, dispatcher, switch) plus
/// everything that never opted into a partition.
using DomainId = std::uint32_t;
inline constexpr DomainId kControlDomain = 0;

/// Handle for cancelling a scheduled event.  Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a no-op.  Cross-domain
/// deliveries return an inert handle: their liveness flag would be shared
/// between threads, so they cannot be cancelled once sent.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (const auto alive = alive_.lock()) *alive = false;
  }
  bool pending() const {
    const auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class EventDomain;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

/// One direction of cross-domain delivery.  The sender (any phase, any
/// thread owning the `from` domain) pushes latency-stamped closures; the
/// receiver drains them into its local queue from its own advancing thread.
///
/// Safety protocol (see EventDomain::advance): the receiver reads
/// `safeBound()` BEFORE draining.  Any message pushed after the drain was
/// sent at a sender clock >= the bound that was read, so its stamp is >=
/// bound and cannot be missed by processing strictly below the bound.
class DomainChannel {
 public:
  DomainChannel(EventDomain& from, EventDomain& to, SimTime lookahead,
                std::string via = {});

  DomainChannel(const DomainChannel&) = delete;
  DomainChannel& operator=(const DomainChannel&) = delete;

  EventDomain& from() const { return from_; }
  EventDomain& to() const { return to_; }
  /// Identity of the link whose latency set the current (tightest) lookahead
  /// -- e.g. "edge-3<->edge-7" for a network link -- for stall attribution.
  /// Empty when the channel was declared without one.  Setup phase writes,
  /// observers read after setup.
  const std::string& via() const { return via_; }

  SimTime lookahead() const {
    return SimTime::nanos(lookaheadNanos_.load(std::memory_order_relaxed));
  }
  /// Lower the lookahead bound (multiple links between the same domain pair
  /// keep the tightest latency); a non-empty `via` that tightens the bound
  /// takes over the channel's identity.  Setup phase only.
  void tighten(SimTime lookahead, const std::string& via = {});

  /// Approximate number of undelivered messages (relaxed; exact at
  /// quiescence).  Safe from any thread -- feeds the inbox-depth gauge.
  std::size_t pendingCount() const {
    return pendingCount_.load(std::memory_order_relaxed);
  }

  /// Sender side: enqueue a closure for delivery at absolute time `when`
  /// (>= sender clock + lookahead; asserted by the caller, who knows the
  /// sender clock).  Thread-safe.
  void push(SimTime when, std::function<void()> fn);

  /// Receiver side: sender clock + lookahead -- no future message can be
  /// stamped earlier than this.
  SimTime safeBound() const;

  bool empty() const { return !nonEmpty_.load(std::memory_order_acquire); }

  /// Receiver side: move pending messages into `target`'s local queue
  /// (stamped at their delivery time, ordered by (when, push sequence)).
  /// Returns the number of messages admitted.
  std::size_t drainInto(EventDomain& target);

 private:
  struct Message {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  EventDomain& from_;
  EventDomain& to_;
  std::atomic<std::int64_t> lookaheadNanos_;
  std::string via_;  // setup-phase writes only
  mutable std::mutex mutex_;
  std::vector<Message> pending_;
  std::uint64_t nextSeq_ = 0;  // guarded by mutex_
  std::atomic<bool> nonEmpty_{false};
  std::atomic<std::size_t> pendingCount_{0};
};

class EventDomain {
 public:
  /// `sharedRng` non-null aliases an external stream (domain 0 shares the
  /// Simulation's master RNG); otherwise the domain owns an `rngSeed` fork.
  EventDomain(Simulation& sim, DomainId id, std::string name, Rng* sharedRng,
              std::uint64_t rngSeed);

  EventDomain(const EventDomain&) = delete;
  EventDomain& operator=(const EventDomain&) = delete;

  Simulation& sim() const { return sim_; }
  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }

  SimTime now() const { return now_; }
  /// Thread-safe clock read (acquire): the commit clock other domains use
  /// to compute channel bounds, published on every event dispatch.
  std::int64_t nowNanosAtomic() const {
    return nowNanos_.load(std::memory_order_acquire);
  }
  /// Per-domain RNG stream (forked deterministically from the simulation
  /// seed at addDomain time); domain 0 shares the Simulation's master RNG.
  Rng& rng() { return *rng_; }

  /// Schedule `fn` in THIS domain, `delay` after this domain's now.
  EventHandle schedule(SimTime delay, std::function<void()> fn);
  /// Schedule `fn` in THIS domain at an absolute time (>= this domain's now).
  EventHandle scheduleAt(SimTime when, std::function<void()> fn);

  /// Execute at most one event; returns false if the queue was empty.
  /// (Skips cancelled entries, then runs the first live one -- identical to
  /// the historical Simulation::step.)
  bool step();

  /// Raw earliest queue entry (cancelled entries included), SimTime::max()
  /// when empty -- bug-compatible with the historical runUntil loop, which
  /// peeks without pruning.
  SimTime peekWhenRaw() const {
    return queue_.empty() ? SimTime::max() : queue_.top().when;
  }
  bool queueEmpty() const { return queue_.empty(); }
  /// Earliest LIVE event time (prunes cancelled front entries); max() when
  /// none.  Owning thread only (mutates the queue).
  SimTime nextEventTime();
  bool hasEventAtOrBefore(SimTime when) { return nextEventTime() <= when; }

  /// Conservative advance toward `horizon` (parallel driver): repeatedly
  /// [read channel bounds -> drain channels -> run every local event with
  /// when <= horizon and when < bound -> lift the clock to min(horizon,
  /// bound)] until no further progress is possible right now.  Returns the
  /// number of events dispatched.  Must be called by exactly one thread at
  /// a time (the LaneExecutor lane provides that).
  std::size_t advance(SimTime horizon);

  /// Published by advance(): true when the domain reached `horizon` with no
  /// live local event left at or before it.  Cleared at the start of every
  /// advance call; safe to poll from the coordinating thread.
  bool idleAtHorizon() const {
    return idleAtHorizon_.load(std::memory_order_acquire);
  }

  /// Lift the clock to at least `when` (end-of-run normalisation, the
  /// historical `now() == min(until, drain time)` contract).
  void finishAt(SimTime when) {
    if (now_ < when) setNow(when);
  }

  /// Live heap depth / dispatched-event count.  Relaxed atomics: exact on
  /// the owning thread, a moment-in-time approximation from any other
  /// (feeds the heap-depth gauge polled at snapshot time).
  std::size_t pendingEvents() const {
    return queueSize_.load(std::memory_order_relaxed);
  }
  std::uint64_t processedEvents() const {
    return processed_.load(std::memory_order_relaxed);
  }

  const std::vector<DomainChannel*>& inbound() const { return inbound_; }
  const std::vector<DomainChannel*>& outbound() const { return outbound_; }

  /// The domain currently dispatching an event on THIS thread (nullptr
  /// outside event execution).  Routes Simulation::schedule()/now() so that
  /// events a component schedules from inside its own handlers stay in the
  /// component's domain -- k8s reconcile loops, Docker engine operations,
  /// and link deliveries are domain-local without any call-site changes.
  static EventDomain* current();

 private:
  friend class Simulation;
  friend class DomainChannel;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap
      return a.seq > b.seq;
    }
  };

  void dispatch(Event event);
  void setNow(SimTime when) {
    now_ = when;
    nowNanos_.store(when.toNanos(), std::memory_order_release);
  }
  void addInbound(DomainChannel* channel) { inbound_.push_back(channel); }
  void addOutbound(DomainChannel* channel) { outbound_.push_back(channel); }

  Simulation& sim_;
  DomainId id_;
  std::string name_;
  SimTime now_ = SimTime::zero();
  std::atomic<std::int64_t> nowNanos_{0};  // commit clock (and approxNow)
  std::uint64_t nextSeq_ = 0;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::size_t> queueSize_{0};
  /// Set by Simulation::setDomainObserver (setup phase only); advance()
  /// reports slices through it.  Null = zero-instrumentation fast path.
  DomainObserver* observer_ = nullptr;
  /// Domain 0 aliases the Simulation's master RNG; others own a fork.
  Rng* rng_ = nullptr;
  std::unique_ptr<Rng> ownedRng_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<DomainChannel*> inbound_;
  std::vector<DomainChannel*> outbound_;
  std::atomic<bool> idleAtHorizon_{false};
};

}  // namespace edgesim
