// AttachmentManager: detects when a client's serving cluster is no longer
// the nearest one.
//
// A periodic sim-time scan evaluates every client's position against the
// base stations and maintains the attachment table (client -> station).
// When the nearest station changes, the change listener fires -- that is
// the mobility subsystem's handover trigger.  The manager also implements
// core::ProximityProvider from the same table, so the Global Scheduler's
// distance ranks follow the client around (a cold request from a moved
// client already lands on the new nearest cluster, no handover needed).
//
// All scanning and queries run on the simulation thread; the table is
// plain state with no locks, matching Dispatcher::resolve's threading.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "core/proximity.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/simulation.hpp"

namespace edgesim::mobility {

struct AttachmentOptions {
  /// How often positions are re-evaluated.  The detection half of the
  /// handover latency is bounded by this period.
  SimTime scanPeriod = SimTime::millis(500);
};

class AttachmentManager : public core::ProximityProvider {
 public:
  AttachmentManager(Simulation& sim, const MobilityModel& model,
                    AttachmentOptions options = {});

  /// `from` is nullptr on the initial attachment.
  using ChangeListener = std::function<void(
      Ipv4 client, const BaseStation* from, const BaseStation& to)>;
  void setChangeListener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

  /// Seed the table with an immediate scan, then re-scan every scanPeriod.
  void start();
  void stop();

  /// One scan pass right now (exposed for tests and manual stepping).
  void scanNow();

  /// Current attachment, or nullptr before the first scan reaches the
  /// client.
  const BaseStation* attachmentOf(Ipv4 client) const;

  /// Attachment changes observed (initial attachments included).
  std::uint64_t attachmentChanges() const { return changes_; }

  // ---- core::ProximityProvider -------------------------------------------
  /// Rank from the client's attached station; -1 (keep the adapter's
  /// static rank) for unattached clients and clusters no station serves.
  int distanceRank(Ipv4 client, const std::string& cluster) const override;

 private:
  Simulation& sim_;
  const MobilityModel& model_;
  AttachmentOptions options_;
  PeriodicTimer timer_;
  std::map<Ipv4, std::size_t> attached_;  // client -> station index
  ChangeListener listener_;
  std::uint64_t changes_ = 0;
};

}  // namespace edgesim::mobility
