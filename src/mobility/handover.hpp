// HandoverManager: wires mobility into the controller's handover path.
//
// On every attachment change it enumerates the client's memorized flows and
// asks the controller to re-steer each one onto the new station's cluster
// (EdgeController::requestHandover -- idle -> re-steer -> settle, degrade
// to cloud on governor veto or deploy failure).  It also installs the
// attachment manager as the Dispatcher's ProximityProvider, so *new* flows
// of moved clients schedule onto the right cluster without any handover.
//
// The manager owns no handover state itself; it is the trigger layer, and
// the controller's exact accounting (started == completed + aborted) is the
// invariant the property suite checks through it.
#pragma once

#include <cstdint>
#include <functional>

#include "core/controller.hpp"
#include "mobility/attachment.hpp"

namespace edgesim::mobility {

struct HandoverOptions {
  /// Also re-steer flows currently bound to the cloud: a client arriving
  /// in an edge cell pulls its cloud flow down to the edge (deploying
  /// there when needed).  Off, cloud flows stay put until they expire.
  bool liftCloudFlows = true;
};

class HandoverManager {
 public:
  HandoverManager(core::EdgeController& controller,
                  AttachmentManager& attachments, HandoverOptions options = {});

  /// Install the proximity provider + change listener and start the
  /// attachment scan.  Call on the simulation thread before traffic.
  void start();
  void stop();

  /// Observes every finished handover this manager triggered (fires after
  /// the controller's settle, on the simulation thread).
  using ResultListener =
      std::function<void(Ipv4 client, const core::HandoverResult&)>;
  void setResultListener(ResultListener listener) {
    listener_ = std::move(listener);
  }

  /// requestHandover calls issued (no-ops excluded by the controller's own
  /// accounting, included here).
  std::uint64_t handoversTriggered() const { return triggered_; }

 private:
  void onAttachmentChange(Ipv4 client, const BaseStation* from,
                          const BaseStation& to);

  core::EdgeController& controller_;
  AttachmentManager& attachments_;
  HandoverOptions options_;
  ResultListener listener_;
  std::uint64_t triggered_ = 0;
};

}  // namespace edgesim::mobility
