#include "mobility/handover.hpp"

#include "util/log.hpp"

namespace edgesim::mobility {

HandoverManager::HandoverManager(core::EdgeController& controller,
                                 AttachmentManager& attachments,
                                 HandoverOptions options)
    : controller_(controller), attachments_(attachments), options_(options) {}

void HandoverManager::start() {
  controller_.setProximityProvider(&attachments_);
  attachments_.setChangeListener(
      [this](Ipv4 client, const BaseStation* from, const BaseStation& to) {
        onAttachmentChange(client, from, to);
      });
  attachments_.start();
}

void HandoverManager::stop() {
  attachments_.stop();
  controller_.setProximityProvider(nullptr);
}

void HandoverManager::onAttachmentChange(Ipv4 client, const BaseStation* from,
                                         const BaseStation& to) {
  ES_DEBUG("mobility", "client %s attached to %s (cluster %s)%s",
           client.toString().c_str(), to.name.c_str(), to.cluster.c_str(),
           from == nullptr ? " [initial]" : "");
  // Re-steer every memorized flow that no longer lives on the nearest
  // cluster.  The controller ignores flows already on the target and
  // de-dupes handovers in flight, so re-triggering on every scan is safe.
  for (const auto& flow :
       controller_.flowMemory().flowsForClient(client)) {
    if (flow.cluster == to.cluster) continue;
    if (!options_.liftCloudFlows) {
      const core::ClusterAdapter* adapter =
          controller_.dispatcher().adapterByName(flow.cluster);
      if (adapter != nullptr && adapter->isCloud()) continue;
    }
    ++triggered_;
    controller_.requestHandover(
        client, flow.service, to.cluster,
        [this, client](const core::HandoverResult& result) {
          if (listener_) listener_(client, result);
        });
  }
}

}  // namespace edgesim::mobility
