// MobilityModel: clients moving across base stations on sim-time waypoints.
//
// The model is pure geometry -- it knows the base stations (position +
// which edge cluster serves each), one movement path per client, and how to
// answer "where is this client at time t" and "which station is nearest".
// It holds no timers and mutates nothing after setup, so the attachment
// manager can query it from its scan loop and tests can probe it directly.
//
// Cluster proximity is derived, not configured: the distance rank of a
// cluster as seen from a station is 0 for the station's own cluster and
// 1, 2, ... for the remaining clusters ordered by distance to their nearest
// station (ties broken by name for determinism).  Clusters no station
// serves -- the cloud -- get rank -1, "no opinion", which keeps the
// adapter's static rank when the attachment manager feeds ranks into the
// Dispatcher as a ProximityProvider.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/addr.hpp"
#include "sim/time.hpp"
#include "workload/mobility_paths.hpp"

namespace edgesim::mobility {

using workload::MobilityPath;
using workload::Position;

struct BaseStation {
  std::string name;
  Position pos;
  /// Edge cluster serving this station's cell (ClusterAdapter name).
  std::string cluster;
};

class MobilityModel {
 public:
  explicit MobilityModel(std::vector<BaseStation> stations);

  /// Assign (or replace) `client`'s movement path.
  void setPath(Ipv4 client, MobilityPath path);
  bool hasPath(Ipv4 client) const;

  /// Position at `t`; the client must have a path.
  Position positionOf(Ipv4 client, SimTime t) const;

  /// Nearest station to `pos`; ties break toward the lowest station index
  /// so the answer is deterministic.
  std::size_t nearestStationIndex(Position pos) const;
  const BaseStation& station(std::size_t index) const {
    return stations_.at(index);
  }
  const std::vector<BaseStation>& stations() const { return stations_; }

  /// Distance rank of `cluster` as seen from `station` (see file comment);
  /// -1 when no station serves the cluster.
  int clusterRankFrom(std::size_t stationIndex,
                      const std::string& cluster) const;

  /// Clients with a path, in insertion order (deterministic scan order).
  std::vector<Ipv4> clients() const;

 private:
  std::vector<BaseStation> stations_;
  /// Insertion-ordered so attachment scans visit clients deterministically.
  std::vector<std::pair<Ipv4, MobilityPath>> paths_;
  /// Precomputed per-station cluster ranks.
  std::vector<std::map<std::string, int>> ranks_;
};

}  // namespace edgesim::mobility
