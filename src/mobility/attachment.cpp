#include "mobility/attachment.hpp"

namespace edgesim::mobility {

AttachmentManager::AttachmentManager(Simulation& sim,
                                     const MobilityModel& model,
                                     AttachmentOptions options)
    : sim_(sim), model_(model), options_(options) {}

void AttachmentManager::start() {
  scanNow();
  timer_.start(sim_, options_.scanPeriod, [this] {
    scanNow();
    return true;
  }, options_.scanPeriod);
}

void AttachmentManager::stop() { timer_.cancel(); }

void AttachmentManager::scanNow() {
  const SimTime now = sim_.now();
  for (const Ipv4 client : model_.clients()) {
    const std::size_t station =
        model_.nearestStationIndex(model_.positionOf(client, now));
    const auto it = attached_.find(client);
    if (it != attached_.end() && it->second == station) continue;
    const BaseStation* from =
        it == attached_.end() ? nullptr : &model_.station(it->second);
    attached_[client] = station;
    ++changes_;
    if (listener_) listener_(client, from, model_.station(station));
  }
}

const BaseStation* AttachmentManager::attachmentOf(Ipv4 client) const {
  const auto it = attached_.find(client);
  return it == attached_.end() ? nullptr : &model_.station(it->second);
}

int AttachmentManager::distanceRank(Ipv4 client,
                                    const std::string& cluster) const {
  const auto it = attached_.find(client);
  if (it == attached_.end()) return -1;
  return model_.clusterRankFrom(it->second, cluster);
}

}  // namespace edgesim::mobility
