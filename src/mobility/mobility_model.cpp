#include "mobility/mobility_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace edgesim::mobility {

namespace {

double distance(Position a, Position b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

MobilityModel::MobilityModel(std::vector<BaseStation> stations)
    : stations_(std::move(stations)) {
  ES_ASSERT_MSG(!stations_.empty(), "MobilityModel needs >= 1 base station");
  // Precompute per-station cluster ranks: own cluster first, the rest by
  // distance to their nearest station, name as the deterministic tiebreak.
  ranks_.resize(stations_.size());
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    std::map<std::string, double> nearest;
    for (const BaseStation& other : stations_) {
      const double d = distance(stations_[s].pos, other.pos);
      const auto it = nearest.find(other.cluster);
      if (it == nearest.end() || d < it->second) nearest[other.cluster] = d;
    }
    std::vector<std::pair<double, std::string>> ordered;
    ordered.reserve(nearest.size());
    for (const auto& [cluster, d] : nearest) {
      ordered.emplace_back(cluster == stations_[s].cluster ? -1.0 : d,
                           cluster);
    }
    std::sort(ordered.begin(), ordered.end());
    int rank = 0;
    for (const auto& [d, cluster] : ordered) ranks_[s][cluster] = rank++;
  }
}

void MobilityModel::setPath(Ipv4 client, MobilityPath path) {
  ES_ASSERT(!path.waypoints.empty());
  for (auto& [ip, existing] : paths_) {
    if (ip == client) {
      existing = std::move(path);
      return;
    }
  }
  paths_.emplace_back(client, std::move(path));
}

bool MobilityModel::hasPath(Ipv4 client) const {
  for (const auto& [ip, path] : paths_) {
    if (ip == client) return true;
  }
  return false;
}

Position MobilityModel::positionOf(Ipv4 client, SimTime t) const {
  for (const auto& [ip, path] : paths_) {
    if (ip == client) return path.positionAt(t);
  }
  ES_ASSERT_MSG(false, "positionOf: client has no mobility path");
  return {};
}

std::size_t MobilityModel::nearestStationIndex(Position pos) const {
  std::size_t best = 0;
  double bestDistance = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    const double d = distance(pos, stations_[s].pos);
    if (d < bestDistance) {
      bestDistance = d;
      best = s;
    }
  }
  return best;
}

int MobilityModel::clusterRankFrom(std::size_t stationIndex,
                                   const std::string& cluster) const {
  const auto& ranks = ranks_.at(stationIndex);
  const auto it = ranks.find(cluster);
  return it == ranks.end() ? -1 : it->second;
}

std::vector<Ipv4> MobilityModel::clients() const {
  std::vector<Ipv4> result;
  result.reserve(paths_.size());
  for (const auto& [ip, path] : paths_) result.push_back(ip);
  return result;
}

}  // namespace edgesim::mobility
