#include "util/units.hpp"

#include <array>
#include <charconv>
#include <cmath>

#include "util/strings.hpp"

namespace edgesim {

namespace {

struct UnitEntry {
  std::string_view suffix;
  double multiplier;
};

// Longest suffixes first so "KiB" wins over "B".
constexpr std::array<UnitEntry, 11> kUnits{{
    {"KiB", 1024.0},
    {"MiB", 1024.0 * 1024},
    {"GiB", 1024.0 * 1024 * 1024},
    {"TiB", 1024.0 * 1024 * 1024 * 1024},
    {"KB", 1000.0},
    {"MB", 1000.0 * 1000},
    {"GB", 1000.0 * 1000 * 1000},
    {"TB", 1000.0 * 1000 * 1000 * 1000},
    {"K", 1024.0},
    {"M", 1024.0 * 1024},
    {"B", 1.0},
}};

}  // namespace

bool parseBytes(std::string_view text, Bytes& out) {
  std::string_view s = trim(text);
  if (s.empty()) return false;

  double multiplier = 1.0;
  for (const auto& unit : kUnits) {
    if (endsWith(s, unit.suffix)) {
      multiplier = unit.multiplier;
      s = trim(s.substr(0, s.size() - unit.suffix.size()));
      break;
    }
  }
  if (s.empty()) return false;

  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value < 0) return false;
  out = Bytes{static_cast<std::uint64_t>(std::llround(value * multiplier))};
  return true;
}

std::string formatBytes(Bytes b) {
  const double v = static_cast<double>(b.value);
  if (b.value < 1024) return strprintf("%llu B", static_cast<unsigned long long>(b.value));
  if (b.value < 1024ULL * 1024) return strprintf("%.2f KiB", v / 1024.0);
  if (b.value < 1024ULL * 1024 * 1024) return strprintf("%.1f MiB", v / (1024.0 * 1024));
  return strprintf("%.2f GiB", v / (1024.0 * 1024 * 1024));
}

std::int64_t BitRate::transmissionNanos(Bytes b) const {
  if (bitsPerSec == 0) return 0;
  const double bits = static_cast<double>(b.value) * 8.0;
  const double seconds = bits / static_cast<double>(bitsPerSec);
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

std::string formatBitRate(BitRate r) {
  const double v = static_cast<double>(r.bitsPerSec);
  if (r.bitsPerSec >= 1000ULL * 1000 * 1000) return strprintf("%.1f Gbps", v / 1e9);
  if (r.bitsPerSec >= 1000ULL * 1000) return strprintf("%.1f Mbps", v / 1e6);
  if (r.bitsPerSec >= 1000ULL) return strprintf("%.1f Kbps", v / 1e3);
  return strprintf("%llu bps", static_cast<unsigned long long>(r.bitsPerSec));
}

}  // namespace edgesim
