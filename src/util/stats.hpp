// Statistics primitives used by the metrics/bench layers.
//
// The paper reports medians (Figs. 11-16); we additionally expose mean,
// stddev (Welford), arbitrary percentiles, and fixed-width histograms used
// for the request/deployment distribution figures (Figs. 9-10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace edgesim {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with exact quantiles (sorts lazily, caches order).
class Samples {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const;

  /// Exact quantile with linear interpolation, q in [0, 1].
  /// Asserts on empty sample sets.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& values() const { return values_; }

 private:
  void ensureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sortedValid_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t binCount() const { return counts_.size(); }
  double binLow(std::size_t i) const;
  double binHigh(std::size_t i) const;
  double binWeight(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Render as an ASCII bar chart, `width` columns for the largest bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace edgesim
