// Lane-serialized worker pool: the execution substrate of the controller's
// concurrent hot path.
//
// post(lane, fn) guarantees that closures sharing a lane key execute in
// FIFO order and never concurrently, while closures on different lanes run
// in parallel across the pool.  The controller keys request lanes by the
// (client, service) FlowMemory shard hash, so per-flow handling stays
// ordered without any global lock; deployment state keeps its own
// serialization one level down (the Dispatcher's per-(service, cluster)
// coalescing table, which only ever runs on the simulation thread).
//
// Implementation: one FIFO deque + mutex + condition variable per worker,
// lanes mapped to workers by `lane % workers`.  Per-worker FIFO trivially
// implies per-lane FIFO and mutual exclusion; no work stealing, because
// stealing would break the ordering guarantee the controller relies on.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace edgesim {

class LaneExecutor {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit LaneExecutor(std::size_t workers);
  /// Joins after completing every queued task.
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  /// Enqueue `fn` on `lane`.  Thread-safe; never blocks on task execution.
  void post(std::uint64_t lane, std::function<void()> fn);

  /// Telemetry hook, invoked on the worker thread as each task STARTS with
  /// the task's queue wait (post -> dequeue, wall seconds) and the number
  /// of tasks still in flight.  util stays below telemetry in the module
  /// graph, so the hook is a plain callback; the controller wires it to
  /// registry handles.  Set before any post() (not synchronized against
  /// concurrent posting); tasks are only timestamped while an observer is
  /// installed, so the unobserved hot path skips the clock read.
  using TaskObserver = std::function<void(double waitSeconds,
                                          std::int64_t inFlight)>;
  void setTaskObserver(TaskObserver observer);

  /// Block until every task posted so far (and everything those tasks
  /// post transitively) has finished.
  void drain();

  std::size_t workerCount() const { return workers_.size(); }
  std::uint64_t tasksExecuted() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks posted but not yet finished (queued + currently running).
  std::int64_t tasksInFlight() const {
    return inFlight_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point postedAt;  // only set when observed
  };
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    std::thread thread;
  };

  void workerLoop(Worker& worker);

  TaskObserver observer_;
  std::atomic<bool> observed_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> executed_{0};
  // drain() bookkeeping: tasks admitted but not yet finished.
  std::atomic<std::int64_t> inFlight_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
};

}  // namespace edgesim
