// Lane-serialized worker pool: the execution substrate of the controller's
// concurrent hot path.
//
// post(lane, fn) guarantees that closures sharing a lane key execute in
// FIFO order and never concurrently, while closures on different lanes run
// in parallel across the pool.  The controller keys request lanes by the
// (client, service) FlowMemory shard hash, so per-flow handling stays
// ordered without any global lock; deployment state keeps its own
// serialization one level down (the Dispatcher's per-(service, cluster)
// coalescing table, which only ever runs on the simulation thread).
//
// Implementation: one FIFO deque + mutex + condition variable per worker,
// lanes mapped to workers by `lane % workers`.  Per-worker FIFO trivially
// implies per-lane FIFO and mutual exclusion; no work stealing, because
// stealing would break the ordering guarantee the controller relies on.
//
// Bounded admission (overload governor, PR 5): a nonzero per-worker
// queueCapacity turns unbounded queue growth into explicit SHEDDING.  When
// a worker's queue is full the pool either rejects the incoming task
// (kRejectNewest) or, under kDeadlineAware, evicts the queued task with
// the nearest deadline when that deadline is sooner than the incoming
// task's -- the request most likely to blow its budget anyway is the one
// dropped.  A shed task never runs; its onShed callback fires instead (on
// the posting thread), which is how the controller answers shed requests
// with an immediate degraded cloud redirect.  The default capacity of 0
// keeps the historical unbounded behaviour bit-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace edgesim {

/// What to do with a task posted to a full lane queue.
enum class ShedPolicy {
  /// Reject the incoming task.
  kRejectNewest,
  /// Evict the queued task with the nearest deadline if it is sooner than
  /// the incoming task's (no-deadline tasks are never evicted); otherwise
  /// reject the incoming task.
  kDeadlineAware,
};

struct LaneExecutorOptions {
  std::size_t workers = 1;
  /// Per-worker queue capacity; 0 = unbounded (never sheds).
  std::size_t queueCapacity = 0;
  ShedPolicy shedPolicy = ShedPolicy::kRejectNewest;
};

class LaneExecutor {
 public:
  /// Spawns `workers` threads (at least 1), unbounded queues.
  explicit LaneExecutor(std::size_t workers);
  explicit LaneExecutor(LaneExecutorOptions options);
  /// Joins after completing every queued task.
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  /// Per-task admission metadata.
  struct TaskMeta {
    /// Deadline in an arbitrary monotonic unit chosen by the caller (the
    /// controller uses sim-time nanos); 0 = no deadline.  Only consulted
    /// by ShedPolicy::kDeadlineAware eviction -- the pool never interprets
    /// the value against a clock.
    std::int64_t deadlineNanos = 0;
    /// Invoked exactly once, on the thread calling post(), if this task is
    /// shed (rejected at admission or evicted later by a deadline-aware
    /// post to the same worker).  The task's fn never runs in that case.
    std::function<void()> onShed;
  };

  /// Enqueue `fn` on `lane`.  Thread-safe; never blocks on task execution.
  /// Returns false when the INCOMING task was shed (full queue); true when
  /// it was admitted -- note a deadline-aware admission may shed a
  /// previously queued task instead, delivered via that task's onShed.
  bool post(std::uint64_t lane, std::function<void()> fn);
  bool post(std::uint64_t lane, std::function<void()> fn, TaskMeta meta);

  /// Telemetry hooks.  onTaskStart is invoked on the worker thread as each
  /// task STARTS with the task's queue wait (post -> dequeue, wall
  /// seconds) and the number of tasks still in flight; onTaskShed is
  /// invoked on the shedding (posting) thread whenever a task is shed.
  /// util stays below telemetry in the module graph, so the hooks are
  /// plain callbacks; the controller wires them to registry handles.  Set
  /// before any post() (not synchronized against concurrent posting);
  /// tasks are only timestamped while an observer is installed, so the
  /// unobserved hot path skips the clock read.
  struct TaskObserver {
    std::function<void(double waitSeconds, std::int64_t inFlight)> onTaskStart;
    std::function<void(std::int64_t inFlight)> onTaskShed;
  };
  void setTaskObserver(TaskObserver observer);

  /// Block until every task posted so far (and everything those tasks
  /// post transitively) has finished.
  void drain();

  std::size_t workerCount() const { return workers_.size(); }
  std::size_t queueCapacity() const { return options_.queueCapacity; }
  std::uint64_t tasksExecuted() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks shed (never executed): admission rejects plus deadline-aware
  /// evictions.  tasksPosted == tasksExecuted + tasksShed at quiescence.
  std::uint64_t tasksShed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Tasks posted but not yet finished (queued + currently running).
  std::int64_t tasksInFlight() const {
    return inFlight_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point postedAt;  // only set when observed
    std::int64_t deadlineNanos = 0;                  // 0 = none
    std::function<void()> onShed;
  };
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    std::thread thread;
  };

  void workerLoop(Worker& worker);
  /// Finish shedding `task` after the worker lock is released: fix the
  /// in-flight count, bump counters, fire observer + onShed.
  void completeShed(Task task);

  LaneExecutorOptions options_;
  TaskObserver observer_;
  std::atomic<bool> observed_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> shed_{0};
  // drain() bookkeeping: tasks admitted but not yet finished.
  std::atomic<std::int64_t> inFlight_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
};

}  // namespace edgesim
