// Lane-serialized worker pool: the execution substrate of the controller's
// concurrent hot path.
//
// post(lane, fn) guarantees that closures sharing a lane key execute in
// FIFO order and never concurrently, while closures on different lanes run
// in parallel across the pool.  The controller keys request lanes by the
// (client, service) FlowMemory shard hash, so per-flow handling stays
// ordered without any global lock; deployment state keeps its own
// serialization one level down (the Dispatcher's per-(service, cluster)
// coalescing table, which only ever runs on the simulation thread).
//
// Implementation: one FIFO deque + mutex + condition variable per worker,
// lanes mapped to workers by `lane % workers`.  Per-worker FIFO trivially
// implies per-lane FIFO and mutual exclusion; no work stealing, because
// stealing would break the ordering guarantee the controller relies on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace edgesim {

class LaneExecutor {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit LaneExecutor(std::size_t workers);
  /// Joins after completing every queued task.
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  /// Enqueue `fn` on `lane`.  Thread-safe; never blocks on task execution.
  void post(std::uint64_t lane, std::function<void()> fn);

  /// Block until every task posted so far (and everything those tasks
  /// post transitively) has finished.
  void drain();

  std::size_t workerCount() const { return workers_.size(); }
  std::uint64_t tasksExecuted() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks posted but not yet finished (queued + currently running).
  std::int64_t tasksInFlight() const {
    return inFlight_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
    std::thread thread;
  };

  void workerLoop(Worker& worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> executed_{0};
  // drain() bookkeeping: tasks admitted but not yet finished.
  std::atomic<std::int64_t> inFlight_{0};
  std::mutex drainMutex_;
  std::condition_variable drainCv_;
};

}  // namespace edgesim
