// Minimal structured logger.
//
// The simulation injects a time-prefix provider so log lines carry simulated
// (not wall-clock) timestamps.  Log output is routed through a sink function
// so tests can capture it; default sink is stderr.  Severity filtering is a
// global atomic -- cheap enough to leave logging statements in hot paths.
#pragma once

#include <functional>
#include <string>

#include "util/strings.hpp"

namespace edgesim {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* logLevelName(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  using TimePrefix = std::function<std::string()>;

  /// Process-wide logger instance.
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (returns the previous one).
  Sink setSink(Sink sink);
  /// Provide the "[t=1.234s]" style prefix; typically wired to Simulation.
  void setTimePrefix(TimePrefix prefix) { timePrefix_ = std::move(prefix); }
  void clearTimePrefix() { timePrefix_ = nullptr; }

  void log(LogLevel level, const std::string& component,
           const std::string& message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  TimePrefix timePrefix_;
};

}  // namespace edgesim

#define ES_LOG(level, component, ...)                                \
  do {                                                               \
    auto& esLogger = ::edgesim::Logger::instance();                  \
    if (esLogger.enabled(level))                                     \
      esLogger.log(level, component, ::edgesim::strprintf(__VA_ARGS__)); \
  } while (false)

#define ES_TRACE(component, ...) ES_LOG(::edgesim::LogLevel::kTrace, component, __VA_ARGS__)
#define ES_DEBUG(component, ...) ES_LOG(::edgesim::LogLevel::kDebug, component, __VA_ARGS__)
#define ES_INFO(component, ...) ES_LOG(::edgesim::LogLevel::kInfo, component, __VA_ARGS__)
#define ES_WARN(component, ...) ES_LOG(::edgesim::LogLevel::kWarn, component, __VA_ARGS__)
#define ES_ERROR(component, ...) ES_LOG(::edgesim::LogLevel::kError, component, __VA_ARGS__)
