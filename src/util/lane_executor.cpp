#include "util/lane_executor.hpp"

#include "util/assert.hpp"

namespace edgesim {

LaneExecutor::LaneExecutor(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { workerLoop(*raw); });
    workers_.push_back(std::move(worker));
  }
}

LaneExecutor::~LaneExecutor() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) worker->thread.join();
}

void LaneExecutor::post(std::uint64_t lane, std::function<void()> fn) {
  ES_ASSERT(fn != nullptr);
  Worker& worker = *workers_[lane % workers_.size()];
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  Task task{std::move(fn), {}};
  if (observed_.load(std::memory_order_relaxed)) {
    task.postedAt = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard lock(worker.mutex);
    ES_ASSERT_MSG(!worker.stop, "post() after shutdown");
    worker.queue.push_back(std::move(task));
  }
  worker.cv.notify_one();
}

void LaneExecutor::setTaskObserver(TaskObserver observer) {
  observer_ = std::move(observer);
  observed_.store(observer_ != nullptr, std::memory_order_relaxed);
}

void LaneExecutor::drain() {
  std::unique_lock lock(drainMutex_);
  drainCv_.wait(lock, [this] {
    return inFlight_.load(std::memory_order_acquire) == 0;
  });
}

void LaneExecutor::workerLoop(Worker& worker) {
  while (true) {
    Task task;
    {
      std::unique_lock lock(worker.mutex);
      worker.cv.wait(lock,
                     [&worker] { return worker.stop || !worker.queue.empty(); });
      if (worker.queue.empty()) return;  // stop requested and drained
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    if (observed_.load(std::memory_order_relaxed) && observer_ != nullptr &&
        task.postedAt != std::chrono::steady_clock::time_point{}) {
      observer_(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              task.postedAt)
                    .count(),
                inFlight_.load(std::memory_order_relaxed));
    }
    task.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last outstanding task: wake drain() waiters.  Taking the mutex
      // orders the notification after the waiter's predicate check.
      std::lock_guard lock(drainMutex_);
      drainCv_.notify_all();
    }
  }
}

}  // namespace edgesim
