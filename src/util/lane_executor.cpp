#include "util/lane_executor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace edgesim {

LaneExecutor::LaneExecutor(std::size_t workers)
    : LaneExecutor(LaneExecutorOptions{workers, 0, ShedPolicy::kRejectNewest}) {
}

LaneExecutor::LaneExecutor(LaneExecutorOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { workerLoop(*raw); });
    workers_.push_back(std::move(worker));
  }
}

LaneExecutor::~LaneExecutor() {
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mutex);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) worker->thread.join();
}

bool LaneExecutor::post(std::uint64_t lane, std::function<void()> fn) {
  return post(lane, std::move(fn), TaskMeta{});
}

bool LaneExecutor::post(std::uint64_t lane, std::function<void()> fn,
                        TaskMeta meta) {
  ES_ASSERT(fn != nullptr);
  Worker& worker = *workers_[lane % workers_.size()];
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  Task task{std::move(fn), {}, meta.deadlineNanos, std::move(meta.onShed)};
  if (observed_.load(std::memory_order_relaxed)) {
    task.postedAt = std::chrono::steady_clock::now();
  }
  Task victim;       // the task being shed, moved out under the lock
  bool admitted = true;
  bool haveVictim = false;
  {
    std::lock_guard lock(worker.mutex);
    ES_ASSERT_MSG(!worker.stop, "post() after shutdown");
    if (options_.queueCapacity > 0 &&
        worker.queue.size() >= options_.queueCapacity) {
      if (options_.shedPolicy == ShedPolicy::kDeadlineAware) {
        // Evict the queued task with the nearest deadline -- but only when
        // it is strictly sooner than the incoming task's, and never a task
        // with no deadline (0 = can wait forever).
        auto earliest = worker.queue.end();
        for (auto it = worker.queue.begin(); it != worker.queue.end(); ++it) {
          if (it->deadlineNanos <= 0) continue;
          if (earliest == worker.queue.end() ||
              it->deadlineNanos < earliest->deadlineNanos) {
            earliest = it;
          }
        }
        if (earliest != worker.queue.end() &&
            (task.deadlineNanos <= 0 ||
             earliest->deadlineNanos < task.deadlineNanos)) {
          victim = std::move(*earliest);
          worker.queue.erase(earliest);
          worker.queue.push_back(std::move(task));
        } else {
          victim = std::move(task);
          admitted = false;
        }
      } else {
        victim = std::move(task);
        admitted = false;
      }
      haveVictim = true;
    } else {
      worker.queue.push_back(std::move(task));
    }
  }
  if (haveVictim) {
    completeShed(std::move(victim));
  }
  if (admitted) worker.cv.notify_one();
  return admitted;
}

void LaneExecutor::completeShed(Task task) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (observed_.load(std::memory_order_relaxed) &&
      observer_.onTaskShed != nullptr) {
    observer_.onTaskShed(inFlight_.load(std::memory_order_relaxed));
  }
  if (task.onShed != nullptr) task.onShed();
  if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(drainMutex_);
    drainCv_.notify_all();
  }
}

void LaneExecutor::setTaskObserver(TaskObserver observer) {
  observer_ = std::move(observer);
  observed_.store(
      observer_.onTaskStart != nullptr || observer_.onTaskShed != nullptr,
      std::memory_order_relaxed);
}

void LaneExecutor::drain() {
  std::unique_lock lock(drainMutex_);
  drainCv_.wait(lock, [this] {
    return inFlight_.load(std::memory_order_acquire) == 0;
  });
}

void LaneExecutor::workerLoop(Worker& worker) {
  while (true) {
    Task task;
    {
      std::unique_lock lock(worker.mutex);
      worker.cv.wait(lock,
                     [&worker] { return worker.stop || !worker.queue.empty(); });
      if (worker.queue.empty()) return;  // stop requested and drained
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    if (observed_.load(std::memory_order_relaxed) &&
        observer_.onTaskStart != nullptr &&
        task.postedAt != std::chrono::steady_clock::time_point{}) {
      observer_.onTaskStart(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        task.postedAt)
              .count(),
          inFlight_.load(std::memory_order_relaxed));
    }
    task.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last outstanding task: wake drain() waiters.  Taking the mutex
      // orders the notification after the waiter's predicate check.
      std::lock_guard lock(drainMutex_);
      drainCv_.notify_all();
    }
  }
}

}  // namespace edgesim
