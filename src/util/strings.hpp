// Small string helpers shared across modules (no locale, ASCII-only).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace edgesim {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields.
std::vector<std::string> splitNonEmpty(std::string_view s, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Join the range [begin, end) with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-case copy (ASCII).
std::string toLower(std::string_view s);

/// True if `s` parses completely as a (signed) integer / float.
bool isInteger(std::string_view s);
bool isNumber(std::string_view s);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace edgesim
