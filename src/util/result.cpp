#include "util/result.hpp"

namespace edgesim {

const char* errcName(Errc code) {
  switch (code) {
    case Errc::kOk: return "ok";
    case Errc::kNotFound: return "not-found";
    case Errc::kAlreadyExists: return "already-exists";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kTimeout: return "timeout";
    case Errc::kConflict: return "conflict";
    case Errc::kResourceExhausted: return "resource-exhausted";
    case Errc::kFailedPrecondition: return "failed-precondition";
    case Errc::kInternal: return "internal";
  }
  return "?";
}

std::string Error::toString() const {
  std::string out = errcName(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace edgesim
