// Lightweight always-on assertion macros for invariant checking.
//
// Simulation code is full of protocol invariants ("a packet never leaves a
// down link", "flow priorities are sorted") whose violation indicates a
// programming error, not a runtime condition a caller could handle.  These
// macros abort with a useful message instead of invoking UB, and they stay
// enabled in release builds -- the simulator is fast enough that the checks
// are lost in the noise.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace edgesim {

[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "edgesim: assertion `%s` failed at %s:%d%s%s\n", expr,
               file, line, msg[0] != '\0' ? ": " : "", msg);
  std::abort();
}

}  // namespace edgesim

#define ES_ASSERT(expr)                                             \
  do {                                                              \
    if (!(expr)) ::edgesim::assertFail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define ES_ASSERT_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) ::edgesim::assertFail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
