#include "util/log.hpp"

#include <cstdio>

namespace edgesim {

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& line) {
    std::fprintf(stderr, "%s %s\n", logLevelName(level), line.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::setSink(Sink sink) {
  Sink old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (!enabled(level) || !sink_) return;
  std::string line;
  if (timePrefix_) line += timePrefix_();
  line += "[";
  line += component;
  line += "] ";
  line += message;
  sink_(level, line);
}

}  // namespace edgesim
