// Fixed-size worker pool for running independent simulations in parallel.
//
// The discrete-event core is single-threaded by design (determinism);
// parallelism lives *across* experiment repetitions: each task owns a
// private Simulation, so tasks share nothing and scale linearly.  This is
// the standard HPC decomposition for embarrassingly parallel sweeps.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edgesim {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; tasks must not throw (the simulator reports failures
  /// through its own channels).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait();

  std::size_t threadCount() const { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  static void parallelFor(std::size_t n, std::size_t threads,
                          const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cvTask_;
  std::condition_variable cvDone_;
  std::size_t inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace edgesim
