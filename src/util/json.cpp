#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace edgesim {

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::push(JsonValue value) {
  ES_ASSERT_MSG(type_ == Type::kArray, "push on non-array JsonValue");
  items_.push_back(std::move(value));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  ES_ASSERT_MSG(type_ == Type::kObject, "set on non-object JsonValue");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->asNumber() : fallback;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->asString() : fallback;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void appendNumber(std::string& out, double n) {
  if (!std::isfinite(n)) {  // JSON has no Inf/NaN; null is the usual stand-in
    out += "null";
    return;
  }
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, n);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == n) break;
  }
  out += buf;
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  std::string pad;
  std::string closePad;
  if (indent > 0) {
    pad.assign(1, '\n');
    pad.append(static_cast<std::size_t>(indent) *
                   (static_cast<std::size_t>(depth) + 1),
               ' ');
    closePad.assign(1, '\n');
    closePad.append(static_cast<std::size_t>(indent) *
                        static_cast<std::size_t>(depth),
                    ' ');
  }
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: appendNumber(out, number_); break;
    case Type::kString:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        items_[i].dumpTo(out, indent, depth + 1);
      }
      out += closePad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        out += '"';
        out += jsonEscape(members_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        members_[i].second.dumpTo(out, indent, depth + 1);
      }
      out += closePad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> parseDocument() {
    auto value = parseValue();
    if (!value.ok()) return value;
    skipWhitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Error fail(const std::string& message) const {
    return Error{Errc::kInvalidArgument,
                 "json: " + message + " at offset " + std::to_string(pos_)};
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> parseValue() {
    skipWhitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        auto s = parseString();
        if (!s.ok()) return s.error();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (consumeLiteral("true")) return JsonValue(true);
        return fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return JsonValue(false);
        return fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return JsonValue();
        return fail("invalid literal");
      default: return parseNumber();
    }
  }

  Result<JsonValue> parseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::object();
    skipWhitespace();
    if (consume('}')) return obj;
    while (true) {
      skipWhitespace();
      auto key = parseString();
      if (!key.ok()) return key.error();
      skipWhitespace();
      if (!consume(':')) return fail("expected ':' in object");
      auto value = parseValue();
      if (!value.ok()) return value;
      obj.set(key.value(), std::move(value).value());
      skipWhitespace();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::array();
    skipWhitespace();
    if (consume(']')) return arr;
    while (true) {
      auto value = parseValue();
      if (!value.ok()) return value;
      arr.push(std::move(value).value());
      skipWhitespace();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parseString() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unhandled; the
          // writer never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parseNumber() {
    const std::size_t start = pos_;
    consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    double n = 0.0;
    const std::string token = text_.substr(start, pos_ - start);
    if (std::sscanf(token.c_str(), "%lf", &n) != 1) {
      return fail("invalid number '" + token + "'");
    }
    return JsonValue(n);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

}  // namespace edgesim
