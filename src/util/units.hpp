// Byte-size and rate units with parsing/formatting ("135MiB", "1Gbps").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace edgesim {

/// A byte count. Plain integer wrapper so sizes don't mix with other ints.
struct Bytes {
  std::uint64_t value = 0;

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : value(v) {}

  constexpr auto operator<=>(const Bytes&) const = default;
  constexpr Bytes operator+(Bytes o) const { return Bytes{value + o.value}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{value - o.value}; }
  Bytes& operator+=(Bytes o) { value += o.value; return *this; }
  Bytes& operator-=(Bytes o) { value -= o.value; return *this; }
};

constexpr Bytes operator""_B(unsigned long long v) { return Bytes{v}; }
constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v * 1024}; }
constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v * 1024 * 1024}; }
constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v * 1024 * 1024 * 1024}; }

/// Parse "6.18 KiB", "135MiB", "308 MiB", "512", "1.5GB" (decimal units too).
/// Returns false on malformed input.
bool parseBytes(std::string_view text, Bytes& out);

/// Human-readable size ("135.0 MiB").
std::string formatBytes(Bytes b);

/// Bits-per-second rate for link bandwidth modelling.
struct BitRate {
  std::uint64_t bitsPerSec = 0;

  constexpr BitRate() = default;
  constexpr explicit BitRate(std::uint64_t bps) : bitsPerSec(bps) {}
  constexpr auto operator<=>(const BitRate&) const = default;

  /// Nanoseconds needed to serialise `b` bytes at this rate (0 => instant).
  std::int64_t transmissionNanos(Bytes b) const;
};

constexpr BitRate operator""_bps(unsigned long long v) { return BitRate{v}; }
constexpr BitRate operator""_Kbps(unsigned long long v) { return BitRate{v * 1000}; }
constexpr BitRate operator""_Mbps(unsigned long long v) { return BitRate{v * 1000 * 1000}; }
constexpr BitRate operator""_Gbps(unsigned long long v) { return BitRate{v * 1000 * 1000 * 1000}; }

std::string formatBitRate(BitRate r);

}  // namespace edgesim
