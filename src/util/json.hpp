// Minimal JSON value model, parser and writer (RFC 8259 subset).
//
// Used for the machine-readable observability outputs: Chrome trace_event
// files (src/trace) and the schema-versioned BENCH_<name>.json reports
// (src/metrics/bench_report).  Objects keep insertion order so serialized
// reports stay stable and diffable across runs.  No external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace edgesim {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  JsonValue(int n) : type_(Type::kNumber), number_(n) {}
  JsonValue(std::int64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  bool asBool() const { return bool_; }
  double asNumber() const { return number_; }
  const std::string& asString() const { return string_; }

  // ---- array ---------------------------------------------------------------
  void push(JsonValue value);
  std::size_t size() const { return items_.size(); }
  const JsonValue& at(std::size_t i) const { return items_.at(i); }
  const std::vector<JsonValue>& items() const { return items_; }

  // ---- object (insertion-ordered) -----------------------------------------
  void set(const std::string& key, JsonValue value);
  /// nullptr when the key is absent (or this is not an object).
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Typed lookups with defaults, for tolerant readers (bench_diff).
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key,
                       const std::string& fallback) const;

  /// Compact serialization; `indent` > 0 pretty-prints with that many spaces
  /// per level.  Numbers use shortest round-trip formatting.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document (trailing non-whitespace is an error).
  static Result<JsonValue> parse(const std::string& text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape `s` as the *contents* of a JSON string literal (no quotes added).
std::string jsonEscape(const std::string& s);

}  // namespace edgesim
