#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace edgesim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ES_ASSERT(!header_.empty());
}

void Table::addRow(std::vector<std::string> row) {
  ES_ASSERT_MSG(row.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (const auto w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + renderRow(header_) + sep;
  for (const auto& row : rows_) out += renderRow(row);
  out += sep;
  return out;
}

std::string Table::csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ',';
      line += escape(row[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = renderRow(header_);
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

}  // namespace edgesim
