#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace edgesim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ES_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    ES_ASSERT_MSG(!stop_, "submit() after shutdown");
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --inFlight_;
    }
    cvDone_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n, std::size_t threads,
                             const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

}  // namespace edgesim
