// Result<T>: a minimal expected-like type for recoverable failures.
//
// Simulated subsystems fail in ways a caller must handle (registry down,
// image missing, port refused); exceptions would obscure those data-flow
// paths, so fallible APIs return Result.  Programming errors use ES_ASSERT.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace edgesim {

enum class Errc {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kUnavailable,
  kInvalidArgument,
  kTimeout,
  kConflict,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

const char* errcName(Errc code);

struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  std::string toString() const;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    ES_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T& value() & {
    ES_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(data_);
  }
  T&& value() && {
    ES_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    ES_ASSERT_MSG(!ok(), "Result::error() on success");
    return std::get<Error>(data_);
  }

  T valueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> specialisation stand-in.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  static Status okStatus() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    ES_ASSERT_MSG(failed_, "Status::error() on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

inline Error makeError(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace edgesim
