// Flat key/value configuration with typed getters.
//
// The SDN controller of the paper loads its scheduler class and timeouts
// from a configuration file; we mirror that with a simple "key = value"
// format (comments with '#') plus programmatic construction for tests.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace edgesim {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Result<Config> parse(std::string_view text);

  void set(std::string key, std::string value);

  bool contains(const std::string& key) const;

  std::optional<std::string> getString(const std::string& key) const;
  std::optional<std::int64_t> getInt(const std::string& key) const;
  std::optional<double> getDouble(const std::string& key) const;
  std::optional<bool> getBool(const std::string& key) const;

  std::string getStringOr(const std::string& key, std::string fallback) const;
  std::int64_t getIntOr(const std::string& key, std::int64_t fallback) const;
  double getDoubleOr(const std::string& key, double fallback) const;
  bool getBoolOr(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace edgesim
