#include "util/config.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace edgesim {

Result<Config> Config::parse(std::string_view text) {
  Config config;
  int lineNo = 0;
  for (const auto& rawLine : split(text, '\n')) {
    ++lineNo;
    std::string_view line = rawLine;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return makeError(Errc::kInvalidArgument,
                       strprintf("config line %d: missing '='", lineNo));
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return makeError(Errc::kInvalidArgument,
                       strprintf("config line %d: empty key", lineNo));
    }
    config.set(std::string(key), std::string(value));
  }
  return config;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::getString(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::getInt(const std::string& key) const {
  const auto text = getString(key);
  if (!text) return std::nullopt;
  std::int64_t value = 0;
  const auto* begin = text->data();
  const auto* end = begin + text->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> Config::getDouble(const std::string& key) const {
  const auto text = getString(key);
  if (!text) return std::nullopt;
  double value = 0;
  const auto* begin = text->data();
  const auto* end = begin + text->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<bool> Config::getBool(const std::string& key) const {
  const auto text = getString(key);
  if (!text) return std::nullopt;
  const auto lower = toLower(*text);
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") return false;
  return std::nullopt;
}

std::string Config::getStringOr(const std::string& key, std::string fallback) const {
  return getString(key).value_or(std::move(fallback));
}

std::int64_t Config::getIntOr(const std::string& key, std::int64_t fallback) const {
  return getInt(key).value_or(fallback);
}

double Config::getDoubleOr(const std::string& key, double fallback) const {
  return getDouble(key).value_or(fallback);
}

bool Config::getBoolOr(const std::string& key, bool fallback) const {
  return getBool(key).value_or(fallback);
}

}  // namespace edgesim
