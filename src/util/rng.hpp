// Deterministic random number generation for reproducible simulations.
//
// Every `Simulation` owns one `Rng` seeded from the experiment seed; derived
// streams (`fork`) let independent components draw numbers without perturbing
// each other's sequences, so adding a new consumer does not shift results of
// existing ones.  The generator is xoshiro256**, seeded via splitmix64,
// which passes BigCrush and is much faster than std::mt19937_64.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace edgesim {

/// xoshiro256** PRNG with deterministic seeding and stream forking.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the single seed word into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream. Deterministic: the same parent
  /// state + tag always yields the same child.
  Rng fork(std::uint64_t tag) {
    return Rng((*this)() ^ (tag * 0x2545f4914f6cdd1dULL) ^ 0xd1b54a32d192ed03ULL);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    ES_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
    ES_ASSERT(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + v % range;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    ES_ASSERT(mean > 0.0);
    double u = uniform01();
    while (u <= 0.0) u = uniform01();  // guard log(0)
    return -mean * std::log(u);
  }

  /// Pareto (Lomax-shifted) heavy-tail sample with minimum xm and shape a.
  double pareto(double xm, double shape) {
    ES_ASSERT(xm > 0.0 && shape > 0.0);
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return xm / std::pow(u, 1.0 / shape);
  }

  /// Log-normally distributed value parameterised by the mean/sigma of the
  /// underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Normal sample (Box-Muller; one value per call, cached pair discarded
  /// to keep fork()/reseed() semantics simple).
  double normal(double mean, double stddev) {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * 3.141592653589793 * u2);
  }

  /// Zipf-distributed rank in [1, n] with exponent s (via inverse-CDF over
  /// precomputed weights is overkill here; rejection-inversion is used).
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace edgesim
