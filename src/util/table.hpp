// ASCII table / CSV rendering for experiment output.
//
// Every bench binary prints the paper's rows as an aligned table plus a CSV
// block so results can be diffed or plotted downstream.
#pragma once

#include <string>
#include <vector>

namespace edgesim {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);
  std::size_t rowCount() const { return rows_.size(); }

  /// Aligned, boxed ASCII rendering.
  std::string render() const;
  /// RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace edgesim
