#include "util/rng.hpp"

namespace edgesim {

// Rejection-inversion sampling after W. Hormann & G. Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions" (1996). O(1) per sample, no per-n precomputation.
std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ES_ASSERT(n >= 1);
  ES_ASSERT(s > 0.0);
  if (n == 1) return 1;

  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // Integral of x^-s (handles s == 1 via log).
    if (s == 1.0) return std::log(x);
    return std::pow(x, 1.0 - s) / (1.0 - s);
  };
  auto hInv = [s](double x) {
    if (s == 1.0) return std::exp(x);
    return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
  };

  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);

  for (int iter = 0; iter < 1000; ++iter) {
    const double u = hx0 + uniform01() * (hn - hx0);
    const double x = hInv(u);
    const double k = std::floor(x + 0.5);
    const double kc = std::min(std::max(k, 1.0), nd);
    if (kc - x <= 1.0 - std::pow(kc + 0.5, -s) - (h(kc + 0.5) - h(kc)) ||
        u >= h(kc + 0.5) - std::pow(kc, -s)) {
      return static_cast<std::uint64_t>(kc);
    }
  }
  return 1;  // astronomically unlikely; keep determinism without throwing
}

}  // namespace edgesim
