#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace edgesim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sortedValid_ = false;
}

void Samples::clear() {
  values_.clear();
  sorted_.clear();
  sortedValid_ = false;
}

double Samples::min() const {
  ES_ASSERT(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  ES_ASSERT(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::mean() const {
  ES_ASSERT(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

void Samples::ensureSorted() const {
  if (sortedValid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sortedValid_ = true;
}

double Samples::quantile(double q) const {
  ES_ASSERT_MSG(!values_.empty(), "quantile of empty sample set");
  ES_ASSERT(q >= 0.0 && q <= 1.0);
  ensureSorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lower] * (1.0 - frac) + sorted_[lower + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  ES_ASSERT(hi > lo);
  ES_ASSERT(bins > 0);
}

void Histogram::add(double x, double weight) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::binLow(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::binHigh(std::size_t i) const { return binLow(i + 1); }

std::string Histogram::render(std::size_t width) const {
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bars =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak *
                                              static_cast<double>(width))
                   : 0;
    out += strprintf("[%8.2f, %8.2f) %8.0f |", binLow(i), binHigh(i),
                     counts_[i]);
    out.append(bars, '#');
    out += '\n';
  }
  return out;
}

}  // namespace edgesim
