#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cctype>
#include <charconv>

namespace edgesim {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> splitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool isInteger(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool isNumber(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace edgesim
