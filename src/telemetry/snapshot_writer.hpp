// Periodic + on-demand TelemetrySnapshot file dumps.
//
// The writer snapshots the registry on a SIM-TIME cadence (a PeriodicTimer
// tick, so a 40 s simulated run emits the same snapshot sequence no matter
// how fast the host executes it) and writes numbered
// `<prefix>_NNNNNN.json` / `.prom` pairs into one directory.
// tools/telemetry_top tails the highest-numbered JSON file.  Disabled by
// default everywhere: writing files from a sim event is a side effect, so
// deterministic goldens never see it unless a run opts in.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "sim/simulation.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/result.hpp"

namespace edgesim::telemetry {

struct SnapshotWriterOptions {
  std::string dir = "telemetry-out";
  /// Sim-time interval between periodic snapshots (start()).
  SimTime period = SimTime::seconds(5.0);
  std::string prefix = "snapshot";
  bool writeJson = true;
  bool writePrometheus = true;
};

class SnapshotWriter {
 public:
  SnapshotWriter(Simulation& sim, MetricsRegistry& registry,
                 SnapshotWriterOptions options = {});

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Arm the periodic dump (first snapshot one period from now).  Write
  /// failures are logged once and stop the timer rather than spamming.
  void start();
  void stop();

  /// Snapshot and write immediately; returns the snapshot that was
  /// written.  Sim thread only (reads sim.now()).
  Result<TelemetrySnapshot> writeNow();

  std::size_t written() const { return written_; }
  const SnapshotWriterOptions& options() const { return options_; }

 private:
  Simulation& sim_;
  MetricsRegistry& registry_;
  SnapshotWriterOptions options_;
  PeriodicTimer timer_;
  std::size_t written_ = 0;
};

}  // namespace edgesim::telemetry
