// Lock-light metrics registry for live introspection of the running system.
//
// The PR 3 hot path runs on pool workers concurrently with the sim thread;
// the existing Recorder/TraceRecorder buffer *events* and export at end of
// run, which is both post-hoc and (for million-request runs) unbounded.
// This registry holds *state* -- named counters, gauges and log-linear
// histograms -- cheap enough to update from the warm path and readable at
// any time:
//
//   * writes go to per-thread STRIPES: each thread hashes to one of
//     kStripes cache-line-padded atomic cells and does a relaxed
//     fetch_add.  No locks, no CAS loops, no contention with FlowMemory's
//     shard locks; two threads only share a cell (and a cache line) if
//     they collide mod kStripes.
//   * reads MERGE the stripes: value() sums the cells with relaxed loads.
//     Concurrent with writers the result is a moment-in-time approximation
//     (each cell is exact, the sum may straddle updates); once writers are
//     quiescent (drain()ed pool, stopped sim) it is exact -- which is when
//     the reconciliation checks in bench_telemetry_fig16 run.
//
// Histograms are log-linear over seconds: base-2 octaves split into 4
// linear sub-buckets (top 2 mantissa bits), covering [2^-31, 2^12) s --
// about half a nanosecond to ~68 minutes -- in 172 buckets with <= 25%
// relative bucket width.  bucketIndex() is a handful of bit operations on
// the IEEE-754 representation; out-of-range values clamp to the first /
// last bucket.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime: instrumentation sites resolve them ONCE at
// construction and the hot path never touches the registry map or its
// mutex.  Registration itself (and snapshot()) is mutex-guarded and cheap
// but not hot-path safe by design.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/snapshot.hpp"

namespace edgesim::telemetry {

namespace detail {

/// Number of write stripes per metric.  Enough that a sim thread plus a
/// typical worker pool (<= 8) rarely collide; small enough that merging
/// stays trivial.
inline constexpr std::size_t kStripes = 16;

std::size_t allocateStripe();

/// This thread's stripe index, assigned round-robin on first use.
inline std::size_t threadStripe() {
  thread_local const std::size_t stripe = allocateStripe();
  return stripe;
}

}  // namespace detail

/// Monotonically increasing event count.  add() is wait-free (one relaxed
/// fetch_add on a thread-striped cell); value() merges the stripes.
class Counter {
 public:
  Counter() : cells_(new Cell[detail::kStripes]) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    cells_[detail::threadStripe()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < detail::kStripes; ++i) {
      total += cells_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::unique_ptr<Cell[]> cells_;
};

/// Last-write-wins instantaneous value (queue depth, occupancy).  A single
/// atomic: gauges are set, not accumulated, so striping would have no
/// meaningful merge.
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear latency histogram over seconds (see header comment).
/// observe() is wait-free: one bucket index computation plus two relaxed
/// fetch_adds on this thread's stripe.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   // 2 mantissa bits per octave
  static constexpr int kMinExp = -31;     // lowest octave [2^-31, 2^-30) s
  static constexpr int kMaxExp = 11;      // highest octave [2^11, 2^12) s
  static constexpr int kOctaves = kMaxExp - kMinExp + 1;
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  Histogram() : stripes_(new Stripe[detail::kStripes]) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double seconds) {
    Stripe& stripe = stripes_[detail::threadStripe()];
    stripe.buckets[bucketIndex(seconds)].fetch_add(1,
                                                   std::memory_order_relaxed);
    stripe.sumNanos.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
  }

  /// Merged bucket counts (size kBuckets, non-cumulative).
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const;
  double sum() const;  // seconds (nanosecond resolution)
  /// Quantile with linear interpolation inside the bucket; NaN when empty.
  double quantile(double q) const;

  /// Bucket for `seconds`: exponent and top-2 mantissa bits of the IEEE-754
  /// double.  Non-positive (and NaN) values land in bucket 0; values at or
  /// beyond 2^12 s clamp to the last bucket.
  static int bucketIndex(double seconds) {
    if (!(seconds > 0.0)) return 0;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(seconds);
    const int octave =
        (static_cast<int>(bits >> 52) & 0x7FF) - 1023 - kMinExp;
    if (octave < 0) return 0;
    if (octave >= kOctaves) return kBuckets - 1;
    return octave * kSubBuckets + static_cast<int>((bits >> 50) & 0x3);
  }
  static double bucketLowerBound(int index);
  static double bucketUpperBound(int index);
  /// Quantile over an arbitrary bucket-count vector (e.g. a windowed delta
  /// computed by the SLO watchdog).  NaN when the counts sum to zero.
  static double quantileFromCounts(const std::vector<std::uint64_t>& counts,
                                   double q);
  /// Windowed bucket delta: window = counts - last element-wise, then last
  /// is refreshed to counts.  Returns the sample count in the window.
  /// `last` is resized (zero-filled) on first use.  This is the shared
  /// mechanism behind the SLO watchdog's and the overload governor's
  /// rolling latency windows: cumulative bucket snapshots differenced
  /// against the previous evaluation.
  static std::uint64_t deltaCounts(const std::vector<std::uint64_t>& counts,
                                   std::vector<std::uint64_t>& last,
                                   std::vector<std::uint64_t>& window);

 private:
  struct Stripe {
    std::atomic<std::uint64_t> buckets[kBuckets];
    alignas(64) std::atomic<std::int64_t> sumNanos{0};
  };
  std::unique_ptr<Stripe[]> stripes_;
};

/// Named, labelled instrument registry (see header comment for the write /
/// read model).  Metric handles are stable references; series are keyed on
/// the exact (name, labels) pair and created on first request.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});
  /// Polled gauge: `fn` is evaluated at snapshot time on the snapshotting
  /// thread.  Lets other modules (Recorder / TraceRecorder drop counts)
  /// surface values without depending on telemetry.  Re-registering the
  /// same series replaces the callback.
  void gaugeFn(const std::string& name, const Labels& labels,
               std::function<double()> fn);

  /// Merged point-in-time view, series sorted by (name, labels).  Bumps
  /// the snapshot sequence number.  Safe to call while writers run (values
  /// are then approximations; exact at quiescence).
  TelemetrySnapshot snapshot(double simTimeSeconds) const;

 private:
  template <typename Metric>
  struct Series {
    std::string name;
    Labels labels;
    std::unique_ptr<Metric> metric;
  };
  struct FnSeries {
    std::string name;
    Labels labels;
    std::function<double()> fn;
  };

  static std::string seriesKey(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  mutable std::atomic<std::uint64_t> nextSequence_{0};
  std::map<std::string, Series<Counter>> counters_;
  std::map<std::string, Series<Gauge>> gauges_;
  std::map<std::string, FnSeries> gaugeFns_;
  std::map<std::string, Series<Histogram>> histograms_;
};

}  // namespace edgesim::telemetry
