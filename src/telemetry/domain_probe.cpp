#include "telemetry/domain_probe.hpp"

#include <algorithm>
#include <string>

#include "util/strings.hpp"

namespace edgesim::telemetry {

namespace {

std::string idLabel(DomainId id) {
  return strprintf("%u", static_cast<unsigned>(id));
}

}  // namespace

DomainProbe::DomainProbe(Simulation& sim, MetricsRegistry* registry,
                         trace::TraceRecorder* recorder)
    : sim_(sim),
      registry_(registry),
      recorder_(recorder),
      epoch_(std::chrono::steady_clock::now()) {
  const std::size_t count = sim.domainCount();
  domains_.reserve(count);
  for (DomainId id = 0; id < count; ++id) {
    EventDomain& domain = sim.domain(id);
    auto state = std::make_unique<DomainState>();
    if (registry != nullptr) {
      const Labels labels{{"domain", idLabel(id)}, {"name", domain.name()}};
      state->events =
          &registry->counter("edgesim_domain_events_total", labels);
      state->lifts =
          &registry->counter("edgesim_domain_clock_lifts_total", labels);
      state->advanceWall =
          &registry->histogram("edgesim_domain_advance_seconds", labels);
      state->stallWall =
          &registry->histogram("edgesim_domain_stall_wall_seconds", labels);
      state->stallSim =
          &registry->histogram("edgesim_domain_stall_sim_seconds", labels);
      EventDomain* domainPtr = &domain;
      registry->gaugeFn("edgesim_domain_heap_depth", labels, [domainPtr] {
        return static_cast<double>(domainPtr->pendingEvents());
      });
      Simulation* simPtr = &sim;
      registry->gaugeFn(
          "edgesim_domain_clock_lag_seconds", labels, [simPtr, domainPtr] {
            std::int64_t maxNanos = 0;
            for (DomainId d = 0; d < simPtr->domainCount(); ++d) {
              maxNanos =
                  std::max(maxNanos, simPtr->domain(d).nowNanosAtomic());
            }
            const std::int64_t lag = maxNanos - domainPtr->nowNanosAtomic();
            return static_cast<double>(std::max<std::int64_t>(lag, 0)) / 1e9;
          });
      // Channel series hang off the receiving side's inbound list so every
      // channel is visited exactly once.
      for (const DomainChannel* channel : domain.inbound()) {
        const DomainId from = channel->from().id();
        const Labels pair{{"from", idLabel(from)}, {"to", idLabel(id)}};
        messageCounters_[pairKey(from, id)] =
            &registry->counter("edgesim_domain_channel_messages_total", pair);
        stallCounters_[pairKey(id, from)] = &registry->counter(
            "edgesim_domain_stalls_total",
            {{"domain", idLabel(id)}, {"bound_by", idLabel(from)}});
        Labels gaugeLabels = pair;
        if (!channel->via().empty()) {
          gaugeLabels.emplace_back("via", channel->via());
        }
        registry->gaugeFn("edgesim_domain_channel_lookahead_seconds",
                          gaugeLabels, [channel] {
                            return channel->lookahead().toSeconds();
                          });
        registry->gaugeFn("edgesim_domain_channel_inbox_depth", pair,
                          [channel] {
                            return static_cast<double>(
                                channel->pendingCount());
                          });
      }
    }
    if (recorder != nullptr) {
      recorder->nameTrack(static_cast<std::int64_t>(id),
                          strprintf("%u:%s", static_cast<unsigned>(id),
                                    domain.name().c_str()));
    }
    domains_.push_back(std::move(state));
  }
  if (registry != nullptr) {
    watchdogPasses_ =
        &registry->counter("edgesim_domain_watchdog_passes_total");
    watchdogProductive_ = &registry->counter(
        "edgesim_domain_watchdog_wakes_total", {{"result", "productive"}});
    watchdogRedundant_ = &registry->counter(
        "edgesim_domain_watchdog_wakes_total", {{"result", "redundant"}});
    Simulation* simPtr = &sim;
    registry->gaugeFn("edgesim_domain_external_inbox_depth", {}, [simPtr] {
      return static_cast<double>(simPtr->externalQueueDepth());
    });
  }
  sim.setDomainObserver(this);
}

DomainProbe::~DomainProbe() { sim_.setDomainObserver(nullptr); }

Counter* DomainProbe::messageCounter(DomainId from, DomainId to) {
  if (registry_ == nullptr) return nullptr;
  const std::uint64_t key = pairKey(from, to);
  {
    std::lock_guard lock(lazyMutex_);
    const auto it = messageCounters_.find(key);
    if (it != messageCounters_.end()) return it->second;
  }
  // Channel-less pair (sequential multi-domain runs admit directly into the
  // target queue): resolve once, then cache.
  Counter* counter = &registry_->counter(
      "edgesim_domain_channel_messages_total",
      {{"from", idLabel(from)}, {"to", idLabel(to)}});
  std::lock_guard lock(lazyMutex_);
  messageCounters_[key] = counter;
  return counter;
}

Counter* DomainProbe::stallCounter(DomainId domain, DomainId boundedBy) {
  if (registry_ == nullptr) return nullptr;
  const std::uint64_t key = pairKey(domain, boundedBy);
  {
    std::lock_guard lock(lazyMutex_);
    const auto it = stallCounters_.find(key);
    if (it != stallCounters_.end()) return it->second;
  }
  Counter* counter = &registry_->counter(
      "edgesim_domain_stalls_total",
      {{"domain", idLabel(domain)}, {"bound_by", idLabel(boundedBy)}});
  std::lock_guard lock(lazyMutex_);
  stallCounters_[key] = counter;
  return counter;
}

void DomainProbe::closeStall(DomainState& state, DomainId domain,
                             std::chrono::steady_clock::time_point end,
                             SimTime simNow) {
  const double wallSeconds =
      std::chrono::duration<double>(end - state.stallStartWall).count();
  const SimTime simDelta = simNow >= state.stallStartSim
                               ? simNow - state.stallStartSim
                               : SimTime::zero();
  if (Counter* counter = stallCounter(domain, state.boundedBy)) {
    counter->add(1);
  }
  if (state.stallWall != nullptr) {
    state.stallWall->observe(std::max(wallSeconds, 0.0));
  }
  if (state.stallSim != nullptr) {
    state.stallSim->observe(simDelta.toSeconds());
  }
  if (recorder_ != nullptr) {
    recorder_->completeTrackSpan(
        static_cast<std::int64_t>(domain), "stall", "domain",
        wallStamp(state.stallStartWall), wallStamp(end),
        {{"bound_by", idLabel(state.boundedBy)}});
  }
  state.stalled = false;
  state.boundedBy = kNoDomainId;
}

void DomainProbe::onAdvance(const AdvanceInfo& info) {
  DomainState& state = *domains_[info.domain];
  const bool progressed = info.dispatched > 0 || info.clockMoved;
  if (state.events != nullptr && info.dispatched > 0) {
    state.events->add(info.dispatched);
  }
  if (state.lifts != nullptr && info.lifts > 0) state.lifts->add(info.lifts);
  if (state.advanceWall != nullptr) {
    state.advanceWall->observe(
        std::chrono::duration<double>(info.wallEnd - info.wallStart).count());
  }
  if (recorder_ != nullptr && info.dispatched > 0) {
    recorder_->completeTrackSpan(
        static_cast<std::int64_t>(info.domain), "advance", "domain",
        wallStamp(info.wallStart), wallStamp(info.wallEnd),
        {{"dispatched", strprintf("%zu", info.dispatched)}});
  }
  if (state.stalled && (progressed || info.idleAtHorizon)) {
    // The stall ended when this slice started doing something (progress) or
    // found the domain idle at the horizon (the gating event was cancelled
    // or the bound finally cleared it).
    closeStall(state, info.domain,
               progressed ? info.wallStart : info.wallEnd, info.now);
  }
  if (!info.idleAtHorizon && info.boundedBy != kNoDomainId &&
      !state.stalled) {
    state.stalled = true;
    state.boundedBy = info.boundedBy;
    state.stallStartWall = info.wallEnd;
    state.stallStartSim = info.now;
  }
}

std::uint64_t DomainProbe::onCrossSend(DomainId from, DomainId to,
                                       SimTime when) {
  if (Counter* counter = messageCounter(from, to)) counter->add(1);
  if (recorder_ == nullptr) return 0;
  const std::uint64_t flow =
      nextFlow_.fetch_add(1, std::memory_order_relaxed) + 1;
  const SimTime at = wallStamp(std::chrono::steady_clock::now());
  recorder_->completeTrackSpan(static_cast<std::int64_t>(from), "xdom-send",
                               "domain", at, at,
                               {{"to", idLabel(to)},
                                {"when_us", strprintf("%.3f", when.toMicros())},
                                {"flow", strprintf("%llu",
                                                   static_cast<unsigned long long>(
                                                       flow))}});
  recorder_->flowBegin(flow, static_cast<std::int64_t>(from), "xdom", "domain",
                       at);
  return flow;
}

void DomainProbe::onCrossReceive(std::uint64_t flow, DomainId from,
                                 DomainId to, SimTime when) {
  if (recorder_ == nullptr) return;
  const SimTime at = wallStamp(std::chrono::steady_clock::now());
  recorder_->flowEnd(flow, static_cast<std::int64_t>(to), "xdom", "domain",
                     at);
  recorder_->completeTrackSpan(static_cast<std::int64_t>(to), "xdom-recv",
                               "domain", at, at,
                               {{"from", idLabel(from)},
                                {"when_us", strprintf("%.3f", when.toMicros())},
                                {"flow", strprintf("%llu",
                                                   static_cast<unsigned long long>(
                                                       flow))}});
}

void DomainProbe::onWatchdogPass() {
  if (watchdogPasses_ != nullptr) watchdogPasses_->add(1);
}

void DomainProbe::onWatchdogWake(DomainId /*domain*/, bool productive) {
  Counter* counter = productive ? watchdogProductive_ : watchdogRedundant_;
  if (counter != nullptr) counter->add(1);
}

}  // namespace edgesim::telemetry
