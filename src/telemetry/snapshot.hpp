// Point-in-time export of a telemetry::MetricsRegistry.
//
// A TelemetrySnapshot is plain data: the merged value of every counter,
// gauge and histogram at one sim-time instant, in registry (name-sorted)
// order so successive snapshots diff cleanly.  It serializes two ways:
//   * the ordered util/json form ("edgesim-telemetry" schema, versioned
//     like BENCH_<name>.json) -- consumed by tools/telemetry_top and by
//     the reconciliation checks in bench_telemetry_fig16;
//   * Prometheus text exposition format (# TYPE comments, cumulative
//     `le` buckets, _sum/_count) so a live run can be scraped with
//     standard tooling.
// lintPrometheus() is the format self-check behind `telemetry_top --lint`:
// it validates metric/label grammar, TYPE-before-samples ordering and
// histogram bucket monotonicity, so CI catches exposition regressions
// without a real Prometheus server.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace edgesim::telemetry {

/// Metric dimensions, e.g. {{"shard", "3"}, {"result", "hit"}}.  Order is
/// preserved and significant for identity: the registry keys series on the
/// exact (name, labels) pair.
using Labels = std::vector<std::pair<std::string, std::string>>;

struct SnapshotCounter {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct SnapshotGauge {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct SnapshotHistogram {
  /// Cumulative bucket: `cumulative` observations were <= `upperBound`
  /// seconds.  Only buckets whose cumulative count changed are stored; the
  /// implicit +Inf bucket equals `count`.
  struct Bucket {
    double upperBound = 0.0;
    std::uint64_t cumulative = 0;
  };

  std::string name;
  Labels labels;
  std::uint64_t count = 0;
  double sum = 0.0;                  // seconds
  std::vector<Bucket> buckets;       // increasing upperBound, finite only

  /// Quantile estimate from the stored cumulative buckets (upper-bound
  /// attribution, like Prometheus histogram_quantile).  NaN when empty.
  double quantile(double q) const;
};

struct TelemetrySnapshot {
  std::uint64_t sequence = 0;        // monotonic per registry
  double simTimeSeconds = 0.0;
  std::vector<SnapshotCounter> counters;
  std::vector<SnapshotGauge> gauges;
  std::vector<SnapshotHistogram> histograms;

  const SnapshotCounter* findCounter(const std::string& name,
                                     const Labels& labels = {}) const;
  const SnapshotGauge* findGauge(const std::string& name,
                                 const Labels& labels = {}) const;
  const SnapshotHistogram* findHistogram(const std::string& name,
                                         const Labels& labels = {}) const;
  /// 0 when the series is absent.
  std::uint64_t counterValue(const std::string& name,
                             const Labels& labels = {}) const;
  /// Sum over every counter series with this name, all label sets.
  std::uint64_t counterTotal(const std::string& name) const;
  /// Sum of `count` over every histogram series with this name.
  std::uint64_t histogramCountTotal(const std::string& name) const;

  JsonValue toJson() const;
  std::string toPrometheus() const;
  static Result<TelemetrySnapshot> fromJson(const JsonValue& doc);
};

/// Validate `text` as Prometheus text exposition format: metric/label name
/// grammar, numeric sample values, `# TYPE` declared before the family's
/// first sample, histogram `le` buckets strictly increasing with
/// non-decreasing cumulative counts, +Inf bucket present and equal to
/// _count.  Errors carry 1-based line numbers.
Status lintPrometheus(const std::string& text);

}  // namespace edgesim::telemetry
