// SLO watchdog: budget evaluation over live telemetry histograms.
//
// Each SloBudget watches one registry histogram series (and optionally an
// error/total counter pair) and is evaluated on a periodic sim-time tick.
// Evaluation is WINDOWED: the watchdog keeps the previous tick's bucket
// counts and computes the quantile over the DELTA, so one slow warm-up
// request cannot poison an hour of good behaviour (and a breach clears
// itself once the offending window passes).
//
// On breach the watchdog does three things so slow requests are
// explainable without replaying the run:
//   * appends a structured SloBreach record (JSON-exportable);
//   * emits a trace instant ("slo-breach", category "telemetry") bound to
//     the worst request observed in the window;
//   * copies that request's trace spans into the breach record, so the
//     phase-by-phase story of the offending request survives even after
//     the trace buffers hit their cap.
// It also bumps `edgesim_slo_breaches_total{budget=...}` in the registry,
// making breaches visible in snapshots and `telemetry_top`.
//
// The worst-request table is fed by observeRequest() from the controller's
// cold-resolve completion (sim thread); evaluate() runs on the sim thread.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"
#include "util/json.hpp"

namespace edgesim::telemetry {

struct SloBudget {
  std::string name;            // unique id; also the breach counter label
  /// Worst-request matching key: the controller reports cold resolves per
  /// service tag.  Empty = no per-request attribution for this budget.
  std::string service;

  // Latency budget: quantile of the watched histogram over the window.
  std::string histogram;       // registry histogram name, e.g.
                               // "edgesim_resolve_seconds"
  Labels labels;               // exact label set of the watched series
  double quantile = 0.95;
  double latencyBudgetSeconds = 0.0;  // <= 0 disables the latency check

  // Error budget: delta(error) / delta(total) over the window.
  std::string errorCounter;    // empty disables the error check
  Labels errorLabels;
  std::string totalCounter;
  Labels totalLabels;
  double maxErrorRatio = -1.0;

  /// Minimum window observations before either check can fire (guards
  /// against quantiles over one request).
  std::uint64_t minWindowSamples = 1;
};

struct SloBreach {
  SimTime at;
  std::string budget;
  std::string kind;            // "latency" | "errors"
  double observed = 0.0;       // quantile seconds, or error ratio
  double budgetValue = 0.0;
  std::uint64_t windowSamples = 0;

  // Offending request (when the budget names a service and a cold resolve
  // was observed in the window).
  trace::RequestId worstRequest = 0;
  double worstSeconds = 0.0;
  std::vector<trace::TraceSpan> worstSpans;

  JsonValue toJson() const;
};

class SloWatchdog {
 public:
  SloWatchdog(Simulation& sim, MetricsRegistry& registry,
              trace::TraceRecorder* trace = nullptr);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  void addBudget(SloBudget budget);

  /// Evaluate all budgets every `period` of sim time.
  void start(SimTime period);
  void stop();

  /// Report a completed request so a breach can name its worst offender.
  /// Thread-safe (the controller calls this on the sim thread; tests may
  /// not).
  void observeRequest(const std::string& service, double seconds,
                      trace::RequestId request);

  /// One evaluation pass; returns the number of breaches recorded.  Public
  /// so tests (and end-of-run hooks) can evaluate without the timer.
  std::size_t evaluate();

  const std::vector<SloBreach>& breaches() const { return breaches_; }
  JsonValue breachesJson() const;

 private:
  struct BudgetState {
    SloBudget budget;
    Histogram* histogram = nullptr;       // resolved lazily on first eval
    Counter* breachCounter = nullptr;
    std::vector<std::uint64_t> lastCounts;
    std::uint64_t lastErrors = 0;
    std::uint64_t lastTotal = 0;
  };
  struct WorstRequest {
    double seconds = 0.0;
    trace::RequestId request = 0;
  };

  void recordBreach(BudgetState& state, const std::string& kind,
                    double observed, double budgetValue,
                    std::uint64_t windowSamples);

  Simulation& sim_;
  MetricsRegistry& registry_;
  trace::TraceRecorder* trace_;
  PeriodicTimer timer_;
  std::vector<BudgetState> budgets_;
  std::vector<SloBreach> breaches_;

  std::mutex worstMutex_;
  std::map<std::string, WorstRequest> worstByService_;
};

}  // namespace edgesim::telemetry
