// DomainProbe: the telemetry-side implementation of sim::DomainObserver.
//
// Attaching a probe wires the parallel discrete-event core into the
// MetricsRegistry and (optionally) a TraceRecorder:
//
//   counters     edgesim_domain_events_total{domain,name}
//                edgesim_domain_clock_lifts_total{domain,name}
//                edgesim_domain_stalls_total{domain,bound_by}
//                edgesim_domain_channel_messages_total{from,to}
//                edgesim_domain_watchdog_wakes_total{result}
//                edgesim_domain_watchdog_passes_total
//   histograms   edgesim_domain_advance_seconds{domain,name}      (wall)
//                edgesim_domain_stall_wall_seconds{domain,name}
//                edgesim_domain_stall_sim_seconds{domain,name}
//   gauges (fn)  edgesim_domain_heap_depth{domain,name}
//                edgesim_domain_clock_lag_seconds{domain,name}
//                edgesim_domain_channel_lookahead_seconds{from,to[,via]}
//                edgesim_domain_channel_inbox_depth{from,to}
//                edgesim_domain_external_inbox_depth
//
// STALL SEMANTICS: a domain is "stalled" from the end of an advance slice
// that left it blocked below the horizon (an inbound channel's safeBound
// gates a live local event) until the start of the next slice that makes
// progress (or reaches the horizon).  The stall is attributed to the
// channel whose bound was the minimum when the domain gave up -- the
// `bound_by` label carries that channel's SOURCE domain id.  Wall duration
// includes the time the domain spent waiting between slices (that is the
// point); sim duration is how far the domain's own clock moved across the
// stall.  Redundant watchdog wakes do not close a stall.
//
// TRACING (off unless a recorder is passed): the probe records a separate
// WALL-CLOCK timeline -- SimTime stamps are nanoseconds since probe
// construction, NOT sim time -- with one track per domain (pid 2 in the
// Chrome export): "advance" slices that dispatched events, closed "stall"
// spans (args: bound_by), and zero-duration "xdom-send"/"xdom-recv" span
// pairs linked by flow arrows.  tools/critical_path consumes this file.
//
// Lifetime: the probe registers itself via Simulation::setDomainObserver in
// the constructor and detaches in the destructor.  Construct after all
// domains/channels exist; keep sim, registry and recorder alive until the
// last snapshot/export; never destroy mid-run.  Thread safety follows the
// DomainObserver contract (per-domain state is advancing-thread-confined;
// counters/histograms are striped; the recorder is thread-safe).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/domain_observer.hpp"
#include "sim/simulation.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/trace_recorder.hpp"

namespace edgesim::telemetry {

class DomainProbe final : public DomainObserver {
 public:
  /// `registry` and/or `recorder` may be null: null registry = trace only,
  /// null recorder = metrics only (the cheap mode benches leave tracing off).
  DomainProbe(Simulation& sim, MetricsRegistry* registry,
              trace::TraceRecorder* recorder = nullptr);
  ~DomainProbe() override;

  DomainProbe(const DomainProbe&) = delete;
  DomainProbe& operator=(const DomainProbe&) = delete;

  // ---- DomainObserver -----------------------------------------------------
  void onAdvance(const AdvanceInfo& info) override;
  std::uint64_t onCrossSend(DomainId from, DomainId to, SimTime when) override;
  void onCrossReceive(std::uint64_t flow, DomainId from, DomainId to,
                      SimTime when) override;
  void onWatchdogPass() override;
  void onWatchdogWake(DomainId domain, bool productive) override;

 private:
  struct alignas(64) DomainState {
    Counter* events = nullptr;
    Counter* lifts = nullptr;
    Histogram* advanceWall = nullptr;
    Histogram* stallWall = nullptr;
    Histogram* stallSim = nullptr;
    // Stall bookkeeping; touched only by the domain's advancing thread.
    bool stalled = false;
    DomainId boundedBy = kNoDomainId;
    std::chrono::steady_clock::time_point stallStartWall;
    SimTime stallStartSim;
  };

  static std::uint64_t pairKey(DomainId from, DomainId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Counter for sends from->to; resolved lazily for pairs without a
  /// channel (sequential multi-domain runs bypass channels).
  Counter* messageCounter(DomainId from, DomainId to);
  Counter* stallCounter(DomainId domain, DomainId boundedBy);
  void closeStall(DomainState& state, DomainId domain,
                  std::chrono::steady_clock::time_point end, SimTime simNow);

  /// Wall stamp on the probe's trace timeline: nanoseconds since
  /// construction, carried in the SimTime slot of the recorder API.
  SimTime wallStamp(std::chrono::steady_clock::time_point tp) const {
    return SimTime::nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }

  Simulation& sim_;
  MetricsRegistry* registry_;
  trace::TraceRecorder* recorder_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<DomainState>> domains_;
  Counter* watchdogPasses_ = nullptr;
  Counter* watchdogProductive_ = nullptr;
  Counter* watchdogRedundant_ = nullptr;
  std::atomic<std::uint64_t> nextFlow_{0};

  std::mutex lazyMutex_;  // guards lazy inserts into the maps below
  std::unordered_map<std::uint64_t, Counter*> messageCounters_;
  std::unordered_map<std::uint64_t, Counter*> stallCounters_;
};

}  // namespace edgesim::telemetry
