#include "telemetry/slo_watchdog.hpp"

#include <cmath>
#include <utility>

#include "util/strings.hpp"

namespace edgesim::telemetry {

JsonValue SloBreach::toJson() const {
  JsonValue doc = JsonValue::object();
  doc.set("at_s", JsonValue(at.toSeconds()));
  doc.set("budget", JsonValue(budget));
  doc.set("kind", JsonValue(kind));
  doc.set("observed", JsonValue(observed));
  doc.set("budget_value", JsonValue(budgetValue));
  doc.set("window_samples", JsonValue(windowSamples));
  if (worstRequest != 0) {
    doc.set("worst_request", JsonValue(worstRequest));
    doc.set("worst_seconds", JsonValue(worstSeconds));
    JsonValue spans = JsonValue::array();
    for (const trace::TraceSpan& span : worstSpans) {
      JsonValue entry = JsonValue::object();
      entry.set("name", JsonValue(span.name));
      entry.set("category", JsonValue(span.category));
      entry.set("start_s", JsonValue(span.start.toSeconds()));
      entry.set("end_s", JsonValue(span.end.toSeconds()));
      spans.push(std::move(entry));
    }
    doc.set("worst_spans", std::move(spans));
  }
  return doc;
}

SloWatchdog::SloWatchdog(Simulation& sim, MetricsRegistry& registry,
                         trace::TraceRecorder* trace)
    : sim_(sim), registry_(registry), trace_(trace) {}

void SloWatchdog::addBudget(SloBudget budget) {
  BudgetState state;
  state.budget = std::move(budget);
  budgets_.push_back(std::move(state));
}

void SloWatchdog::start(SimTime period) {
  timer_.start(sim_, period, [this] {
    evaluate();
    return true;
  });
}

void SloWatchdog::stop() { timer_.cancel(); }

void SloWatchdog::observeRequest(const std::string& service, double seconds,
                                 trace::RequestId request) {
  std::lock_guard<std::mutex> lock(worstMutex_);
  WorstRequest& worst = worstByService_[service];
  if (request != 0 && seconds >= worst.seconds) {
    worst = {seconds, request};
  }
}

std::size_t SloWatchdog::evaluate() {
  std::size_t fired = 0;
  for (BudgetState& state : budgets_) {
    const SloBudget& budget = state.budget;

    if (!budget.histogram.empty() && budget.latencyBudgetSeconds > 0.0) {
      if (state.histogram == nullptr) {
        state.histogram = &registry_.histogram(budget.histogram, budget.labels);
        state.lastCounts.assign(Histogram::kBuckets, 0);
      }
      std::vector<std::uint64_t> window;
      const std::uint64_t windowSamples = Histogram::deltaCounts(
          state.histogram->bucketCounts(), state.lastCounts, window);
      if (windowSamples >= budget.minWindowSamples && windowSamples > 0) {
        const double q = Histogram::quantileFromCounts(window, budget.quantile);
        if (q > budget.latencyBudgetSeconds) {
          recordBreach(state, "latency", q, budget.latencyBudgetSeconds,
                       windowSamples);
          ++fired;
        }
      }
    }

    if (!budget.errorCounter.empty() && budget.maxErrorRatio >= 0.0) {
      const std::uint64_t errors =
          registry_.counter(budget.errorCounter, budget.errorLabels).value();
      const std::uint64_t total =
          registry_.counter(budget.totalCounter, budget.totalLabels).value();
      const std::uint64_t errorDelta = errors - state.lastErrors;
      const std::uint64_t totalDelta = total - state.lastTotal;
      state.lastErrors = errors;
      state.lastTotal = total;
      if (totalDelta >= budget.minWindowSamples && totalDelta > 0) {
        const double ratio = static_cast<double>(errorDelta) /
                             static_cast<double>(totalDelta);
        if (ratio > budget.maxErrorRatio) {
          recordBreach(state, "errors", ratio, budget.maxErrorRatio,
                       totalDelta);
          ++fired;
        }
      }
    }
  }
  {
    // New window: worst-request attribution starts over.
    std::lock_guard<std::mutex> lock(worstMutex_);
    worstByService_.clear();
  }
  return fired;
}

void SloWatchdog::recordBreach(BudgetState& state, const std::string& kind,
                               double observed, double budgetValue,
                               std::uint64_t windowSamples) {
  const SloBudget& budget = state.budget;
  SloBreach breach;
  breach.at = sim_.now();
  breach.budget = budget.name;
  breach.kind = kind;
  breach.observed = observed;
  breach.budgetValue = budgetValue;
  breach.windowSamples = windowSamples;

  if (!budget.service.empty()) {
    std::lock_guard<std::mutex> lock(worstMutex_);
    const auto it = worstByService_.find(budget.service);
    if (it != worstByService_.end()) {
      breach.worstRequest = it->second.request;
      breach.worstSeconds = it->second.seconds;
    }
  }
  if (trace_ != nullptr && breach.worstRequest != 0) {
    for (const trace::TraceSpan& span : trace_->spans()) {
      if (span.request == breach.worstRequest) {
        breach.worstSpans.push_back(span);
      }
    }
  }
  if (trace_ != nullptr) {
    trace_->instant(
        breach.worstRequest, "slo-breach", "telemetry", sim_.now(),
        {{"budget", budget.name},
         {"kind", kind},
         {"observed", strprintf("%.6g", observed)},
         {"budget_value", strprintf("%.6g", budgetValue)},
         {"window_samples", std::to_string(windowSamples)}});
  }
  if (state.breachCounter == nullptr) {
    state.breachCounter = &registry_.counter("edgesim_slo_breaches_total",
                                             {{"budget", budget.name}});
  }
  state.breachCounter->add();
  breaches_.push_back(std::move(breach));
}

JsonValue SloWatchdog::breachesJson() const {
  JsonValue array = JsonValue::array();
  for (const SloBreach& breach : breaches_) array.push(breach.toJson());
  return array;
}

}  // namespace edgesim::telemetry
