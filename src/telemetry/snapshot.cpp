#include "telemetry/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "util/strings.hpp"

namespace edgesim::telemetry {

namespace {

/// Shortest decimal that round-trips to `v` (same contract as the JSON
/// writer, kept local to the Prometheus exposition).
std::string formatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  for (int precision = 1; precision <= 17; ++precision) {
    std::string s = strprintf("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return strprintf("%.17g", v);
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Prometheus label names: [a-zA-Z_][a-zA-Z0-9_]*.
std::string sanitizeLabelName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok =
        std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{a="x",b="y"}`, with `extra` appended last; "" for no labels.
std::string formatLabels(const Labels& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](const std::string& k, const std::string& v) {
    if (!first) out += ',';
    first = false;
    out += sanitizeLabelName(k);
    out += "=\"";
    out += escapeLabelValue(v);
    out += '"';
  };
  for (const auto& [k, v] : labels) append(k, v);
  if (extra != nullptr) append(extra->first, extra->second);
  out += '}';
  return out;
}

JsonValue labelsToJson(const Labels& labels) {
  JsonValue obj = JsonValue::object();
  for (const auto& [k, v] : labels) obj.set(k, JsonValue(v));
  return obj;
}

Result<Labels> labelsFromJson(const JsonValue& value) {
  Labels labels;
  if (value.isNull()) return labels;
  if (!value.isObject()) {
    return makeError(Errc::kInvalidArgument, "labels: expected object");
  }
  for (const auto& [k, v] : value.members()) {
    if (!v.isString()) {
      return makeError(Errc::kInvalidArgument,
                       "labels." + k + ": expected string");
    }
    labels.emplace_back(k, v.asString());
  }
  return labels;
}

}  // namespace

// ---- SnapshotHistogram ------------------------------------------------------

double SnapshotHistogram::quantile(double q) const {
  if (count == 0 || buckets.empty()) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = std::max(1.0, q * static_cast<double>(count));
  // Snapshots keep only non-empty buckets, so the previous stored bound is
  // the effective lower edge of each bucket's span.
  double lower = 0.0;
  std::uint64_t before = 0;
  for (const Bucket& bucket : buckets) {
    if (static_cast<double>(bucket.cumulative) >= rank) {
      const double inBucket = static_cast<double>(bucket.cumulative - before);
      const double within = (rank - static_cast<double>(before)) / inBucket;
      return lower + (bucket.upperBound - lower) * within;
    }
    lower = bucket.upperBound;
    before = bucket.cumulative;
  }
  return buckets.back().upperBound;
}

// ---- TelemetrySnapshot lookups ----------------------------------------------

const SnapshotCounter* TelemetrySnapshot::findCounter(
    const std::string& name, const Labels& labels) const {
  for (const SnapshotCounter& c : counters) {
    if (c.name == name && c.labels == labels) return &c;
  }
  return nullptr;
}

const SnapshotGauge* TelemetrySnapshot::findGauge(const std::string& name,
                                                  const Labels& labels) const {
  for (const SnapshotGauge& g : gauges) {
    if (g.name == name && g.labels == labels) return &g;
  }
  return nullptr;
}

const SnapshotHistogram* TelemetrySnapshot::findHistogram(
    const std::string& name, const Labels& labels) const {
  for (const SnapshotHistogram& h : histograms) {
    if (h.name == name && h.labels == labels) return &h;
  }
  return nullptr;
}

std::uint64_t TelemetrySnapshot::counterValue(const std::string& name,
                                              const Labels& labels) const {
  const SnapshotCounter* c = findCounter(name, labels);
  return c != nullptr ? c->value : 0;
}

std::uint64_t TelemetrySnapshot::counterTotal(const std::string& name) const {
  std::uint64_t total = 0;
  for (const SnapshotCounter& c : counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

std::uint64_t TelemetrySnapshot::histogramCountTotal(
    const std::string& name) const {
  std::uint64_t total = 0;
  for (const SnapshotHistogram& h : histograms) {
    if (h.name == name) total += h.count;
  }
  return total;
}

// ---- JSON -------------------------------------------------------------------

JsonValue TelemetrySnapshot::toJson() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue("edgesim-telemetry"));
  doc.set("schema_version", JsonValue(1));
  doc.set("sequence", JsonValue(sequence));
  doc.set("sim_time_s", JsonValue(simTimeSeconds));

  JsonValue counterArray = JsonValue::array();
  for (const SnapshotCounter& c : counters) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(c.name));
    if (!c.labels.empty()) entry.set("labels", labelsToJson(c.labels));
    entry.set("value", JsonValue(c.value));
    counterArray.push(std::move(entry));
  }
  doc.set("counters", std::move(counterArray));

  JsonValue gaugeArray = JsonValue::array();
  for (const SnapshotGauge& g : gauges) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(g.name));
    if (!g.labels.empty()) entry.set("labels", labelsToJson(g.labels));
    entry.set("value", JsonValue(g.value));
    gaugeArray.push(std::move(entry));
  }
  doc.set("gauges", std::move(gaugeArray));

  JsonValue histArray = JsonValue::array();
  for (const SnapshotHistogram& h : histograms) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue(h.name));
    if (!h.labels.empty()) entry.set("labels", labelsToJson(h.labels));
    entry.set("count", JsonValue(h.count));
    entry.set("sum", JsonValue(h.sum));
    JsonValue buckets = JsonValue::array();
    for (const SnapshotHistogram::Bucket& b : h.buckets) {
      JsonValue pair = JsonValue::array();
      pair.push(JsonValue(b.upperBound));
      pair.push(JsonValue(b.cumulative));
      buckets.push(std::move(pair));
    }
    entry.set("buckets", std::move(buckets));
    histArray.push(std::move(entry));
  }
  doc.set("histograms", std::move(histArray));
  return doc;
}

Result<TelemetrySnapshot> TelemetrySnapshot::fromJson(const JsonValue& doc) {
  if (!doc.isObject()) {
    return makeError(Errc::kInvalidArgument, "snapshot: expected object");
  }
  if (doc.stringOr("schema", "") != "edgesim-telemetry") {
    return makeError(Errc::kInvalidArgument,
                     "snapshot: schema is not edgesim-telemetry");
  }
  if (doc.numberOr("schema_version", 0) != 1) {
    return makeError(Errc::kInvalidArgument,
                     "snapshot: unsupported schema_version");
  }
  TelemetrySnapshot snap;
  snap.sequence = static_cast<std::uint64_t>(doc.numberOr("sequence", 0));
  snap.simTimeSeconds = doc.numberOr("sim_time_s", 0.0);

  const auto entryName = [](const JsonValue& entry) -> Result<std::string> {
    const JsonValue* name = entry.find("name");
    if (name == nullptr || !name->isString()) {
      return makeError(Errc::kInvalidArgument, "snapshot entry without name");
    }
    return name->asString();
  };

  if (const JsonValue* counters = doc.find("counters")) {
    for (const JsonValue& entry : counters->items()) {
      Result<std::string> name = entryName(entry);
      if (!name.ok()) return name.error();
      Result<Labels> labels =
          labelsFromJson(entry.find("labels") != nullptr ? *entry.find("labels")
                                                         : JsonValue());
      if (!labels.ok()) return labels.error();
      snap.counters.push_back(
          {name.value(), labels.value(),
           static_cast<std::uint64_t>(entry.numberOr("value", 0))});
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const JsonValue& entry : gauges->items()) {
      Result<std::string> name = entryName(entry);
      if (!name.ok()) return name.error();
      Result<Labels> labels =
          labelsFromJson(entry.find("labels") != nullptr ? *entry.find("labels")
                                                         : JsonValue());
      if (!labels.ok()) return labels.error();
      snap.gauges.push_back(
          {name.value(), labels.value(), entry.numberOr("value", 0.0)});
    }
  }
  if (const JsonValue* histograms = doc.find("histograms")) {
    for (const JsonValue& entry : histograms->items()) {
      Result<std::string> name = entryName(entry);
      if (!name.ok()) return name.error();
      Result<Labels> labels =
          labelsFromJson(entry.find("labels") != nullptr ? *entry.find("labels")
                                                         : JsonValue());
      if (!labels.ok()) return labels.error();
      SnapshotHistogram hist;
      hist.name = name.value();
      hist.labels = labels.value();
      hist.count = static_cast<std::uint64_t>(entry.numberOr("count", 0));
      hist.sum = entry.numberOr("sum", 0.0);
      if (const JsonValue* buckets = entry.find("buckets")) {
        for (const JsonValue& pair : buckets->items()) {
          if (!pair.isArray() || pair.size() != 2 ||
              !pair.at(0).isNumber() || !pair.at(1).isNumber()) {
            return makeError(Errc::kInvalidArgument,
                             hist.name + ": malformed bucket entry");
          }
          hist.buckets.push_back(
              {pair.at(0).asNumber(),
               static_cast<std::uint64_t>(pair.at(1).asNumber())});
        }
      }
      snap.histograms.push_back(std::move(hist));
    }
  }
  return snap;
}

// ---- Prometheus exposition --------------------------------------------------

std::string TelemetrySnapshot::toPrometheus() const {
  std::string out;
  std::set<std::string> typed;
  const auto declareType = [&](const std::string& name,
                               const char* type) {
    if (typed.insert(name).second) {
      out += "# TYPE " + name + " " + type + "\n";
    }
  };

  for (const SnapshotCounter& c : counters) {
    const std::string name = sanitizeMetricName(c.name);
    declareType(name, "counter");
    out += name + formatLabels(c.labels, nullptr) + " " +
           strprintf("%llu", static_cast<unsigned long long>(c.value)) + "\n";
  }
  for (const SnapshotGauge& g : gauges) {
    const std::string name = sanitizeMetricName(g.name);
    declareType(name, "gauge");
    out += name + formatLabels(g.labels, nullptr) + " " +
           formatDouble(g.value) + "\n";
  }
  for (const SnapshotHistogram& h : histograms) {
    const std::string name = sanitizeMetricName(h.name);
    declareType(name, "histogram");
    for (const SnapshotHistogram::Bucket& b : h.buckets) {
      const std::pair<std::string, std::string> le{"le",
                                                   formatDouble(b.upperBound)};
      out += name + "_bucket" + formatLabels(h.labels, &le) + " " +
             strprintf("%llu",
                       static_cast<unsigned long long>(b.cumulative)) +
             "\n";
    }
    const std::pair<std::string, std::string> leInf{"le", "+Inf"};
    out += name + "_bucket" + formatLabels(h.labels, &leInf) + " " +
           strprintf("%llu", static_cast<unsigned long long>(h.count)) + "\n";
    out += name + "_sum" + formatLabels(h.labels, nullptr) + " " +
           formatDouble(h.sum) + "\n";
    out += name + "_count" + formatLabels(h.labels, nullptr) + " " +
           strprintf("%llu", static_cast<unsigned long long>(h.count)) + "\n";
  }
  return out;
}

// ---- Prometheus lint --------------------------------------------------------

namespace {

struct LintCursor {
  const std::string& line;
  std::size_t pos = 0;

  bool done() const { return pos >= line.size(); }
  char peek() const { return done() ? '\0' : line[pos]; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }
};

bool isMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}
bool isMetricNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}
bool isLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isLabelNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string parseName(LintCursor& cur, bool (*start)(char),
                      bool (*inner)(char)) {
  if (cur.done() || !start(cur.peek())) return "";
  std::string name;
  while (!cur.done() && inner(cur.peek())) {
    name += cur.line[cur.pos++];
  }
  return name;
}

bool parseValue(const std::string& token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

Error lintError(std::size_t lineNo, const std::string& message) {
  return makeError(Errc::kInvalidArgument,
                   strprintf("line %zu: %s", lineNo, message.c_str()));
}

}  // namespace

Status lintPrometheus(const std::string& text) {
  std::map<std::string, std::string> typeByFamily;
  std::set<std::string> sampledFamilies;

  struct HistogramSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    double count = 0.0;
    bool hasCount = false;
    bool hasSum = false;
    std::size_t firstLine = 0;
  };
  std::map<std::string, HistogramSeries> histogramSeries;

  std::size_t lineNo = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineNo;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Comment: only "# TYPE <name> <type>" is semantically checked.
      LintCursor cur{line, 1};
      while (cur.consume(' ')) {}
      if (line.compare(cur.pos, 5, "TYPE ") == 0) {
        cur.pos += 5;
        const std::string family =
            parseName(cur, isMetricNameStart, isMetricNameChar);
        if (family.empty()) {
          return lintError(lineNo, "TYPE without a valid metric name");
        }
        if (!cur.consume(' ')) {
          return lintError(lineNo, "TYPE " + family + ": missing type");
        }
        const std::string type = line.substr(cur.pos);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return lintError(lineNo, "unknown metric type '" + type + "'");
        }
        if (typeByFamily.contains(family)) {
          return lintError(lineNo, "duplicate TYPE for " + family);
        }
        if (sampledFamilies.contains(family)) {
          return lintError(lineNo,
                           "TYPE for " + family + " after its samples");
        }
        typeByFamily[family] = type;
      }
      continue;
    }

    // Sample line: name [{labels}] value [timestamp]
    LintCursor cur{line, 0};
    const std::string name =
        parseName(cur, isMetricNameStart, isMetricNameChar);
    if (name.empty()) {
      return lintError(lineNo, "invalid metric name");
    }
    Labels labels;
    if (cur.consume('{')) {
      while (!cur.consume('}')) {
        const std::string label =
            parseName(cur, isLabelNameStart, isLabelNameChar);
        if (label.empty()) {
          return lintError(lineNo, name + ": invalid label name");
        }
        if (!cur.consume('=') || !cur.consume('"')) {
          return lintError(lineNo, name + ": expected =\"...\" after label");
        }
        std::string value;
        while (!cur.done() && cur.peek() != '"') {
          char c = cur.line[cur.pos++];
          if (c == '\\') {
            if (cur.done()) {
              return lintError(lineNo, name + ": dangling escape");
            }
            const char esc = cur.line[cur.pos++];
            if (esc == 'n') c = '\n';
            else if (esc == '\\' || esc == '"') c = esc;
            else return lintError(lineNo, name + ": bad escape sequence");
          }
          value += c;
        }
        if (!cur.consume('"')) {
          return lintError(lineNo, name + ": unterminated label value");
        }
        labels.emplace_back(label, value);
        if (cur.consume(',')) continue;
        if (cur.peek() != '}') {
          return lintError(lineNo, name + ": expected ',' or '}' in labels");
        }
      }
    }
    if (!cur.consume(' ')) {
      return lintError(lineNo, name + ": expected space before value");
    }
    while (cur.consume(' ')) {}
    std::string valueToken;
    while (!cur.done() && cur.peek() != ' ') {
      valueToken += cur.line[cur.pos++];
    }
    double value = 0.0;
    if (!parseValue(valueToken, &value)) {
      return lintError(lineNo, name + ": invalid value '" + valueToken + "'");
    }
    while (cur.consume(' ')) {}
    if (!cur.done()) {
      // Optional timestamp (integer milliseconds).
      std::string ts = line.substr(cur.pos);
      char* end = nullptr;
      std::strtoll(ts.c_str(), &end, 10);
      if (end != ts.c_str() + ts.size()) {
        return lintError(lineNo, name + ": trailing garbage '" + ts + "'");
      }
    }

    // Resolve the metric family: histogram components map back to the base
    // name that carried the TYPE.
    std::string family = name;
    std::string component;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        const std::string base = name.substr(0, name.size() - len);
        const auto it = typeByFamily.find(base);
        if (it != typeByFamily.end() && it->second == "histogram") {
          family = base;
          component = suffix;
        }
        break;
      }
    }
    const auto typeIt = typeByFamily.find(family);
    if (typeIt == typeByFamily.end()) {
      return lintError(lineNo, name + ": sample before # TYPE declaration");
    }
    sampledFamilies.insert(family);

    if (typeIt->second == "histogram") {
      if (component.empty()) {
        return lintError(lineNo,
                         name + ": histogram sample must be "
                                "_bucket/_sum/_count");
      }
      Labels seriesLabels;
      std::string le;
      bool hasLe = false;
      for (const auto& [k, v] : labels) {
        if (k == "le") {
          le = v;
          hasLe = true;
        } else {
          seriesLabels.emplace_back(k, v);
        }
      }
      std::sort(seriesLabels.begin(), seriesLabels.end());
      std::string seriesKey = family;
      for (const auto& [k, v] : seriesLabels) {
        seriesKey += '\x1f';
        seriesKey += k;
        seriesKey += '\x1e';
        seriesKey += v;
      }
      HistogramSeries& series = histogramSeries[seriesKey];
      if (series.firstLine == 0) series.firstLine = lineNo;
      if (component == "_bucket") {
        if (!hasLe) {
          return lintError(lineNo, name + ": _bucket without le label");
        }
        double leValue = 0.0;
        if (!parseValue(le, &leValue)) {
          return lintError(lineNo, name + ": invalid le '" + le + "'");
        }
        series.buckets.emplace_back(leValue, value);
      } else if (hasLe) {
        return lintError(lineNo, name + ": le label outside _bucket");
      } else if (component == "_count") {
        series.hasCount = true;
        series.count = value;
      } else {
        series.hasSum = true;
      }
    } else if (typeIt->second == "counter" && value < 0.0) {
      return lintError(lineNo, name + ": negative counter value");
    }
  }

  for (const auto& [key, series] : histogramSeries) {
    const std::string family = key.substr(0, key.find('\x1f'));
    const auto fail = [&](const std::string& message) {
      return lintError(series.firstLine, family + ": " + message);
    };
    if (series.buckets.empty()) {
      return fail("histogram series without _bucket samples");
    }
    for (std::size_t i = 1; i < series.buckets.size(); ++i) {
      if (!(series.buckets[i].first > series.buckets[i - 1].first)) {
        return fail("le bounds not strictly increasing");
      }
      if (series.buckets[i].second < series.buckets[i - 1].second) {
        return fail("cumulative bucket counts decrease");
      }
    }
    if (!std::isinf(series.buckets.back().first)) {
      return fail("missing le=\"+Inf\" bucket");
    }
    if (!series.hasCount || !series.hasSum) {
      return fail("missing _sum or _count sample");
    }
    if (series.count != series.buckets.back().second) {
      return fail("_count does not equal the +Inf bucket");
    }
  }
  return Status::okStatus();
}

}  // namespace edgesim::telemetry
