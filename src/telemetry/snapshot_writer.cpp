#include "telemetry/snapshot_writer.hpp"

#include <filesystem>
#include <fstream>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace edgesim::telemetry {

namespace {

Status writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return makeError(Errc::kUnavailable, "cannot open " + path);
  }
  out << contents;
  out.flush();
  if (!out) {
    return makeError(Errc::kUnavailable, "short write to " + path);
  }
  return Status::okStatus();
}

}  // namespace

SnapshotWriter::SnapshotWriter(Simulation& sim, MetricsRegistry& registry,
                               SnapshotWriterOptions options)
    : sim_(sim), registry_(registry), options_(std::move(options)) {}

void SnapshotWriter::start() {
  timer_.start(sim_, options_.period, [this] {
    const Result<TelemetrySnapshot> result = writeNow();
    if (!result.ok()) {
      ES_WARN("telemetry", "snapshot dump stopped: %s",
              result.error().toString().c_str());
      return false;
    }
    return true;
  });
}

void SnapshotWriter::stop() { timer_.cancel(); }

Result<TelemetrySnapshot> SnapshotWriter::writeNow() {
  TelemetrySnapshot snapshot = registry_.snapshot(sim_.now().toSeconds());

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return makeError(Errc::kUnavailable,
                     "mkdir " + options_.dir + ": " + ec.message());
  }
  const std::string stem =
      options_.dir + "/" +
      strprintf("%s_%06llu", options_.prefix.c_str(),
                static_cast<unsigned long long>(snapshot.sequence));
  if (options_.writeJson) {
    const Status status = writeFile(stem + ".json",
                                    snapshot.toJson().dump(2) + "\n");
    if (!status.ok()) return status.error();
  }
  if (options_.writePrometheus) {
    const Status status = writeFile(stem + ".prom", snapshot.toPrometheus());
    if (!status.ok()) return status.error();
  }
  ++written_;
  return snapshot;
}

}  // namespace edgesim::telemetry
