#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cmath>

namespace edgesim::telemetry {

namespace detail {

std::size_t allocateStripe() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kStripes;
}

}  // namespace detail

// ---- Histogram --------------------------------------------------------------

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> merged(kBuckets, 0);
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    for (int b = 0; b < kBuckets; ++b) {
      merged[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    for (int b = 0; b < kBuckets; ++b) {
      total += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  std::int64_t nanos = 0;
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    nanos += stripes_[s].sumNanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) / 1e9;
}

double Histogram::quantile(double q) const {
  return quantileFromCounts(bucketCounts(), q);
}

double Histogram::bucketLowerBound(int index) {
  if (index <= 0) return 0.0;  // bucket 0 absorbs the underflow
  const int octave = index / kSubBuckets + kMinExp;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + 0.25 * sub, octave);
}

double Histogram::bucketUpperBound(int index) {
  const int octave = index / kSubBuckets + kMinExp;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + 0.25 * (sub + 1), octave);
}

double Histogram::quantileFromCounts(const std::vector<std::uint64_t>& counts,
                                     double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, total]; the quantile lives in the bucket where the
  // cumulative count first reaches it.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = bucketLowerBound(static_cast<int>(b));
      const double upper = bucketUpperBound(static_cast<int>(b));
      const double within = (rank - static_cast<double>(before)) /
                            static_cast<double>(counts[b]);
      return lower + (upper - lower) * within;
    }
  }
  return bucketUpperBound(static_cast<int>(counts.size()) - 1);
}

std::uint64_t Histogram::deltaCounts(const std::vector<std::uint64_t>& counts,
                                     std::vector<std::uint64_t>& last,
                                     std::vector<std::uint64_t>& window) {
  if (last.size() != counts.size()) last.assign(counts.size(), 0);
  window.assign(counts.size(), 0);
  std::uint64_t samples = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    window[b] = counts[b] - last[b];
    samples += window[b];
  }
  last = counts;
  return samples;
}

// ---- MetricsRegistry --------------------------------------------------------

std::string MetricsRegistry::seriesKey(const std::string& name,
                                       const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(seriesKey(name, labels));
  if (inserted) {
    it->second = {name, labels, std::make_unique<Counter>()};
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(seriesKey(name, labels));
  if (inserted) {
    it->second = {name, labels, std::make_unique<Gauge>()};
  }
  return *it->second.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(seriesKey(name, labels));
  if (inserted) {
    it->second = {name, labels, std::make_unique<Histogram>()};
  }
  return *it->second.metric;
}

void MetricsRegistry::gaugeFn(const std::string& name, const Labels& labels,
                              std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gaugeFns_[seriesKey(name, labels)] = {name, labels, std::move(fn)};
}

TelemetrySnapshot MetricsRegistry::snapshot(double simTimeSeconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TelemetrySnapshot snap;
  snap.sequence = nextSequence_.fetch_add(1, std::memory_order_relaxed);
  snap.simTimeSeconds = simTimeSeconds;

  snap.counters.reserve(counters_.size());
  for (const auto& [key, series] : counters_) {
    snap.counters.push_back({series.name, series.labels,
                             series.metric->value()});
  }

  // Stored and polled gauges share the namespace; merge them in key order.
  std::map<std::string, SnapshotGauge> gauges;
  for (const auto& [key, series] : gauges_) {
    gauges[key] = {series.name, series.labels,
                   static_cast<double>(series.metric->value())};
  }
  for (const auto& [key, series] : gaugeFns_) {
    gauges[key] = {series.name, series.labels, series.fn()};
  }
  snap.gauges.reserve(gauges.size());
  for (auto& [key, gauge] : gauges) snap.gauges.push_back(std::move(gauge));

  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, series] : histograms_) {
    SnapshotHistogram hist;
    hist.name = series.name;
    hist.labels = series.labels;
    const std::vector<std::uint64_t> counts = series.metric->bucketCounts();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      cumulative += counts[b];
      hist.buckets.push_back(
          {Histogram::bucketUpperBound(static_cast<int>(b)), cumulative});
    }
    hist.count = cumulative;
    hist.sum = series.metric->sum();
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

}  // namespace edgesim::telemetry
