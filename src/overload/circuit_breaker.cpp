#include "overload/circuit_breaker.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace edgesim::overload {

const char* breakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(std::string cluster, BreakerOptions options,
                               telemetry::MetricsRegistry* telemetry)
    : cluster_(std::move(cluster)),
      options_(options),
      sliceNanos_(std::max<std::int64_t>(
          1, options.window.toNanos() / std::max(1, options.slices))),
      slices_(static_cast<std::size_t>(std::max(1, options.slices))) {
  ES_ASSERT(options_.window > SimTime::zero());
  if (telemetry != nullptr) {
    stateGauge_ = &telemetry->gauge("edgesim_breaker_state",
                                    {{"cluster", cluster_}});
    toOpen_ = &telemetry->counter("edgesim_breaker_transitions_total",
                                  {{"cluster", cluster_}, {"to", "open"}});
    toHalfOpen_ = &telemetry->counter(
        "edgesim_breaker_transitions_total",
        {{"cluster", cluster_}, {"to", "half-open"}});
    toClosed_ = &telemetry->counter("edgesim_breaker_transitions_total",
                                    {{"cluster", cluster_}, {"to", "closed"}});
    shortCircuitCtr_ = &telemetry->counter(
        "edgesim_breaker_short_circuits_total", {{"cluster", cluster_}});
    latencyHist_ = &telemetry->histogram("edgesim_breaker_latency_seconds",
                                         {{"cluster", cluster_}});
  }
}

CircuitBreaker::Slice& CircuitBreaker::sliceFor(SimTime now) {
  const std::int64_t index = sliceIndex(now);
  Slice& slice = slices_[static_cast<std::size_t>(
      index % static_cast<std::int64_t>(slices_.size()))];
  if (slice.index != index) {
    slice.index = index;
    slice.successes = 0;
    slice.failures = 0;
    slice.latencyBuckets.clear();
  }
  return slice;
}

void CircuitBreaker::expireSlices(SimTime now) {
  // A slot whose stored index has fallen out of the window no longer
  // contributes; sliceFor() recycles it on next write.  Invalidate eagerly
  // so windowed reads never see stale outcomes.
  const std::int64_t oldest =
      sliceIndex(now) - static_cast<std::int64_t>(slices_.size()) + 1;
  for (Slice& slice : slices_) {
    if (slice.index >= 0 && slice.index < oldest) slice.index = -1;
  }
}

void CircuitBreaker::clearWindow() {
  for (Slice& slice : slices_) slice.index = -1;
}

void CircuitBreaker::transition(BreakerState to, SimTime now) {
  if (state_ == to) return;
  state_ = to;
  if (stateGauge_ != nullptr) {
    stateGauge_->set(static_cast<std::int64_t>(to));
  }
  switch (to) {
    case BreakerState::kOpen:
      openedAt_ = now;
      ++timesOpened_;
      probesInFlight_ = 0;
      probeSuccesses_ = 0;
      if (toOpen_ != nullptr) toOpen_->add();
      ES_WARN("breaker", "%s: OPEN at t=%.3fs (cooldown %.1fs)",
              cluster_.c_str(), now.toSeconds(),
              options_.openCooldown.toSeconds());
      break;
    case BreakerState::kHalfOpen:
      probesInFlight_ = 0;
      probeSuccesses_ = 0;
      if (toHalfOpen_ != nullptr) toHalfOpen_->add();
      ES_INFO("breaker", "%s: HALF-OPEN at t=%.3fs (probes %d)",
              cluster_.c_str(), now.toSeconds(), options_.halfOpenProbes);
      break;
    case BreakerState::kClosed:
      clearWindow();
      if (toClosed_ != nullptr) toClosed_->add();
      ES_INFO("breaker", "%s: CLOSED at t=%.3fs", cluster_.c_str(),
              now.toSeconds());
      break;
  }
}

BreakerState CircuitBreaker::state(SimTime now) {
  if (state_ == BreakerState::kOpen &&
      now - openedAt_ >= options_.openCooldown) {
    transition(BreakerState::kHalfOpen, now);
  }
  return state_;
}

bool CircuitBreaker::allow(SimTime now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++shortCircuits_;
      if (shortCircuitCtr_ != nullptr) shortCircuitCtr_->add();
      return false;
    case BreakerState::kHalfOpen:
      if (probesInFlight_ < options_.halfOpenProbes) return true;
      ++shortCircuits_;
      if (shortCircuitCtr_ != nullptr) shortCircuitCtr_->add();
      return false;
  }
  return true;
}

void CircuitBreaker::beginProbe(SimTime now) {
  if (state(now) != BreakerState::kHalfOpen) return;
  ++probesInFlight_;
}

void CircuitBreaker::cancelProbe(SimTime now) {
  if (state(now) != BreakerState::kHalfOpen) return;
  probesInFlight_ = std::max(0, probesInFlight_ - 1);
}

void CircuitBreaker::maybeTrip(SimTime now) {
  expireSlices(now);
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> latency;
  for (const Slice& slice : slices_) {
    if (slice.index < 0) continue;
    successes += slice.successes;
    failures += slice.failures;
    if (!slice.latencyBuckets.empty()) {
      if (latency.empty()) {
        latency.assign(telemetry::Histogram::kBuckets, 0);
      }
      for (std::size_t i = 0; i < slice.latencyBuckets.size(); ++i) {
        latency[i] += slice.latencyBuckets[i];
      }
    }
  }
  const std::uint64_t total = successes + failures;
  if (total < options_.minSamples) return;
  const double ratio =
      static_cast<double>(failures) / static_cast<double>(total);
  if (ratio >= options_.failureRatio) {
    ES_WARN("breaker", "%s: tripping on failure ratio %.2f (>= %.2f, n=%llu)",
            cluster_.c_str(), ratio, options_.failureRatio,
            static_cast<unsigned long long>(total));
    transition(BreakerState::kOpen, now);
    return;
  }
  if (options_.latencyThresholdSeconds > 0.0 && !latency.empty()) {
    const double q = telemetry::Histogram::quantileFromCounts(
        latency, options_.latencyQuantile);
    if (q > options_.latencyThresholdSeconds) {
      ES_WARN("breaker", "%s: tripping on latency q%.0f=%.3fs (> %.3fs)",
              cluster_.c_str(), options_.latencyQuantile * 100.0, q,
              options_.latencyThresholdSeconds);
      transition(BreakerState::kOpen, now);
    }
  }
}

void CircuitBreaker::recordSuccess(SimTime now, double latencySeconds) {
  if (latencyHist_ != nullptr) latencyHist_->observe(latencySeconds);
  switch (state(now)) {
    case BreakerState::kHalfOpen:
      probesInFlight_ = std::max(0, probesInFlight_ - 1);
      ++probeSuccesses_;
      if (probeSuccesses_ >= options_.closeAfterProbes) {
        transition(BreakerState::kClosed, now);
      }
      return;
    case BreakerState::kOpen:
      // Outcome of a request admitted before the trip: the window was
      // cleared, nothing to feed.
      return;
    case BreakerState::kClosed: {
      Slice& slice = sliceFor(now);
      ++slice.successes;
      if (options_.latencyThresholdSeconds > 0.0) {
        if (slice.latencyBuckets.empty()) {
          slice.latencyBuckets.assign(telemetry::Histogram::kBuckets, 0);
        }
        ++slice.latencyBuckets[static_cast<std::size_t>(
            telemetry::Histogram::bucketIndex(latencySeconds))];
      }
      maybeTrip(now);
      return;
    }
  }
}

void CircuitBreaker::recordFailure(SimTime now) {
  switch (state(now)) {
    case BreakerState::kHalfOpen:
      // A failed probe re-opens immediately; the cooldown restarts.
      transition(BreakerState::kOpen, now);
      return;
    case BreakerState::kOpen:
      return;
    case BreakerState::kClosed: {
      Slice& slice = sliceFor(now);
      ++slice.failures;
      maybeTrip(now);
      return;
    }
  }
}

std::uint64_t CircuitBreaker::windowSuccesses(SimTime now) {
  expireSlices(now);
  std::uint64_t total = 0;
  for (const Slice& slice : slices_) {
    if (slice.index >= 0) total += slice.successes;
  }
  return total;
}

std::uint64_t CircuitBreaker::windowFailures(SimTime now) {
  expireSlices(now);
  std::uint64_t total = 0;
  for (const Slice& slice : slices_) {
    if (slice.index >= 0) total += slice.failures;
  }
  return total;
}

}  // namespace edgesim::overload
