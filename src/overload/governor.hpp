// OverloadGovernor: the one object that decides, under pressure, which
// work the controller keeps and which it sheds.
//
// The paper's controller sits on the first packet of every flow, so a
// flash crowd turns it into the system's choke point.  The governor
// composes three mechanisms, applied in order along the request path:
//
//   admission   bounded lane queues in the LaneExecutor; overflowing work
//               is shed at submit time and answered with an immediate
//               degraded cloud redirect instead of queueing unboundedly.
//   budget      every request carries a deadline from packet_in onward;
//               an expired budget fails fast to the cloud instead of
//               occupying a deployment slot.  The dispatcher additionally
//               caps concurrent deployments per cluster (deploy tokens).
//   breaker     per-cluster circuit breakers route around a sick cluster
//               BEFORE quarantine (which only fires after a full retry
//               budget burns); see overload/circuit_breaker.hpp.
//
// Sustained shedding flips the governor into BROWNOUT: the dispatcher then
// forces the paper's "without waiting" behaviour (§IV, figs. 14-15) --
// cold requests are answered from a ready (cloud) instance immediately
// while the edge deployment proceeds in the background.
//
// Thread model: shed accounting (noteShed / counters) is thread-safe --
// lane shedding happens on whatever thread called submitRequest.  Breakers,
// deploy tokens and brownout evaluation run on the simulation thread only
// (the Dispatcher's control lane).
//
// Disabled (the default): nothing constructs a governor and every hot-path
// hook is a null check, so determinism goldens stay bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "overload/circuit_breaker.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"

namespace edgesim::overload {

/// Why a request was shed (also the `reason` label of edgesim_shed_total).
enum class ShedReason {
  kQueueFull = 0,      // lane queue at capacity
  kBudgetExpired = 1,  // deadline blown before/while resolving
  kDeployCap = 2,      // per-cluster deploy tokens exhausted
};
inline constexpr std::size_t kShedReasonCount = 3;

const char* shedReasonName(ShedReason reason);

struct OverloadOptions {
  /// Master switch; everything below is inert when false.
  bool enabled = false;

  // ---- admission (LaneExecutor) -------------------------------------------
  /// Per-worker lane queue capacity; 0 = unbounded (no admission control).
  std::size_t laneQueueCapacity = 256;
  /// "reject-newest" or "deadline-aware" (evict the queued task with the
  /// nearest deadline when it is sooner than the incoming task's).
  std::string shedPolicy = "reject-newest";

  // ---- deadline budgets ---------------------------------------------------
  /// Sim-time budget a request carries from packet_in; zero = no budget.
  SimTime requestBudget = SimTime::seconds(2.0);

  // ---- deployment token limiter -------------------------------------------
  /// Concurrent deployments allowed per cluster; 0 = unlimited.
  int maxDeploysPerCluster = 4;

  // ---- circuit breakers ---------------------------------------------------
  bool breakerEnabled = true;
  BreakerOptions breaker;

  // ---- brownout -----------------------------------------------------------
  /// Enter brownout when this many requests were shed within
  /// `brownoutWindow`; stay at least `brownoutMinDwell` once entered.
  /// 0 disables brownout.
  std::uint64_t brownoutShedThreshold = 64;
  SimTime brownoutWindow = SimTime::seconds(1.0);
  SimTime brownoutMinDwell = SimTime::seconds(5.0);

  /// Keys: overload_enabled, overload_lane_queue_capacity,
  /// overload_shed_policy, overload_request_budget_ms,
  /// overload_max_deploys_per_cluster, overload_breaker_enabled,
  /// overload_breaker_window_ms, overload_breaker_min_samples,
  /// overload_breaker_failure_ratio, overload_breaker_latency_threshold_ms,
  /// overload_breaker_cooldown_ms, overload_brownout_shed_threshold,
  /// overload_brownout_window_ms, overload_brownout_min_dwell_ms.
  static OverloadOptions fromConfig(const Config& config);
};

class OverloadGovernor {
 public:
  /// `telemetry` (optional) exports shed / brownout / breaker series;
  /// handles resolve once here so noteShed() stays hot-path safe.
  OverloadGovernor(OverloadOptions options,
                   telemetry::MetricsRegistry* telemetry = nullptr);

  OverloadGovernor(const OverloadGovernor&) = delete;
  OverloadGovernor& operator=(const OverloadGovernor&) = delete;

  const OverloadOptions& options() const { return options_; }

  // ---- shed accounting (thread-safe) --------------------------------------
  void noteShed(ShedReason reason);
  std::uint64_t shedCount() const;
  std::uint64_t shedCount(ShedReason reason) const {
    return shed_[static_cast<std::size_t>(reason)].load(
        std::memory_order_relaxed);
  }

  // ---- per-cluster breakers (simulation thread) ---------------------------
  /// Lazily-created breaker for `cluster`.  Creation registers telemetry
  /// series, so first touch must happen off the hot path (it does: the
  /// dispatcher consults breakers on the sim thread only).
  CircuitBreaker& breaker(const std::string& cluster);
  /// False when the cluster's breaker short-circuits requests right now.
  /// Always true when breakers are disabled.
  bool clusterAllowed(const std::string& cluster, SimTime now);

  // ---- deployment tokens (simulation thread) ------------------------------
  /// Reserve a deployment slot on `cluster`; false when the cap is reached.
  /// Every successful acquire must be released when the deployment settles.
  bool tryAcquireDeployToken(const std::string& cluster);
  void releaseDeployToken(const std::string& cluster);
  int deployTokensInUse(const std::string& cluster) const;

  // ---- brownout (simulation thread) ---------------------------------------
  /// Evaluate + report brownout at `now`.  Enters when the shed count within
  /// the rolling window crosses the threshold; exits `brownoutMinDwell`
  /// after the last window that was still over it.
  bool brownoutActive(SimTime now);
  std::uint64_t brownoutEntries() const { return brownoutEntries_; }

 private:
  OverloadOptions options_;
  telemetry::MetricsRegistry* telemetry_;

  std::atomic<std::uint64_t> shed_[kShedReasonCount] = {};
  telemetry::Counter* shedCtr_[kShedReasonCount] = {};

  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::map<std::string, int> deployTokens_;
  telemetry::Gauge* deployTokenGauge_ = nullptr;

  // Brownout window state (sim thread only).
  SimTime windowStart_;
  std::uint64_t shedAtWindowStart_ = 0;
  bool brownout_ = false;
  SimTime brownoutLastOver_;
  std::uint64_t brownoutEntries_ = 0;
  telemetry::Gauge* brownoutGauge_ = nullptr;
  telemetry::Counter* brownoutEnterCtr_ = nullptr;
  telemetry::Counter* brownoutExitCtr_ = nullptr;
  telemetry::Counter* brownoutRedirects_ = nullptr;

 public:
  /// Counter bumped by the dispatcher for each brownout-forced redirect
  /// (nullptr when telemetry is off).
  telemetry::Counter* brownoutRedirectCounter() { return brownoutRedirects_; }
};

}  // namespace edgesim::overload
